"""TunePoint / ParamSpace: normalization, validity filtering, presets."""

from __future__ import annotations

import json

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.tune.space import (
    ParamSpace,
    TunePoint,
    ablation_seed_points,
    register_seed_points,
    seed_points,
    space,
    space_names,
)


class TestTunePoint:
    def test_anchor_is_paper_default(self):
        assert TunePoint().accelerator_config() == AcceleratorConfig.paper_default()

    def test_params_round_trip(self):
        point = TunePoint(num_pes=1024, dtype_bits=16, dram_gbps=32,
                          tech_node_nm=7)
        assert TunePoint.from_params(point.params()) == point

    def test_params_survive_json(self):
        point = TunePoint(dram_gbps=256)
        rebuilt = TunePoint.from_params(json.loads(json.dumps(point.params())))
        assert rebuilt == point
        # The canonical JSON identity must be byte-stable, or cache keys fork.
        assert json.dumps(rebuilt.params(), sort_keys=True) == json.dumps(
            point.params(), sort_keys=True
        )

    def test_numeric_normalization(self):
        # Floats in int knobs (a JSON hazard) are coerced, not propagated.
        point = TunePoint(num_pes=1024.0, dram_gbps=64)
        assert isinstance(point.num_pes, int)
        assert isinstance(point.dram_gbps, float)
        assert point == TunePoint(num_pes=1024, dram_gbps=64.0)

    def test_invalid_points_raise(self):
        with pytest.raises(ConfigError):
            TunePoint(bus_bits=8, dtype_bits=32)  # bus < one element
        with pytest.raises(ConfigError):
            TunePoint(dram_gbps=0)
        with pytest.raises(ConfigError):
            TunePoint(tech_node_nm=-1)
        with pytest.raises(ConfigError):
            TunePoint.from_params({"num_pes": 64, "warp_size": 32})

    def test_scales(self):
        assert TunePoint().area_scale == 1.0
        assert TunePoint(tech_node_nm=14).area_scale == pytest.approx(0.25)
        assert TunePoint(tech_node_nm=14).energy_scale == pytest.approx(0.5)

    def test_label_mentions_swept_knobs(self):
        label = TunePoint(tech_node_nm=7).label()
        assert "node=7nm" in label
        assert "node=" not in TunePoint().label()


class TestParamSpace:
    def test_filters_invalid_combinations(self):
        sp = ParamSpace({"bus_bits": (16, 512), "dtype_bits": (32,)})
        assert sp.size() == 2  # raw cross product
        points = sp.points()
        assert len(points) == 1  # 16-bit bus can't carry a 32-bit element
        assert points[0].bus_bits == 512

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            ParamSpace({"warp_size": (32,)})
        with pytest.raises(ConfigError):
            ParamSpace({"num_pes": ()})

    def test_presets(self):
        assert set(space_names()) == {"paper_default", "smoke", "full"}
        anchor_only = space("paper_default").points()
        assert anchor_only == [TunePoint()]
        smoke = space("smoke").points()
        assert len(smoke) >= 24
        assert TunePoint() in smoke  # the anchor is a grid point
        with pytest.raises(ConfigError):
            space("imaginary")

    def test_full_space_is_filtered_superset(self):
        sp = space("full")
        points = sp.points()
        assert len(points) < sp.size()  # some combos are invalid
        assert len(points) > 100


class TestSeedRegistry:
    def test_registration_is_idempotent_and_deduplicated(self):
        register_seed_points("test_source", [TunePoint(), TunePoint()])
        try:
            assert seed_points().count(TunePoint()) == 1
            register_seed_points("test_source", [TunePoint()])
            assert seed_points().count(TunePoint()) == 1
        finally:
            register_seed_points("test_source", [])

    def test_ablation_seeds_cover_the_four_experiments(self):
        points = ablation_seed_points()
        assert TunePoint() in points  # the anchor itself
        assert TunePoint(pe_buffer_bytes=256) in points  # ablation_buffer
        assert TunePoint(dram_gbps=1024.0) in points  # ablation_dram
        assert TunePoint(dtype_bits=8) in points  # ablation_dtype
        assert TunePoint(bus_bits=128) in points  # ablation_scaling
        assert TunePoint(num_pes=8192) in points
        assert len(points) == len(set(points))  # deduplicated
