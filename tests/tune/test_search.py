"""run_tune: strategies, artifact-cache resume, obs, and xp parity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.obs import collect_spans, registry
from repro.tune import (
    ParamSpace,
    TuneConfig,
    TunePoint,
    run_tune,
    space,
)
from repro.tune.objective import EvalIdentity, evaluate_with_session

TINY_SPACE = ParamSpace(
    {"num_pes": (1024, 2048), "pe_buffer_bytes": (256, 512)}, name="tiny4"
)


def tiny_config(store, **overrides) -> TuneConfig:
    base = dict(
        suite="tiny",
        store_root=store,
        include_seeds=False,
        report=False,
        processes=2,
    )
    base.update(overrides)
    return TuneConfig(**base)


class TestConfig:
    def test_rejects_unknown_knobs(self):
        with pytest.raises(ConfigError):
            TuneConfig(strategy="exhaustive")
        with pytest.raises(ConfigError):
            TuneConfig(suite="imaginary")
        with pytest.raises(ConfigError):
            TuneConfig(budget=0)
        with pytest.raises(ConfigError):
            TuneConfig(eta=1)


class TestGrid:
    def test_sweeps_every_point_and_fronts(self, tmp_path):
        result = run_tune(TINY_SPACE, tiny_config(tmp_path))
        assert result.ok
        assert len(result.entries) == 4
        assert result.executed == 4 and result.cached == 0
        assert result.front  # something is non-dominated
        assert result.anchor is not None and result.anchor.ok
        assert 0.0 <= result.hypervolume <= 1.0
        # The buffer trade must keep >= 2 incomparable designs alive.
        assert len(result.front) >= 2

    def test_budget_truncates_but_keeps_anchor(self, tmp_path):
        result = run_tune(TINY_SPACE, tiny_config(tmp_path, budget=2))
        assert len(result.entries) == 2
        assert result.anchor is not None

    def test_resume_reexecutes_nothing(self, tmp_path):
        cold = run_tune(TINY_SPACE, tiny_config(tmp_path))
        warm = run_tune(TINY_SPACE, tiny_config(tmp_path, resume=True))
        assert warm.executed == 0
        assert warm.cached == len(warm.entries) == len(cold.entries)
        # Identical fronts from identical (cached) numbers.
        assert [e.point for e in warm.front_entries()] == [
            e.point for e in cold.front_entries()
        ]

    def test_force_invalidates(self, tmp_path):
        run_tune(TINY_SPACE, tiny_config(tmp_path))
        forced = run_tune(
            TINY_SPACE, tiny_config(tmp_path, resume=True, force=True)
        )
        assert forced.executed == len(forced.entries)

    def test_record_shape(self, tmp_path):
        result = run_tune(TINY_SPACE, tiny_config(tmp_path))
        record = result.record()
        assert record["points"] == 4
        assert record["front_size"] == len(result.front)
        assert record["anchor"]["params"] == TunePoint().params()
        for row in record["front"]:
            assert {"cycles", "energy_j", "area_mm2", "edp"} <= set(row)


class TestRandom:
    def test_seeded_sample_is_deterministic(self, tmp_path):
        cfg = tiny_config(tmp_path, strategy="random", budget=3, seed=7)
        a = run_tune(TINY_SPACE, cfg)
        b = run_tune(TINY_SPACE, tiny_config(
            tmp_path, strategy="random", budget=3, seed=7, resume=True))
        assert [e.point for e in a.entries] == [e.point for e in b.entries]
        assert len(a.entries) == 3
        assert a.entries[0].is_anchor  # anchor always swept first
        assert b.executed == 0  # same sample -> all cache hits


class TestHalving:
    def test_prunes_then_confirms_at_cycle_fidelity(self, tmp_path):
        result = run_tune(
            TINY_SPACE, tiny_config(tmp_path, strategy="halving")
        )
        assert result.ok
        assert result.pruned > 0
        survivors = [e for e in result.entries if not e.pruned]
        assert all(e.fidelity == "cycle" for e in survivors)
        pruned = [e for e in result.entries if e.pruned]
        assert all(e.fidelity == "analytical" for e in pruned)
        # The anchor survives pruning by construction.
        assert result.anchor is not None and not result.anchor.pruned
        # The front is drawn over confirmed entries only.
        assert all(not result.entries[i].pruned for i in result.front)

    def test_emits_prune_span(self, tmp_path):
        with collect_spans() as spans:
            run_tune(TINY_SPACE, tiny_config(
                tmp_path, strategy="halving", processes=1))
        assert "tune.prune" in spans.summary()


class TestObs:
    def test_outcome_counters(self, tmp_path):
        counter = registry().counter("repro_tune_points_total")
        swept0 = counter.value(outcome="swept")
        hits0 = counter.value(outcome="cache_hit")
        run_tune(TINY_SPACE, tiny_config(tmp_path, processes=1))
        assert counter.value(outcome="swept") == swept0 + 4
        run_tune(TINY_SPACE, tiny_config(tmp_path, resume=True, processes=1))
        assert counter.value(outcome="cache_hit") == hits0 + 4

    def test_evaluate_span_in_serial_runs(self, tmp_path):
        with collect_spans() as spans:
            run_tune(TINY_SPACE, tiny_config(tmp_path, processes=1))
        summary = spans.summary()
        assert "tune.evaluate" in summary
        assert summary["tune.evaluate"]["count"] == 4


class TestReport:
    def test_writes_pareto_page(self, tmp_path):
        result = run_tune(
            TINY_SPACE,
            tiny_config(tmp_path / "store", out_dir=tmp_path, report=True),
        )
        page = tmp_path / "xp" / "tune_pareto.md"
        assert page.is_file()
        text = page.read_text()
        assert "Pareto front" in text
        assert "paper_default" in text
        assert str(len(result.front)) in text


class TestXpParity:
    """Satellite: ablation-seeded cells are shared, never recomputed."""

    def test_xp_run_preseeds_the_tuner(self, tmp_path):
        from repro.xp import RunConfig, run_experiments

        summary = run_experiments(
            ["tune_grid"],
            RunConfig(store_root=tmp_path, out_dir=tmp_path / "out",
                      report=False, record=False),
        )
        assert summary.ok and summary.executed_cells > 0
        # Tune over exactly the seed points: every cell is already there.
        result = run_tune(
            space("paper_default"),
            TuneConfig(store_root=tmp_path, resume=True, include_seeds=True,
                       report=False),
        )
        assert len(result.entries) == summary.total_cells
        assert result.executed == 0
        assert result.cached == len(result.entries)

    def test_tuner_preseeds_xp_resume(self, tmp_path):
        from repro.xp import RunConfig, run_experiments

        result = run_tune(
            space("paper_default"),
            TuneConfig(store_root=tmp_path, include_seeds=True, report=False),
        )
        assert result.ok and result.executed == len(result.entries)
        summary = run_experiments(
            ["tune_grid"],
            RunConfig(store_root=tmp_path, out_dir=tmp_path / "out",
                      report=False, record=False, resume=True),
        )
        assert summary.ok
        assert summary.executed_cells == 0
        assert summary.cached_cells == len(result.entries)

    def test_identity_matches_registered_experiment(self):
        from repro.xp.registry import load_paper_suite, get_experiment

        load_paper_suite()
        exp = get_experiment("tune_grid")
        identity = EvalIdentity()
        assert exp.name == identity.name
        assert exp.version == identity.version
        # The experiment's measure fn IS the tuner objective.
        assert exp.measure.__module__ == "repro.xp.paper"
        import inspect

        assert "evaluate_with_session" in inspect.getsource(exp.measure)


class TestObjective:
    def test_evaluation_is_deterministic(self, tmp_path):
        from repro.api.session import Session

        params = {
            "point": TunePoint(num_pes=1024).params(),
            "suite": "tiny",
            "fidelity": "analytical",
        }
        with Session("local") as session:
            a = evaluate_with_session(session, params)
            b = evaluate_with_session(session, params)
        assert a == b
        assert a["cycles"] > 0 and a["energy_j"] > 0 and a["area_mm2"] > 0

    def test_tech_node_scales_area_and_energy(self, tmp_path):
        from repro.api.session import Session

        with Session("local") as session:
            at28 = evaluate_with_session(session, {
                "point": TunePoint().params(),
                "suite": "tiny", "fidelity": "analytical"})
            at14 = evaluate_with_session(session, {
                "point": TunePoint(tech_node_nm=14).params(),
                "suite": "tiny", "fidelity": "analytical"})
        assert at14["area_mm2"] == pytest.approx(at28["area_mm2"] / 4)
        assert at14["cycles"] == at28["cycles"]  # node is cost, not timing
        assert at14["energy_j"] < at28["energy_j"]
