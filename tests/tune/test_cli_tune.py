"""The ``repro tune`` command-line surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    @pytest.mark.parametrize(
        "argv",
        [
            ["tune", "--smoke"],
            ["tune", "--space", "full", "--suite", "tableiii"],
            ["tune", "--strategy", "halving", "--budget", "16", "--seed", "3"],
            ["tune", "--resume", "--force", "--no-seeds", "--serial"],
            ["tune", "--backend", "tcp://127.0.0.1:7342", "--json"],
            ["tune", "--store", "s", "--out", "o", "--top", "5",
             "--no-report"],
        ],
    )
    def test_argv_parses(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)

    def test_rejects_unknown_space_and_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--space", "galactic"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--strategy", "bayesian"])


class TestExecution:
    def test_anchor_only_sweep(self, tmp_path, capsys):
        rc = main([
            "tune", "--space", "paper_default", "--suite", "tiny",
            "--no-seeds", "--serial", "--store", str(tmp_path / "store"),
            "--out", str(tmp_path / "out"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "swept 1 configs" in out
        assert "anchor paper_default" in out
        assert "on the front" in out  # a lone anchor is trivially the front
        assert "report:" in out
        assert (tmp_path / "out" / "xp" / "tune_pareto.md").is_file()

    def test_json_record_and_resume(self, tmp_path, capsys):
        argv = [
            "tune", "--space", "paper_default", "--suite", "tiny",
            "--no-seeds", "--serial", "--store", str(tmp_path),
            "--no-report", "--json",
        ]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["ok"] and cold["points"] == 1
        assert cold["executed"] == 1 and cold["cached"] == 0
        assert cold["anchor"] is not None
        assert cold["front_size"] >= 1

        assert main(argv + ["--resume"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["executed"] == 0
        assert warm["cached"] == warm["points"] == 1
        # Same numbers from cache; only provenance ("cached") differs.
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "cached"} for r in rows
        ]
        assert strip(warm["front"]) == strip(cold["front"])
