"""Pareto-front extraction and the hypervolume summary."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune.pareto import (
    dominated_counts,
    dominates,
    hypervolume_fraction,
    pareto_front,
)

OBJS = ("cycles", "energy_j", "area_mm2")


def row(c, e, a):
    return {"cycles": c, "energy_j": e, "area_mm2": a}


class TestDominates:
    def test_strict_domination(self):
        assert dominates(row(1, 1, 1), row(2, 2, 2))
        assert dominates(row(1, 1, 1), row(1, 1, 2))

    def test_equal_rows_do_not_dominate(self):
        assert not dominates(row(1, 1, 1), row(1, 1, 1))

    def test_trade_off_is_incomparable(self):
        assert not dominates(row(1, 2, 1), row(2, 1, 1))
        assert not dominates(row(2, 1, 1), row(1, 2, 1))


class TestFront:
    def test_single_row_is_the_front(self):
        assert pareto_front([row(1, 1, 1)]) == [0]

    def test_dominated_rows_excluded(self):
        rows = [row(1, 1, 1), row(2, 2, 2), row(1, 2, 0.5)]
        assert pareto_front(rows) == [0, 2]

    def test_duplicates_all_kept(self):
        rows = [row(1, 1, 1), row(1, 1, 1), row(3, 3, 3)]
        assert pareto_front(rows) == [0, 1]

    def test_dominated_counts(self):
        rows = [row(1, 1, 1), row(2, 2, 2), row(3, 3, 3)]
        assert dominated_counts(rows) == [2, 1, 0]


rows_strategy = st.lists(
    st.tuples(
        st.integers(1, 1000),
        st.floats(1e-6, 1.0, allow_nan=False),
        st.floats(0.1, 100.0, allow_nan=False),
    ).map(lambda t: row(*t)),
    min_size=1,
    max_size=24,
)


class TestFrontProperties:
    @settings(max_examples=50)
    @given(rows=rows_strategy)
    def test_front_is_never_empty(self, rows):
        front = pareto_front(rows)
        assert front
        # Front members never dominate each other.
        members = [rows[i] for i in front]
        for i, a in enumerate(members):
            for j, b in enumerate(members):
                if i != j:
                    assert not dominates(a, b)

    @settings(max_examples=50)
    @given(rows=rows_strategy)
    def test_non_front_rows_are_dominated(self, rows):
        front = set(pareto_front(rows))
        for i, r in enumerate(rows):
            if i not in front:
                assert any(dominates(rows[j], r) for j in front)


class TestHypervolume:
    def test_empty_is_zero(self):
        assert hypervolume_fraction([]) == 0.0

    def test_single_point_covers_everything(self):
        # One row min-max normalizes to the origin, dominating the box.
        assert hypervolume_fraction([row(1, 1, 1)]) == 1.0

    def test_deterministic(self):
        rows = [row(1, 2, 3), row(3, 2, 1), row(2, 2, 2)]
        assert hypervolume_fraction(rows) == hypervolume_fraction(rows)

    def test_better_front_more_volume(self):
        # A front that reaches the normalized corner covers more than a
        # single mid-box compromise.
        weak = [row(1, 10.0, 10.0), row(10, 1.0, 1.0)]
        strong = weak + [row(1, 1.0, 1.0)]
        assert hypervolume_fraction(strong) > hypervolume_fraction(weak)

    def test_bounded(self):
        rows = [row(1, 2, 3), row(3, 1, 2), row(2, 3, 1)]
        assert 0.0 <= hypervolume_fraction(rows) <= 1.0
