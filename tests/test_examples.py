"""Examples stay runnable: compile all, smoke-run the quickstart.

CI runs every example headlessly (the examples-smoke job, with
``REPRO_EXAMPLE_SMOKE=1`` shrinking problem sizes); here we keep a cheap
tier-1 guard so facade drift breaks the local test run too, not only the
docs job.
"""

from __future__ import annotations

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) == 7


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path: Path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_headless(tmp_path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SMOKE"] = "1"
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(ROOT / "examples" / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "SAGE decision" in proc.stdout
    assert "output verified" in proc.stdout
