"""Packaging metadata: the ``repro`` console script and version plumbing."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main

ROOT = Path(__file__).resolve().parent.parent

if sys.version_info >= (3, 11):
    import tomllib
else:  # pragma: no cover - 3.10 fallback
    tomllib = None


@pytest.fixture(scope="module")
def pyproject() -> dict:
    path = ROOT / "pyproject.toml"
    if tomllib is None:
        pytest.skip("tomllib needs Python >= 3.11")
    return tomllib.loads(path.read_text())


class TestConsoleScript:
    def test_entry_point_declared(self, pyproject):
        assert pyproject["project"]["scripts"]["repro"] == "repro.cli:main"

    def test_entry_point_resolves(self):
        # The declared target must be exactly the callable we test below.
        import repro.cli

        assert repro.cli.main is main

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_is_dynamic_from_package(self, pyproject):
        assert "version" in pyproject["project"]["dynamic"]
        attr = pyproject["tool"]["setuptools"]["dynamic"]["version"]["attr"]
        assert attr == "repro.__version__"

    def test_packages_found_under_src(self, pyproject):
        assert pyproject["tool"]["setuptools"]["packages"]["find"]["where"] == [
            "src"
        ]
