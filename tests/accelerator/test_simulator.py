"""Cycle-level simulator: functional correctness and report invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.errors import SimulationError
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import Format
from tests.accelerator.fig6 import fig6_stationary, fig6_streamed
from tests.conftest import make_sparse

ENCODERS = {
    Format.DENSE: DenseMatrix,
    Format.CSR: CsrMatrix,
    Format.COO: CooMatrix,
    Format.CSC: CscMatrix,
}


def run(sim, a_dense, b_dense, acf_a, acf_b):
    a = ENCODERS[acf_a].from_dense(a_dense)
    b = (
        CscMatrix.from_dense(b_dense)
        if acf_b is Format.CSC
        else DenseMatrix.from_dense(b_dense)
    )
    return sim.run_gemm(a, acf_a, b, acf_b)


class TestWalkthrough:
    @pytest.fixture
    def sim(self):
        return WeightStationarySimulator(AcceleratorConfig.walkthrough())

    @pytest.mark.parametrize("acf_a", list(ENCODERS))
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    def test_output_is_matmul(self, sim, acf_a, acf_b):
        a, b = fig6_streamed(), fig6_stationary()
        out, _ = run(sim, a, b, acf_a, acf_b)
        assert np.allclose(out, a @ b)

    def test_stream_cycles_fig6(self, sim):
        a = fig6_streamed()
        assert sim.stream_cycles_only(DenseMatrix.from_dense(a), Format.DENSE) == 8
        assert sim.stream_cycles_only(CsrMatrix.from_dense(a), Format.CSR) == 3
        assert sim.stream_cycles_only(CooMatrix.from_dense(a), Format.COO) == 4

    def test_sparse_acf_streams_fewer_cycles(self, sim):
        a, b = fig6_streamed(), fig6_stationary()
        _, dense_rep = run(sim, a, b, Format.DENSE, Format.DENSE)
        _, csr_rep = run(sim, a, b, Format.CSR, Format.DENSE)
        assert csr_rep.cycles.stream_cycles < dense_rep.cycles.stream_cycles

    def test_csc_stationary_uses_less_buffer_load(self, sim):
        """CSC(B) loads 2*nnz entries; Dense(B) loads all K*N slots."""
        a, b = fig6_streamed(), fig6_stationary()
        _, dense_rep = run(sim, a, b, Format.CSR, Format.DENSE)
        _, csc_rep = run(sim, a, b, Format.CSR, Format.CSC)
        assert csc_rep.energy.load_j < dense_rep.energy.load_j


class TestRandomizedCorrectness:
    @pytest.mark.parametrize("acf_a", list(ENCODERS))
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    @pytest.mark.parametrize("density", [0.0, 0.15, 0.6, 1.0])
    def test_output_matches_numpy(self, acf_a, acf_b, density, rng):
        a = make_sparse(rng, (8, 11), density)
        b = make_sparse(rng, (11, 5), density if density else 0.5)
        cfg = AcceleratorConfig(
            num_pes=3, vector_lanes=2, pe_buffer_bytes=6 * 4, bus_bits=7 * 32
        )
        out, rep = run(WeightStationarySimulator(cfg), a, b, acf_a, acf_b)
        assert np.allclose(out, a @ b)
        assert rep.cycles.matched_macs <= max(rep.cycles.issued_macs, 1)

    def test_tiling_engaged_for_tall_stationary(self, rng):
        a = make_sparse(rng, (4, 40), 0.3)
        b = make_sparse(rng, (40, 3), 0.3)
        cfg = AcceleratorConfig(
            num_pes=2, vector_lanes=2, pe_buffer_bytes=8 * 4, bus_bits=8 * 32
        )
        out, rep = run(WeightStationarySimulator(cfg), a, b, Format.CSR, Format.DENSE)
        assert rep.cycles.k_tiles >= 5  # 40 rows / 8-entry buffer
        assert np.allclose(out, a @ b)

    def test_rounds_engaged_for_wide_output(self, rng):
        a = make_sparse(rng, (5, 6), 0.4)
        b = make_sparse(rng, (6, 9), 0.4)
        cfg = AcceleratorConfig(
            num_pes=2, vector_lanes=2, pe_buffer_bytes=8 * 4, bus_bits=8 * 32
        )
        out, rep = run(WeightStationarySimulator(cfg), a, b, Format.COO, Format.DENSE)
        assert rep.cycles.rounds == 5  # ceil(9 / 2)
        assert np.allclose(out, a @ b)


class TestReportInvariants:
    def test_dense_dense_issues_mkn_macs(self, rng):
        a = make_sparse(rng, (4, 6), 0.3)
        b = make_sparse(rng, (6, 5), 0.3)
        sim = WeightStationarySimulator(
            AcceleratorConfig(num_pes=8, pe_buffer_bytes=64, bus_bits=512)
        )
        _, rep = run(sim, a, b, Format.DENSE, Format.DENSE)
        assert rep.cycles.issued_macs == 4 * 6 * 5

    def test_sparse_acfs_issue_only_matches(self, rng):
        a = make_sparse(rng, (6, 7), 0.2)
        b = make_sparse(rng, (7, 4), 0.2)
        sim = WeightStationarySimulator(
            AcceleratorConfig(num_pes=8, pe_buffer_bytes=64, bus_bits=512)
        )
        _, rep = run(sim, a, b, Format.CSR, Format.CSC)
        assert rep.cycles.issued_macs == rep.cycles.matched_macs

    def test_energy_components_nonnegative(self, rng):
        a = make_sparse(rng, (5, 5), 0.4)
        b = make_sparse(rng, (5, 5), 0.4)
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        _, rep = run(sim, a, b, Format.COO, Format.CSC)
        e = rep.energy
        for v in (e.noc_j, e.load_j, e.buffer_j, e.compare_j, e.mac_j, e.output_j):
            assert v >= 0.0
        assert rep.edp >= 0.0

    def test_total_cycles_covers_io_and_compute(self, rng):
        a = make_sparse(rng, (5, 5), 0.5)
        b = make_sparse(rng, (5, 5), 0.5)
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        _, rep = run(sim, a, b, Format.DENSE, Format.DENSE)
        c = rep.cycles
        assert c.total_cycles >= c.io_cycles
        assert c.total_cycles >= c.compute_cycles

    def test_empty_operand(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        out, rep = run(sim, a, b, Format.CSR, Format.CSC)
        assert np.array_equal(out, np.zeros((4, 4)))
        assert rep.cycles.stream_cycles == 0


class TestValidation:
    def test_rejects_unsupported_acfs(self, small_matrix):
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        enc = CsrMatrix.from_dense(small_matrix)
        b = DenseMatrix.from_dense(np.ones((small_matrix.shape[1], 2)))
        with pytest.raises(SimulationError):
            sim.run_gemm(enc, Format.BSR, b, Format.DENSE)
        with pytest.raises(SimulationError):
            sim.run_gemm(enc, Format.CSR, b, Format.CSR)

    def test_rejects_mismatched_encoding(self, small_matrix):
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        enc = CsrMatrix.from_dense(small_matrix)
        b = DenseMatrix.from_dense(np.ones((small_matrix.shape[1], 2)))
        with pytest.raises(SimulationError):
            sim.run_gemm(enc, Format.COO, b, Format.DENSE)

    def test_rejects_inner_dim_mismatch(self, rng):
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        a = CsrMatrix.from_dense(make_sparse(rng, (3, 4), 0.5))
        b = DenseMatrix.from_dense(np.ones((5, 2)))
        with pytest.raises(SimulationError):
            sim.run_gemm(a, Format.CSR, b, Format.DENSE)
