"""Identity-keyed stationary preparation memo (`scheduler.prepare_stationary`).

The zero-copy operand plane hands every job of a batch the *same*
read-only view of a shared stationary operand; preparing the PE-buffer
layout and searching the minimal K-tiling are pure functions of those
buffers, so they memoize on buffer identity.  These tests pin the
eligibility rules (read-only buffers only), result equality, and the
weakref-based eviction that keeps ``id()`` reuse from resurrecting a
dead key.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.accelerator.scheduler import (
    _STATIONARY_MEMO,
    _STATIONARY_MEMO_MAX,
    compute_k_tiles,
    prepare_stationary,
)
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format
from tests.conftest import make_sparse


@pytest.fixture(autouse=True)
def _clean_memo():
    _STATIONARY_MEMO.clear()
    yield
    _STATIONARY_MEMO.clear()


def _frozen_dense(rng, shape=(40, 12)) -> DenseMatrix:
    b = DenseMatrix.from_dense(make_sparse(rng, shape, 0.5))
    b.values.flags.writeable = False
    return b


class TestEligibility:
    def test_frozen_operand_hits_on_second_call(self, rng):
        b = _frozen_dense(rng)
        first = prepare_stationary(b, Format.DENSE, 16)
        second = prepare_stationary(b, Format.DENSE, 16)
        assert second[0] is first[0]  # same prepared operand object
        assert second[1] is first[1]  # same tiling
        assert len(_STATIONARY_MEMO) == 1

    def test_writeable_operand_never_memoizes(self, rng):
        b = DenseMatrix.from_dense(make_sparse(rng, (40, 12), 0.5))
        first = prepare_stationary(b, Format.DENSE, 16)
        second = prepare_stationary(b, Format.DENSE, 16)
        assert second[0] is not first[0]
        assert not _STATIONARY_MEMO

    def test_cached_preparation_is_frozen(self, rng):
        stationary, _tiles = prepare_stationary(
            _frozen_dense(rng), Format.DENSE, 16
        )
        assert not stationary.values.flags.writeable
        assert not stationary.stored.flags.writeable

    def test_capacity_is_part_of_the_key(self, rng):
        b = _frozen_dense(rng)
        _, tiles_small = prepare_stationary(b, Format.DENSE, 8)
        _, tiles_large = prepare_stationary(b, Format.DENSE, 1 << 16)
        assert len(tiles_small) > len(tiles_large)
        assert len(_STATIONARY_MEMO) == 2


class TestEquality:
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    def test_memoized_matches_uncached(self, rng, acf_b):
        dense = make_sparse(rng, (40, 12), 0.4)
        cls = CscMatrix if acf_b is Format.CSC else DenseMatrix
        frozen = cls.from_dense(dense)
        for arr in vars(frozen).values():
            if isinstance(arr, np.ndarray):
                arr.flags.writeable = False
        plain = cls.from_dense(dense)
        prepare_stationary(frozen, acf_b, 16)  # populate
        stationary, tiles = prepare_stationary(frozen, acf_b, 16)  # hit
        reference, ref_tiles = prepare_stationary(plain, acf_b, 16)
        assert np.array_equal(stationary.values, reference.values)
        assert np.array_equal(stationary.stored, reference.stored)
        assert tiles == ref_tiles == compute_k_tiles(plain, acf_b, 16)

    def test_run_gemm_identical_with_and_without_memo(self, rng):
        a_dense = make_sparse(rng, (8, 40), 0.3)
        b_dense = make_sparse(rng, (40, 12), 0.4)
        a = CsrMatrix.from_dense(a_dense)
        frozen = DenseMatrix.from_dense(b_dense)
        frozen.values.flags.writeable = False
        plain = DenseMatrix.from_dense(b_dense)
        sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
        sim.run_gemm(a, Format.CSR, frozen, Format.DENSE)  # populate
        out_hit, rep_hit = sim.run_gemm(a, Format.CSR, frozen, Format.DENSE)
        out_ref, rep_ref = sim.run_gemm(a, Format.CSR, plain, Format.DENSE)
        assert np.array_equal(out_hit, out_ref)
        assert rep_hit == rep_ref


class TestLifecycle:
    def test_entry_evicted_when_buffers_die(self, rng):
        b = _frozen_dense(rng)
        prepare_stationary(b, Format.DENSE, 16)
        assert len(_STATIONARY_MEMO) == 1
        del b
        gc.collect()
        assert not _STATIONARY_MEMO

    def test_fifo_cap_bounds_resident_entries(self, rng):
        operands = [_frozen_dense(rng) for _ in range(_STATIONARY_MEMO_MAX + 2)]
        for b in operands:
            prepare_stationary(b, Format.DENSE, 16)
        assert len(_STATIONARY_MEMO) == _STATIONARY_MEMO_MAX
