"""Streaming-protocol / stationary-layout registries and the two engines.

Covers the pluggable dispatch that replaced the seed's hard-coded format
tuples: registry lookups and their error messages, the ELL protocol
end-to-end, vectorized-vs-reference engine equivalence, the
``simulate_many`` batch API, and dynamic registration of a new protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.accelerator import simulator as simulator_module
from repro.accelerator.protocols import (
    MATRIX_STREAM_PROTOCOLS,
    STATIONARY_LAYOUTS,
    StationaryOperand,
    StreamProtocol,
    register_stationary_layout,
    register_stream_protocol,
    stationary_formats,
    stationary_layout_for,
    stream_protocol_for,
    streamable_formats,
)
from repro.accelerator.stream import StreamSpec
from repro.errors import SimulationError
from repro.formats import CscMatrix, CsrMatrix, DenseMatrix, EllMatrix
from repro.formats.registry import Format, matrix_class
from tests.conftest import make_sparse


@pytest.fixture
def sim():
    return WeightStationarySimulator(AcceleratorConfig.walkthrough())


class TestRegistryLookups:
    def test_streamable_includes_seed_acfs_and_ell(self):
        fmts = streamable_formats()
        for fmt in (Format.DENSE, Format.CSR, Format.CSC, Format.COO,
                    Format.ELL):
            assert fmt in fmts

    def test_stationary_formats(self):
        assert set(stationary_formats()) == {Format.DENSE, Format.CSC}

    def test_unregistered_stream_lookup_names_registered(self):
        with pytest.raises(SimulationError) as err:
            stream_protocol_for(Format.RLC)
        message = str(err.value)
        assert "RLC" in message and "registered" in message
        assert "CSR" in message and "ELL" in message

    def test_unregistered_stationary_lookup_names_registered(self):
        with pytest.raises(SimulationError) as err:
            stationary_layout_for(Format.BSR)
        message = str(err.value)
        assert "BSR" in message and "CSC" in message and "Dense" in message

    def test_spec_only_tensor_protocol_cannot_extract(self, small_matrix):
        proto = stream_protocol_for(Format.CSF, tensor=True)
        assert not proto.streamable
        with pytest.raises(SimulationError) as err:
            proto.extract_entries(DenseMatrix.from_dense(small_matrix), 0, 2)
        assert "slot costs only" in str(err.value)

    def test_wrong_operand_class_rejected(self, small_matrix):
        proto = stream_protocol_for(Format.CSR)
        with pytest.raises(SimulationError) as err:
            proto.extract_entries(DenseMatrix.from_dense(small_matrix), 0, 2)
        assert "CsrMatrix" in str(err.value)

    def test_seed_module_constants_derive_from_registries(self):
        assert simulator_module.STREAMED_ACFS == streamable_formats()
        assert simulator_module.STATIONARY_ACFS == stationary_formats()


class TestEllEndToEnd:
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    @pytest.mark.parametrize("density", [0.05, 0.4, 1.0])
    def test_run_gemm_matches_numpy(self, sim, rng, acf_b, density):
        a_dense = make_sparse(rng, (9, 11), density)
        b_dense = make_sparse(rng, (11, 6), 0.5)
        a = EllMatrix.from_dense(a_dense)
        b_cls = CscMatrix if acf_b is Format.CSC else DenseMatrix
        out, report = sim.run_gemm(a, Format.ELL, b_cls.from_dense(b_dense),
                                   acf_b)
        np.testing.assert_allclose(out, a_dense @ b_dense)
        assert report.cycles.total_cycles > 0

    def test_padding_slots_cost_cycles_but_no_macs(self, sim):
        # One long row forces heavy ELL padding on the others: ELL must
        # stream more cycles than CSR but issue the same matched MACs.
        a_dense = np.zeros((4, 8))
        a_dense[0, :6] = 1.0
        a_dense[1, 0] = a_dense[2, 3] = a_dense[3, 7] = 2.0
        b = DenseMatrix.from_dense(np.ones((8, 3)))
        _, rep_ell = sim.run_gemm(
            EllMatrix.from_dense(a_dense), Format.ELL, b, Format.DENSE
        )
        _, rep_csr = sim.run_gemm(
            CsrMatrix.from_dense(a_dense), Format.CSR, b, Format.DENSE
        )
        assert rep_ell.cycles.stream_cycles > rep_csr.cycles.stream_cycles
        assert rep_ell.cycles.matched_macs == rep_csr.cycles.matched_macs


class TestEngineEquivalence:
    @pytest.mark.parametrize("acf_a", [Format.DENSE, Format.CSR, Format.CSC,
                                       Format.COO, Format.ELL])
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    def test_reports_identical(self, sim, rng, acf_a, acf_b):
        a_dense = make_sparse(rng, (8, 10), 0.3)
        b_dense = make_sparse(rng, (10, 5), 0.4)
        a = matrix_class(acf_a).from_dense(a_dense)
        b_cls = CscMatrix if acf_b is Format.CSC else DenseMatrix
        b = b_cls.from_dense(b_dense)
        out_v, rep_v = sim.run_gemm(a, acf_a, b, acf_b, engine="vectorized")
        out_r, rep_r = sim.run_gemm(a, acf_a, b, acf_b, engine="reference")
        np.testing.assert_allclose(out_v, out_r)
        assert rep_v.cycles == rep_r.cycles
        assert rep_v.energy == rep_r.energy

    def test_unknown_engine_rejected(self, sim, small_matrix):
        a = CsrMatrix.from_dense(small_matrix)
        b = DenseMatrix.from_dense(np.ones((small_matrix.shape[1], 2)))
        with pytest.raises(SimulationError):
            sim.run_gemm(a, Format.CSR, b, Format.DENSE, engine="quantum")


class TestSimulateMany:
    def _jobs(self, rng, count=5):
        jobs = []
        for index in range(count):
            a_dense = make_sparse(rng, (6 + index, 8), 0.3)
            b_dense = make_sparse(rng, (8, 4), 0.5)
            acf_a = (Format.CSR, Format.DENSE, Format.COO, Format.ELL,
                     Format.CSC)[index % 5]
            jobs.append((
                matrix_class(acf_a).from_dense(a_dense), acf_a,
                DenseMatrix.from_dense(b_dense), Format.DENSE,
            ))
        return jobs

    def test_matches_sequential_in_order(self, sim, rng):
        jobs = self._jobs(rng)
        batch = sim.simulate_many(jobs, processes=2)
        assert len(batch) == len(jobs)
        for job, (out, report) in zip(jobs, batch):
            out_seq, rep_seq = sim.run_gemm(*job)
            np.testing.assert_allclose(out, out_seq)
            assert report == rep_seq

    def test_sequential_degradation(self, sim, rng):
        jobs = self._jobs(rng, count=2)
        batch = sim.simulate_many(jobs, processes=1)
        for job, (out, _report) in zip(jobs, batch):
            np.testing.assert_allclose(out, sim.run_gemm(*job)[0])

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_transports_bit_identical_to_sequential(
        self, sim, rng, transport, monkeypatch
    ):
        # The zero-copy operand plane must change how operands travel,
        # never what comes back: outputs bit-for-bit, reports equal.
        # REPRO_SHM_MIN_BYTES=1 pushes even these small operands through
        # shared segments so the shm path is genuinely exercised.
        from repro.util import shm as shm_mod

        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1")
        jobs = self._jobs(rng)
        batch = sim.simulate_many(jobs, processes=2, transport=transport)
        seq = sim.simulate_many(jobs, processes=1)
        for (out, report), (out_seq, rep_seq) in zip(batch, seq):
            assert np.array_equal(out, out_seq)  # bit-identical, not close
            assert report == rep_seq
        assert shm_mod.active_operand_segments() == []


class TestDynamicRegistration:
    def test_new_stream_protocol_reaches_run_gemm(self, sim, rng):
        # Registering a protocol is all a format needs to stream: plug a
        # BSR extractor in (via its dense view), run it end-to-end, then
        # restore the registry.
        assert Format.BSR not in MATRIX_STREAM_PROTOCOLS

        @register_stream_protocol(
            Format.BSR,
            spec=StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
        )
        def _extract_bsr(a, lo, hi):
            dense = a.to_dense()[:, lo:hi]
            i, k = np.nonzero(dense)
            return (
                i.astype(np.int64),
                (k + lo).astype(np.int64),
                dense[i, k],
                np.bincount(i, minlength=dense.shape[0]).astype(np.int64),
            )

        try:
            assert Format.BSR in streamable_formats()
            a_dense = make_sparse(rng, (8, 8), 0.4)
            b_dense = make_sparse(rng, (8, 3), 0.5)
            a = matrix_class(Format.BSR).from_dense(a_dense)
            out, _report = sim.run_gemm(
                a, Format.BSR, DenseMatrix.from_dense(b_dense), Format.DENSE
            )
            np.testing.assert_allclose(out, a_dense @ b_dense)
        finally:
            del MATRIX_STREAM_PROTOCOLS._table[Format.BSR]
        assert Format.BSR not in MATRIX_STREAM_PROTOCOLS

    def test_new_stationary_layout_reaches_run_gemm(self, sim, rng):
        assert Format.ELL not in STATIONARY_LAYOUTS

        @register_stationary_layout(Format.ELL, entry_cost=2,
                                    matcher="metadata")
        def _prepare_ell(b) -> StationaryOperand:
            values = b.to_dense()
            return StationaryOperand(values=values, stored=values != 0.0)

        try:
            a_dense = make_sparse(rng, (6, 7), 0.4)
            b_dense = make_sparse(rng, (7, 4), 0.5)
            out, _report = sim.run_gemm(
                CsrMatrix.from_dense(a_dense), Format.CSR,
                EllMatrix.from_dense(b_dense), Format.ELL,
            )
            np.testing.assert_allclose(out, a_dense @ b_dense)
        finally:
            del STATIONARY_LAYOUTS._table[Format.ELL]

    def test_spec_only_registration_is_not_streamable(self):
        proto = StreamProtocol(
            Format.RLC, StreamSpec(entry_slots=2, shared_slots=0,
                                   grouped=False)
        )
        MATRIX_STREAM_PROTOCOLS.register(proto)
        try:
            assert Format.RLC not in streamable_formats()
            assert stream_protocol_for(Format.RLC) is proto
        finally:
            del MATRIX_STREAM_PROTOCOLS._table[Format.RLC]
