"""The Fig. 6 walkthrough operands, shared by several test modules."""

from __future__ import annotations

import numpy as np


def fig6_streamed() -> np.ndarray:
    """Matrix A of Fig. 6 (4 x 8): A@(0,0), B@(0,2), C@(0,4), H@(3,5)."""
    a = np.zeros((4, 8))
    a[0, 0], a[0, 2], a[0, 4], a[3, 5] = 1.0, 2.0, 3.0, 4.0
    return a


def fig6_stationary() -> np.ndarray:
    """Matrix B of Fig. 6 (8 x 4): lowercase a-h, one column per PE."""
    b = np.zeros((8, 4))
    entries = [
        (0, 0, 1.0),  # a
        (0, 1, 2.0),  # d
        (2, 0, 3.0),  # b
        (3, 2, 4.0),  # f
        (4, 0, 5.0),  # c
        (5, 2, 6.0),  # g
        (5, 3, 7.0),  # h
        (7, 1, 8.0),  # e
    ]
    for r, c, v in entries:
        b[r, c] = v
    return b
