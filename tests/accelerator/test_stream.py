"""Beat packing: the Fig. 6 pins and the packer's invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.stream import (
    StreamSpec,
    stream_beats,
    stream_cycle_count,
    stream_cycles_estimate,
    stream_spec_for,
)
from repro.errors import SimulationError
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import Format
from tests.accelerator.fig6 import fig6_streamed
from tests.conftest import make_sparse


class TestFig6Pins:
    """Sec. IV-B: 'Fig 6a,b,c require 8, 3, and 4 cycles to send matrix A'."""

    @pytest.fixture
    def bus(self):
        return AcceleratorConfig.walkthrough().bus_slots  # 5 slots

    def test_dense_takes_8_cycles(self, bus):
        beats = list(
            stream_beats(DenseMatrix.from_dense(fig6_streamed()), Format.DENSE, bus)
        )
        assert sum(b.cycles for b in beats) == 8

    def test_csr_takes_3_cycles(self, bus):
        beats = list(
            stream_beats(CsrMatrix.from_dense(fig6_streamed()), Format.CSR, bus)
        )
        assert sum(b.cycles for b in beats) == 3

    def test_coo_takes_4_cycles(self, bus):
        beats = list(
            stream_beats(CooMatrix.from_dense(fig6_streamed()), Format.COO, bus)
        )
        assert sum(b.cycles for b in beats) == 4

    def test_csr_row_break_up(self, bus):
        """Fig. 6b: 'C' and 'H' are on different rows and must be broken up."""
        beats = list(
            stream_beats(CsrMatrix.from_dense(fig6_streamed()), Format.CSR, bus)
        )
        # Third beat carries only H (row 3); C (row 0) could not share it.
        rows_per_beat = [sorted({e[0] for e in b.entries}) for b in beats]
        assert rows_per_beat == [[0], [0], [3]]


class TestPackerInvariants:
    @pytest.mark.parametrize("fmt", [Format.DENSE, Format.CSR, Format.COO, Format.CSC])
    @pytest.mark.parametrize("bus", [4, 5, 7, 16])
    def test_every_element_streamed_once(self, fmt, bus, rng):
        dense = make_sparse(rng, (6, 9), 0.4)
        cls = {
            Format.DENSE: DenseMatrix,
            Format.CSR: CsrMatrix,
            Format.COO: CooMatrix,
            Format.CSC: CscMatrix,
        }[fmt]
        beats = list(stream_beats(cls.from_dense(dense), fmt, bus))
        seen = {}
        for b in beats:
            for i, k, v in b.entries:
                assert (i, k) not in seen
                seen[(i, k)] = v
        if fmt is Format.DENSE:
            assert len(seen) == dense.size
        else:
            assert len(seen) == np.count_nonzero(dense)
        for (i, k), v in seen.items():
            assert dense[i, k] == v

    @pytest.mark.parametrize("fmt", [Format.DENSE, Format.CSR, Format.COO, Format.CSC])
    def test_slot_budget_respected(self, fmt, rng):
        bus = 6
        spec = stream_spec_for(fmt)
        dense = make_sparse(rng, (5, 8), 0.5)
        cls = {
            Format.DENSE: DenseMatrix,
            Format.CSR: CsrMatrix,
            Format.COO: CooMatrix,
            Format.CSC: CscMatrix,
        }[fmt]
        for beat in stream_beats(cls.from_dense(dense), fmt, bus):
            if beat.cycles > 1:
                continue  # degenerate wide-entry case
            groups = {e[0] if fmt is not Format.CSC else e[1] for e in beat.entries}
            slots = (
                len(beat.entries) * spec.entry_slots
                + (len(groups) if spec.grouped else 0) * spec.shared_slots
            )
            assert slots <= bus

    def test_cycle_count_matches_beats(self, rng):
        dense = make_sparse(rng, (7, 11), 0.3)
        for fmt, cls in [
            (Format.CSR, CsrMatrix),
            (Format.DENSE, DenseMatrix),
        ]:
            beats = list(stream_beats(cls.from_dense(dense), fmt, 5))
            sizes = (
                (dense != 0).sum(axis=1)
                if fmt is Format.CSR
                else np.full(7, 11)
            )
            assert sum(b.cycles for b in beats) == stream_cycle_count(
                sizes, stream_spec_for(fmt), 5
            )

    def test_k_range_restricts_entries(self, rng):
        dense = make_sparse(rng, (6, 10), 0.5)
        beats = list(
            stream_beats(CsrMatrix.from_dense(dense), Format.CSR, 8, (3, 7))
        )
        for b in beats:
            for _i, k, _v in b.entries:
                assert 3 <= k < 7

    def test_wide_entry_spans_beats(self):
        # COO entry (3 slots) on a 2-slot bus takes 2 cycles.
        dense = np.zeros((2, 2))
        dense[1, 1] = 5.0
        beats = list(stream_beats(CooMatrix.from_dense(dense), Format.COO, 2))
        assert len(beats) == 1 and beats[0].cycles == 2


class TestEstimate:
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.8])
    def test_estimate_tracks_exact(self, density, rng):
        dense = make_sparse(rng, (40, 60), density)
        spec = stream_spec_for(Format.CSR)
        sizes = (dense != 0).sum(axis=1)
        exact = stream_cycle_count(sizes, spec, 16)
        est = stream_cycles_estimate(
            float(sizes.sum()), float((sizes > 0).sum()), spec, 16
        )
        assert est == pytest.approx(exact, rel=0.35)

    def test_estimate_monotone_in_entries(self):
        spec = stream_spec_for(Format.CSR)
        assert stream_cycles_estimate(2000, 10, spec, 16) > (
            stream_cycles_estimate(1000, 10, spec, 16)
        )


class TestSpecs:
    def test_matrix_spec_slots(self):
        assert stream_spec_for(Format.DENSE).entry_slots == 1
        assert stream_spec_for(Format.CSR).entry_slots == 2
        assert stream_spec_for(Format.COO).entry_slots == 3
        assert stream_spec_for(Format.COO).shared_slots == 0

    def test_tensor_specs(self):
        assert stream_spec_for(Format.COO, tensor=True).entry_slots == 4
        assert stream_spec_for(Format.CSF, tensor=True).shared_slots == 2

    def test_unknown_acf_rejected(self):
        with pytest.raises(SimulationError):
            stream_spec_for(Format.BSR)
        with pytest.raises(SimulationError):
            stream_spec_for(Format.CSR, tensor=True)

    def test_entries_per_beat(self):
        spec = StreamSpec(entry_slots=2, shared_slots=1, grouped=True)
        assert spec.entries_per_beat(5) == 2
        assert spec.entries_per_beat(2) == 0
        assert spec.span_cycles(2) == 2
