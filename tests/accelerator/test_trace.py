"""Beat-level trace renderer: Fig. 6 as text."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.trace import render_stream_trace, trace_stream
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import Format
from tests.accelerator.fig6 import fig6_streamed
from tests.conftest import make_sparse


class TestFig6Trace:
    def test_dense_trace_has_8_beats(self):
        beats = trace_stream(
            DenseMatrix.from_dense(fig6_streamed()), Format.DENSE, 5
        )
        assert sum(b.cycles for b in beats) == 8
        # Every dense beat carries one row header + 4 values on a 5-slot bus.
        for b in beats:
            assert b.slots[0].startswith("r")
            assert len(b.slots) == 5 and b.idle_slots == 0

    def test_csr_trace_matches_paper_figure(self):
        beats = trace_stream(
            CsrMatrix.from_dense(fig6_streamed()), Format.CSR, 5
        )
        assert len(beats) == 3
        # Beat 0: row 0 header + two (value, col) pairs = full bus.
        assert beats[0].slots == ("r0", "v1", "k0", "v2", "k2")
        # Beat 1: row 0's third element alone; two slots idle.
        assert beats[1].slots == ("r0", "v3", "k4")
        assert beats[1].idle_slots == 2
        # Beat 2: H on row 3, broken up from C as the paper says.
        assert beats[2].slots == ("r3", "v4", "k5")

    def test_coo_trace_one_triple_per_beat(self):
        beats = trace_stream(
            CooMatrix.from_dense(fig6_streamed()), Format.COO, 5
        )
        assert len(beats) == 4
        for b in beats:
            assert len(b.slots) == 3  # value + col + row
            assert b.idle_slots == 2


class TestRenderer:
    def test_render_contains_cycle_lines(self):
        text = render_stream_trace(
            CsrMatrix.from_dense(fig6_streamed()), Format.CSR, 5
        )
        assert "3 cycles" in text
        assert text.count("\ncycle ") == 3

    def test_max_beats_truncates(self, rng):
        dense = make_sparse(rng, (20, 20), 0.5)
        beats = trace_stream(CsrMatrix.from_dense(dense), Format.CSR, 5,
                             max_beats=4)
        assert len(beats) == 4

    def test_csc_trace_headers_are_columns(self, rng):
        dense = make_sparse(rng, (6, 6), 0.4)
        beats = trace_stream(CscMatrix.from_dense(dense), Format.CSC, 6)
        headers = [s for b in beats for s in b.slots if s.startswith("c")]
        assert headers  # column headers present

    def test_k_range_respected(self, rng):
        dense = make_sparse(rng, (6, 10), 0.6)
        beats = trace_stream(
            CsrMatrix.from_dense(dense), Format.CSR, 8, k_range=(2, 5)
        )
        ks = [
            int(s[1:])
            for b in beats
            for s in b.slots
            if s.startswith("k")
        ]
        assert ks and all(2 <= k < 5 for k in ks)

    def test_wide_entry_annotated(self):
        dense = np.zeros((2, 2))
        dense[1, 1] = 5.0
        text = render_stream_trace(CooMatrix.from_dense(dense), Format.COO, 2)
        assert "x2 cycles" in text
