"""Report dataclass semantics and the shared energy accounting."""

from __future__ import annotations

import pytest

from repro.accelerator.accounting import energy_report
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.report import CycleReport, EnergyReport, RunReport


def _cycles(**overrides) -> CycleReport:
    base = dict(
        load_cycles=10,
        stream_cycles=100,
        drain_cycles=5,
        compute_cycles=50,
        rounds=1,
        k_tiles=1,
        issued_macs=1000,
        matched_macs=800,
        output_spills=20,
    )
    base.update(overrides)
    return CycleReport(**base)


class TestCycleReport:
    def test_io_vs_compute_overlap(self):
        io_bound = _cycles(compute_cycles=50)
        assert io_bound.total_cycles == 115  # 10 + 100 + 5
        compute_bound = _cycles(compute_cycles=500)
        assert compute_bound.total_cycles == 500

    def test_utilization(self):
        assert _cycles().utilization == pytest.approx(0.8)
        assert _cycles(issued_macs=0, matched_macs=0).utilization == 1.0

    def test_equality_is_fieldwise(self):
        assert _cycles() == _cycles()
        assert _cycles(stream_cycles=101) != _cycles()


class TestEnergyReport:
    def test_total_is_sum(self):
        e = EnergyReport(1.0, 2.0, 3.0, 4.0, 5.0, 6.0)
        assert e.total_j == pytest.approx(21.0)

    def test_addition(self):
        a = EnergyReport(1, 1, 1, 1, 1, 1)
        b = EnergyReport(2, 2, 2, 2, 2, 2)
        assert (a + b).total_j == pytest.approx(18.0)

    def test_run_report_edp(self):
        run = RunReport(cycles=_cycles(), energy=EnergyReport(0, 0, 0, 0, 1e-6, 0))
        assert run.edp == pytest.approx(1e-6 * 115)


class TestAccounting:
    CFG = AcceleratorConfig.paper_default()

    def test_zero_events_zero_energy(self):
        e = energy_report(
            self.CFG, beat_cycles=0, entries_loaded=0, issued_macs=0,
            compares=0, spills=0,
        )
        assert e.total_j == 0.0

    def test_each_event_charges_its_component(self):
        base = dict(beat_cycles=0, entries_loaded=0, issued_macs=0,
                    compares=0, spills=0)
        for field, key in [
            ("noc_j", "beat_cycles"),
            ("load_j", "entries_loaded"),
            ("mac_j", "issued_macs"),
            ("compare_j", "compares"),
            ("output_j", "spills"),
        ]:
            kwargs = dict(base)
            kwargs[key] = 100
            e = energy_report(self.CFG, **kwargs)
            assert getattr(e, field) > 0.0, field

    def test_linear_in_events(self):
        e1 = energy_report(self.CFG, beat_cycles=10, entries_loaded=10,
                           issued_macs=10, compares=10, spills=10)
        e2 = energy_report(self.CFG, beat_cycles=20, entries_loaded=20,
                           issued_macs=20, compares=20, spills=20)
        assert e2.total_j == pytest.approx(2 * e1.total_j)

    def test_macs_dominate_compares(self):
        """An fp32 MAC costs far more than a metadata compare."""
        mac = energy_report(self.CFG, beat_cycles=0, entries_loaded=0,
                            issued_macs=1000, compares=0, spills=0)
        cmp_ = energy_report(self.CFG, beat_cycles=0, entries_loaded=0,
                             issued_macs=0, compares=1000, spills=0)
        assert mac.total_j > 10 * cmp_.total_j
