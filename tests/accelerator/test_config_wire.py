"""AcceleratorConfig dict/wire round trips and digest stability.

Tune points ship accelerator configs over the serve wire, and artifact
cache keys embed ``config_digest``.  Both break silently if dict
round-trips drift — e.g. JSON turning ``2048`` into ``2048.0`` — so the
identities are pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve import config_digest

# Pinned digest of the paper's Table II configuration.  If this moves,
# every cached serve response and xp artifact cell is invalidated — bump
# deliberately, never accidentally.
PAPER_DEFAULT_DIGEST = "78227a47a7a42972"


class TestDictRoundTrip:
    def test_round_trip(self):
        cfg = AcceleratorConfig.paper_default()
        assert AcceleratorConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_covers_every_field(self):
        import dataclasses

        cfg = AcceleratorConfig.paper_default()
        assert set(cfg.to_dict()) == {
            f.name for f in dataclasses.fields(cfg)
        }

    def test_json_round_trip(self):
        cfg = AcceleratorConfig.paper_default()
        rebuilt = AcceleratorConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert rebuilt == cfg

    def test_modified_config_round_trips(self):
        cfg = AcceleratorConfig.paper_default()
        data = cfg.to_dict()
        data["num_pes"] = 1024
        data["pe_buffer_bytes"] = 256
        rebuilt = AcceleratorConfig.from_dict(data)
        assert rebuilt.num_pes == 1024
        assert rebuilt.pe_buffer_bytes == 256

    def test_unknown_key_rejected(self):
        data = AcceleratorConfig.paper_default().to_dict()
        data["warp_size"] = 32
        with pytest.raises(ConfigError, match="warp_size"):
            AcceleratorConfig.from_dict(data)

    def test_invalid_values_still_validated(self):
        data = AcceleratorConfig.paper_default().to_dict()
        data["num_pes"] = 0
        with pytest.raises(ConfigError):
            AcceleratorConfig.from_dict(data)


class TestDigestStability:
    def test_paper_default_digest_is_pinned(self):
        assert config_digest(AcceleratorConfig.paper_default()) == (
            PAPER_DEFAULT_DIGEST
        )

    def test_dict_round_trip_preserves_digest(self):
        cfg = AcceleratorConfig.paper_default()
        rebuilt = AcceleratorConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert config_digest(rebuilt) == config_digest(cfg)

    def test_float_coercion_preserves_digest(self):
        # A JSON encoder on the far side of the wire may widen ints to
        # floats; from_dict must normalize so the digest cannot fork.
        cfg = AcceleratorConfig.paper_default()
        data = {
            key: float(value) for key, value in cfg.to_dict().items()
        }
        rebuilt = AcceleratorConfig.from_dict(data)
        assert rebuilt == cfg
        assert config_digest(rebuilt) == config_digest(cfg)

    def test_distinct_configs_distinct_digests(self):
        cfg = AcceleratorConfig.paper_default()
        data = cfg.to_dict()
        data["num_pes"] = 1024
        assert config_digest(AcceleratorConfig.from_dict(data)) != (
            config_digest(cfg)
        )
