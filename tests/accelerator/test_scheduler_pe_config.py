"""Scheduler tiling, PE matching semantics and configuration validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pe import PE
from repro.accelerator.scheduler import (
    CSC_ENTRY_COST,
    build_schedule,
    compute_k_tiles,
    compute_rounds,
    stationary_entries_loaded,
)
from repro.errors import ConfigError, SchedulingError, SimulationError
from repro.formats import CscMatrix, DenseMatrix
from repro.formats.registry import Format
from tests.conftest import make_sparse


class TestConfig:
    def test_paper_default_totals(self):
        cfg = AcceleratorConfig.paper_default()
        assert cfg.total_macs == 16384  # Sec. VII-A
        assert cfg.bus_slots == 16  # 512-bit bus / 32-bit elements
        assert cfg.pe_buffer_entries == 128  # 512 B / 32-bit

    def test_walkthrough_matches_fig6(self):
        cfg = AcceleratorConfig.walkthrough()
        assert cfg.num_pes == 4
        assert cfg.bus_slots == 5
        assert cfg.pe_buffer_entries == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pes": 0},
            {"dtype_bits": 12},
            {"bus_bits": 16, "dtype_bits": 32},
            {"clock_hz": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            AcceleratorConfig(**kwargs)


class TestScheduler:
    def test_dense_tiles_cover_k(self, rng):
        b = DenseMatrix.from_dense(make_sparse(rng, (37, 4), 0.5))
        tiles = compute_k_tiles(b, Format.DENSE, 8)
        assert tiles[0][0] == 0 and tiles[-1][1] == 37
        assert all(hi - lo <= 8 for lo, hi in tiles)
        # Contiguous, non-overlapping.
        for (l0, h0), (l1, _h1) in zip(tiles, tiles[1:]):
            assert h0 == l1

    def test_csc_tiles_respect_footprint(self, rng):
        dense = make_sparse(rng, (30, 6), 0.6)
        b = CscMatrix.from_dense(dense)
        cap = 10
        tiles = compute_k_tiles(b, Format.CSC, cap)
        for lo, hi in tiles:
            for j in range(6):
                rows, _ = b.col_slice(j)
                footprint = CSC_ENTRY_COST * int(((rows >= lo) & (rows < hi)).sum())
                assert footprint <= cap

    def test_csc_infeasible_capacity_raises(self, rng):
        dense = np.ones((4, 2))
        b = CscMatrix.from_dense(dense)
        with pytest.raises(SchedulingError):
            compute_k_tiles(b, Format.CSC, 1)  # one entry can't hold a pair

    def test_rounds_cover_all_columns(self):
        rounds = compute_rounds(10, 4)
        assert rounds == ((0, 4), (4, 8), (8, 10))

    def test_entries_loaded_dense_vs_csc(self, rng):
        dense = make_sparse(rng, (12, 5), 0.3)
        d = DenseMatrix.from_dense(dense)
        c = CscMatrix.from_dense(dense)
        tiles = ((0, 12),)
        assert stationary_entries_loaded(d, Format.DENSE, tiles) == 60
        assert stationary_entries_loaded(c, Format.CSC, tiles) == (
            CSC_ENTRY_COST * np.count_nonzero(dense)
        )

    def test_build_schedule_shape(self, rng):
        b = DenseMatrix.from_dense(make_sparse(rng, (20, 7), 0.4))
        sched = build_schedule(b, Format.DENSE, 8, 3)
        assert sched.num_tiles == 3  # ceil(20/8)
        assert sched.num_rounds == 3  # ceil(7/3)

    def test_rejects_unsupported_stationary(self, rng):
        b = DenseMatrix.from_dense(make_sparse(rng, (5, 5), 0.5))
        with pytest.raises(SimulationError):
            compute_k_tiles(b, Format.COO, 8)


class TestPE:
    def test_dense_always_issues(self):
        pe = PE(0)
        pe.load_dense(np.array([0.0, 2.0, 0.0]), k_lo=0)
        pe.process(0, 0, 5.0)  # stationary zero -> issued, not matched
        pe.process(0, 1, 5.0)  # both nonzero -> matched
        assert pe.issued_macs == 2
        assert pe.matched_macs == 1

    def test_csc_issues_only_on_hit(self):
        pe = PE(0)
        pe.load_csc(np.array([1, 3]), np.array([2.0, 4.0]))
        pe.process(0, 0, 5.0)  # miss
        pe.process(0, 1, 5.0)  # hit
        assert pe.issued_macs == 1
        assert pe.compares == 2 * 2  # two lookups x two stored metadata

    def test_spill_on_row_change_and_flush(self):
        pe = PE(0)
        pe.load_dense(np.array([1.0, 1.0]), k_lo=0)
        pe.process(0, 0, 1.0)
        pe.process(0, 1, 2.0)  # same row accumulates
        pe.process(1, 0, 3.0)  # row change -> spill
        assert pe.spills == 1
        pe.flush()  # open row spills on flush
        assert pe.spills == 2
        assert dict(pe.contributions) == {0: 3.0, 1: 3.0}

    def test_footprint_accounting(self):
        pe = PE(0)
        pe.load_dense(np.zeros(7), k_lo=0)
        assert pe.footprint_entries == 7
        pe.load_csc(np.array([0, 2, 5]), np.array([1.0, 2.0, 3.0]))
        assert pe.footprint_entries == 6  # value + row id per nonzero

    def test_unloaded_pe_rejects_work(self):
        with pytest.raises(SimulationError):
            PE(0).process(0, 0, 1.0)
