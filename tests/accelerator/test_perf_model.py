"""Analytical model: exact agreement with the simulator + stats-mode sanity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    WeightStationarySimulator,
    analytical_gemm,
    analytical_gemm_stats,
    analytical_mttkrp,
    analytical_spttm,
)
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import Format
from tests.conftest import make_sparse

ENCODERS = {
    Format.DENSE: DenseMatrix,
    Format.CSR: CsrMatrix,
    Format.COO: CooMatrix,
    Format.CSC: CscMatrix,
}


class TestExactModeEqualsSimulator:
    """The load-bearing cross-check: two independent implementations of the
    cycle model must agree to the cycle on randomized workloads."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("acf_a", list(ENCODERS))
    @pytest.mark.parametrize("acf_b", [Format.DENSE, Format.CSC])
    def test_randomized_agreement(self, seed, acf_a, acf_b):
        rng = np.random.default_rng(1000 + seed)
        m, k, n = (int(x) for x in rng.integers(1, 13, 3))
        density = float(rng.choice([0.05, 0.25, 0.6, 1.0]))
        a_dense = make_sparse(rng, (m, k), density)
        b_dense = make_sparse(rng, (k, n), density)
        cfg = AcceleratorConfig(
            num_pes=3, vector_lanes=2, pe_buffer_bytes=4 * 4, bus_bits=6 * 32
        )
        a = ENCODERS[acf_a].from_dense(a_dense)
        b = (
            CscMatrix.from_dense(b_dense)
            if acf_b is Format.CSC
            else DenseMatrix.from_dense(b_dense)
        )
        _, sim_rep = WeightStationarySimulator(cfg).run_gemm(a, acf_a, b, acf_b)
        ana_rep = analytical_gemm(a, acf_a, b, acf_b, cfg)
        assert ana_rep.cycles == sim_rep.cycles
        assert ana_rep.energy.total_j == pytest.approx(sim_rep.energy.total_j)

    def test_agreement_on_walkthrough_config(self):
        from tests.accelerator.fig6 import fig6_stationary, fig6_streamed

        cfg = AcceleratorConfig.walkthrough()
        a_dense, b_dense = fig6_streamed(), fig6_stationary()
        for acf_a in ENCODERS:
            for acf_b in (Format.DENSE, Format.CSC):
                a = ENCODERS[acf_a].from_dense(a_dense)
                b = (
                    CscMatrix.from_dense(b_dense)
                    if acf_b is Format.CSC
                    else DenseMatrix.from_dense(b_dense)
                )
                _, sim_rep = WeightStationarySimulator(cfg).run_gemm(
                    a, acf_a, b, acf_b
                )
                assert analytical_gemm(a, acf_a, b, acf_b, cfg).cycles == (
                    sim_rep.cycles
                )


class TestStatsMode:
    CFG = AcceleratorConfig.paper_default()

    def test_more_nonzeros_cost_more(self):
        lo = analytical_gemm_stats(
            1000, 1000, 500, 10_000, 500 * 1000, Format.CSR, Format.DENSE, self.CFG
        )
        hi = analytical_gemm_stats(
            1000, 1000, 500, 100_000, 500 * 1000, Format.CSR, Format.DENSE, self.CFG
        )
        assert hi.cycles.total_cycles > lo.cycles.total_cycles
        assert hi.energy.total_j > lo.energy.total_j

    def test_flexible_noc_skips_zero_compute(self):
        """With zero-skipping, a dense ACF issues only nonzero MACs."""
        skip = analytical_gemm_stats(
            500, 500, 500, 25_000, 500 * 500, Format.DENSE, Format.DENSE,
            self.CFG, flexible_noc=True,
        )
        literal = analytical_gemm_stats(
            500, 500, 500, 25_000, 500 * 500, Format.DENSE, Format.DENSE,
            self.CFG, flexible_noc=False,
        )
        assert skip.cycles.issued_macs < literal.cycles.issued_macs
        assert literal.cycles.issued_macs == 500 * 500 * 500

    def test_dense_csr_acf_crossover_near_3pct(self):
        """The Table III story: Dense ACF wins at >=4%, CSR below ~1%."""

        def best(density: float) -> Format:
            m = k = 2000
            nnz = int(density * m * k)
            costs = {}
            for acf in (Format.DENSE, Format.CSR):
                rep = analytical_gemm_stats(
                    m, k, 1000, nnz, k * 1000, acf, Format.DENSE, self.CFG
                )
                costs[acf] = rep.cycles.total_cycles
            return min(costs, key=costs.get)

        assert best(0.10) is Format.DENSE
        assert best(0.05) is Format.DENSE
        assert best(0.005) is Format.CSR

    def test_csc_stationary_beats_dense_for_sparse_weights(self):
        """Sec. VII-D: sparse stationary operands prefer CSC buffers."""
        m, k, n = 4096, 4608, 512
        nnz_b = int(0.02 * k * n)  # 98% pruned weights
        dense_b = analytical_gemm_stats(
            m, k, n, int(0.5 * m * k), nnz_b, Format.DENSE, Format.DENSE, self.CFG
        )
        csc_b = analytical_gemm_stats(
            m, k, n, int(0.5 * m * k), nnz_b, Format.DENSE, Format.CSC, self.CFG
        )
        assert csc_b.cycles.total_cycles < dense_b.cycles.total_cycles

    def test_k_tiling_tracks_buffer(self):
        small_buf = AcceleratorConfig(pe_buffer_bytes=128)
        big_buf = AcceleratorConfig(pe_buffer_bytes=4096)
        rep_small = analytical_gemm_stats(
            100, 5000, 100, 50_000, 5000 * 100, Format.CSR, Format.DENSE, small_buf
        )
        rep_big = analytical_gemm_stats(
            100, 5000, 100, 50_000, 5000 * 100, Format.CSR, Format.DENSE, big_buf
        )
        assert rep_small.cycles.k_tiles > rep_big.cycles.k_tiles


class TestTensorKernels:
    def test_spttm_scales_with_rank(self):
        lo = analytical_spttm((100, 100, 50), 20_000, 8, Format.CSF)
        hi = analytical_spttm((100, 100, 50), 20_000, 64, Format.CSF)
        assert hi.cycles.issued_macs == 8 * lo.cycles.issued_macs

    def test_mttkrp_issues_two_macs_per_nnz(self):
        spttm = analytical_spttm((50, 60, 40), 10_000, 16, Format.COO)
        mttkrp = analytical_mttkrp((50, 60, 40), 10_000, 16, Format.COO)
        assert mttkrp.cycles.issued_macs == 2 * spttm.cycles.issued_macs

    def test_csf_beats_coo_streaming_when_fibers_cluster(self):
        # Long fibers: CSF's shared headers amortize, COO re-sends coords.
        shape, nnz = (200, 200, 500), 2_000_000  # ~10% density, ~50/leaf fiber
        csf = analytical_spttm(shape, nnz, 16, Format.CSF)
        coo = analytical_spttm(shape, nnz, 16, Format.COO)
        assert csf.cycles.stream_cycles < coo.cycles.stream_cycles

    def test_dense_acf_sideband_hurts_extreme_sparsity(self):
        shape, nnz = (400, 400, 400), 2_000  # ~3e-5 density
        dense = analytical_spttm(shape, nnz, 16, Format.DENSE)
        coo = analytical_spttm(shape, nnz, 16, Format.COO)
        assert coo.cycles.stream_cycles < dense.cycles.stream_cycles

    def test_rejects_bad_acf(self):
        import pytest as _pytest

        from repro.errors import SimulationError

        with _pytest.raises(SimulationError):
            analytical_spttm((10, 10, 10), 50, 4, Format.CSR)
