"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["sage", "--m", "100", "--k", "100", "--n", "50"],
            ["sage", "--tensor", "--i", "32", "--j", "32", "--k", "16",
             "--rank", "8"],
            ["sage", "--backend", "tcp://127.0.0.1:7342"],
            ["run", "--m", "64", "--k", "64", "--n", "32"],
            ["run", "--engine", "reference", "--seed", "3"],
            ["serve", "--port", "0", "--shards", "1"],
            ["sweep", "--m", "500", "--k", "500"],
            ["walkthrough"],
            ["suite", "journals"],
            ["paths"],
            ["paths", "--tensor", "--src", "COO", "--dst", "CSF"],
            ["stats", "tcp://127.0.0.1:7342"],
            ["--log-level", "info", "run", "--trace", "out.json"],
            ["xp", "run", "--all", "--smoke", "--trace"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.fn)

    def test_version_flag_prints_and_exits(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestExecution:
    def test_sage_prints_decision(self, capsys):
        assert main(["sage", "--m", "200", "--k", "200", "--n", "100",
                     "--density", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "SAGE decision" in out and "MCF=" in out

    def test_sage_spgemm_mode(self, capsys):
        assert main(["sage", "--m", "300", "--k", "300", "--n", "150",
                     "--density", "0.01", "--kernel", "spgemm"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_sage_tensor_mode(self, capsys):
        assert main(["sage", "--tensor", "--i", "32", "--j", "32",
                     "--k", "16", "--density", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "SAGE decision" in out and "MCF=" in out

    def test_sage_tensor_mttkrp(self, capsys):
        assert main(["sage", "--tensor", "--i", "32", "--j", "16", "--k", "8",
                     "--rank", "4", "--kernel", "mttkrp"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_sage_tensor_kernel_requires_tensor_flag(self):
        with pytest.raises(SystemExit):
            main(["sage", "--kernel", "spttm"])

    @pytest.mark.parametrize("kernel", ["spgemm", "spmm"])
    def test_sage_tensor_rejects_matrix_kernel(self, kernel):
        with pytest.raises(SystemExit):
            main(["sage", "--tensor", "--kernel", kernel])

    def test_sage_tensor_rejects_cycle_fidelity(self):
        with pytest.raises(SystemExit, match="matrix workload"):
            main(["sage", "--tensor", "--i", "32", "--j", "32", "--k", "16",
                  "--fidelity", "cycle"])

    def test_sage_cycle_fidelity(self, capsys):
        assert main(["sage", "--m", "96", "--k", "96", "--n", "64",
                     "--density", "0.1", "--fidelity", "cycle"]) == 0
        assert "[cycle]" in capsys.readouterr().out

    def test_run_prints_pipeline_report(self, capsys):
        assert main(["run", "--m", "96", "--k", "96", "--n", "48",
                     "--density", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "SAGE" in out and "MINT" in out and "simulator" in out
        assert "output verified" in out

    def test_run_trace_exports_multi_layer_chrome_trace(self, tmp_path,
                                                        capsys):
        out = tmp_path / "trace.json"
        assert main(["run", "--m", "64", "--k", "64", "--n", "32",
                     "--trace", str(out)]) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        cats = {event["cat"] for event in events}
        # The acceptance bar: spans from at least the api, sage, mint
        # and accelerator layers on one timeline.
        assert {"api", "sage", "mint", "accel"} <= cats
        assert all(event["ph"] == "X" for event in events)
        trace_ids = {event["args"]["trace_id"] for event in events
                     if "args" in event and "trace_id" in event["args"]}
        assert len(trace_ids) == 1

    def test_run_unknown_backend_exits_with_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown backend"):
            main(["run", "--m", "64", "--k", "64", "--n", "32",
                  "--backend", "smoke-signals"])

    def test_sweep_prints_ladder(self, capsys):
        assert main(["sweep", "--m", "2000", "--k", "2000"]) == 0
        out = capsys.readouterr().out
        assert "best" in out and "Dense" in out

    def test_walkthrough_prints_fig6_counts(self, capsys):
        assert main(["walkthrough"]) == 0
        out = capsys.readouterr().out
        assert "8 cycles" in out
        assert "3 cycles" in out
        assert "4 cycles" in out

    def test_suite_ranks_policies(self, capsys):
        assert main(["suite", "journals", "--kernel", "spgemm"]) == 0
        out = capsys.readouterr().out
        assert "Flex_Flex_HW" in out and "1.00x" in out

    def test_suite_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["suite", "nonexistent"])

    def test_paths_prints_graph_and_routes(self, capsys):
        assert main(["paths", "--m", "512", "--k", "512"]) == 0
        out = capsys.readouterr().out
        assert "registered datapaths" in out
        assert "csr_to_csc" in out
        assert "planned routes" in out and "cycles" in out

    def test_paths_single_pair_route(self, capsys):
        assert main(["paths", "--src", "ZVC", "--dst", "CSR"]) == 0
        out = capsys.readouterr().out
        assert "ZVC -> Dense -> CSR" in out

    def test_paths_tensor_graph(self, capsys):
        assert main(["paths", "--tensor"]) == 0
        out = capsys.readouterr().out
        assert "coo3_to_csf" in out

    def test_paths_unknown_format_exits(self):
        with pytest.raises(SystemExit):
            main(["paths", "--src", "NOPE", "--dst", "CSR"])


class TestJsonOutput:
    def test_sage_json_is_wire_decision(self, capsys):
        assert main(["sage", "--m", "200", "--k", "200", "--n", "100",
                     "--density", "0.05", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload_name"] == "cli"
        assert doc["fidelity"] == "analytical"
        assert doc["best"]["mcf"] and doc["best"]["acf"]
        assert len(doc["ranking"]) >= 1

    def test_sage_json_cycle_fidelity(self, capsys):
        assert main(["sage", "--m", "96", "--k", "96", "--n", "64",
                     "--density", "0.1", "--fidelity", "cycle",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["fidelity"] == "cycle"
        assert {"ELL"} <= {cand["acf"][0] for cand in doc["ranking"]}

    def test_suite_json_ranks_policies(self, capsys):
        assert main(["suite", "journals", "--kernel", "spgemm",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "journals"
        assert doc["baseline"] == "Flex_Flex_HW"
        names = [p["policy"] for p in doc["policies"]]
        assert "Flex_Flex_HW" in names
        ratios = [p["edp_vs_baseline"] for p in doc["policies"]]
        assert ratios == sorted(ratios)
        assert min(ratios) == pytest.approx(1.0)

    def test_run_json_reports_pipeline(self, capsys):
        assert main(["run", "--m", "96", "--k", "96", "--n", "48",
                     "--density", "0.05", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["decision"]["best"]["mcf"]
        assert doc["cycles"] > 0
        assert doc["verified"] is True
        assert doc["sim_scale"] == 1.0

    def test_sweep_json_reports_best_per_density(self, capsys):
        assert main(["sweep", "--m", "2000", "--k", "2000", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["shape"] == [2000, 2000]
        assert "Dense" in doc["formats"]
        for row in doc["rows"]:
            assert row["best"] in doc["formats"]
            assert set(row["relative_energy"]) == set(doc["formats"])
