"""The docs stay present and syntactically runnable (cheap tier-1 guard).

CI's ``docs-smoke`` job *executes* every fenced python block via
``tools/docs_smoke.py``; here we keep the fast invariants in the main
suite: the guide set exists, the README links into it, every block
compiles, and the smoke harness itself keeps finding blocks.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import docs_smoke  # noqa: E402

GUIDES = ("architecture.md", "serving.md", "benchmarking.md")


def test_guide_set_exists():
    for name in GUIDES:
        assert (ROOT / "docs" / name).is_file(), name


def test_readme_links_into_the_guides():
    readme = (ROOT / "README.md").read_text()
    for name in GUIDES:
        assert f"docs/{name}" in readme, name


@pytest.mark.parametrize(
    "path", docs_smoke.doc_files(), ids=lambda p: p.name
)
def test_every_python_block_compiles(path: Path):
    blocks = docs_smoke.extract_blocks(path)
    assert blocks, f"{path.name} has no runnable python examples"
    for i, block in enumerate(blocks):
        compile(block, f"{path.name}[block {i + 1}]", "exec")


def test_extractor_sees_only_python_fences(tmp_path):
    doc = tmp_path / "sample.md"
    doc.write_text(
        "```python\nx = 1\n```\n"
        "```sh\nrm -rf /\n```\n"
        "```python\n# doc: no-run\ny = undefined_name\n```\n"
    )
    blocks = docs_smoke.extract_blocks(doc)
    assert blocks == ["x = 1\n", "# doc: no-run\ny = undefined_name\n"]
    assert docs_smoke.runnable_source(blocks) == "x = 1\n"
