"""CPU/GPU device models: the Fig. 5 / 10 / 11 shape claims."""

from __future__ import annotations

import pytest

from repro.baselines import CpuModel, GpuModel, MMAlgorithm
from repro.util.stats import geomean


class TestFig5Shapes:
    GPU = GpuModel()
    DIMS = (11_000, 11_000, 11_000)

    def _winner(self, density: float) -> MMAlgorithm:
        times = {
            a: self.GPU.mm_time(a, *self.DIMS, density).seconds
            for a in MMAlgorithm
        }
        return min(times, key=times.get)

    @pytest.mark.parametrize("density", [0.10, 0.5, 1.0])
    def test_dense_wins_from_ten_percent(self, density):
        """Fig. 5a: Dense(A)-Dense(B)-Dense(O) performs better in density
        regions from 10% to 100%."""
        assert self._winner(density) is MMAlgorithm.DENSE_DENSE_DENSE

    @pytest.mark.parametrize("density", [1e-8, 1e-6, 1e-4, 1e-3])
    def test_spgemm_wins_at_extreme_sparsity(self, density):
        """Fig. 5a: CSR-CSR-CSR performs better from 1e-6% to 0.1%."""
        assert self._winner(density) is MMAlgorithm.CSR_CSR_CSR

    def test_dense_time_flat_across_density(self):
        t1 = self.GPU.mm_time(MMAlgorithm.DENSE_DENSE_DENSE, *self.DIMS, 0.01)
        t2 = self.GPU.mm_time(MMAlgorithm.DENSE_DENSE_DENSE, *self.DIMS, 0.9)
        assert t1.seconds == pytest.approx(t2.seconds)

    def test_gemm_sm_util_high_but_wasted(self):
        """Fig. 5b: 'GEMM is compute bound, but note that SM utilization
        includes zero valued operations.'"""
        est = self.GPU.mm_time(MMAlgorithm.DENSE_DENSE_DENSE, *self.DIMS, 0.5)
        assert est.sm_utilization > 0.7

    def test_sparse_sm_util_low(self):
        est = self.GPU.mm_time(MMAlgorithm.CSR_CSR_CSR, *self.DIMS, 1e-4)
        assert est.sm_utilization < 0.05

    def test_spmm_memory_bound_at_low_density(self):
        """Fig. 5c: the SpMM algorithms are often memory bound."""
        est = self.GPU.mm_time(MMAlgorithm.CSR_DENSE_DENSE, *self.DIMS, 1e-4)
        assert est.mem_utilization > est.sm_utilization

    def test_spgemm_latency_bound_at_extreme_sparsity(self):
        """Fig. 5: 'SpGEMM is often latency bound' — at 1e-8 the launch
        overhead dominates the kernel time."""
        est = self.GPU.mm_time(MMAlgorithm.CSR_CSR_CSR, *self.DIMS, 1e-8)
        assert est.seconds == pytest.approx(
            3 * self.GPU.kernel_launch_s, rel=0.35
        )


class TestFig10Fig11Shapes:
    GPU = GpuModel()
    CPU = CpuModel()

    def test_transfer_share_geomean_near_half(self):
        """Fig. 11: transfers are ~50% of GPU conversion wall time
        (geomean), up to 75%."""
        shares = []
        for mbytes in [0.1e6, 1e6, 10e6, 60e6, 200e6]:
            dev, h2d, d2h = self.GPU.conversion_time(mbytes, 1.2 * mbytes)
            shares.append((h2d + d2h) / (dev + h2d + d2h))
        g = geomean(shares)
        assert 0.35 <= g <= 0.70
        assert max(shares) <= 0.80

    def test_gpu_conversion_energy_orders_above_mint(self):
        """Fig. 10c: MINT saves roughly three orders of magnitude."""
        from repro.formats.registry import Format
        from repro.mint.cost import estimate_conversion_cost

        m, k, nnz = 9000, 9000, 3_300_000
        mint = estimate_conversion_cost(
            Format.CSR, Format.CSC, size=m * k, nnz=nnz, major_dim=m
        )
        bytes_in = nnz * 6.0  # ~48 bits/entry
        dev, h2d, d2h = self.GPU.conversion_time(bytes_in, bytes_in)
        gpu_energy = self.GPU.conversion_energy(dev + h2d + d2h)
        assert gpu_energy / mint.energy_j >= 1e3

    def test_cpu_conversion_slower_than_mint(self):
        from repro.formats.registry import Format
        from repro.mint.cost import estimate_conversion_cost

        m, k, nnz = 11_000, 3_600, 3_900_000
        mint = estimate_conversion_cost(
            Format.CSR, Format.CSC, size=m * k, nnz=nnz, major_dim=m
        )
        t_cpu = self.CPU.conversion_time(nnz * 6.0, nnz * 6.0)
        assert t_cpu > mint.seconds

    def test_cpu_time_scales_with_bytes(self):
        t1 = self.CPU.conversion_time(1e6, 1e6)
        t2 = self.CPU.conversion_time(10e6, 10e6)
        assert t2 > 5 * t1

    def test_gpu_peak_flops(self):
        # 4608 cores x 2 x 1.77 GHz ~= 16.3 TFLOP/s fp32.
        assert self.GPU.peak_flops == pytest.approx(16.3e12, rel=0.01)

    def test_cpu_peak_flops(self):
        # 10 cores x 32 flops x 3.3 GHz ~= 1.06 TFLOP/s.
        assert self.CPU.peak_flops == pytest.approx(1.056e12, rel=0.01)
