"""Table II policies and the Fig. 12/13 policy evaluation."""

from __future__ import annotations

import pytest

from repro.baselines import (
    ALL_POLICIES,
    ConverterKind,
    CpuModel,
    GpuModel,
    evaluate_all,
    evaluate_policy,
    policy_by_name,
)
from repro.formats.registry import Format
from repro.workloads import Kernel, suite_by_name


class TestPolicies:
    def test_seven_table2_rows(self):
        assert len(ALL_POLICIES) == 7
        names = {p.name for p in ALL_POLICIES}
        assert names == {
            "Fix_Fix_None",
            "Fix_Fix_None2",
            "Fix_Flex_HW",
            "Flex_Flex_None",
            "Flex_Fix_HW",
            "Flex_Flex_SW",
            "Flex_Flex_HW",
        }

    def test_tpu_single_candidate(self):
        tpu = policy_by_name("Fix_Fix_None")
        cands = list(tpu.candidates())
        assert cands == [((Format.DENSE, Format.DENSE), (Format.DENSE, Format.DENSE))]
        assert not tpu.zero_skipping

    def test_none_converter_forces_mcf_equals_acf(self):
        extensor = policy_by_name("Flex_Flex_None")
        for mcf, acf in extensor.candidates():
            assert mcf == acf

    def test_sigma_fixed_zvc_mcf(self):
        sigma = policy_by_name("Fix_Flex_HW")
        for mcf, _acf in sigma.candidates():
            assert mcf == (Format.ZVC, Format.ZVC)

    def test_this_work_has_largest_space(self):
        sizes = {p.name: len(list(p.candidates())) for p in ALL_POLICIES}
        assert sizes["Flex_Flex_HW"] == max(sizes.values())

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            policy_by_name("nope")


class TestEvaluation:
    @pytest.fixture(scope="class")
    def speech2_results(self):
        wl = suite_by_name("speech2").matrix_workload(Kernel.SPGEMM)
        return evaluate_all(wl)

    def test_this_work_never_loses(self, speech2_results):
        """SAGE searches a superset of every baseline's space on the same
        hardware, so Flex_Flex_HW must be the (weak) minimum."""
        ours = speech2_results["Flex_Flex_HW"].edp
        for name, result in speech2_results.items():
            assert ours <= result.edp * 1.0001, name

    def test_tpu_worst_on_sparse_workload(self, speech2_results):
        tpu = speech2_results["Fix_Fix_None"].edp
        for name, result in speech2_results.items():
            if name != "Fix_Fix_None":
                assert result.edp <= tpu, name

    def test_mint_beats_software_conversion(self):
        """Fig. 10's system-level consequence: HW conversion >= SW conversion."""
        wl = suite_by_name("speech1").matrix_workload(Kernel.SPMM)
        hw = evaluate_policy(wl, policy_by_name("Flex_Flex_HW"))
        sw_cpu = evaluate_policy(
            wl, policy_by_name("Flex_Flex_SW"), sw_device=CpuModel()
        )
        sw_gpu = evaluate_policy(
            wl, policy_by_name("Flex_Flex_SW"), sw_device=GpuModel()
        )
        assert hw.edp <= sw_cpu.edp
        assert hw.edp <= sw_gpu.edp

    def test_journals_prefers_dense_over_eie(self):
        """Fig. 12a: on the 78.5%-dense journals, Fix_Fix_None2 (EIE) is
        beaten by plain dense (Fix_Fix_None)."""
        wl = suite_by_name("journals").matrix_workload(Kernel.SPGEMM)
        res = evaluate_all(wl)
        assert res["Fix_Fix_None"].edp < res["Fix_Fix_None2"].edp

    def test_m3plates_flexibility_gap(self):
        """Fig. 12c: on the extremely sparse m3plates, flexible designs are
        far ahead of the fixed-dense ones."""
        wl = suite_by_name("m3plates").matrix_workload(Kernel.SPGEMM)
        res = evaluate_all(wl)
        assert res["Flex_Flex_HW"].edp * 10 < res["Fix_Fix_None"].edp

    def test_result_records_choice(self, speech2_results):
        best = speech2_results["Flex_Flex_HW"].best
        assert best.mcf[0] in tuple(Format)
        assert best.edp > 0
