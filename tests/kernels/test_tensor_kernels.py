"""SpTTM and MTTKRP against einsum oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CooTensor, CsfTensor
from repro.kernels import (
    mttkrp_coo,
    mttkrp_csf,
    mttkrp_dense,
    spttm_coo,
    spttm_csf,
    spttm_dense,
)
from repro.kernels.reference import ref_mttkrp, ref_spttm
from tests.conftest import make_sparse

CASES = [
    ((1, 1, 1), 2, 1.0),
    ((4, 5, 6), 3, 0.2),
    ((8, 3, 10), 4, 0.05),
    ((3, 3, 3), 2, 0.0),
    ((2, 7, 4), 5, 0.7),
]


@pytest.mark.parametrize("shape,rank,density", CASES)
class TestSpttm:
    def test_dense(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        u = rng.random((shape[2], rank))
        assert np.allclose(spttm_dense(x, u), ref_spttm(x, u))

    def test_coo(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        u = rng.random((shape[2], rank))
        assert np.allclose(spttm_coo(CooTensor.from_dense(x), u), ref_spttm(x, u))

    def test_csf(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        u = rng.random((shape[2], rank))
        assert np.allclose(spttm_csf(CsfTensor.from_dense(x), u), ref_spttm(x, u))


@pytest.mark.parametrize("shape,rank,density", CASES)
class TestMttkrp:
    def test_dense(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        b, c = rng.random((shape[1], rank)), rng.random((shape[2], rank))
        assert np.allclose(mttkrp_dense(x, b, c), ref_mttkrp(x, b, c))

    def test_coo(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        b, c = rng.random((shape[1], rank)), rng.random((shape[2], rank))
        assert np.allclose(
            mttkrp_coo(CooTensor.from_dense(x), b, c), ref_mttkrp(x, b, c)
        )

    def test_csf(self, shape, rank, density, rng):
        x = make_sparse(rng, shape, density)
        b, c = rng.random((shape[1], rank)), rng.random((shape[2], rank))
        assert np.allclose(
            mttkrp_csf(CsfTensor.from_dense(x), b, c), ref_mttkrp(x, b, c)
        )


def test_spttm_rejects_bad_factor(rng):
    x = make_sparse(rng, (3, 4, 5), 0.3)
    with pytest.raises(ValueError):
        spttm_coo(CooTensor.from_dense(x), rng.random((4, 2)))


def test_mttkrp_rejects_rank_mismatch(rng):
    x = make_sparse(rng, (3, 4, 5), 0.3)
    with pytest.raises(ValueError):
        mttkrp_coo(
            CooTensor.from_dense(x), rng.random((4, 2)), rng.random((5, 3))
        )
