"""Operation/traffic accounting used by the device cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CscMatrix, CsrMatrix
from repro.kernels.ops import (
    expected_output_nnz,
    gemm_ops,
    matching_macs,
    spgemm_ops,
    spmm_ops,
    spmv_ops,
)
from tests.conftest import make_sparse


class TestMatchingMacs:
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.8])
    def test_equals_bruteforce(self, density, rng):
        a = make_sparse(rng, (10, 8), density)
        b = make_sparse(rng, (8, 6), density)
        brute = sum(
            int(np.count_nonzero(a[:, k])) * int(np.count_nonzero(b[k, :]))
            for k in range(8)
        )
        got = matching_macs(CsrMatrix.from_dense(a), CscMatrix.from_dense(b))
        assert got == brute

    def test_accepts_csr_second_operand(self, rng):
        a = make_sparse(rng, (6, 5), 0.4)
        b = make_sparse(rng, (5, 7), 0.4)
        assert matching_macs(
            CsrMatrix.from_dense(a), CsrMatrix.from_dense(b)
        ) == matching_macs(CsrMatrix.from_dense(a), CscMatrix.from_dense(b))


class TestExpectedOutputNnz:
    def test_dense_times_dense_is_full(self):
        assert expected_output_nnz(10, 10, 10, 100, 100) == pytest.approx(100.0)

    def test_zero_operand(self):
        assert expected_output_nnz(10, 10, 10, 0, 50) == pytest.approx(0.0)

    def test_monotone_in_nnz(self):
        lo = expected_output_nnz(50, 50, 50, 100, 100)
        hi = expected_output_nnz(50, 50, 50, 500, 500)
        assert hi > lo

    def test_bounded_by_mn(self):
        assert expected_output_nnz(7, 9, 100, 400, 500) <= 7 * 9


class TestOpCounts:
    def test_gemm_issues_all_macs(self):
        ops = gemm_ops(4, 5, 6, nnz_a=10, nnz_b=15, dtype_bits=32)
        assert ops.macs == 4 * 5 * 6
        assert ops.useful_macs <= ops.macs
        assert 0.0 <= ops.utilization <= 1.0

    def test_spmm_macs_scale_with_nnz(self):
        lo = spmm_ops(10, 1000, 8, 6, 4, 32)
        hi = spmm_ops(20, 2000, 8, 6, 4, 32)
        assert hi.macs == 2 * lo.macs

    def test_spgemm_default_expectation(self):
        ops = spgemm_ops(10, 20, 10, 40, 40, 1000, 1000, 32)
        assert ops.macs == pytest.approx(40 * 40 / 20)

    def test_spgemm_respects_exact_count(self):
        ops = spgemm_ops(10, 20, 10, 40, 40, 1000, 1000, 32, useful_macs=77.0)
        assert ops.macs == 77.0

    def test_spmv_counts(self):
        ops = spmv_ops(25, 900, 10, 8, 32)
        assert ops.macs == 25
        assert ops.bits_written == 10 * 32

    def test_utilization_zero_when_no_macs(self):
        ops = gemm_ops(1, 1, 1, 0, 0, 32)
        assert ops.utilization == 0.0
