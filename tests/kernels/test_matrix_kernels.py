"""Matrix kernels against independent oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import CooMatrix, CscMatrix, CsrMatrix
from repro.kernels import (
    gemm_dense,
    spgemm_csr_csc,
    spgemm_csr_csr,
    spmm_coo_dense,
    spmm_csr_dense,
    spmm_dense_csc,
    spmv_coo,
    spmv_csr,
)
from repro.kernels.reference import ref_matmul, ref_spgemm
from tests.conftest import make_sparse

CASES = [
    ((1, 1, 1), 1.0),
    ((5, 8, 3), 0.3),
    ((12, 4, 9), 0.1),
    ((7, 7, 7), 0.0),
    ((3, 20, 6), 0.6),
    ((16, 16, 16), 0.05),
]


@pytest.mark.parametrize("dims,density", CASES)
class TestSpmm:
    def _operands(self, dims, density, rng):
        m, k, n = dims
        return make_sparse(rng, (m, k), density), make_sparse(rng, (k, n), 0.8)

    def test_coo_dense(self, dims, density, rng):
        a, b = self._operands(dims, density, rng)
        out = spmm_coo_dense(CooMatrix.from_dense(a), b)
        assert np.allclose(out, ref_matmul(a, b))

    def test_csr_dense(self, dims, density, rng):
        a, b = self._operands(dims, density, rng)
        out = spmm_csr_dense(CsrMatrix.from_dense(a), b)
        assert np.allclose(out, ref_matmul(a, b))

    def test_dense_csc(self, dims, density, rng):
        a, b = self._operands(dims, density, rng)
        out = spmm_dense_csc(a, CscMatrix.from_dense(b))
        assert np.allclose(out, ref_matmul(a, b))


@pytest.mark.parametrize("dims,density", CASES)
class TestSpgemm:
    def test_csr_csc(self, dims, density, rng):
        m, k, n = dims
        a = make_sparse(rng, (m, k), density)
        b = make_sparse(rng, (k, n), density)
        out = spgemm_csr_csc(CsrMatrix.from_dense(a), CscMatrix.from_dense(b))
        assert np.allclose(out, ref_spgemm(a, b))

    def test_csr_csr(self, dims, density, rng):
        m, k, n = dims
        a = make_sparse(rng, (m, k), density)
        b = make_sparse(rng, (k, n), density)
        out = spgemm_csr_csr(CsrMatrix.from_dense(a), CsrMatrix.from_dense(b))
        assert np.allclose(out, ref_spgemm(a, b))


class TestSpmv:
    @pytest.mark.parametrize("density", [0.0, 0.2, 1.0])
    def test_csr(self, density, rng):
        a = make_sparse(rng, (9, 6), density)
        x = rng.random(6)
        assert np.allclose(spmv_csr(CsrMatrix.from_dense(a), x), a @ x)

    @pytest.mark.parametrize("density", [0.0, 0.2, 1.0])
    def test_coo(self, density, rng):
        a = make_sparse(rng, (9, 6), density)
        x = rng.random(6)
        assert np.allclose(spmv_coo(CooMatrix.from_dense(a), x), a @ x)

    def test_rejects_bad_vector_length(self, rng):
        a = make_sparse(rng, (4, 5), 0.5)
        with pytest.raises(ValueError):
            spmv_csr(CsrMatrix.from_dense(a), np.ones(4))


class TestGemm:
    def test_matches_numpy(self, rng):
        a, b = rng.random((6, 7)), rng.random((7, 5))
        assert np.allclose(gemm_dense(a, b), a @ b)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            gemm_dense(rng.random((3, 4)), rng.random((5, 6)))


@pytest.mark.parametrize(
    "fn",
    [spmm_coo_dense, spmm_csr_dense],
    ids=["coo", "csr"],
)
def test_spmm_rejects_inner_mismatch(fn, rng):
    a = make_sparse(rng, (4, 5), 0.5)
    b = rng.random((6, 3))
    cls = CooMatrix if fn is spmm_coo_dense else CsrMatrix
    with pytest.raises(ValueError):
        fn(cls.from_dense(a), b)
