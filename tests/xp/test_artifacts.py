"""Artifact-store semantics: content keys, atomicity, invalidation."""

from __future__ import annotations

import json

from repro.xp.artifacts import ArtifactStore
from repro.xp.registry import Experiment


def _measure(session, params):
    return {"v": 1}


def _exp(name="store_toy", version=1):
    return Experiment(
        name=name,
        kind="figure",
        anchor="Fig. 0",
        title="toy",
        matrix={"x": (1, 2)},
        measure=_measure,
        schema=("v",),
        version=version,
    )


class TestKeys:
    def test_identical_scenario_hashes_identically(self, tmp_path):
        store = ArtifactStore(tmp_path)
        exp = _exp()
        assert store.cell_key(exp, {"x": 1}) == store.cell_key(exp, {"x": 1})
        # Key order inside the params dict must not matter.
        exp2 = _exp("store_toy2")
        a = store.cell_key(exp2, {"x": 1, "y": 2})
        b = store.cell_key(exp2, {"y": 2, "x": 1})
        assert a == b

    def test_different_cells_hash_differently(self, tmp_path):
        store = ArtifactStore(tmp_path)
        exp = _exp()
        assert store.cell_key(exp, {"x": 1}) != store.cell_key(exp, {"x": 2})

    def test_experiment_identity_is_in_the_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.cell_key(_exp("store_a"), {"x": 1})
        b = store.cell_key(_exp("store_b"), {"x": 1})
        assert a != b

    def test_version_bump_invalidates(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.cell_key(_exp(version=1), {"x": 1}) != store.cell_key(
            _exp(version=2), {"x": 1}
        )

    def test_config_digest_change_invalidates(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        exp = _exp()
        before = store.cell_key(exp, {"x": 1})
        monkeypatch.setattr(
            ArtifactStore, "config_digest", lambda self: "other-hardware"
        )
        assert store.cell_key(exp, {"x": 1}) != before


class TestIO:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        record = {"params": {"x": 1}, "result": {"v": 1}, "elapsed_s": 0.1}
        path = store.store("e", "k1", record)
        assert path.is_file()
        assert store.load("e", "k1") == record

    def test_miss_is_none(self, tmp_path):
        assert ArtifactStore(tmp_path).load("e", "nothere") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("e", "k1", {"ok": True})
        store.path("e", "k1").write_text("{torn wri")
        assert store.load("e", "k1") is None

    def test_store_is_atomic_overwrite(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("e", "k1", {"gen": 1})
        store.store("e", "k1", {"gen": 2})
        assert store.load("e", "k1") == {"gen": 2}
        assert store.count("e") == 1
        # No temp droppings left behind.
        assert list(store.root.glob("**/*.tmp*")) == []


class TestInvalidation:
    def test_per_experiment_and_global(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for exp, key in (("a", "k1"), ("a", "k2"), ("b", "k1")):
            store.store(exp, key, {})
        assert store.count() == 3
        assert store.invalidate("a") == 2
        assert store.count() == 1
        assert store.load("b", "k1") == {}
        assert store.invalidate() == 1
        assert store.count() == 0

    def test_invalidate_missing_is_zero(self, tmp_path):
        assert ArtifactStore(tmp_path / "nope").invalidate() == 0
        assert ArtifactStore(tmp_path).invalidate("ghost") == 0


class TestDigest:
    def test_digest_names_store_and_wire_versions(self, tmp_path):
        from repro.api.options import WIRE_SCHEMA_VERSION
        from repro.xp.artifacts import STORE_VERSION

        digest = ArtifactStore(tmp_path).config_digest()
        assert f"store{STORE_VERSION}" in digest
        assert f"wire{WIRE_SCHEMA_VERSION}" in digest

    def test_records_are_pretty_json(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("e", "k", {"b": 2, "a": 1})
        text = store.path("e", "k").read_text()
        assert text.endswith("\n")
        assert list(json.loads(text)) == ["a", "b"]  # sorted keys
