"""The ``repro xp`` CLI surface: list, run, resume, report."""

from __future__ import annotations

import json

from repro.cli import main


class TestList:
    def test_lists_the_paper_suite(self, capsys):
        assert main(["xp", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig04_compactness", "table03_sage", "ablation_rlc"):
            assert name in out

    def test_json_and_kind_filter(self, capsys):
        assert main(["xp", "list", "--kind", "table", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in doc["experiments"]}
        assert names == {"table01_02_policies", "table03_sage"}
        assert all(e["smoke_cells"] <= e["cells"] for e in doc["experiments"])


class TestRun:
    def test_run_resume_report_roundtrip(self, tmp_path, capsys):
        args = [
            "xp", "run", "fig07_pe_overhead", "--smoke", "--serial",
            "--store", str(tmp_path / "store"), "--out", str(tmp_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 cells" in out and "ok" in out
        assert (tmp_path / "report.md").is_file()
        assert (tmp_path / "xp" / "fig07_pe_overhead.md").is_file()

        assert main(args + ["--resume", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["executed_cells"] == 0
        assert record["cached_cells"] == 3

        assert (
            main(
                ["xp", "report", "fig07_pe_overhead", "--smoke",
                 "--store", str(tmp_path / "store"),
                 "--out", str(tmp_path)]
            )
            == 0
        )
        assert "report.md" in capsys.readouterr().out

    def test_run_requires_a_selection(self):
        try:
            main(["xp", "run", "--serial"])
        except SystemExit as exc:
            assert "--all" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected SystemExit")
