"""Registry semantics: declaration validation, grid expansion, paper suite."""

from __future__ import annotations

import itertools

import pytest

from repro.xp import registry
from repro.xp.registry import Experiment, ExperimentError, experiment


def _measure(session, params):
    return {"value": params.get("x", 0)}


def _exp(name, **overrides):
    kwargs = dict(
        name=name,
        kind="figure",
        anchor="Fig. 0",
        title="toy",
        matrix={"x": (1, 2), "y": ("a", "b", "c")},
        measure=_measure,
        schema=("value",),
    )
    kwargs.update(overrides)
    return Experiment(**kwargs)


class TestDeclaration:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown kind"):
            _exp("t_kind", kind="speculation")

    def test_empty_matrix_rejected(self):
        with pytest.raises(ExperimentError, match="empty scenario matrix"):
            _exp("t_empty", matrix={})

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError, match="no values"):
            _exp("t_axis", matrix={"x": ()})

    def test_smoke_must_override_known_axes(self):
        with pytest.raises(ExperimentError, match="unknown axes"):
            _exp("t_smoke", smoke={"z": (1,)})

    def test_headline_must_be_in_schema(self):
        with pytest.raises(ExperimentError, match="not in schema"):
            _exp("t_headline", headline=("missing",))

    def test_non_json_axis_rejected(self):
        with pytest.raises(ExperimentError, match="JSON"):
            _exp("t_json", matrix={"x": (object(),)})

    def test_duplicate_name_rejected(self):
        registry.register(_exp("t_dup_once"))
        with pytest.raises(ExperimentError, match="already registered"):
            registry.register(_exp("t_dup_once"))


class TestGrid:
    def test_scenarios_are_the_cartesian_product(self):
        exp = _exp("t_grid")
        cells = exp.scenarios()
        assert len(cells) == 6
        expected = [
            {"x": x, "y": y}
            for x, y in itertools.product((1, 2), ("a", "b", "c"))
        ]
        assert cells == expected

    def test_smoke_overrides_only_named_axes(self):
        exp = _exp("t_grid_smoke", smoke={"y": ("a",)})
        assert len(exp.scenarios(smoke=True)) == 2
        assert all(c["y"] == "a" for c in exp.scenarios(smoke=True))
        assert len(exp.scenarios()) == 6  # the full grid is untouched


class TestResultValidation:
    def test_schema_keys_required(self):
        exp = _exp("t_schema")
        with pytest.raises(ExperimentError, match="missing schema key"):
            exp.validate_result({"x": 1}, {"other": 2})

    def test_dict_required(self):
        exp = _exp("t_dict")
        with pytest.raises(ExperimentError, match="expected dict"):
            exp.validate_result({"x": 1}, [1, 2])

    def test_json_safety_required(self):
        exp = _exp("t_result_json")
        with pytest.raises(ExperimentError, match="JSON"):
            exp.validate_result({"x": 1}, {"value": object()})

    def test_valid_result_passes_through(self):
        exp = _exp("t_ok")
        result = {"value": 41, "extra": "fine"}
        assert exp.validate_result({"x": 1}, result) is result


class TestDecorator:
    def test_decorator_registers_and_attaches_check(self):
        @experiment(
            name="t_decorated",
            kind="table",
            anchor="Table 0",
            title="decorated toy",
            matrix={"x": (1,)},
            schema=("value",),
        )
        def measure(session, params):
            return {"value": 1}

        exp = registry.get_experiment("t_decorated")
        assert exp is measure.experiment
        assert exp.check is None

        @measure.check
        def check(cells, *, smoke):
            pass

        assert exp.check is check

    def test_unknown_lookup_names_known(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            registry.get_experiment("nope_never_registered")


class TestPaperSuite:
    def test_all_18_seed_scripts_are_registered(self):
        # Other tests register toy experiments; the paper suite is the
        # fig/table/ablation-prefixed subset.
        def paper(kind):
            return [
                n
                for n in registry.experiment_names(kind=kind)
                if n.startswith(("fig", "table", "ablation"))
            ]

        assert len(paper("figure")) == 10
        assert len(paper("table")) == 2
        assert len(paper("ablation")) == 6

    def test_every_experiment_declares_shape_and_claims(self):
        for exp in registry.all_experiments():
            if not exp.name.startswith(("fig", "table", "ablation")):
                continue  # toy experiments from other tests
            assert exp.schema, exp.name
            assert exp.check is not None, exp.name
            assert len(exp.scenarios(smoke=True)) <= len(exp.scenarios())
