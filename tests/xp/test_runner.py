"""Runner semantics: execution, cache hits, invalidation, partial resume.

The toy experiments here count real executions through marker files, so
cache hits are asserted as "the measure function did not run again", not
just as runner bookkeeping.
"""

from __future__ import annotations

import itertools
import json
import uuid
from pathlib import Path

from repro.xp.artifacts import ArtifactStore
from repro.xp.registry import Experiment, register
from repro.xp.runner import RunConfig, run_experiments

_SEQ = itertools.count()


def _marking_measure(session, params):
    marks = Path(params["dir"])
    marks.mkdir(parents=True, exist_ok=True)
    (marks / f"x{params['x']}-{uuid.uuid4().hex}").touch()
    return {"x2": params["x"] * 2}


def _failing_measure(session, params):
    if params["x"] == 2:
        raise ValueError("cell exploded")
    return _marking_measure(session, params)


def _wrong_shape_measure(session, params):
    return {"not_in_schema": 1}


def _toy(
    tmp_path,
    xs=(1, 2, 3),
    smoke=None,
    measure=_marking_measure,
    check=None,
):
    exp = Experiment(
        name=f"toy_runner_{next(_SEQ)}_{uuid.uuid4().hex[:6]}",
        kind="ablation",
        anchor="-",
        title="runner toy",
        matrix={"x": xs, "dir": (str(tmp_path / "marks"),)},
        smoke=smoke,
        measure=measure,
        schema=("x2",),
        check=check,
    )
    register(exp)
    return exp


def _marks(tmp_path) -> int:
    marks = tmp_path / "marks"
    return len(list(marks.iterdir())) if marks.exists() else 0


def _cfg(tmp_path, **kw) -> RunConfig:
    defaults = dict(
        processes=1,
        store_root=tmp_path / "store",
        out_dir=tmp_path / "out",
    )
    defaults.update(kw)
    return RunConfig(**defaults)


class TestExecution:
    def test_runs_grid_and_stores_artifacts(self, tmp_path):
        exp = _toy(tmp_path)
        summary = run_experiments([exp.name], _cfg(tmp_path))
        assert summary.ok
        assert summary.executed_cells == 3 and summary.cached_cells == 0
        assert _marks(tmp_path) == 3
        assert ArtifactStore(tmp_path / "store").count(exp.name) == 3
        results = [c.result for c in summary.experiments[0].cells]
        assert results == [{"x2": 2}, {"x2": 4}, {"x2": 6}]

    def test_run_record_is_journaled(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        run_experiments([exp.name], _cfg(tmp_path, resume=True))
        doc = json.loads((tmp_path / "out" / "xp_runner.json").read_text())
        assert [r["executed_cells"] for r in doc["runs"]] == [3, 0]
        assert doc["runs"][-1]["resume"] is True

    def test_reports_are_rendered(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        rollup = (tmp_path / "out" / "report.md").read_text()
        page = (tmp_path / "out" / "xp" / f"{exp.name}.md").read_text()
        assert exp.name in rollup
        assert "x2" in page and "measured" in page


class TestResume:
    def test_identical_scenario_is_a_cache_hit(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        again = run_experiments([exp.name], _cfg(tmp_path, resume=True))
        assert again.ok
        assert again.executed_cells == 0 and again.cached_cells == 3
        assert _marks(tmp_path) == 3  # the measure fn never ran again
        # Cached cells carry the stored results, so checks still see them.
        assert [c.result for c in again.experiments[0].cells] == [
            {"x2": 2}, {"x2": 4}, {"x2": 6},
        ]

    def test_config_digest_change_invalidates_resume(
        self, tmp_path, monkeypatch
    ):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        monkeypatch.setattr(
            ArtifactStore, "config_digest", lambda self: "new-hardware"
        )
        again = run_experiments([exp.name], _cfg(tmp_path, resume=True))
        assert again.executed_cells == 3 and again.cached_cells == 0
        assert _marks(tmp_path) == 6

    def test_partial_grid_resume_executes_only_the_gap(self, tmp_path):
        exp = _toy(tmp_path, smoke={"x": (1,)})
        first = run_experiments([exp.name], _cfg(tmp_path, smoke=True))
        assert first.executed_cells == 1
        full = run_experiments([exp.name], _cfg(tmp_path, resume=True))
        assert full.total_cells == 3
        assert full.cached_cells == 1  # the smoke cell is part of the grid
        assert full.executed_cells == 2
        assert _marks(tmp_path) == 3

    def test_deleted_artifact_is_remeasured(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        store = ArtifactStore(tmp_path / "store")
        victim = next(iter((tmp_path / "store" / exp.name).glob("*.json")))
        victim.unlink()
        again = run_experiments([exp.name], _cfg(tmp_path, resume=True))
        assert again.executed_cells == 1 and again.cached_cells == 2
        assert store.count(exp.name) == 3

    def test_force_drops_the_cache_first(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        again = run_experiments(
            [exp.name], _cfg(tmp_path, resume=True, force=True)
        )
        assert again.executed_cells == 3 and again.cached_cells == 0
        assert _marks(tmp_path) == 6


class TestIncrementalPersistence:
    def test_interrupted_batch_keeps_completed_cells(self, tmp_path):
        def measure(session, params):
            if params["x"] == 3:
                raise KeyboardInterrupt  # simulate Ctrl-C mid-batch
            return _marking_measure(session, params)

        exp = _toy(tmp_path, measure=measure)
        import pytest

        with pytest.raises(KeyboardInterrupt):
            run_experiments([exp.name], _cfg(tmp_path))
        # The two cells that finished before the interrupt survived...
        assert ArtifactStore(tmp_path / "store").count(exp.name) == 2
        exp.measure = _marking_measure
        resumed = run_experiments([exp.name], _cfg(tmp_path, resume=True))
        # ...so resume measures only the interrupted cell.
        assert resumed.executed_cells == 1 and resumed.cached_cells == 2

    def test_duplicate_names_run_once(self, tmp_path):
        exp = _toy(tmp_path)
        summary = run_experiments([exp.name, exp.name], _cfg(tmp_path))
        assert len(summary.experiments) == 1
        assert summary.total_cells == 3
        assert _marks(tmp_path) == 3

    def test_remote_backend_does_not_share_local_cache(self, tmp_path):
        from repro.xp.registry import Experiment as _E  # noqa: F401

        exp = _toy(tmp_path)
        store = ArtifactStore(tmp_path / "store")
        params = exp.scenarios()[0]
        local = store.cell_key(exp, params)
        assert store.cell_key(exp, params, backend="local") == local
        remote = store.cell_key(exp, params, backend="tcp://h:7342")
        assert remote != local


class TestCachedOnly:
    def test_report_mode_never_executes(self, tmp_path):
        exp = _toy(tmp_path, smoke={"x": (1,)})
        run_experiments([exp.name], _cfg(tmp_path, smoke=True))
        assert _marks(tmp_path) == 1
        summary = run_experiments(
            [exp.name], _cfg(tmp_path, cached_only=True, record=False)
        )
        assert _marks(tmp_path) == 1  # nothing measured
        run = summary.experiments[0]
        assert run.cached == 1 and run.skipped == 2
        assert "partial" in run.status
        assert summary.skipped_cells == 2

    def test_complete_store_reports_ok(self, tmp_path):
        exp = _toy(tmp_path)
        run_experiments([exp.name], _cfg(tmp_path))
        summary = run_experiments(
            [exp.name], _cfg(tmp_path, cached_only=True, record=False)
        )
        assert summary.ok and summary.cached_cells == 3
        assert summary.skipped_cells == 0


class TestFailures:
    def test_failed_cell_is_data_not_crash(self, tmp_path):
        exp = _toy(tmp_path, measure=_failing_measure)
        summary = run_experiments([exp.name], _cfg(tmp_path))
        assert not summary.ok
        run = summary.experiments[0]
        assert run.failed == 1 and run.executed == 2
        assert "cell exploded" in run.status or "failed" in run.status
        bad = next(c for c in run.cells if not c.ok)
        assert "ValueError" in bad.error
        # Failed cells are never persisted: a later resume retries them.
        assert ArtifactStore(tmp_path / "store").count(exp.name) == 2

    def test_incomplete_grid_skips_the_check(self, tmp_path):
        def check(cells, *, smoke):
            raise AssertionError("must not run on incomplete grids")

        exp = _toy(tmp_path, measure=_failing_measure, check=check)
        summary = run_experiments([exp.name], _cfg(tmp_path))
        assert summary.experiments[0].check_error is None
        assert not summary.ok  # the failed cell still fails the run

    def test_check_failure_is_reported(self, tmp_path):
        def check(cells, *, smoke):
            assert len(cells) == 99, "paper pin violated"

        exp = _toy(tmp_path, check=check)
        summary = run_experiments([exp.name], _cfg(tmp_path))
        assert not summary.ok
        assert "paper pin violated" in summary.experiments[0].status

    def test_schema_violation_fails_the_cell(self, tmp_path):
        exp = _toy(tmp_path, measure=_wrong_shape_measure)
        summary = run_experiments([exp.name], _cfg(tmp_path))
        assert summary.failed_cells == 3
        assert "missing schema key" in summary.experiments[0].cells[0].error
