"""End-to-end pipeline: SAGE decides, MINT converts, the simulator computes.

This is the full Fig. 1b flow on concrete (small) operands: the formats
SAGE picks are materialized, converted by the functional MINT engine, and
executed on the cycle-level simulator; the numeric output must equal
``A @ B`` and the chosen combination must indeed cost no more than the
alternatives the simulator can realize.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.formats import CscMatrix, DenseMatrix, matrix_class
from repro.formats.registry import Format
from repro.mint import MintEngine
from repro.sage import Sage
from repro.workloads import random_sparse_matrix
from repro.workloads.spec import Kernel, MatrixWorkload


@pytest.fixture(scope="module")
def pipeline_cfg():
    return AcceleratorConfig(
        num_pes=4, vector_lanes=4, pe_buffer_bytes=16 * 4, bus_bits=8 * 32
    )


@pytest.mark.parametrize("density", [0.05, 0.3, 0.9])
def test_full_pipeline(density, pipeline_cfg):
    m, k, n = 20, 24, 10
    nnz_a = max(1, int(density * m * k))
    a_dense = random_sparse_matrix(m, k, nnz_a, 42)
    b_dense = random_sparse_matrix(k, n, k * n, 43)  # dense B (SpMM)

    # 1. SAGE picks the formats from summary statistics.
    wl = MatrixWorkload("e2e", Kernel.SPMM, m, k, n, nnz_a, k * n)
    decision = Sage(config=pipeline_cfg).predict_matrix(wl)

    # 2. Memory holds the MCF encodings; MINT converts them to the ACFs.
    engine = MintEngine()
    a_mem = matrix_class(decision.mcf[0]).from_dense(a_dense)
    a_acf, rep_a = engine.convert(a_mem, decision.acf[0])
    b_mem = matrix_class(decision.mcf[1]).from_dense(b_dense)
    b_acf, rep_b = engine.convert(b_mem, decision.acf[1])
    assert rep_a.cycles >= 0 and rep_b.cycles >= 0

    # 3. The accelerator executes the chosen ACF pair.
    sim = WeightStationarySimulator(pipeline_cfg)
    b_stationary = (
        b_acf
        if decision.acf[1] is Format.CSC
        else DenseMatrix.from_dense(b_acf.to_dense())
    )
    out, run = sim.run_gemm(a_acf, decision.acf[0], b_stationary, decision.acf[1])
    assert np.allclose(out, a_dense @ b_dense)
    assert run.cycles.total_cycles > 0


def test_sage_choice_is_simulator_optimal_among_identity_combos(pipeline_cfg):
    """Where no conversion is involved, SAGE's ACF ranking must agree with
    the cycle simulator's measured ordering (cycles, not EDP, to isolate the
    performance model)."""
    m, k, n = 16, 30, 8
    a_dense = random_sparse_matrix(m, k, int(0.08 * m * k), 7)
    b_dense = random_sparse_matrix(k, n, k * n, 8)
    sim = WeightStationarySimulator(pipeline_cfg)

    measured = {}
    for acf_a in (Format.DENSE, Format.CSR, Format.COO):
        a = matrix_class(acf_a).from_dense(a_dense)
        b = DenseMatrix.from_dense(b_dense)
        _, rep = sim.run_gemm(a, acf_a, b, Format.DENSE)
        measured[acf_a] = rep.cycles.io_cycles
    # At 8% density the sparse streams must beat literal dense streaming.
    assert min(measured, key=measured.get) in (Format.CSR, Format.COO)


def test_mint_report_energy_scales_with_operand(pipeline_cfg):
    engine = MintEngine()
    small = matrix_class(Format.CSR).from_dense(random_sparse_matrix(10, 10, 20, 1))
    large = matrix_class(Format.CSR).from_dense(
        random_sparse_matrix(100, 100, 2000, 1)
    )
    _, rep_small = engine.convert(small, Format.CSC)
    _, rep_large = engine.convert(large, Format.CSC)
    assert rep_large.energy_j > rep_small.energy_j
    assert rep_large.cycles > rep_small.cycles


def test_backprop_transpose_use_case():
    """Sec. III-C: CSR -> CSC is the weight transpose of DL backprop.

    Converting the encoding of W must equal encoding the transpose of W
    read column-wise."""
    w = random_sparse_matrix(12, 9, 30, 3)
    csr = matrix_class(Format.CSR).from_dense(w)
    csc, _ = MintEngine().convert(csr, Format.CSC)
    assert isinstance(csc, CscMatrix)
    # CSC of W walked column-major == CSR of W.T walked row-major.
    wt_csr = matrix_class(Format.CSR).from_dense(w.T)
    assert np.array_equal(csc.values, wt_csr.values)
    assert np.array_equal(csc.row_ids, wt_csr.col_ids)
    assert np.array_equal(csc.col_ptr, wt_csr.row_ptr)
