"""Tensor kernels executed on the cycle-level accelerator via matricization.

Closes the loop the analytical tensor model assumes: SpTTM and MTTKRP
really are GEMMs over unfoldings, so the *cycle simulator* — not just the
closed-form model — can execute them and reproduce the einsum oracles.
Also validates the structural claim behind the CSF streaming spec: CSR rows
of the mode-3 unfolding are exactly the CSF fibers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
from repro.formats import CsfTensor, CsrMatrix, DenseMatrix
from repro.formats.registry import Format
from repro.kernels.matricize import (
    fold_mode3,
    khatri_rao,
    matricize_mode1,
    matricize_mode3,
)
from repro.kernels.reference import ref_mttkrp, ref_spttm
from tests.conftest import make_sparse


@pytest.fixture
def fabric():
    return AcceleratorConfig(
        num_pes=4, vector_lanes=4, pe_buffer_bytes=24 * 4, bus_bits=8 * 32
    )


class TestMatricize:
    def test_mode3_rows_are_fibers(self, small_tensor):
        unfolded = matricize_mode3(small_tensor)
        csr = CsrMatrix.from_dense(unfolded)
        csf = CsfTensor.from_dense(small_tensor)
        # Nonempty CSR rows == CSF fibers, with identical leaf counts.
        lengths = csr.row_lengths()
        assert int((lengths > 0).sum()) == csf.nfibers
        fiber_rows = (
            csf.to_coo().x_ids * small_tensor.shape[1] + csf.to_coo().y_ids
        )
        assert np.array_equal(
            np.sort(np.unique(fiber_rows)), np.flatnonzero(lengths > 0)
        )

    def test_khatri_rao_known_value(self):
        b = np.array([[1.0, 2.0], [3.0, 4.0]])
        c = np.array([[5.0, 6.0], [7.0, 8.0]])
        kr = khatri_rao(b, c)
        assert kr.shape == (4, 2)
        assert np.allclose(kr[:, 0], [5.0, 7.0, 15.0, 21.0])

    def test_khatri_rao_rejects_rank_mismatch(self, rng):
        with pytest.raises(ValueError):
            khatri_rao(rng.random((3, 2)), rng.random((4, 3)))

    def test_fold_unfold_roundtrip(self, small_tensor):
        unfolded = matricize_mode3(small_tensor)
        folded = fold_mode3(unfolded, small_tensor.shape)
        assert np.array_equal(folded, small_tensor)


class TestSpttmOnSimulator:
    @pytest.mark.parametrize("density", [0.05, 0.25])
    @pytest.mark.parametrize("acf_t", [Format.CSR, Format.COO, Format.DENSE])
    def test_matches_einsum(self, density, acf_t, fabric, rng):
        shape, rank = (5, 6, 8), 3
        x = make_sparse(rng, shape, density)
        u = rng.random((shape[2], rank))
        unfolded = matricize_mode3(x)
        from repro.formats import CooMatrix

        enc = {
            Format.CSR: CsrMatrix,
            Format.COO: CooMatrix,
            Format.DENSE: DenseMatrix,
        }[acf_t].from_dense(unfolded)
        sim = WeightStationarySimulator(fabric)
        out, rep = sim.run_gemm(enc, acf_t, DenseMatrix.from_dense(u), Format.DENSE)
        assert np.allclose(fold_mode3(out, shape), ref_spttm(x, u))
        assert rep.cycles.total_cycles > 0


class TestMttkrpOnSimulator:
    @pytest.mark.parametrize("density", [0.1, 0.4])
    def test_matches_einsum(self, density, fabric, rng):
        shape, rank = (4, 5, 6), 3
        x = make_sparse(rng, shape, density)
        b = rng.random((shape[1], rank))
        c = rng.random((shape[2], rank))
        unfolded = matricize_mode1(x)  # I x (J*K)
        kr = khatri_rao(b, c)  # (J*K) x R
        sim = WeightStationarySimulator(fabric)
        out, _ = sim.run_gemm(
            CsrMatrix.from_dense(unfolded),
            Format.CSR,
            DenseMatrix.from_dense(kr),
            Format.DENSE,
        )
        assert np.allclose(out, ref_mttkrp(x, b, c))

    def test_csf_streaming_cheaper_than_coo_for_clustered_fibers(self, fabric, rng):
        """The Table III intuition on real hardware: fiber-clustered tensors
        stream cheaper row-grouped (CSR of the unfolding ~= CSF) than COO."""
        x = np.zeros((4, 4, 24))
        x[0, 1, :] = 1.0  # two long fibers
        x[2, 3, :] = 2.0
        unfolded = matricize_mode3(x)
        sim = WeightStationarySimulator(fabric)
        from repro.formats import CooMatrix

        csr_cycles = sim.stream_cycles_only(
            CsrMatrix.from_dense(unfolded), Format.CSR
        )
        coo_cycles = sim.stream_cycles_only(
            CooMatrix.from_dense(unfolded), Format.COO
        )
        assert csr_cycles < coo_cycles
