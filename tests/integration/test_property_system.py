"""System-level hypothesis properties: simulator and conversion engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (
    AcceleratorConfig,
    WeightStationarySimulator,
    analytical_gemm,
)
from repro.formats import CooMatrix, CscMatrix, CsrMatrix, DenseMatrix
from repro.formats.registry import MATRIX_FORMATS, Format
from repro.mint import MintEngine

ENCODERS = {
    Format.DENSE: DenseMatrix,
    Format.CSR: CsrMatrix,
    Format.COO: CooMatrix,
    Format.CSC: CscMatrix,
}


@st.composite
def gemm_cases(draw):
    """Random (A, B, config, acf pair) simulator cases."""
    m = draw(st.integers(1, 8))
    k = draw(st.integers(1, 10))
    n = draw(st.integers(1, 6))
    density = draw(st.sampled_from([0.1, 0.4, 0.9]))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    a = (0.5 + rng.random((m, k))) * (rng.random((m, k)) < density)
    b = (0.5 + rng.random((k, n))) * (rng.random((k, n)) < density)
    acf_a = draw(st.sampled_from(list(ENCODERS)))
    acf_b = draw(st.sampled_from([Format.DENSE, Format.CSC]))
    bus = draw(st.sampled_from([4, 5, 8, 16]))
    buf = draw(st.sampled_from([3, 6, 16]))
    pes = draw(st.integers(1, 5))
    cfg = AcceleratorConfig(
        num_pes=pes, vector_lanes=2, pe_buffer_bytes=buf * 4, bus_bits=bus * 32
    )
    return a, b, acf_a, acf_b, cfg


@given(case=gemm_cases())
@settings(max_examples=60, deadline=None)
def test_simulator_always_computes_matmul(case):
    a, b, acf_a, acf_b, cfg = case
    a_enc = ENCODERS[acf_a].from_dense(a)
    b_enc = (
        CscMatrix.from_dense(b) if acf_b is Format.CSC else DenseMatrix.from_dense(b)
    )
    out, rep = WeightStationarySimulator(cfg).run_gemm(a_enc, acf_a, b_enc, acf_b)
    assert np.allclose(out, a @ b)
    assert rep.cycles.matched_macs <= max(rep.cycles.issued_macs, 1)
    assert rep.energy.total_j >= 0.0


@given(case=gemm_cases())
@settings(max_examples=40, deadline=None)
def test_analytical_always_matches_simulator(case):
    a, b, acf_a, acf_b, cfg = case
    a_enc = ENCODERS[acf_a].from_dense(a)
    b_enc = (
        CscMatrix.from_dense(b) if acf_b is Format.CSC else DenseMatrix.from_dense(b)
    )
    _, sim = WeightStationarySimulator(cfg).run_gemm(a_enc, acf_a, b_enc, acf_b)
    ana = analytical_gemm(a_enc, acf_a, b_enc, acf_b, cfg)
    assert ana.cycles == sim.cycles


@given(
    seed=st.integers(0, 2**16),
    density=st.sampled_from([0.0, 0.15, 0.6]),
    src=st.sampled_from(list(MATRIX_FORMATS)),
    dst=st.sampled_from(list(MATRIX_FORMATS)),
)
@settings(max_examples=80, deadline=None)
def test_mint_engine_preserves_values(seed, density, src, dst):
    from repro.formats import matrix_class

    rng = np.random.default_rng(seed)
    dense = (0.5 + rng.random((7, 9))) * (rng.random((7, 9)) < density)
    out, report = MintEngine().convert(matrix_class(src).from_dense(dense), dst)
    assert np.array_equal(out.to_dense(), dense)
    assert report.cycles >= 0 and report.energy_j >= 0.0
    assert (report.cycles == 0) == (src is dst)
