"""fork_map transports: parity, preflight cost, degradation, cleanup."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.util import shm
from repro.util.pool import fork_map

_BIG = np.arange(200_000, dtype=np.float64)  # above any min_bytes default


def _checksum(item):
    tag, arr = item
    return tag, float(arr.sum()), arr.dtype.str


def _double(x):
    return x * 2


def _boom(x):
    if x == 3:
        raise AttributeError("worker-side bug")
    return x


class _CountedItem:
    """Counts how many times any instance crosses a pickler."""

    pickled = 0  # class-wide, reset per test

    def __init__(self, value: int) -> None:
        self.value = value

    def __getstate__(self):
        type(self).pickled += 1
        return {"value": self.value}

    def __setstate__(self, state):
        self.value = state["value"]


def _value_of(item: _CountedItem) -> int:
    return item.value


def _first(item):
    return item[0]


class TestParity:
    @pytest.mark.parametrize("transport", ["shm", "pickle", "auto"])
    def test_transports_match_sequential(self, transport):
        items = [(i, _BIG * (i + 1)) for i in range(6)]
        expected = [_checksum(item) for item in items]
        got = fork_map(items=items, fn=_checksum, processes=3,
                       transport=transport)
        assert got == expected

    def test_consume_sees_results_in_order(self):
        seen = []
        out = fork_map(_double, list(range(8)), processes=2,
                       consume=seen.append, transport="shm")
        assert seen == out == [2 * i for i in range(8)]

    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            fork_map(_double, [1], transport="carrier-pigeon")

    def test_env_override_forces_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        assert fork_map(_double, [1, 2, 3], processes=2) == [2, 4, 6]


class TestPreflight:
    def test_probe_is_one_sample_not_the_whole_batch(self):
        # The seed preflight pickled (fn, items, initargs) wholesale —
        # every item serialized twice per run.  The probe must cost one
        # sample; the pool itself then pickles each item once.
        _CountedItem.pickled = 0
        items = [_CountedItem(i) for i in range(10)]
        out = fork_map(_value_of, items, processes=2, transport="pickle")
        assert out == list(range(10))
        # 1 probe + n submits; the old code's floor was 2n.
        assert _CountedItem.pickled <= len(items) + 1

    def test_unpicklable_first_item_degrades_sequentially(self):
        items = [(0, lambda: None), (1, None)]
        assert fork_map(_first, items, processes=2) == [0, 1]

    def test_unpicklable_later_item_degrades_with_cleanup(self):
        # The probe samples item[0]; a poison pill further in must still
        # degrade — and under shm, without leaking exported segments.
        items = [(0, _BIG), (1, lambda: None), (2, _BIG)]
        out = fork_map(_first, items, processes=2, transport="shm")
        assert out == [0, 1, 2]
        assert shm.active_operand_segments() == []

    def test_worker_bug_propagates(self):
        # Exceptions escaping the pool after the preflight passes are
        # genuine worker bugs: never misread as "degrade sequentially".
        for transport in ("shm", "pickle"):
            with pytest.raises(AttributeError, match="worker-side bug"):
                fork_map(_boom, list(range(6)), processes=2,
                         transport=transport)


class TestShmLifecycle:
    def test_no_segments_after_success(self):
        items = [(i, _BIG) for i in range(6)]
        fork_map(_checksum, items, processes=3, transport="shm")
        assert shm.active_operand_segments() == []

    def test_no_segments_after_worker_error(self):
        with pytest.raises(AttributeError):
            fork_map(_boom, list(range(6)), processes=2, transport="shm")
        assert shm.active_operand_segments() == []

    def test_no_segments_after_interrupt(self):
        # A KeyboardInterrupt mid-consume models ^C mid-batch: the
        # finally must still unlink every exported segment.
        def interrupter(result):
            raise KeyboardInterrupt

        items = [(i, _BIG) for i in range(6)]
        with pytest.raises(KeyboardInterrupt):
            fork_map(_checksum, items, processes=2, consume=interrupter,
                     transport="shm")
        assert shm.active_operand_segments() == []

    def test_stationary_operand_crosses_once(self):
        # One shared stationary array across the batch must occupy one
        # segment, not one per job (the whole point of the plane).
        stationary = np.ones(100_000)
        plane = shm.OperandPlane(min_bytes=1)
        try:
            plane.export([(i, stationary) for i in range(32)])
            assert len(plane.segment_names) == 1
        finally:
            plane.close()


class TestDegradation:
    def test_single_item_runs_in_process(self):
        marker = []
        out = fork_map(lambda x: marker.append(x) or x, [41], processes=8)
        assert out == [41] and marker == [41]

    def test_processes_one_runs_in_process(self):
        marker = []
        fork_map(lambda x: marker.append(x) or x, [1, 2], processes=1)
        assert marker == [1, 2]

    def test_explicit_shm_without_support_falls_back(self, monkeypatch):
        # shm_available() False (simulated) must not break transport="shm".
        monkeypatch.setattr(shm, "shm_available", lambda: False)
        out = fork_map(_double, [1, 2, 3, 4], processes=2, transport="shm")
        assert out == [2, 4, 6, 8]
