"""The zero-copy operand plane: export/attach, dedup, lifecycle, cache."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.util import shm


def _assert_no_segments():
    assert shm.active_operand_segments() == []


needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="no shared memory on this platform"
)


@needs_shm
class TestExportAttach:
    def test_round_trip_bit_identical(self):
        rng = np.random.default_rng(7)
        arr = rng.normal(size=(64, 48))
        with shm.OperandPlane(min_bytes=1) as plane:
            obj = shm.loads(plane.export({"a": arr, "tag": 3}))
            assert obj["tag"] == 3
            assert obj["a"].dtype == arr.dtype
            assert np.array_equal(obj["a"], arr)

    def test_attached_views_are_read_only(self):
        arr = np.ones((32, 32))
        with shm.OperandPlane(min_bytes=1) as plane:
            view = shm.loads(plane.export(arr))
            with pytest.raises(ValueError):
                view[0, 0] = 2.0

    def test_small_arrays_ride_the_pickle(self):
        small = np.arange(4, dtype=np.float64)  # 32 bytes
        with shm.OperandPlane(min_bytes=1024) as plane:
            payload = plane.export(small)
            assert plane.segment_names == []
            out = shm.loads(payload)
            assert out.flags.writeable  # plain pickled copy, not a view
            assert np.array_equal(out, small)

    def test_object_dtype_never_offloaded(self):
        arr = np.array([{"k": 1}, None], dtype=object)
        with shm.OperandPlane(min_bytes=1) as plane:
            assert shm.loads(plane.export(arr))[0] == {"k": 1}
            assert plane.segment_names == []

    def test_shared_array_exported_once(self):
        # The weight-stationary batch shape: one operand, many jobs.
        big = np.zeros((256, 256))
        with shm.OperandPlane(min_bytes=1) as plane:
            jobs = [(i, big) for i in range(16)]
            out = shm.loads(plane.export(jobs))
            assert len(plane.segment_names) == 1
            assert plane.exported_bytes == big.nbytes
            # Identity is preserved on the receiving side too.
            assert all(job[1] is out[0][1] for job in out)

    def test_identity_stable_across_separate_payloads(self):
        # A pool sends one payload per job; every payload referencing the
        # same exported array must attach to the *same* view object, or
        # identity-keyed derived-state caches (the scheduler's stationary
        # memo) could never hit across jobs.
        big = np.arange(100_000, dtype=np.float64)
        with shm.OperandPlane(min_bytes=1) as plane:
            first = shm.loads(plane.export((1, big)))
            second = shm.loads(plane.export((2, big)))
            assert first[1] is second[1]

    def test_nested_structures_reach_the_plane(self):
        arr = np.full((100, 100), 2.5)
        nested = {"jobs": [((arr, "meta"), [arr]), (None, [])]}
        with shm.OperandPlane(min_bytes=1) as plane:
            out = shm.loads(plane.export(nested))
            assert np.array_equal(out["jobs"][0][1][0], arr)

    def test_refs_are_compact(self):
        big = np.zeros(1 << 20)  # 8 MiB
        with shm.OperandPlane(min_bytes=1) as plane:
            payload = plane.export((big, big, big))
            assert len(payload) < 4096  # descriptors, not data

    def test_unpicklable_payload_propagates(self):
        with shm.OperandPlane(min_bytes=1) as plane:
            with pytest.raises(
                (pickle.PicklingError, AttributeError, TypeError)
            ):
                plane.export(lambda: None)
        _assert_no_segments()


@needs_shm
class TestLifecycle:
    def test_close_unlinks_everything(self):
        plane = shm.OperandPlane(min_bytes=1)
        plane.export([np.ones(512), np.zeros(512)])
        assert len(plane.segment_names) == 2
        plane.close()
        assert plane.segment_names == []
        _assert_no_segments()

    def test_close_is_idempotent(self):
        plane = shm.OperandPlane(min_bytes=1)
        plane.export(np.ones(512))
        plane.close()
        plane.close()
        _assert_no_segments()

    def test_context_manager_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with shm.OperandPlane(min_bytes=1) as plane:
                plane.export(np.ones(512))
                raise RuntimeError("mid-batch failure")
        _assert_no_segments()

    def test_segment_names_carry_the_leak_check_prefix(self):
        with shm.OperandPlane(min_bytes=1) as plane:
            plane.export(np.ones(512))
            assert all(
                name.startswith(shm.SEGMENT_PREFIX)
                for name in plane.segment_names
            )

    def test_ref_nbytes(self):
        ref = shm.OperandRef(segment="x", dtype="<f8", shape=(8, 4))
        assert ref.nbytes == 8 * 4 * 8


@needs_shm
class TestOperandCacheNamespace:
    def test_prefix_must_be_scannable(self):
        with pytest.raises(ValueError):
            shm.OperandCacheNamespace("someplace-else")

    def test_get_or_build_builds_once(self):
        ns = shm.OperandCacheNamespace(f"{shm.SEGMENT_PREFIX}-t1")
        calls = []

        def build():
            calls.append(1)
            return np.arange(1000, dtype=np.float64)

        try:
            first = ns.get_or_build(("k", 1), build)
            second = ns.get_or_build(("k", 1), build)
            assert len(calls) == 1
            assert np.array_equal(first, second)
        finally:
            ns.unlink_all()
        _assert_no_segments()

    def test_second_namespace_attaches_instead_of_building(self):
        # Two namespaces with one prefix model two cooperating processes.
        prefix = f"{shm.SEGMENT_PREFIX}-t2"
        writer = shm.OperandCacheNamespace(prefix)
        reader = shm.OperandCacheNamespace(prefix)
        built = writer.get_or_build(
            ("w", 9), lambda: np.full((64, 64), 3.25)
        )
        try:
            attached = reader.get_or_build(
                ("w", 9),
                lambda: (_ for _ in ()).throw(AssertionError("rebuilt")),
            )
            assert np.array_equal(attached, built)
            assert not attached.flags.writeable
        finally:
            writer.unlink_all()
        _assert_no_segments()

    def test_unlink_all_reports_removals(self):
        ns = shm.OperandCacheNamespace(f"{shm.SEGMENT_PREFIX}-t3")
        ns.get_or_build(("a",), lambda: np.ones(100))
        ns.get_or_build(("b",), lambda: np.ones(200))
        assert ns.unlink_all() == 2
        assert ns.unlink_all() == 0
        _assert_no_segments()
