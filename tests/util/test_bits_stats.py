"""Bit-accounting helpers and statistics utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bits_for_count,
    bits_for_index,
    bits_to_bytes,
    ceil_div,
    ceil_log2,
)
from repro.util.stats import geomean, normalized, summarize


class TestCeilLog2:
    @pytest.mark.parametrize(
        "value,expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)],
    )
    def test_values(self, value, expected):
        assert ceil_log2(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(1, 10**9))
    def test_is_ceiling(self, v):
        b = ceil_log2(v)
        assert 2**b >= v
        assert b == 0 or 2 ** (b - 1) < v


class TestIndexAndCountBits:
    def test_index_floor_one_bit(self):
        assert bits_for_index(1) == 1
        assert bits_for_index(2) == 1
        assert bits_for_index(3) == 2

    def test_count_includes_zero(self):
        # Counter spanning 0..4 needs 3 bits (5 values).
        assert bits_for_count(4) == 3
        assert bits_for_count(0) == 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            bits_for_index(0)
        with pytest.raises(ValueError):
            bits_for_count(-1)


class TestCeilDiv:
    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_math(self, n, d):
        assert ceil_div(n, d) == -(-n // d)

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_bytes(self):
        assert bits_to_bytes(1) == 1
        assert bits_to_bytes(8) == 1
        assert bits_to_bytes(9) == 2


class TestStats:
    def test_geomean_of_constant(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_geomean_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_normalized(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)

    def test_summarize_alignment(self):
        text = summarize({"a": 1.0, "longer": 2.0})
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].index(":") == lines[1].index(":")
        assert summarize({}) == "(empty)"
