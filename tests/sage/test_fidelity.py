"""SAGE fidelity tiers: the cycle-simulator validation of analytical picks."""

from __future__ import annotations

import pytest

from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage.predictor import Sage, SageDecision, _proxy_workload
from repro.sage.spaces import MATRIX_ACF_STREAMED
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _wl(m: int = 96, k: int = 96, n: int = 64,
        density: float = 0.1) -> MatrixWorkload:
    return MatrixWorkload("fid", Kernel.SPMM, m=m, k=k, n=n,
                          nnz_a=max(1, int(density * m * k)), nnz_b=k * n)


class TestCycleTier:
    @pytest.fixture(scope="class")
    def decision(self):
        return Sage().predict_matrix(_wl(), fidelity="cycle")

    def test_decision_is_cycle_fidelity(self, decision):
        assert decision.fidelity == "cycle"
        assert decision.best is decision.ranking[0]
        assert all(
            decision.ranking[i].edp <= decision.ranking[i + 1].edp
            for i in range(len(decision.ranking) - 1)
        )

    def test_extra_streamable_acf_joins_the_candidates(self, decision):
        # ELL is registered in the streaming-protocol registry but absent
        # from the analytical search space: the cycle tier is its entry
        # point into SAGE decisions.
        assert Format.ELL not in MATRIX_ACF_STREAMED
        assert Format.ELL in {cand.acf[0] for cand in decision.ranking}

    def test_cycle_costs_come_from_the_simulator(self, decision):
        analytical = Sage().predict_matrix(_wl())
        by_combo = {(c.mcf, c.acf): c for c in analytical.ranking}
        shared = [
            (cand, by_combo[(cand.mcf, cand.acf)])
            for cand in decision.ranking
            if (cand.mcf, cand.acf) in by_combo
        ]
        assert shared  # the tiers rank overlapping candidates
        assert any(
            cyc.compute_cycles != ana.compute_cycles for cyc, ana in shared
        )

    def test_wire_roundtrip_preserves_fidelity(self, decision):
        rebuilt = SageDecision.from_wire(decision.to_wire())
        assert rebuilt.fidelity == "cycle"
        assert rebuilt.sim_scale == decision.sim_scale

    def test_small_workload_simulated_at_exact_scale(self, decision):
        assert decision.sim_scale == 1.0
        assert "proxy" not in decision.summary()

    def test_summary_labels_the_tier(self, decision):
        assert "[cycle]" in decision.summary()


class TestProxyWorkload:
    def test_small_workload_passes_through(self):
        wl = _wl()
        assert _proxy_workload(wl, 1 << 18) is wl

    def test_large_workload_scaled_density_preserved(self):
        wl = MatrixWorkload("big", Kernel.SPMM, m=8192, k=8192, n=4096,
                            nnz_a=1_000_000, nnz_b=8192 * 4096)
        proxy = _proxy_workload(wl, 1 << 14)
        assert max(proxy.m * proxy.k, proxy.k * proxy.n) <= 1 << 14
        assert proxy.density_a == pytest.approx(wl.density_a, rel=0.25)
        assert proxy.b_is_dense == wl.b_is_dense

    def test_cycle_tier_declares_proxy_scale(self):
        wl = MatrixWorkload("big", Kernel.SPMM, m=4096, k=4096, n=2048,
                            nnz_a=400_000, nnz_b=4096 * 2048)
        decision = Sage().predict_matrix(wl, fidelity="cycle")
        assert decision.fidelity == "cycle"
        # The proxy scaling is declared, on the object and on the wire,
        # so proxy-scale cycles are never mistaken for full-scale ones.
        assert 0.0 < decision.sim_scale < 1.0
        assert decision.to_wire()["sim_scale"] == decision.sim_scale
        assert "proxy" in decision.summary()


class TestValidation:
    def test_unknown_fidelity_rejected(self):
        with pytest.raises(PredictionError, match="unknown fidelity"):
            Sage().predict_matrix(_wl(), fidelity="oracular")

    def test_tensor_cycle_fidelity_rejected(self):
        wl = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 800, rank=8)
        with pytest.raises(PredictionError, match="analytical-only"):
            Sage().predict_tensor(wl, fidelity="cycle")

    def test_predict_many_checks_fidelity_upfront(self):
        with pytest.raises(PredictionError, match="unknown fidelity"):
            Sage().predict_many([_wl()], fidelity="oracular")


class TestBatchCycleTier:
    def test_predict_many_at_cycle_fidelity(self):
        workloads = [_wl(), _wl(m=80, density=0.3)]
        decisions = Sage().predict_many(workloads, fidelity="cycle",
                                        processes=2)
        assert [d.fidelity for d in decisions] == ["cycle", "cycle"]
        assert [d.workload_name for d in decisions] == ["fid", "fid"]
