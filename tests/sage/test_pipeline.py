"""Pipeline planner: chained kernels with carried inter-stage formats."""

from __future__ import annotations

import pytest

from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage import Sage, plan_chain
from repro.workloads.dnn import CONV_LAYERS, PruningStrategy, layer_gemm
from repro.workloads.spec import Kernel, MatrixWorkload


def _stage(name: str, density: float, m: int = 500, k: int = 500, n: int = 250):
    return MatrixWorkload(
        name=name, kernel=Kernel.SPMM, m=m, k=k, n=n,
        nnz_a=max(1, int(density * m * k)), nnz_b=k * n,
    )


class TestPlanChain:
    def test_formats_carried_between_stages(self):
        plan = plan_chain([_stage("a", 0.1), _stage("b", 0.1), _stage("c", 0.1)])
        for prev, cur in zip(plan.stages, plan.stages[1:]):
            assert cur.inherited_mcf is prev.carried_out
            assert cur.decision.best.mcf[0] is prev.carried_out

    def test_first_stage_free_by_default(self):
        plan = plan_chain([_stage("a", 0.05)])
        assert plan.stages[0].inherited_mcf is None

    def test_first_input_constraint_respected(self):
        plan = plan_chain(
            [_stage("a", 0.05)], first_input_mcf=Format.CSR
        )
        assert plan.stages[0].decision.best.mcf[0] is Format.CSR

    def test_totals_are_sums(self):
        plan = plan_chain([_stage("a", 0.1), _stage("b", 0.02)])
        assert plan.total_cycles == sum(
            s.decision.best.total_cycles for s in plan.stages
        )
        assert plan.total_energy_j == pytest.approx(
            sum(s.decision.best.total_energy_j for s in plan.stages)
        )
        assert plan.edp > 0

    def test_empty_chain_rejected(self):
        with pytest.raises(PredictionError):
            plan_chain([])

    def test_summary_renders_all_stages(self):
        plan = plan_chain([_stage("a", 0.1), _stage("b", 0.1)])
        text = plan.summary()
        assert text.count("stage") == 2
        assert "total:" in text

    def test_constrained_plan_never_beats_free_per_stage(self):
        """Carrying a format can only cost as much as re-deciding freely
        per stage (the free per-stage optimum is a lower bound that ignores
        the DRAM re-encoding it would actually require)."""
        workloads = [_stage("a", 0.08), _stage("b", 0.08)]
        sage = Sage()
        plan = plan_chain(workloads, sage)
        free = sum(sage.predict_matrix(wl).best.edp for wl in workloads)
        chained = sum(s.decision.best.edp for s in plan.stages)
        assert chained >= free * 0.999

    def test_cnn_chain_plans_end_to_end(self):
        workloads = [
            layer_gemm(layer, PruningStrategy.GLOBAL_70)
            for layer in CONV_LAYERS[:3]
        ]
        plan = plan_chain(workloads)
        assert len(plan.stages) == 3
        # Every stage's streamed ACF must be realizable from its MCF.
        for s in plan.stages:
            assert s.decision.best.edp > 0
