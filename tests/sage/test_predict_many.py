"""Batch SAGE search: ``Sage.predict_many`` over a workload suite."""

from __future__ import annotations

import os

import pytest

from repro.sage import Sage
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


class _WorkerBugSage(Sage):
    """Picklable predictor whose bug only manifests inside pool workers."""

    def __init__(self) -> None:
        super().__init__()
        self._parent_pid = os.getpid()

    def predict(self, workload, **kwargs):
        if os.getpid() != self._parent_pid:
            raise AttributeError("worker-side bug")
        return super().predict(workload, **kwargs)


def _suite() -> list[MatrixWorkload | TensorWorkload]:
    return [
        MatrixWorkload("mm-a", Kernel.SPMM, m=256, k=256, n=128,
                       nnz_a=2_000, nnz_b=256 * 128),
        MatrixWorkload("mm-b", Kernel.SPGEMM, m=300, k=200, n=100,
                       nnz_a=1_500, nnz_b=900),
        TensorWorkload("tt-a", Kernel.SPTTM, shape=(32, 32, 32),
                       nnz=1_000, rank=16),
        MatrixWorkload("mm-c", Kernel.SPMM, m=128, k=512, n=64,
                       nnz_a=4_000, nnz_b=512 * 64),
    ]


class TestPredictMany:
    def test_sequential_matches_per_workload_calls(self):
        sage = Sage()
        suite = _suite()
        batch = sage.predict_many(suite, processes=1)
        singles = [sage.predict(wl) for wl in suite]
        assert [d.workload_name for d in batch] == [wl.name for wl in suite]
        for got, want in zip(batch, singles):
            assert got.best.mcf == want.best.mcf
            assert got.best.acf == want.best.acf
            assert got.best.edp == pytest.approx(want.best.edp)

    def test_process_pool_matches_sequential(self):
        sage = Sage()
        suite = _suite()
        seq = sage.predict_many(suite, processes=1)
        par = sage.predict_many(suite, processes=2)
        for got, want in zip(par, seq):
            assert got.workload_name == want.workload_name
            assert got.best.mcf == want.best.mcf
            assert got.best.acf == want.best.acf
            assert got.best.edp == pytest.approx(want.best.edp)
            assert len(got.ranking) == len(want.ranking)

    def test_single_workload_stays_in_process(self):
        sage = Sage()
        [decision] = sage.predict_many(_suite()[:1], processes=8)
        assert decision.workload_name == "mm-a"

    def test_empty_suite(self):
        assert Sage().predict_many([]) == []

    def test_unpicklable_provider_falls_back_to_sequential(self):
        from repro.sage.cost_model import mint_provider

        sage = Sage(provider=lambda *a: mint_provider(*a))
        suite = _suite()[:2]
        decisions = sage.predict_many(suite, processes=2)
        reference = Sage().predict_many(suite, processes=1)
        assert [d.best.mcf for d in decisions] == [
            d.best.mcf for d in reference
        ]

    def test_unpicklable_workload_falls_back_to_sequential(self):
        suite = _suite()[:2]
        # Smuggle an unpicklable attribute onto the frozen dataclass.
        object.__setattr__(suite[0], "_hook", lambda: None)
        decisions = Sage().predict_many(suite, processes=2)
        assert [d.workload_name for d in decisions] == [w.name for w in suite]

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_transports_match_sequential(self, transport, monkeypatch):
        # Decisions must be identical whichever wire moved the jobs.
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "1")
        sage = Sage()
        suite = _suite()
        seq = sage.predict_many(suite, processes=1)
        par = sage.predict_many(suite, processes=2, transport=transport)
        for got, want in zip(par, seq):
            assert got.workload_name == want.workload_name
            assert got.best == want.best
            assert got.ranking == want.ranking

    def test_worker_bug_propagates_instead_of_degrading(self):
        # Before the pre-flight pickle check, any AttributeError/TypeError
        # escaping a worker was misread as "non-picklable predictor" and
        # silently retried sequentially.  _WorkerBugSage pickles fine, so
        # its worker-side failure must now surface.
        sage = _WorkerBugSage()
        with pytest.raises(AttributeError, match="worker-side bug"):
            sage.predict_many(_suite()[:2], processes=2)

    def test_predict_dispatches_on_arity(self):
        sage = Sage()
        suite = _suite()
        assert sage.predict(suite[0]).best is not None  # matrix
        assert sage.predict(suite[2]).best is not None  # tensor
