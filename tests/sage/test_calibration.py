"""The calibrated fidelity tier: table building, accuracy regression, staleness.

The accuracy tests are the paper-facing bar: on the (smoke-sized) Table
III suite the calibrated tier must pick the cycle tier's winner almost
always, while never invoking the simulator at predict time.  The
remaining tests pin the artifact-store contract (resume, staleness,
deterministic rebuilds) and the table's validation invariants
(hypothesis-driven).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import AcceleratorConfig
from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage.calibrate import (
    GRIDS,
    CalibrationError,
    CalibrationTable,
    CellStats,
    ErrorBound,
    build_table,
    calibration_band,
    load_table,
)
from repro.sage.predictor import SIM_CAP_ELEMENTS, Sage, SageDecision, _proxy_workload
from repro.workloads.spec import Kernel
from repro.workloads.suite import MATRIX_SUITE
from repro.xp.artifacts import ArtifactStore


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("calibration-store"))


@pytest.fixture(scope="module")
def tiny_build(store):
    return build_table(GRIDS["tiny"], store=store)


@pytest.fixture(scope="module")
def smoke_table(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("calibration-smoke"))
    return build_table(GRIDS["smoke"], store=store).table


class TestBuild:
    def test_build_produces_cells(self, tiny_build):
        assert len(tiny_build.table.cells) > 0
        assert tiny_build.executed == len(GRIDS["tiny"].workloads())
        assert tiny_build.cached == 0

    def test_factors_strictly_positive(self, tiny_build):
        for stats in tiny_build.table.cells.values():
            assert stats.factor > 0.0
            assert stats.energy_factor > 0.0

    def test_error_bounds_non_negative_and_ordered(self, tiny_build):
        for stats in tiny_build.table.cells.values():
            assert 0.0 <= stats.p50_rel_err <= stats.p95_rel_err

    def test_resume_re_executes_nothing(self, store, tiny_build):
        resumed = build_table(GRIDS["tiny"], store=store, resume=True)
        assert resumed.executed == 0
        assert resumed.cached == tiny_build.workloads
        assert resumed.table.to_dict() == tiny_build.table.to_dict()

    def test_deterministic_rebuild_bit_identical(self, tiny_build, tmp_path):
        # Two cold builds against independent stores: operand seeds
        # derive from workload names, so the factors must match bit for
        # bit — the reproducibility bar for a persisted model artifact.
        rebuilt = build_table(
            GRIDS["tiny"], store=ArtifactStore(tmp_path / "fresh")
        )
        assert rebuilt.table.to_dict() == tiny_build.table.to_dict()


class TestStaleness:
    def test_stored_table_loads_back(self, store, tiny_build):
        table = load_table(store)
        assert table is not None
        assert table.to_dict() == tiny_build.table.to_dict()

    def test_config_digest_change_invalidates(self, store, tiny_build):
        other = dataclasses.replace(
            AcceleratorConfig.paper_default(), num_pes=7
        )
        assert load_table(store, other) is None

    def test_missing_store_is_a_miss(self, tmp_path):
        assert load_table(ArtifactStore(tmp_path / "empty")) is None

    def test_predict_without_table_names_the_rebuild_command(
        self, monkeypatch
    ):
        # No table anywhere (the default-store load comes back empty):
        # the tier must refuse loudly, never answer uncorrected.
        monkeypatch.setattr(
            "repro.sage.predictor.load_default_table", lambda config: None
        )
        with pytest.raises(PredictionError, match="repro calibrate"):
            Sage().predict_matrix(
                _smoke_workloads()[0], fidelity="calibrated"
            )


def _smoke_workloads():
    return [
        _proxy_workload(entry.matrix_workload(kernel), SIM_CAP_ELEMENTS)
        for entry in MATRIX_SUITE
        for kernel in (Kernel.SPMM, Kernel.SPGEMM)
    ]


class TestAccuracyRegression:
    """Calibrated-vs-cycle agreement on the smoke-sized Table III suite."""

    @pytest.fixture(scope="class")
    def decisions(self, smoke_table):
        sage = Sage(calibration=smoke_table)
        pairs = []
        for wl in _smoke_workloads():
            pairs.append(
                (
                    sage.predict_matrix(wl, fidelity="calibrated"),
                    sage.predict_matrix(wl, fidelity="cycle"),
                )
            )
        return pairs

    def test_top1_agreement_floor(self, decisions):
        hits = sum(
            (cal.best.mcf, cal.best.acf) == (cyc.best.mcf, cyc.best.acf)
            for cal, cyc in decisions
        )
        assert hits / len(decisions) >= 0.9

    def test_top3_agreement_floor(self, decisions):
        hits = sum(
            (cyc.best.mcf, cyc.best.acf)
            in [(c.mcf, c.acf) for c in cal.ranking[:3]]
            for cal, cyc in decisions
        )
        assert hits / len(decisions) >= 0.95

    def test_calibrated_beats_uncalibrated_agreement(self, decisions):
        sage = Sage()
        uncal = sum(
            (ana.best.mcf, ana.best.acf) == (cyc.best.mcf, cyc.best.acf)
            for ana, (_cal, cyc) in zip(
                (sage.predict_matrix(wl) for wl in _smoke_workloads()),
                decisions,
            )
        )
        cal = sum(
            (c.best.mcf, c.best.acf) == (cyc.best.mcf, cyc.best.acf)
            for c, cyc in decisions
        )
        assert cal > uncal

    def test_decisions_report_the_tier_and_bound(self, decisions):
        for cal, _cyc in decisions:
            assert cal.fidelity == "calibrated"
            assert cal.sim_scale == 1.0
            if cal.error_bound is not None:
                assert cal.error_bound.p50_rel >= 0.0
                assert cal.error_bound.p95_rel >= cal.error_bound.p50_rel

    def test_wire_round_trip(self, decisions):
        cal, _cyc = decisions[0]
        rebuilt = SageDecision.from_wire(cal.to_wire())
        assert rebuilt == cal
        assert rebuilt.error_bound == cal.error_bound


# ------------------------------------------------------------ property tests

_factors = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
_errs = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def _cell_stats(draw):
    lo, hi = sorted((draw(_errs), draw(_errs)))
    return CellStats(
        factor=draw(_factors),
        energy_factor=draw(_factors),
        p50_rel_err=lo,
        p95_rel_err=hi,
        samples=draw(st.integers(min_value=1, max_value=64)),
    )


_acf_a = st.sampled_from(
    [Format.CSR.value, Format.COO.value, Format.DENSE.value, Format.ELL.value]
)
_acf_b = st.sampled_from([Format.DENSE.value, Format.CSC.value])
_keys = st.tuples(
    st.sampled_from([Kernel.SPMM.value, Kernel.SPGEMM.value]),
    _acf_a,
    _acf_b,
    st.integers(min_value=-24, max_value=0),
)


@st.composite
def _tables(draw):
    cells = draw(
        st.dictionaries(_keys, _cell_stats(), min_size=1, max_size=12)
    )
    return CalibrationTable(
        config_digest=draw(st.text(min_size=1, max_size=16)),
        grid_name="prop",
        cells=cells,
    )


class TestTableProperties:
    @given(table=_tables())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, table):
        assert CalibrationTable.from_dict(table.to_dict()) == table

    @given(factor=st.floats(max_value=0.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_nonpositive_factor_rejected(self, factor):
        with pytest.raises(CalibrationError, match="strictly positive"):
            CellStats(
                factor=factor,
                energy_factor=1.0,
                p50_rel_err=0.0,
                p95_rel_err=0.0,
                samples=1,
            )

    @given(
        cell=_cell_stats(),
        a=st.integers(min_value=0, max_value=1 << 30),
        b=st.integers(min_value=0, max_value=1 << 30),
    )
    @settings(max_examples=80, deadline=None)
    def test_corrected_cycles_monotone_in_analytical(self, cell, a, b):
        lo, hi = sorted((a, b))
        assert cell.corrected_cycles(lo) <= cell.corrected_cycles(hi)
        assert cell.corrected_cycles(hi) >= 1

    @given(p50=_errs, p95=_errs)
    @settings(max_examples=40, deadline=None)
    def test_error_bounds_non_negative(self, p50, p95):
        lo, hi = sorted((p50, p95))
        bound = ErrorBound(p50_rel=lo, p95_rel=hi)
        assert bound.p50_rel >= 0.0 and bound.p95_rel >= 0.0
        assert ErrorBound.from_wire(bound.to_wire()) == bound

    @given(neg=st.floats(max_value=-1e-9, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_negative_bound_rejected(self, neg):
        with pytest.raises(CalibrationError, match="non-negative"):
            ErrorBound(p50_rel=neg, p95_rel=0.0)

    @given(density=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_band_clamped_and_monotone(self, density):
        band = calibration_band(density)
        assert -24 <= band <= 0
        denser = calibration_band(min(1.0, density * 2))
        assert denser >= band


class TestLookupFallback:
    def test_nearest_band_answers_off_grid_density(self, tiny_build):
        table = tiny_build.table
        # tiny trains every other octave: an untrained band in between
        # must answer from a neighbour, never None for a trained pair.
        cell = table.lookup(Kernel.SPMM, (Format.CSR, Format.DENSE), 0.3)
        assert cell is not None

    def test_untrained_pair_returns_none(self, tiny_build):
        # COO is never a stationary-side ACF in the training pairs.
        trained = {
            (k, a, b) for (k, a, b, _band) in tiny_build.table.cells
        }
        assert (
            Kernel.SPMM.value,
            Format.CSR.value,
            Format.COO.value,
        ) not in trained
        assert (
            tiny_build.table.lookup(
                Kernel.SPMM, (Format.CSR, Format.COO), 0.1
            )
            is None
        )
