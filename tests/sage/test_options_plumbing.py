"""Satellite fix: every Sage entry point honors the full option set.

Before the Session redesign, ``predict``/``predict_many`` silently dropped
the search-restriction kwargs that ``predict_matrix`` accepted, and
``predict_tensor`` ignored unsupported ones.  These tests pin the
consolidated contract.
"""

from __future__ import annotations

import pytest

from repro.api.options import PredictOptions
from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage import Sage
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _spmm(name: str = "opt", m: int = 180, density: float = 0.04):
    n = m // 2
    return MatrixWorkload(
        name, Kernel.SPMM, m=m, k=m, n=n,
        nnz_a=max(1, int(density * m * m)), nnz_b=m * n,
    )


SAGE = Sage()


class TestGenericEntryPoints:
    def test_predict_accepts_fixed_mcf(self):
        d = SAGE.predict(_spmm(), fixed_mcf=(Format.CSC, Format.ZVC))
        assert d.best.mcf == (Format.CSC, Format.ZVC)
        assert all(c.mcf == (Format.CSC, Format.ZVC) for c in d.ranking)

    def test_predict_accepts_operand_spaces(self):
        d = SAGE.predict(
            _spmm(), mcf_a_space=(Format.COO,), mcf_b_space=(Format.DENSE,)
        )
        assert all(
            c.mcf == (Format.COO, Format.DENSE) for c in d.ranking
        )

    def test_predict_matches_predict_matrix(self):
        wl = _spmm("match")
        opts = PredictOptions(mcf_a_space=(Format.CSR, Format.RLC), top_k=3)
        assert SAGE.predict(wl, options=opts) == SAGE.predict_matrix(
            wl, options=opts
        )

    def test_predict_many_accepts_options(self):
        wls = [_spmm(f"many{i}", m=160 + 20 * i) for i in range(3)]
        opts = PredictOptions(fixed_mcf=(Format.CSR, Format.DENSE), top_k=2)
        decisions = SAGE.predict_many(wls, options=opts, processes=1)
        assert all(d.best.mcf == (Format.CSR, Format.DENSE) for d in decisions)
        assert all(len(d.ranking) == 2 for d in decisions)

    def test_predict_many_matches_singles(self):
        wls = [_spmm(f"s{i}", m=150 + 30 * i) for i in range(2)]
        opts = PredictOptions(mcf_b_space=(Format.ZVC, Format.DENSE))
        batch = SAGE.predict_many(wls, options=opts, processes=1)
        singles = [SAGE.predict(wl, options=opts) for wl in wls]
        assert batch == singles

    def test_keyword_overrides_beat_options(self):
        wl = _spmm("override")
        opts = PredictOptions(fixed_mcf=(Format.COO, Format.COO))
        d = SAGE.predict(wl, options=opts, fixed_mcf=(Format.ZVC, Format.DENSE))
        assert d.best.mcf == (Format.ZVC, Format.DENSE)

    def test_top_k_truncates_but_keeps_best(self):
        wl = _spmm("trunc")
        full = SAGE.predict(wl)
        short = SAGE.predict(wl, options=PredictOptions(top_k=2))
        assert len(short.ranking) == 2
        assert short.best == full.best
        assert short.ranking == full.ranking[:2]


class TestTensorRejectsUnsupported:
    WL = TensorWorkload("t", Kernel.SPTTM, (24, 24, 24), 600, rank=8)

    def test_mcf_a_space_rejected(self):
        with pytest.raises(PredictionError, match="mcf_a_space"):
            SAGE.predict(self.WL, mcf_a_space=(Format.COO,))

    def test_mcf_b_space_rejected(self):
        with pytest.raises(PredictionError, match="mcf_b_space"):
            SAGE.predict_tensor(
                self.WL, options=PredictOptions(mcf_b_space=(Format.DENSE,))
            )

    def test_error_names_both_offenders(self):
        with pytest.raises(PredictionError, match="mcf_a_space, mcf_b_space"):
            SAGE.predict(
                self.WL,
                options=PredictOptions(
                    mcf_a_space=(Format.COO,), mcf_b_space=(Format.DENSE,)
                ),
            )

    def test_fixed_mcf_still_supported(self):
        d = SAGE.predict(self.WL, fixed_mcf=(Format.CSF, Format.DENSE))
        assert d.best.mcf == (Format.CSF, Format.DENSE)

    def test_cycle_fidelity_still_rejected(self):
        with pytest.raises(PredictionError, match="cycle fidelity"):
            SAGE.predict(self.WL, fidelity="cycle")

    def test_top_k_supported_for_tensors(self):
        d = SAGE.predict(self.WL, options=PredictOptions(top_k=1))
        assert len(d.ranking) == 1
