"""SAGE predictor: the Fig. 4/5 format ladder must emerge from the search."""

from __future__ import annotations

import pytest

from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage import Sage
from repro.sage.spaces import (
    MATRIX_ACF_STATIONARY,
    MATRIX_ACF_STREAMED,
    MATRIX_MCF,
    matrix_combos,
    tensor_combos,
)
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _spmm(name: str, m: int, k: int, density: float, n: int | None = None):
    n = n or max(1, m // 2)
    return MatrixWorkload(
        name=name,
        kernel=Kernel.SPMM,
        m=m,
        k=k,
        n=n,
        nnz_a=max(1, int(density * m * k)),
        nnz_b=k * n,
    )


class TestFormatLadder:
    """MCF choices across the density spectrum (Fig. 4a's four stars)."""

    SAGE = Sage()

    def test_dense_at_full_density(self):
        d = self.SAGE.predict_matrix(_spmm("full", 2000, 2000, 1.0))
        assert d.mcf[0] is Format.DENSE

    def test_zvc_near_half_density(self):
        d = self.SAGE.predict_matrix(_spmm("half", 2000, 2000, 0.6))
        assert d.mcf[0] is Format.ZVC

    def test_rlc_around_ten_percent(self):
        d = self.SAGE.predict_matrix(_spmm("tenth", 2000, 2000, 0.10))
        assert d.mcf[0] is Format.RLC

    def test_csr_below_one_percent(self):
        d = self.SAGE.predict_matrix(_spmm("sparse", 2000, 2000, 0.005))
        assert d.mcf[0] is Format.CSR

    def test_coo_at_extreme_sparsity(self):
        d = self.SAGE.predict_matrix(_spmm("extreme", 11000, 11000, 5e-5))
        assert d.mcf[0] is Format.COO

    def test_acf_dense_at_high_density(self):
        d = self.SAGE.predict_matrix(_spmm("high", 2000, 2000, 0.3))
        assert d.acf[0] is Format.DENSE

    def test_acf_sparse_at_low_density(self):
        d = self.SAGE.predict_matrix(_spmm("low", 2000, 2000, 0.002))
        assert d.acf[0] in (Format.CSR, Format.COO)


class TestDecisionStructure:
    SAGE = Sage()

    def test_best_is_min_edp_of_ranking(self):
        d = self.SAGE.predict_matrix(_spmm("x", 500, 500, 0.1))
        edps = [c.edp for c in d.ranking]
        assert d.best.edp == min(edps)
        assert edps == sorted(edps)

    def test_ranking_covers_full_space(self):
        d = self.SAGE.predict_matrix(_spmm("x", 300, 300, 0.2))
        expected = (
            len(MATRIX_MCF) ** 2
            * len(MATRIX_ACF_STREAMED)
            * len(MATRIX_ACF_STATIONARY)
        )
        assert len(d.ranking) == expected

    def test_fixed_mcf_restricts_search(self):
        wl = _spmm("x", 500, 500, 0.05)
        d = self.SAGE.predict_matrix(wl, fixed_mcf=(Format.CSR, Format.DENSE))
        assert d.mcf == (Format.CSR, Format.DENSE)
        assert all(c.mcf == (Format.CSR, Format.DENSE) for c in d.ranking)

    def test_fixed_mcf_never_beats_free_search(self):
        wl = _spmm("x", 1000, 1000, 0.08)
        free = self.SAGE.predict_matrix(wl)
        pinned = self.SAGE.predict_matrix(
            wl, fixed_mcf=(Format.DENSE, Format.DENSE)
        )
        assert free.best.edp <= pinned.best.edp

    def test_summary_renders(self):
        d = self.SAGE.predict_matrix(_spmm("pretty", 200, 200, 0.1))
        text = d.summary(top=3)
        assert "SAGE decision" in text and "EDP" in text

    def test_no_converter_restricts_candidates(self):
        sage = Sage(provider=None)
        d = sage.predict_matrix(_spmm("x", 400, 400, 0.1))
        # Without a converter only MCF == ACF combos (and compatible pairs)
        # survive; the streamed MCF must be a streamable ACF.
        assert d.mcf[0] in (Format.DENSE, Format.COO, Format.CSR, Format.CSC)
        for c in d.ranking:
            assert c.mcf == c.acf


class TestTensorPredictions:
    SAGE = Sage()

    def _wl(self, shape, density, kernel=Kernel.MTTKRP):
        size = shape[0] * shape[1] * shape[2]
        return TensorWorkload(
            name="t",
            kernel=kernel,
            shape=shape,
            nnz=max(1, int(density * size)),
            rank=max(1, shape[0] // 2),
        )

    def test_zvc_for_dense_tensor(self):
        d = self.SAGE.predict_tensor(self._wl((60, 700, 9), 0.3))
        assert d.mcf[0] is Format.ZVC

    def test_csf_for_mid_density(self):
        d = self.SAGE.predict_tensor(self._wl((600, 24, 250), 0.015))
        assert d.mcf[0] in (Format.CSF, Format.COO)

    def test_spttm_and_mttkrp_both_searchable(self):
        for kernel in (Kernel.SPTTM, Kernel.MTTKRP):
            d = self.SAGE.predict_tensor(self._wl((50, 40, 30), 0.05, kernel))
            assert d.best.edp > 0

    def test_tensor_space_size(self):
        d = self.SAGE.predict_tensor(self._wl((30, 30, 30), 0.1))
        expected = len(list(tensor_combos()))
        assert len(d.ranking) == expected


class TestCombos:
    def test_matrix_combo_count(self):
        assert len(list(matrix_combos())) == 6 * 6 * 4 * 2

    def test_fixed_mcf_combo_count(self):
        combos = list(matrix_combos(fixed_mcf=(Format.CSR, Format.CSC)))
        assert len(combos) == 4 * 2
        assert all(mcf == (Format.CSR, Format.CSC) for mcf, _ in combos)
