"""SAGE cost model: breakdown invariants and overlap semantics."""

from __future__ import annotations

import pytest

from repro.formats.registry import Format
from repro.mint.cost import ConversionCost
from repro.sage.cost_model import (
    evaluate_matrix_combo,
    evaluate_tensor_combo,
    mint_provider,
)
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload

WL = MatrixWorkload(
    name="unit",
    kernel=Kernel.SPMM,
    m=1000,
    k=800,
    n=500,
    nnz_a=40_000,
    nnz_b=800 * 500,
)


class TestBreakdown:
    def test_totals_are_sums(self):
        cost = evaluate_matrix_combo(WL, (Format.CSR, Format.DENSE), (Format.CSR, Format.DENSE))
        assert cost is not None
        assert cost.total_energy_j == pytest.approx(
            cost.dram_energy_j + cost.conv_energy_j + cost.compute_energy_j
        )
        assert cost.total_cycles == (
            cost.ingest_cycles + cost.compute_cycles + cost.writeback_cycles
        )
        assert cost.edp == pytest.approx(cost.total_energy_j * cost.seconds)

    def test_no_conversion_when_mcf_equals_acf(self):
        cost = evaluate_matrix_combo(
            WL, (Format.CSR, Format.DENSE), (Format.CSR, Format.DENSE)
        )
        assert cost.conv_in_cycles == 0
        assert cost.conv_energy_j == 0.0

    def test_conversion_charged_when_formats_differ(self):
        cost = evaluate_matrix_combo(
            WL, (Format.RLC, Format.DENSE), (Format.CSR, Format.DENSE)
        )
        assert cost.conv_in_cycles > 0
        assert cost.conv_energy_j > 0.0

    def test_overlap_hides_fast_conversion(self):
        """Ingest = max(dram, conversion), not the sum (Sec. V-B pipelining)."""
        cost = evaluate_matrix_combo(
            WL, (Format.RLC, Format.DENSE), (Format.DENSE, Format.DENSE)
        )
        assert cost.ingest_cycles == max(cost.dram_in_cycles, cost.conv_in_cycles)
        assert cost.ingest_cycles < cost.dram_in_cycles + max(cost.conv_in_cycles, 1)

    def test_none_provider_blocks_conversion_combos(self):
        cost = evaluate_matrix_combo(
            WL,
            (Format.RLC, Format.DENSE),
            (Format.CSR, Format.DENSE),
            provider=None,
        )
        assert cost is None

    def test_none_provider_allows_identity(self):
        cost = evaluate_matrix_combo(
            WL,
            (Format.CSR, Format.DENSE),
            (Format.CSR, Format.DENSE),
            provider=None,
        )
        assert cost is not None

    def test_output_mcf_compact_for_sparse_output(self):
        sparse_out = MatrixWorkload(
            name="s",
            kernel=Kernel.SPGEMM,
            m=5000,
            k=5000,
            n=2500,
            nnz_a=2000,
            nnz_b=1000,
        )
        cost = evaluate_matrix_combo(
            sparse_out, (Format.COO, Format.COO), (Format.COO, Format.CSC)
        )
        assert cost.mcf_out is not Format.DENSE

    def test_output_mcf_dense_for_dense_output(self):
        cost = evaluate_matrix_combo(
            WL, (Format.DENSE, Format.DENSE), (Format.DENSE, Format.DENSE)
        )
        # SpMM with a dense B yields an (almost) fully dense output.
        assert cost.mcf_out in (Format.DENSE, Format.ZVC, Format.RLC)

    def test_custom_provider_used(self):
        calls = []

        def probe(src, dst, size, nnz, major, bits, tensor):
            calls.append((src, dst))
            return ConversionCost(123, 1e-6, 123e-9)

        cost = evaluate_matrix_combo(
            WL, (Format.RLC, Format.DENSE), (Format.DENSE, Format.DENSE),
            provider=probe,
        )
        assert (Format.RLC, Format.DENSE) in calls
        assert cost.conv_in_cycles == 123


class TestTensorCombo:
    TWL = TensorWorkload(
        name="t", kernel=Kernel.SPTTM, shape=(100, 80, 60), nnz=24_000, rank=50
    )

    def test_breakdown_positive(self):
        cost = evaluate_tensor_combo(
            self.TWL, (Format.CSF, Format.DENSE), (Format.CSF, Format.DENSE)
        )
        assert cost is not None
        assert cost.total_cycles > 0 and cost.total_energy_j > 0

    def test_mttkrp_costs_more_compute_than_spttm(self):
        mtt = TensorWorkload(
            name="m", kernel=Kernel.MTTKRP, shape=(100, 80, 60), nnz=24_000, rank=50
        )
        c_spttm = evaluate_tensor_combo(
            self.TWL, (Format.COO, Format.DENSE), (Format.COO, Format.DENSE)
        )
        c_mttkrp = evaluate_tensor_combo(
            mtt, (Format.COO, Format.DENSE), (Format.COO, Format.DENSE)
        )
        assert c_mttkrp.compute_energy_j > c_spttm.compute_energy_j

    def test_conversion_needed_for_mcf_acf_mismatch(self):
        cost = evaluate_tensor_combo(
            self.TWL, (Format.RLC, Format.DENSE), (Format.CSF, Format.DENSE)
        )
        assert cost.conv_in_cycles > 0

    def test_mint_provider_signature(self):
        c = mint_provider(Format.CSR, Format.CSC, 10_000, 500, 100, 32, False)
        assert c.cycles > 0
