"""Table III reproduction: SAGE's choices vs the paper's, pinned rows.

The paper's Table III lists SAGE's MCF/ACF decisions for 13 workloads under
two scenarios.  Our model reproduces the decision *ladder*; individual
near-crossover rows may differ (documented in EXPERIMENTS.md), so this test
pins (a) hand-picked rows that are far from any crossover and (b) an
aggregate agreement floor across all 72 decision fields.
"""

from __future__ import annotations

import pytest

from repro.formats.registry import Format
from repro.sage import Sage
from repro.workloads import MATRIX_SUITE, TENSOR_SUITE, Kernel, suite_by_name


@pytest.fixture(scope="module")
def sage():
    return Sage()


class TestPinnedRows:
    """Rows far from crossovers must match the paper exactly."""

    def test_journals_uses_zvc_dense(self, sage):
        d = sage.predict_matrix(suite_by_name("journals").matrix_workload(Kernel.SPMM))
        assert d.mcf[0] is Format.ZVC  # 78.5% dense: ZVC most compact
        assert d.acf == (Format.DENSE, Format.DENSE)

    def test_speech1_uses_rlc_dense(self, sage):
        d = sage.predict_matrix(suite_by_name("speech1").matrix_workload(Kernel.SPMM))
        assert d.mcf[0] is Format.RLC  # the 10% star of Fig. 4a
        assert d.acf[0] is Format.DENSE

    def test_cavity14_uses_csr(self, sage):
        d = sage.predict_matrix(suite_by_name("cavity14").matrix_workload(Kernel.SPMM))
        assert d.mcf[0] is Format.CSR
        assert d.acf[0] is Format.CSR

    def test_m3plates_uses_coo_mcf(self, sage):
        d = sage.predict_matrix(suite_by_name("m3plates").matrix_workload(Kernel.SPMM))
        assert d.mcf[0] is Format.COO  # extreme sparsity

    def test_spgemm_prefers_csc_stationary_for_sparse_b(self, sage):
        d = sage.predict_matrix(
            suite_by_name("cavity14").matrix_workload(Kernel.SPGEMM)
        )
        assert d.mcf[1] is Format.CSC
        assert d.acf[1] is Format.CSC

    def test_brainq_uses_zvc(self, sage):
        d = sage.predict_tensor(suite_by_name("BrainQ").tensor_workload(Kernel.MTTKRP))
        assert d.mcf[0] is Format.ZVC
        assert d.acf[0] is Format.DENSE

    def test_crime_uses_csf(self, sage):
        d = sage.predict_tensor(suite_by_name("Crime").tensor_workload(Kernel.SPTTM))
        assert d.mcf[0] is Format.CSF
        assert d.acf[0] is Format.CSF


class TestAggregateAgreement:
    def test_at_least_80pct_of_decision_fields_match(self, sage):
        hits = total = 0
        for entry in MATRIX_SUITE:
            for kernel, choice in (
                (Kernel.SPMM, entry.spmm_choice),
                (Kernel.SPGEMM, entry.spgemm_choice),
            ):
                d = sage.predict_matrix(entry.matrix_workload(kernel))
                hits += int(choice.mcf_t is d.mcf[0])
                hits += int(choice.acf_t is d.acf[0])
                hits += int(choice.acf_f is d.acf[1])
                total += 3
        for entry in TENSOR_SUITE:
            for kernel, choice in (
                (Kernel.SPTTM, entry.spgemm_choice),
                (Kernel.MTTKRP, entry.spmm_choice),
            ):
                d = sage.predict_tensor(entry.tensor_workload(kernel))
                hits += int(choice.mcf_t is d.mcf[0])
                hits += int(choice.acf_t is d.acf[0])
                total += 2
        assert hits / total >= 0.80, f"Table III agreement {hits}/{total}"

    def test_mcf_ladder_monotone_over_suite(self, sage):
        """Denser workloads never pick a sparser-regime MCF than sparser ones."""
        ladder = {
            Format.DENSE: 0,
            Format.ZVC: 1,
            Format.RLC: 2,
            Format.CSR: 3,
            Format.CSC: 3,
            Format.COO: 4,
        }
        by_density = sorted(
            MATRIX_SUITE, key=lambda e: e.density_pct, reverse=True
        )
        ranks = [
            ladder[
                sage.predict_matrix(e.matrix_workload(Kernel.SPMM)).mcf[0]
            ]
            for e in by_density
        ]
        assert ranks == sorted(ranks)
