"""Hypothesis monotonicity properties of the hardware cost models.

The tuner's Pareto front is only meaningful if the cost models are
ordered sanely in the swept knobs: more buffer must never cost *less*
area, more bits must never cost less DRAM energy or fewer transfer
cycles, a larger tech node must never shrink the die.  These are
properties of the model surfaces, not single calibration points, so
they are checked over drawn knob ranges rather than fixtures.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.area import DEFAULT_AREA
from repro.hardware.dram import DramChannel
from repro.hardware.energy import DEFAULT_ENERGY
from repro.tune.objective import point_area_mm2
from repro.tune.space import TunePoint

# Knob ranges mirror the tuner's "full" preset, widened a little.
buffers = st.integers(min_value=1, max_value=8192)
lanes = st.integers(min_value=1, max_value=64)
bits = st.integers(min_value=0, max_value=1 << 32)
counts = st.integers(min_value=0, max_value=1 << 24)
pes = st.integers(min_value=1, max_value=16384)
nodes = st.floats(min_value=3.0, max_value=65.0, allow_nan=False)
bandwidths = st.floats(min_value=1.0, max_value=4096.0, allow_nan=False)


# ------------------------------------------------------------------- area --
@settings(max_examples=60)
@given(b1=buffers, b2=buffers, lanes=lanes)
def test_pe_base_area_monotone_in_buffer(b1, b2, lanes):
    lo, hi = sorted((b1, b2))
    assert DEFAULT_AREA.pe_base_area(lo, lanes) <= DEFAULT_AREA.pe_base_area(
        hi, lanes
    )


@settings(max_examples=60)
@given(buffer_bytes=buffers, l1=lanes, l2=lanes)
def test_pe_base_area_monotone_in_lanes(buffer_bytes, l1, l2):
    lo, hi = sorted((l1, l2))
    assert DEFAULT_AREA.pe_base_area(
        buffer_bytes, lo
    ) <= DEFAULT_AREA.pe_base_area(buffer_bytes, hi)


@settings(max_examples=60)
@given(buffer_bytes=buffers, lanes=lanes)
def test_extension_is_pure_overhead(buffer_bytes, lanes):
    base = DEFAULT_AREA.pe_base_area(buffer_bytes, lanes)
    extended = DEFAULT_AREA.pe_extended_area(buffer_bytes, lanes)
    assert extended > base
    assert math.isclose(
        extended - base, DEFAULT_AREA.pe_extension_area(lanes), rel_tol=1e-9
    )


@settings(max_examples=60)
@given(b1=buffers, b2=buffers, lanes=lanes)
def test_overhead_fraction_shrinks_with_buffer(b1, b2, lanes):
    # The Sec. IV extension is fixed-size logic: amortized over a bigger
    # buffer, its relative cost can only fall.
    lo, hi = sorted((b1, b2))
    assert DEFAULT_AREA.pe_overhead_fraction(
        hi, lanes
    ) <= DEFAULT_AREA.pe_overhead_fraction(lo, lanes)


# ----------------------------------------------------------------- energy --
@settings(max_examples=60)
@given(x1=bits, x2=bits)
def test_dram_energy_monotone_in_bits(x1, x2):
    lo, hi = sorted((x1, x2))
    assert DEFAULT_ENERGY.dram_bits(lo) <= DEFAULT_ENERGY.dram_bits(hi)
    assert DEFAULT_ENERGY.noc_bits(lo) <= DEFAULT_ENERGY.noc_bits(hi)
    assert DEFAULT_ENERGY.sram_pe_bits(lo) <= DEFAULT_ENERGY.sram_pe_bits(hi)


@settings(max_examples=60)
@given(c1=counts, c2=counts)
def test_mac_energy_monotone_in_count(c1, c2):
    lo, hi = sorted((c1, c2))
    assert DEFAULT_ENERGY.macs(lo) <= DEFAULT_ENERGY.macs(hi)


@settings(max_examples=30)
@given(x=st.integers(min_value=1, max_value=1 << 32))
def test_dram_dominates_onchip_per_bit(x):
    # The paper's premise: a DRAM bit is the expensive event.  If a model
    # edit ever inverts this, compression stops paying and every SAGE
    # decision downstream is garbage — fail loudly here.
    assert DEFAULT_ENERGY.dram_bits(x) > DEFAULT_ENERGY.sram_global_bits(x)
    assert DEFAULT_ENERGY.dram_bits(x) > DEFAULT_ENERGY.noc_bits(x)


# ------------------------------------------------------------------- dram --
@settings(max_examples=60)
@given(x1=bits, x2=bits, gbps=bandwidths)
def test_transfer_cycles_monotone_in_bits(x1, x2, gbps):
    lo, hi = sorted((x1, x2))
    channel = DramChannel(bandwidth_bytes_per_s=gbps * 1e9)
    assert channel.transfer_cycles(lo) <= channel.transfer_cycles(hi)
    assert channel.transfer_energy(lo) <= channel.transfer_energy(hi)


@settings(max_examples=60)
@given(x=bits, g1=bandwidths, g2=bandwidths)
def test_transfer_cycles_antitone_in_bandwidth(x, g1, g2):
    lo, hi = sorted((g1, g2))
    slow = DramChannel(bandwidth_bytes_per_s=lo * 1e9)
    fast = DramChannel(bandwidth_bytes_per_s=hi * 1e9)
    assert fast.transfer_cycles(x) <= slow.transfer_cycles(x)


# ------------------------------------------------------- tune area surface --
@settings(max_examples=60)
@given(p1=pes, p2=pes, buffer_bytes=st.sampled_from([128, 256, 512, 1024]))
def test_point_area_monotone_in_pes(p1, p2, buffer_bytes):
    lo, hi = sorted((p1, p2))
    small = TunePoint(num_pes=lo, pe_buffer_bytes=buffer_bytes)
    big = TunePoint(num_pes=hi, pe_buffer_bytes=buffer_bytes)
    assert point_area_mm2(small) <= point_area_mm2(big)


@settings(max_examples=60)
@given(b1=st.sampled_from([64, 128, 256, 512, 1024, 4096]),
       b2=st.sampled_from([64, 128, 256, 512, 1024, 4096]))
def test_point_area_monotone_in_buffer(b1, b2):
    lo, hi = sorted((b1, b2))
    assert point_area_mm2(TunePoint(pe_buffer_bytes=lo)) <= point_area_mm2(
        TunePoint(pe_buffer_bytes=hi)
    )


@settings(max_examples=60)
@given(n1=nodes, n2=nodes)
def test_point_area_monotone_in_tech_node(n1, n2):
    lo, hi = sorted((n1, n2))
    assert point_area_mm2(TunePoint(tech_node_nm=lo)) <= point_area_mm2(
        TunePoint(tech_node_nm=hi)
    )
