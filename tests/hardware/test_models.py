"""Energy, DRAM and area model calibration checks.

These pin the model to the paper's published hardware aggregates; if a
constant drifts, the corresponding experiment would silently diverge.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.hardware import AreaModel, DramChannel, EnergyModel
from repro.hardware.area import (
    PrefixSumDesign,
    pe_breakdown,
    prefix_sum_overlay,
)


class TestEnergy:
    def test_horowitz_ratio(self):
        # Sec. I: "a data transfer from DRAM can cost 6400x more energy than
        # an add operation".
        assert EnergyModel().dram_to_add_ratio() == pytest.approx(6400.0)

    def test_hierarchy_ordering(self):
        em = EnergyModel()
        assert em.dram_bit > em.sram_global_bit > em.sram_pe_bit > em.reg_bit

    def test_helpers_linear(self):
        em = EnergyModel()
        assert em.dram_bits(64) == pytest.approx(2 * em.dram_bits(32))
        assert em.macs(10) == pytest.approx(10 * em.mac_fp32)

    def test_divider_most_expensive_int_op(self):
        em = EnergyModel()
        assert em.div_int32 > em.mult_int32 > em.add_int32


class TestDram:
    def test_default_matched_to_bus(self):
        # 512 bits/cycle at 1 GHz = 64 GB/s, matching the 512-bit input bus.
        assert DramChannel().bits_per_cycle == pytest.approx(512.0)

    def test_transfer_cycles_roundup(self):
        ch = DramChannel()
        assert ch.transfer_cycles(1) == 1
        assert ch.transfer_cycles(512) == 1
        assert ch.transfer_cycles(513) == 2
        assert ch.transfer_cycles(0) == 0

    def test_energy_proportional_to_bits(self):
        ch = DramChannel()
        assert ch.transfer_energy(2000) == pytest.approx(
            2 * ch.transfer_energy(1000)
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            DramChannel(bandwidth_bytes_per_s=0)
        with pytest.raises(ConfigError):
            DramChannel(clock_hz=-1)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            DramChannel().transfer_cycles(-1)


class TestArea:
    def test_pe_overhead_matches_fig7(self):
        # Fig. 7b: the extension adds ~10% to a PE with a 128 B buffer.
        frac = AreaModel().pe_overhead_fraction(buffer_bytes=128, lanes=8)
        assert 0.08 <= frac <= 0.12

    def test_breakdown_sums(self):
        model = AreaModel()
        bd = pe_breakdown(model)
        assert bd.total == pytest.approx(bd.base + bd.extension)
        assert bd.base == pytest.approx(model.pe_base_area())
        assert bd.extension == pytest.approx(model.pe_extension_area())

    def test_bigger_buffer_lowers_overhead_fraction(self):
        model = AreaModel()
        small = model.pe_overhead_fraction(buffer_bytes=128)
        large = model.pe_overhead_fraction(buffer_bytes=512)
        assert large < small

    @pytest.mark.parametrize(
        "design,area,power",
        [
            (PrefixSumDesign.SERIAL_CHAIN, 0.02, 0.03),
            (PrefixSumDesign.HIGHLY_PARALLEL, 0.20, 0.27),
        ],
    )
    def test_published_overlay_points(self, design, area, power):
        ov = prefix_sum_overlay(design)
        assert ov.area_fraction == pytest.approx(area)
        assert ov.power_fraction == pytest.approx(power)

    def test_overlay_ordering(self):
        # Serial chain is the cheapest overlay; highly parallel the priciest.
        serial = prefix_sum_overlay(PrefixSumDesign.SERIAL_CHAIN)
        work = prefix_sum_overlay(PrefixSumDesign.WORK_EFFICIENT)
        par = prefix_sum_overlay(PrefixSumDesign.HIGHLY_PARALLEL)
        assert serial.area_fraction < work.area_fraction < par.area_fraction
        assert serial.power_fraction < work.power_fraction < par.power_fraction
