"""Closed-form storage model vs concrete encodings, and Fig. 4 shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.compactness import (
    crossover_density,
    storage_bits,
    transfer_energy_sweep,
)
from repro.errors import FormatError
from repro.formats import matrix_class, tensor_class
from repro.formats.registry import Format
from repro.workloads import random_sparse_matrix, random_sparse_tensor

EXACT_MATRIX = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.ZVC]
STRUCTURED_MATRIX = [Format.RLC, Format.BSR, Format.DIA]


class TestClosedFormVsConcrete:
    @pytest.mark.parametrize("fmt", EXACT_MATRIX)
    @pytest.mark.parametrize("nnz", [0, 13, 140, 400])
    def test_exact_formats_match_bit_for_bit(self, fmt, nnz, rng):
        dense = random_sparse_matrix(20, 20, nnz, rng)
        enc = matrix_class(fmt).from_dense(dense)
        assert storage_bits(fmt, (20, 20), nnz) == enc.total_bits

    @pytest.mark.parametrize("fmt", STRUCTURED_MATRIX)
    def test_structured_formats_within_expectation_tolerance(self, fmt, rng):
        nnz = 400
        dense = random_sparse_matrix(50, 50, nnz, rng)
        enc = matrix_class(fmt).from_dense(dense)
        est = storage_bits(fmt, (50, 50), nnz)
        assert est == pytest.approx(enc.total_bits, rel=0.35)

    @pytest.mark.parametrize("fmt", [Format.DENSE, Format.COO, Format.ZVC])
    def test_tensor_exact_formats(self, fmt, rng):
        dense = random_sparse_tensor((8, 9, 10), 120, rng)
        enc = tensor_class(fmt).from_dense(dense)
        assert storage_bits(fmt, (8, 9, 10), 120) == enc.total_bits

    @pytest.mark.parametrize("fmt", [Format.CSF, Format.HICOO, Format.RLC])
    def test_tensor_structured_within_tolerance(self, fmt, rng):
        dense = random_sparse_tensor((12, 12, 12), 250, rng)
        enc = tensor_class(fmt).from_dense(dense)
        est = storage_bits(fmt, (12, 12, 12), 250)
        assert est == pytest.approx(enc.total_bits, rel=0.35)

    def test_rejects_bad_nnz(self):
        with pytest.raises(FormatError):
            storage_bits(Format.CSR, (4, 4), 17)


class TestFig4Ladder:
    DIMS = (11_000, 11_000)
    FMTS = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC, Format.ZVC]

    def _best(self, density: float) -> Format:
        sweep = transfer_energy_sweep(self.DIMS, [density], self.FMTS, 32)
        return min(self.FMTS, key=lambda f: sweep[f][0])

    def test_four_stars(self):
        """Fig. 4a: COO / RLC / ZVC / Dense at 1e-8 / 10% / 50% / 100%."""
        assert self._best(1e-8) is Format.COO
        assert self._best(0.10) is Format.RLC
        assert self._best(0.50) is Format.ZVC
        assert self._best(1.00) is Format.DENSE

    def test_normalization_to_csr(self):
        sweep = transfer_energy_sweep(self.DIMS, [0.01], self.FMTS, 32)
        assert sweep[Format.CSR][0] == pytest.approx(1.0)

    def test_csr_zvc_crossover_in_single_digit_percent(self):
        """The first red line of Fig. 4a: CSR overtakes ZVC at a few %."""
        x = crossover_density(Format.CSR, Format.ZVC, self.DIMS)
        assert 0.01 <= x <= 0.12

    def test_coo_csr_crossover_extreme(self):
        x = crossover_density(Format.COO, Format.CSR, self.DIMS)
        assert x < 1e-3

    def test_quantization_raises_metadata_share(self):
        """Fig. 4a-ii: with 8-bit data the metadata share grows, pushing the
        compressed formats' relative cost up."""
        s32 = transfer_energy_sweep(self.DIMS, [0.10], self.FMTS, 32, normalize_to=None)
        s8 = transfer_energy_sweep(self.DIMS, [0.10], self.FMTS, 8, normalize_to=None)
        ratio32 = s32[Format.CSR][0] / s32[Format.DENSE][0]
        ratio8 = s8[Format.CSR][0] / s8[Format.DENSE][0]
        assert ratio8 > ratio32

    def test_fig4b_k_dimension_effect(self):
        """Fig. 4b-i: growing K changes which format is most compact at
        extreme sparsity (CSR's pointer array amortizes; COO's indices
        widen)."""
        density = 1e-5
        small_k = {
            f: storage_bits(f, (1000, 1000), int(density * 1e6))
            for f in (Format.COO, Format.CSR)
        }
        big_k = {
            f: storage_bits(f, (1000, 1_000_000), int(density * 1e9))
            for f in (Format.COO, Format.CSR)
        }
        # The CSR/COO ratio must move with K.
        assert (
            small_k[Format.CSR] / small_k[Format.COO]
            != pytest.approx(big_k[Format.CSR] / big_k[Format.COO], rel=0.05)
        )

    def test_no_crossover_raises(self):
        # COO is strictly more compact than Dense across this whole bracket.
        with pytest.raises(ValueError):
            crossover_density(
                Format.COO, Format.DENSE, self.DIMS, lo=1e-8, hi=1e-6
            )
