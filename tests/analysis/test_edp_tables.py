"""EDP aggregation helpers and table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.edp import (
    edp_table,
    geomean_reduction,
    normalized_edp,
    reduction_percent,
)
from repro.analysis.tables import fmt_pct, fmt_sci, render_table


class TestEdp:
    def test_normalized(self):
        out = normalized_edp({"a": 2.0, "ours": 1.0}, "ours")
        assert out == {"a": 2.0, "ours": 1.0}

    def test_normalized_missing_reference(self):
        with pytest.raises(KeyError):
            normalized_edp({"a": 1.0}, "ours")

    def test_reduction_percent_matches_paper_convention(self):
        # A baseline at 4.69x our EDP is a '369% reduction'.
        assert reduction_percent(4.69, 1.0) == pytest.approx(369.0)

    def test_geomean_reduction(self):
        tables = [{"base": 2.0, "ours": 1.0}, {"base": 8.0, "ours": 1.0}]
        assert geomean_reduction(tables, "base", "ours") == pytest.approx(300.0)

    def test_edp_table_summary(self):
        per_wl = {
            "w1": {"base": 2.0, "ours": 1.0},
            "w2": {"base": 4.0, "ours": 1.0},
        }
        t = edp_table(per_wl, "ours")
        assert t["base"]["max_reduction_pct"] == pytest.approx(300.0)
        assert t["base"]["geomean_reduction_pct"] == pytest.approx(
            (8.0 ** 0.5 - 1) * 100
        )


class TestTables:
    def test_render_aligned(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-" not in line)

    def test_formatters(self):
        assert fmt_sci(1234.5, 2) == "1.23e+03"
        assert fmt_pct(12.345) == "12.3%"
