"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; per-test isolation via fixed seed."""
    return np.random.default_rng(12345)


def make_sparse(rng, shape, density):
    """Dense ndarray with ~density fraction of nonzeros in (0.1, 1]."""
    mask = rng.random(shape) < density
    return (0.1 + 0.9 * rng.random(shape)) * mask


@pytest.fixture
def small_matrix(rng) -> np.ndarray:
    """A 9x7 matrix at ~30% density."""
    return make_sparse(rng, (9, 7), 0.3)


@pytest.fixture
def small_tensor(rng) -> np.ndarray:
    """A 5x6x7 tensor at ~20% density."""
    return make_sparse(rng, (5, 6, 7), 0.2)
