"""PredictOptions / RunOptions: validation, merging, wire round trips."""

from __future__ import annotations

import json

import pytest

from repro.api.options import (
    FIDELITIES,
    PredictOptions,
    RunOptions,
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA_VERSION,
    resolve_options,
)
from repro.errors import PredictionError
from repro.formats.registry import Format


class TestPredictOptionsValidation:
    def test_defaults_are_unrestricted(self):
        opts = PredictOptions()
        # fidelity=None defers to the backend's default tier (analytical
        # in-process, the server's configured tier remotely).
        assert opts.fidelity is None
        assert opts.local_fidelity == "analytical"
        assert not opts.restricts_search

    def test_explicit_fidelity_sticks(self):
        assert PredictOptions(fidelity="cycle").local_fidelity == "cycle"

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(PredictionError, match="unknown fidelity"):
            PredictOptions(fidelity="oracular")

    def test_fixed_mcf_coerced_from_values(self):
        opts = PredictOptions(fixed_mcf=("CSR", "Dense"))
        assert opts.fixed_mcf == (Format.CSR, Format.DENSE)
        assert opts.restricts_search

    def test_fixed_mcf_wrong_arity_rejected(self):
        with pytest.raises(PredictionError, match="exactly two"):
            PredictOptions(fixed_mcf=(Format.CSR,))

    def test_unknown_format_rejected(self):
        with pytest.raises(PredictionError, match="unknown format"):
            PredictOptions(mcf_a_space=("CSR", "Quux"))

    def test_empty_space_rejected(self):
        with pytest.raises(PredictionError, match="must not be empty"):
            PredictOptions(mcf_b_space=())

    @pytest.mark.parametrize("field,value", [("top_k", 0), ("processes", 0)])
    def test_nonpositive_counts_rejected(self, field, value):
        with pytest.raises(PredictionError):
            PredictOptions(**{field: value})

    def test_spaces_mark_restriction(self):
        assert PredictOptions(mcf_a_space=(Format.CSR,)).restricts_search
        assert PredictOptions(mcf_b_space=(Format.DENSE,)).restricts_search
        assert not PredictOptions(top_k=3, processes=2).restricts_search


class TestHardwareOverrides:
    def test_defaults_do_not_override(self):
        opts = PredictOptions()
        assert opts.config is None and opts.dram_gbps is None
        assert not opts.overrides_hardware

    def test_config_marks_override(self):
        from repro.accelerator.config import AcceleratorConfig

        opts = PredictOptions(config=AcceleratorConfig.paper_default())
        assert opts.overrides_hardware
        assert not opts.restricts_search  # orthogonal to search narrowing

    def test_dram_marks_override(self):
        assert PredictOptions(dram_gbps=32.0).overrides_hardware

    def test_config_dict_coerced(self):
        from repro.accelerator.config import AcceleratorConfig

        data = AcceleratorConfig.paper_default().to_dict()
        opts = PredictOptions(config=data)
        assert opts.config == AcceleratorConfig.paper_default()

    def test_nonpositive_dram_rejected(self):
        with pytest.raises(PredictionError, match="dram_gbps"):
            PredictOptions(dram_gbps=0.0)

    def test_wire_omits_unset_override_keys(self):
        # Wire shape must stay identical for non-tuning clients so that
        # old servers keep accepting new clients (and vice versa).
        wire = PredictOptions(fidelity="cycle").to_wire()
        assert "config" not in wire and "dram_gbps" not in wire

    def test_wire_round_trip_with_overrides(self):
        from repro.accelerator.config import AcceleratorConfig

        opts = PredictOptions(
            config=AcceleratorConfig.paper_default(), dram_gbps=256.0
        )
        rebuilt = PredictOptions.from_wire(json.loads(json.dumps(opts.to_wire())))
        assert rebuilt == opts
        assert rebuilt.overrides_hardware

    def test_legacy_wire_still_parses(self):
        # Payloads emitted before the override fields existed carry
        # neither key; they must decode to non-overriding options.
        legacy = {"fidelity": "analytical", "top_k": 1}
        opts = PredictOptions.from_wire(legacy)
        assert not opts.overrides_hardware


class TestResolveOptions:
    def test_none_yields_defaults(self):
        assert resolve_options() == PredictOptions()

    def test_overrides_win(self):
        base = PredictOptions(fidelity="analytical", top_k=5)
        merged = resolve_options(base, fidelity="cycle")
        assert merged.fidelity == "cycle"
        assert merged.top_k == 5

    def test_none_overrides_keep_base(self):
        base = PredictOptions(fixed_mcf=(Format.CSR, Format.DENSE))
        assert resolve_options(base, fixed_mcf=None) == base

    def test_unknown_fidelity_override_rejected_naming_tiers(self):
        # Caught at resolution time, naming the registered tiers — not
        # deep inside the predictor after the search already ran.
        with pytest.raises(PredictionError, match="registered tiers"):
            resolve_options(PredictOptions(), fidelity="oracular")

    def test_calibrated_is_a_registered_tier(self):
        assert resolve_options(fidelity="calibrated").fidelity == "calibrated"


class TestPredictOptionsWire:
    @pytest.mark.parametrize(
        "opts",
        [
            PredictOptions(),
            PredictOptions(fidelity="cycle", top_k=3, processes=2),
            PredictOptions(
                fixed_mcf=(Format.CSR, Format.DENSE),
                mcf_a_space=(Format.CSR, Format.COO),
                mcf_b_space=(Format.DENSE,),
            ),
        ],
    )
    def test_round_trip(self, opts):
        assert PredictOptions.from_wire(opts.to_wire()) == opts

    def test_wire_is_json_safe(self):
        opts = PredictOptions(fixed_mcf=(Format.RLC, Format.ZVC), top_k=2)
        rebuilt = PredictOptions.from_wire(json.loads(json.dumps(opts.to_wire())))
        assert rebuilt == opts

    def test_unknown_wire_field_rejected(self):
        with pytest.raises(PredictionError, match="unknown PredictOptions"):
            PredictOptions.from_wire({"fidelity": "analytical", "mcf": ["CSR"]})

    def test_schema_constants_consistent(self):
        assert WIRE_SCHEMA_VERSION in SUPPORTED_WIRE_SCHEMAS
        assert set(FIDELITIES) == {"analytical", "calibrated", "cycle"}


class TestRunOptions:
    def test_round_trip(self):
        opts = RunOptions(
            predict=PredictOptions(fidelity="cycle", top_k=2),
            seed=7,
            engine="reference",
            verify=False,
            max_sim_elements=1 << 12,
        )
        assert RunOptions.from_wire(json.loads(json.dumps(opts.to_wire()))) == opts

    def test_unknown_engine_rejected(self):
        with pytest.raises(PredictionError, match="unknown run engine"):
            RunOptions(engine="quantum")

    def test_unknown_wire_field_rejected(self):
        with pytest.raises(PredictionError, match="unknown RunOptions"):
            RunOptions.from_wire({"sim_cap": 4})

    def test_nonpositive_cap_rejected(self):
        with pytest.raises(PredictionError, match="max_sim_elements"):
            RunOptions(max_sim_elements=0)
