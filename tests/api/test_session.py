"""The Session facade: local backend, batch routing, the run() pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    LocalBackend,
    PredictOptions,
    RunOptions,
    RunResult,
    Session,
)
from repro.errors import ConfigError, PredictionError, SimulationError
from repro.formats.registry import Format
from repro.sage import Sage
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _wl(name: str = "sess", m: int = 192, nnz_a: int = 1_500) -> MatrixWorkload:
    return MatrixWorkload(name, Kernel.SPMM, m=m, k=192, n=96,
                          nnz_a=nnz_a, nnz_b=192 * 96)


class TestBackendSelection:
    def test_default_is_local(self):
        assert Session().backend.describe() == "local"

    def test_unknown_backend_string_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            Session("carrier-pigeon")

    @pytest.mark.parametrize("url", ["tcp://", "tcp://host", "tcp://host:abc"])
    def test_malformed_tcp_url_rejected(self, url):
        with pytest.raises(ConfigError, match="malformed backend URL"):
            Session(url)

    def test_backend_object_slots_in(self):
        backend = LocalBackend(Sage())
        session = Session(backend)
        assert session.backend is backend


class TestPredictRouting:
    SESSION = Session()

    def test_single_matches_sage(self):
        wl = _wl()
        assert self.SESSION.predict(wl) == Sage().predict(wl)

    def test_wire_dict_accepted(self):
        wl = _wl("dicted")
        assert self.SESSION.predict(wl.to_dict()) == self.SESSION.predict(wl)

    def test_batch_returns_list_in_order(self):
        suite = [_wl(f"b{i}", m=160 + 16 * i) for i in range(3)]
        decisions = self.SESSION.predict(suite)
        assert isinstance(decisions, list)
        assert [d.workload_name for d in decisions] == [wl.name for wl in suite]
        singles = [self.SESSION.predict(wl) for wl in suite]
        assert [d.best for d in decisions] == [d.best for d in singles]

    def test_tensor_routes_through_same_call(self):
        wl = TensorWorkload("t", Kernel.SPTTM, (24, 24, 24), 500, rank=8)
        assert self.SESSION.predict(wl) == Sage().predict(wl)

    def test_options_reach_the_search(self):
        wl = _wl("pinned")
        d = self.SESSION.predict(
            wl, PredictOptions(fixed_mcf=(Format.CSR, Format.DENSE))
        )
        assert d.best.mcf == (Format.CSR, Format.DENSE)
        assert all(c.mcf == (Format.CSR, Format.DENSE) for c in d.ranking)

    def test_override_kwargs_apply(self):
        wl = _wl("topk")
        d = self.SESSION.predict(wl, top_k=2)
        assert len(d.ranking) == 2

    def test_repeat_hits_local_cache(self):
        session = Session()
        wl = _wl("cached", m=224)
        session.predict(wl)
        session.predict(wl)
        stats = session.backend.cache_stats()["analytical"]
        assert stats["hits"] >= 1

    def test_cache_hit_is_relabeled(self):
        session = Session()
        alice = _wl("alice", m=256)
        bob = _wl("bob", m=256)
        session.predict(alice)
        assert session.predict(bob).workload_name == "bob"

    def test_restricted_options_bypass_cache(self):
        session = Session()
        wl = _wl("bypass", m=288)
        free = session.predict(wl)
        pinned = session.predict(
            wl, PredictOptions(mcf_a_space=(Format.DENSE,))
        )
        assert all(c.mcf[0] is Format.DENSE for c in pinned.ranking)
        assert free.best.edp <= pinned.best.edp

    def test_non_workload_rejected(self):
        with pytest.raises(TypeError, match="expected a workload"):
            self.SESSION.predict(42)


class TestRunPipeline:
    SESSION = Session()

    def test_run_result_is_coherent(self):
        wl = _wl("run", m=96, nnz_a=700)
        result = self.SESSION.run(wl)
        assert isinstance(result, RunResult)
        # The pipeline's decision is exactly what predict() returns.
        assert result.decision == self.SESSION.predict(wl)
        # Conversion reports follow the decision's formats.
        assert result.conversion_a.source is result.decision.mcf[0]
        assert result.conversion_a.target is result.decision.acf[0]
        assert result.conversion_b.source is result.decision.mcf[1]
        assert result.conversion_b.target is result.decision.acf[1]
        # Report-accounting invariants.
        c = result.report.cycles
        assert c.total_cycles > 0
        assert 0 <= c.matched_macs <= c.issued_macs
        assert result.report.energy.total_j > 0
        assert result.edp == pytest.approx(result.report.edp)
        assert result.verified is True
        assert result.sim_scale == 1.0
        assert result.output.shape == (wl.m, wl.n)

    def test_run_is_deterministic_in_seed(self):
        wl = _wl("seeded", m=80, nnz_a=400)
        r1 = self.SESSION.run(wl, RunOptions(seed=3))
        r2 = self.SESSION.run(wl, RunOptions(seed=3))
        assert np.array_equal(r1.output, r2.output)
        assert r1.report.cycles == r2.report.cycles

    def test_run_with_concrete_operands(self):
        wl = MatrixWorkload("concrete", Kernel.SPMM, m=12, k=16, n=8,
                            nnz_a=20, nnz_b=16 * 8)
        rng = np.random.default_rng(0)
        a = np.zeros((12, 16))
        a[rng.integers(0, 12, 20), rng.integers(0, 16, 20)] = 1.0
        b = rng.random((16, 8))
        result = self.SESSION.run(wl, a=a, b=b)
        assert np.allclose(result.output, a @ b)

    def test_run_requires_both_operands(self):
        with pytest.raises(SimulationError, match="both operands"):
            self.SESSION.run(_wl("half"), a=np.zeros((192, 192)))

    def test_run_rejects_mismatched_operands(self):
        wl = _wl("shape")
        with pytest.raises(SimulationError, match="disagree"):
            self.SESSION.run(wl, a=np.zeros((2, 2)), b=np.zeros((2, 2)))

    def test_oversized_workload_runs_via_proxy(self):
        wl = MatrixWorkload("big", Kernel.SPMM, m=4096, k=4096, n=2048,
                            nnz_a=400_000, nnz_b=4096 * 2048)
        result = self.SESSION.run(
            wl, RunOptions(max_sim_elements=1 << 10, verify=True)
        )
        assert result.sim_scale < 1.0
        assert result.sim_workload.m < wl.m
        # Density is preserved by the proxy (within rounding).
        assert result.sim_workload.density_a == pytest.approx(
            wl.density_a, rel=0.35
        )

    def test_run_rejects_tensor_workloads(self):
        wl = TensorWorkload("t", Kernel.MTTKRP, (16, 16, 16), 100, rank=4)
        with pytest.raises(PredictionError, match="matrix workloads only"):
            self.SESSION.run(wl)

    def test_reference_engine_matches_vectorized(self):
        wl = _wl("engines", m=64, nnz_a=300)
        vec = self.SESSION.run(wl, RunOptions(engine="vectorized"))
        ref = self.SESSION.run(wl, RunOptions(engine="reference"))
        assert vec.report.cycles == ref.report.cycles
        assert np.allclose(vec.output, ref.output)


class TestLocalRemoteParity:
    """The acceptance bar: one Session API, wire-identical decisions."""

    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve import SageServer, ServeConfig

        # near_hit off: the parity bar asserts bit-identical wire
        # decisions, which is exactly the --exact serving mode.  The
        # near-hit tier deliberately answers from a same-band neighbour
        # (accuracy-for-latency) and is covered by tests/serve/.
        with SageServer(
            serve=ServeConfig(
                port=0, shards=1, batch_window_ms=1.0, near_hit=False
            )
        ) as srv:
            yield srv

    def test_predict_wire_identical_across_backends(self, server):
        host, port = server.address
        wl = _wl("parity", m=208, nnz_a=1_800)
        with Session(f"tcp://{host}:{port}") as remote:
            local = Session()
            assert (
                local.predict(wl).to_wire() == remote.predict(wl).to_wire()
            )

    def test_options_wire_identical_across_backends(self, server):
        host, port = server.address
        wl = _wl("parity-opts", m=216, nnz_a=1_900)
        opts = PredictOptions(
            fixed_mcf=(Format.CSR, Format.DENSE), top_k=3
        )
        with Session(f"tcp://{host}:{port}") as remote:
            local = Session()
            lw = local.predict(wl, opts).to_wire()
            rw = remote.predict(wl, opts).to_wire()
            assert lw == rw
            assert len(lw["ranking"]) == 3

    def test_batch_wire_identical_across_backends(self, server):
        host, port = server.address
        suite = [_wl(f"parity-b{i}", m=176 + 8 * i) for i in range(3)]
        with Session(f"tcp://{host}:{port}") as remote:
            local = Session()
            lws = [d.to_wire() for d in local.predict(suite)]
            rws = [d.to_wire() for d in remote.predict(suite)]
            assert lws == rws

    def test_run_through_remote_decision(self, server):
        host, port = server.address
        wl = _wl("parity-run", m=96, nnz_a=600)
        with Session(f"tcp://{host}:{port}") as remote:
            result = remote.run(wl)
            assert result.decision.to_wire() == Session().predict(wl).to_wire()
            assert result.verified is True


class TestCalibratedParity:
    """Calibrated decisions: wire-identical across backends, cache-key split."""

    @pytest.fixture(scope="class")
    def table(self, tmp_path_factory):
        from repro.sage.calibrate import GRIDS, build_table
        from repro.xp.artifacts import ArtifactStore

        store = ArtifactStore(tmp_path_factory.mktemp("parity-calibration"))
        return build_table(GRIDS["tiny"], store=store).table

    @pytest.fixture(scope="class")
    def server(self, table):
        from repro.serve import SageServer, ServeConfig

        with SageServer(
            sage=Sage(calibration=table),
            serve=ServeConfig(
                port=0, shards=1, batch_window_ms=1.0, near_hit=False
            ),
        ) as srv:
            yield srv

    def test_wire_identical_across_backends(self, server, table):
        host, port = server.address
        wl = _wl("parity-cal", m=224, nnz_a=2_000)
        opts = PredictOptions(fidelity="calibrated")
        local = Session(LocalBackend(Sage(calibration=table)))
        with Session(f"tcp://{host}:{port}") as remote:
            lw = local.predict(wl, opts).to_wire()
            rw = remote.predict(wl, opts).to_wire()
        assert lw == rw
        assert lw["fidelity"] == "calibrated"
        assert "error_bound" in lw

    def test_never_served_from_analytical_cache(self, table):
        # Regression guard on the cache-key split: an analytical entry
        # for the same fingerprint must not answer a calibrated request.
        backend = LocalBackend(Sage(calibration=table))
        wl = _wl("parity-cal-cache", m=232, nnz_a=2_100)
        ana = backend.predict_one(wl, PredictOptions(fidelity="analytical"))
        cal = backend.predict_one(wl, PredictOptions(fidelity="calibrated"))
        assert ana.fidelity == "analytical" and cal.fidelity == "calibrated"
        assert cal != ana
        stats = backend.cache_stats()
        assert set(stats) == {"analytical", "calibrated", "cycle"}
        assert stats["calibrated"]["misses"] == 1
        # Repeats come from the calibrated cache, not a recompute.
        again = backend.predict_one(wl, PredictOptions(fidelity="calibrated"))
        assert again == cal
        assert backend.cache_stats()["calibrated"]["hits"] == 1
