"""The public surface's docstring examples execute (the docstring audit).

Every public class/method of ``repro.api`` and the ``repro.xp`` registry
carries a docstring, and the doctest-style examples in them are run here
so they cannot drift from the real API.
"""

from __future__ import annotations

import doctest
import inspect

import pytest

import repro.api.options
import repro.api.result
import repro.api.session
import repro.xp.artifacts
import repro.xp.registry
import repro.xp.runner

DOCTESTED_MODULES = (
    repro.api.options,
    repro.api.result,
    repro.api.session,
)

AUDITED_MODULES = DOCTESTED_MODULES + (
    repro.xp.registry,
    repro.xp.runner,
    repro.xp.artifacts,
)


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda m: m.__name__
)
def test_docstring_examples_run(module):
    results = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert results.attempted > 0, f"{module.__name__} has no examples"
    assert results.failed == 0


@pytest.mark.parametrize(
    "module", AUDITED_MODULES, ids=lambda m: m.__name__
)
def test_every_public_item_has_a_docstring(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not inspect.getdoc(obj):
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_") and attr != "__init__":
                    continue
                if callable(member) or isinstance(member, property):
                    fn = member.fget if isinstance(member, property) else member
                    if not inspect.getdoc(fn):
                        undocumented.append(f"{name}.{attr}")
    assert not undocumented, undocumented
