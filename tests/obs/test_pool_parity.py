"""fork_map telemetry parity: pooled worker metrics equal a sequential run.

Workers record onto their own (reset) registries; the parent merges the
highest-sequence snapshot per worker pid after the map.  Integer-valued
samples make the comparison exact, so the pooled delta must be *equal*
to the sequential delta, not approximately so.
"""

from __future__ import annotations

import copy

from repro.obs import registry, span, start_trace, stop_trace
from repro.util.pool import fork_map

_COUNTER = "test_pool_parity_total"
_HIST = "test_pool_parity_seconds"


def _traced_work(x: int) -> int:
    branch = "even" if x % 2 == 0 else "odd"
    registry().counter(_COUNTER).inc(2, branch=branch)
    registry().histogram(_HIST).observe(x + 1)
    with span("test.pool_span"):
        pass
    return x * x


def _metric_state() -> dict:
    """Deep-copied current values of the metrics this test records."""
    snap = registry().snapshot()
    return {
        name: copy.deepcopy(snap.get(name, {}).get("values", {}))
        for name in (_COUNTER, _HIST)
    }


def _delta(before: dict, after: dict) -> dict:
    """Per-metric deltas (counter values subtract; histogram state diffs)."""
    out: dict = {}
    counters = {}
    for key in after[_COUNTER]:
        counters[key] = after[_COUNTER][key] - before[_COUNTER].get(key, 0)
    out[_COUNTER] = counters
    hists = {}
    for key, state in after[_HIST].items():
        prev = before[_HIST].get(key)
        if prev is None:
            prev = {"buckets": [0] * len(state["buckets"]),
                    "count": 0, "sum": 0.0}
        hists[key] = {
            "count": state["count"] - prev["count"],
            "sum": state["sum"] - prev["sum"],
            "buckets": [
                a - b for a, b in zip(state["buckets"], prev["buckets"])
            ],
        }
    out[_HIST] = hists
    return out


def test_pool_aggregated_metrics_equal_sequential_run():
    items = list(range(12))

    before = _metric_state()
    sequential = fork_map(_traced_work, items, processes=1)
    seq_delta = _delta(before, _metric_state())

    before = _metric_state()
    pooled = fork_map(_traced_work, items, processes=4)
    pool_delta = _delta(before, _metric_state())

    assert pooled == sequential == [x * x for x in items]
    assert pool_delta == seq_delta
    # Sanity: the work actually recorded something to compare.
    assert seq_delta[_COUNTER] == {"branch=even": 12, "branch=odd": 12}
    assert seq_delta[_HIST][""]["count"] == 12


def test_worker_span_events_ride_back_to_parent_trace():
    items = list(range(8))
    start_trace()
    try:
        fork_map(_traced_work, items, processes=4)
    finally:
        events = stop_trace()
    mine = [e for e in events if e["name"] == "test.pool_span"]
    assert len(mine) == len(items)
    # The map wrapper span is recorded parent-side either way.
    assert any(e["name"] == "pool.fork_map" for e in events)


def test_worker_task_timings_land_in_parent_histogram():
    hist = registry().histogram("repro_pool_task_seconds")
    before = hist.count()
    fork_map(_traced_work, list(range(6)), processes=3)
    after = hist.count()
    # Only the pool path envelopes tasks; a degraded (sequential)
    # platform records zero per-task samples, which is also correct.
    assert after - before in (0, 6)
