"""Property tests for the exact-merge metric registry.

The merge laws are the load-bearing guarantee of ``repro.obs.metrics``:
fork-pool workers, serve shards and remote servers each hold their own
registry, and the aggregate is produced purely by merging snapshots.
Integer-valued samples are used wherever exact equality is asserted —
integer float addition is exact well past any count these tests reach,
so snapshot equality is bitwise, not approximate.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricRegistry,
    _label_key,
    _parse_label_key,
    merge_snapshots,
    render_prometheus,
    snapshot_quantile,
)

# One operation on a registry: (metric kind, label value, amount).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["counter", "gauge", "hist"]),
        st.sampled_from(["a", "b", ""]),
        st.integers(min_value=1, max_value=1_000),
    ),
    max_size=30,
)


def _apply(ops) -> dict:
    """Replay *ops* onto a fresh registry, return its snapshot."""
    reg = MetricRegistry()
    for kind, label, amount in ops:
        labels = {"l": label} if label else {}
        if kind == "counter":
            reg.counter("c_total", "ops").inc(amount, **labels)
        elif kind == "gauge":
            reg.gauge("g", "level").set(amount, **labels)
        else:
            reg.histogram("h_seconds", "dur").observe(amount, **labels)
    return reg.snapshot()


class TestMergeLaws:
    @given(_OPS, _OPS)
    def test_commutative(self, ops_a, ops_b):
        a, b = _apply(ops_a), _apply(ops_b)
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @given(_OPS, _OPS, _OPS)
    @settings(max_examples=50)
    def test_associative(self, ops_a, ops_b, ops_c):
        a, b, c = _apply(ops_a), _apply(ops_b), _apply(ops_c)
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @given(_OPS)
    def test_identity(self, ops):
        snap = _apply(ops)
        assert merge_snapshots(snap, {}) == snap
        assert merge_snapshots() == {}

    @given(_OPS, _OPS)
    def test_split_run_equals_sequential_run(self, ops_a, ops_b):
        """Worker parity at the snapshot level: replaying a stream split
        across two registries and merging equals replaying it on one.

        Holds for counters and histograms (pure sums).  Gauges are
        point-in-time by design — merge takes the max while a sequential
        replay keeps the last set value — so they are excluded.
        """
        merged = merge_snapshots(_apply(ops_a), _apply(ops_b))
        sequential = _apply(list(ops_a) + list(ops_b))
        for snap in (merged, sequential):
            snap.pop("g", None)
        assert merged == sequential


class TestHistogramQuantile:
    @given(
        st.lists(
            st.floats(min_value=1e-5, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_estimate_bounded_by_bucket_width(self, values, q):
        hist = Histogram("h", bounds=DEFAULT_BUCKETS)
        for value in values:
            hist.observe(value)
        estimate = hist.quantile(q)
        rank = max(1, math.ceil(q * len(values)))
        true = sorted(values)[rank - 1]
        # Log2 buckets: the estimate is the containing bucket's upper
        # edge clamped to the observed max, so it can never undershoot
        # the true nearest-rank sample nor overshoot it by more than the
        # bucket factor (2x).
        assert true <= estimate <= 2.0 * true

    def test_empty_series_is_none(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        assert hist.quantile(0.5, op="x") is None

    def test_overflow_bucket_returns_observed_max(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1000.0)
        assert hist.quantile(0.99) == 1000.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    @given(
        st.lists(st.integers(min_value=1, max_value=128),
                 min_size=1, max_size=40),
        st.integers(min_value=0, max_value=40),
    )
    def test_merged_quantile_equals_single_process(self, values, split):
        """Estimates off a merged snapshot match a single-registry run."""
        split = min(split, len(values))
        one = MetricRegistry()
        left, right = MetricRegistry(), MetricRegistry()
        for reg, chunk in ((left, values[:split]), (right, values[split:])):
            for v in chunk:
                reg.histogram("h").observe(v)
        for v in values:
            one.histogram("h").observe(v)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged == one.snapshot()
        for q in (0.0, 0.5, 0.9, 1.0):
            assert snapshot_quantile(merged["h"], "", q) == one.histogram(
                "h"
            ).quantile(q)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_conflict_rejected(self):
        reg = MetricRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="different"):
            reg.histogram("h", bounds=(1.0, 4.0))

    def test_merge_rejects_mismatched_bucketing(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(1)
        b.histogram("h", bounds=(1.0, 2.0, 4.0)).observe(1)
        with pytest.raises(ValueError, match="bucket"):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_reset_keeps_handles_alive(self):
        reg = MetricRegistry()
        counter = reg.counter("c")
        counter.inc(5)
        reg.reset()
        assert counter.value() == 0
        counter.inc(2)  # the pre-reset handle still records
        assert reg.counter("c").value() == 2

    def test_gauge_merges_by_max(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.gauge("g").set(3)
        b.gauge("g").set(7)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["g"]["values"][""] == 7


class TestLabels:
    @given(
        st.dictionaries(
            st.sampled_from(["op", "kind", "path"]),
            st.text(min_size=1, max_size=8),
            max_size=3,
        )
    )
    def test_label_key_roundtrip(self, labels):
        key = _label_key(labels)
        parsed = _parse_label_key(key)
        assert set(parsed) == set(labels)
        for k, v in labels.items():
            # Sanitization replaces separators; everything else survives.
            expected = v
            for ch in (",", "=", "\n"):
                expected = expected.replace(ch, "_")
            assert parsed[k] == expected


class TestPrometheusRender:
    def test_render_counter_gauge_histogram(self):
        reg = MetricRegistry()
        reg.counter("c_total", "help text").inc(3, op="x")
        reg.gauge("g").set(2.5)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        text = render_prometheus(reg.snapshot())
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{op="x"} 3' in text
        assert "g 2.5" in text
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text

    def test_registry_render_matches_snapshot_render(self):
        reg = MetricRegistry()
        reg.counter("c").inc()
        assert reg.render_prometheus() == render_prometheus(reg.snapshot())
