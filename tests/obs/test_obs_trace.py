"""Spans, trace recording, Chrome export, and trace-ID propagation."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    collect_spans,
    current_trace_id,
    export_chrome_trace,
    new_trace_id,
    recording,
    registry,
    set_enabled,
    set_trace_id,
    span,
    start_trace,
    stop_trace,
)
from repro.obs.trace import drain_events


@pytest.fixture(autouse=True)
def _clean_trace_state():
    """Every test starts and ends with no recorder and no trace ID."""
    stop_trace()
    set_trace_id(None)
    yield
    stop_trace()
    set_trace_id(None)
    set_enabled(True)


def _span_count(name: str) -> int:
    return registry().histogram("repro_span_seconds").count(span=name)


class TestSpan:
    def test_span_observes_histogram(self):
        before = _span_count("test.alpha")
        with span("test.alpha"):
            pass
        assert _span_count("test.alpha") == before + 1

    def test_disabled_plane_records_nothing(self):
        set_enabled(False)
        before = _span_count("test.gated")
        start_trace()
        with span("test.gated"):
            pass
        assert _span_count("test.gated") == before
        assert stop_trace() == []

    def test_no_recorder_no_events(self):
        with span("test.quiet"):
            pass
        assert drain_events() == []
        assert not recording()


class TestRecorder:
    def test_start_stop_roundtrip(self):
        start_trace()
        assert recording()
        with span("layer.outer", detail=7):
            with span("layer.inner"):
                pass
        events = stop_trace()
        assert not recording()
        names = [e["name"] for e in events]
        assert names == ["layer.inner", "layer.outer"]  # exit order
        outer = events[1]
        assert outer["ph"] == "X"
        assert outer["cat"] == "layer"
        assert outer["dur"] >= events[0]["dur"]
        assert outer["args"]["detail"] == 7

    def test_start_trace_binds_a_trace_id(self):
        assert current_trace_id() is None
        start_trace()
        trace_id = current_trace_id()
        assert trace_id is not None
        with span("test.traced"):
            pass
        (event,) = stop_trace()
        assert event["args"]["trace_id"] == trace_id

    def test_existing_trace_id_is_kept(self):
        set_trace_id("feedface00000000")
        start_trace()
        assert current_trace_id() == "feedface00000000"

    def test_exception_recorded_on_event(self):
        start_trace()
        with pytest.raises(RuntimeError):
            with span("test.boom"):
                raise RuntimeError("nope")
        (event,) = stop_trace()
        assert event["args"]["error"] == "RuntimeError"

    def test_drain_keeps_recorder_installed(self):
        start_trace()
        with span("test.first"):
            pass
        assert len(drain_events()) == 1
        assert recording()
        with span("test.second"):
            pass
        assert [e["name"] for e in stop_trace()] == ["test.second"]


class TestTraceIds:
    def test_new_trace_id_shape(self):
        tid = new_trace_id()
        assert len(tid) == 16
        int(tid, 16)  # hex
        assert tid != new_trace_id()

    def test_set_and_clear(self):
        set_trace_id("abc")
        assert current_trace_id() == "abc"
        set_trace_id(None)
        assert current_trace_id() is None


class TestChromeExport:
    def test_export_is_loadable_chrome_trace(self, tmp_path):
        start_trace()
        with span("api.thing", nnz=12):
            pass
        out = tmp_path / "trace.json"
        export_chrome_trace(stop_trace(), str(out))
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["name"] == "api.thing"
        assert {"ph", "ts", "dur", "pid", "tid", "cat"} <= set(event)


class TestCollectSpans:
    def test_summary_aggregates_by_name(self):
        with collect_spans() as spans:
            for _ in range(3):
                with span("test.repeat"):
                    pass
        summary = spans.summary()
        assert summary["test.repeat"]["count"] == 3
        assert summary["test.repeat"]["seconds"] >= 0.0

    def test_collectors_nest_independently(self):
        with collect_spans() as outer:
            with span("test.outer_only"):
                pass
            with collect_spans() as inner:
                with span("test.both"):
                    pass
        assert set(outer.summary()) == {"test.outer_only", "test.both"}
        assert set(inner.summary()) == {"test.both"}

    def test_collector_works_without_recorder(self):
        assert not recording()
        with collect_spans() as spans:
            assert recording()
            with span("test.collected"):
                pass
        assert spans.summary()["test.collected"]["count"] == 1
