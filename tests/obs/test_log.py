"""Logging wiring: namespace helper, explicit and env configuration."""

from __future__ import annotations

import logging

import pytest

from repro.obs import configure_logging, get_logger
from repro.obs import log as obs_log


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if not isinstance(handler, logging.NullHandler):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def test_get_logger_prefixes_namespace():
    assert get_logger("serve").name == "repro.serve"
    assert get_logger("repro.xp").name == "repro.xp"


def test_unconfigured_logger_is_silent(capsys):
    get_logger("quiet").warning("should go nowhere visible")
    assert capsys.readouterr().err == ""


def test_configure_attaches_one_stream_handler():
    configure_logging("debug")
    configure_logging("info")  # reconfigure: level changes, no new handler
    root = logging.getLogger("repro")
    streams = [
        h for h in root.handlers
        if isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
    ]
    assert len(streams) == 1
    assert root.level == logging.INFO


def test_configure_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging("chatty")


def test_env_var_configures_on_first_use(monkeypatch):
    monkeypatch.setenv("REPRO_LOG", "warning")
    monkeypatch.setattr(obs_log, "_configured", False)
    get_logger("envtest")
    assert logging.getLogger("repro").level == logging.WARNING


def test_messages_flow_once_configured(capsys):
    configure_logging("info")
    get_logger("flow").info("hello from the obs plane")
    assert "hello from the obs plane" in capsys.readouterr().err
