"""Format-specific structural invariants and validation errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    BsrMatrix,
    CooMatrix,
    CscMatrix,
    CsrMatrix,
    DiaMatrix,
    RlcMatrix,
    ZvcMatrix,
)
from repro.util.bits import bits_for_count, bits_for_index
from tests.conftest import make_sparse


class TestCoo:
    def test_sorted_row_major(self, small_matrix):
        coo = CooMatrix.from_dense(small_matrix).sorted_row_major()
        keys = coo.row_ids * coo.shape[1] + coo.col_ids
        assert np.all(np.diff(keys) > 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            CooMatrix((2, 2), [1.0], [5], [0])

    def test_rejects_duplicates(self):
        with pytest.raises(FormatError):
            CooMatrix((3, 3), [1.0, 2.0], [1, 1], [2, 2])

    def test_rejects_length_mismatch(self):
        with pytest.raises(FormatError):
            CooMatrix((3, 3), [1.0, 2.0], [1], [2, 0])

    def test_metadata_bits_formula(self, small_matrix):
        coo = CooMatrix.from_dense(small_matrix)
        expected = coo.stored * (
            bits_for_index(coo.shape[0]) + bits_for_index(coo.shape[1])
        )
        assert coo.storage().metadata_bits == expected


class TestCsr:
    def test_row_ptr_monotone(self, small_matrix):
        csr = CsrMatrix.from_dense(small_matrix)
        assert np.all(np.diff(csr.row_ptr) >= 0)
        assert csr.row_ptr[0] == 0 and csr.row_ptr[-1] == csr.stored

    def test_row_slice_contents(self, small_matrix):
        csr = CsrMatrix.from_dense(small_matrix)
        for i in range(csr.nrows):
            cols, vals = csr.row_slice(i)
            assert np.array_equal(small_matrix[i, cols], vals)
            assert len(cols) == int(np.count_nonzero(small_matrix[i]))

    def test_rejects_bad_row_ptr(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [1.0], [0], [0, 2, 1])

    def test_rejects_decreasing_ptr(self):
        with pytest.raises(FormatError):
            CsrMatrix((2, 2), [1.0, 2.0], [0, 1], [0, 2, 2][::-1])

    def test_metadata_bits_formula(self, small_matrix):
        csr = CsrMatrix.from_dense(small_matrix)
        expected = csr.stored * bits_for_index(csr.shape[1]) + (
            csr.shape[0] + 1
        ) * bits_for_count(csr.stored)
        assert csr.storage().metadata_bits == expected


class TestCsc:
    def test_col_slice_contents(self, small_matrix):
        csc = CscMatrix.from_dense(small_matrix)
        for j in range(csc.ncols):
            rows, vals = csc.col_slice(j)
            assert np.array_equal(small_matrix[rows, j], vals)

    def test_col_lengths_sum(self, small_matrix):
        csc = CscMatrix.from_dense(small_matrix)
        assert csc.col_lengths().sum() == csc.stored

    def test_rows_sorted_within_column(self, small_matrix):
        csc = CscMatrix.from_dense(small_matrix)
        for j in range(csc.ncols):
            rows, _ = csc.col_slice(j)
            assert np.all(np.diff(rows) > 0)

    def test_rejects_bad_col_ptr(self):
        with pytest.raises(FormatError):
            CscMatrix((2, 3), [1.0], [0], [0, 1])


class TestRlc:
    def test_entries_at_least_nnz(self, small_matrix):
        rlc = RlcMatrix.from_dense(small_matrix)
        assert rlc.entries >= rlc.nnz

    def test_run_overflow_inserts_padding(self):
        # A single nonzero after 100 zeros with 4-bit runs needs padding.
        dense = np.zeros((1, 101))
        dense[0, 100] = 7.0
        rlc = RlcMatrix.from_dense(dense, run_bits=4)
        assert rlc.entries > 1
        assert np.array_equal(rlc.to_dense(), dense)
        # Wider run field removes the padding.
        rlc7 = RlcMatrix.from_dense(dense, run_bits=7)
        assert rlc7.entries == 1

    def test_runs_respect_field_width(self, small_matrix):
        rlc = RlcMatrix.from_dense(small_matrix, run_bits=3)
        assert rlc.runs.max(initial=0) < 2 ** 3

    def test_storage_uses_run_bits(self, small_matrix):
        r3 = RlcMatrix.from_dense(small_matrix, run_bits=3)
        assert r3.storage().metadata_bits == 3 * r3.entries

    def test_rejects_overrun_stream(self):
        with pytest.raises(FormatError):
            RlcMatrix((1, 2), runs=[1, 1], levels=[1.0, 2.0])


class TestZvc:
    def test_mask_popcount(self, small_matrix):
        zvc = ZvcMatrix.from_dense(small_matrix)
        assert int(zvc.mask.sum()) == zvc.stored

    def test_metadata_is_one_bit_per_position(self, small_matrix):
        zvc = ZvcMatrix.from_dense(small_matrix)
        assert zvc.storage().metadata_bits == small_matrix.size

    def test_rejects_mask_length_mismatch(self):
        with pytest.raises(FormatError):
            ZvcMatrix((2, 2), [1.0], np.array([True, False, False]))

    def test_rejects_popcount_mismatch(self):
        with pytest.raises(FormatError):
            ZvcMatrix((2, 2), [1.0, 2.0], np.array([True, False, False, False]))


class TestBsr:
    def test_block_zero_fill_counted_as_data(self, rng):
        dense = np.zeros((4, 4))
        dense[0, 0] = 1.0  # one nonzero -> one 2x2 block with 3 zeros
        bsr = BsrMatrix.from_dense(dense)
        assert bsr.nblocks == 1
        assert bsr.storage().data_bits == 4 * 32

    def test_non_divisible_shape_padded(self, rng):
        dense = make_sparse(rng, (5, 7), 0.4)
        bsr = BsrMatrix.from_dense(dense, block_shape=(2, 3))
        assert np.array_equal(bsr.to_dense(), dense)

    def test_custom_block_shape(self, rng):
        dense = make_sparse(rng, (12, 12), 0.2)
        for bs in [(1, 1), (3, 3), (4, 2), (6, 6)]:
            bsr = BsrMatrix.from_dense(dense, block_shape=bs)
            assert np.array_equal(bsr.to_dense(), dense)

    def test_block_row_ptr_consistent(self, rng):
        dense = make_sparse(rng, (8, 8), 0.3)
        bsr = BsrMatrix.from_dense(dense)
        assert bsr.block_row_ptr[-1] == bsr.nblocks

    def test_rejects_bad_block_shape(self, small_matrix):
        with pytest.raises(FormatError):
            BsrMatrix.from_dense(small_matrix, block_shape=(0, 2))

    def test_dense_blocks_beat_coo_metadata(self, rng):
        # Clustered nonzeros: BSR metadata should be far below COO's.
        dense = np.zeros((16, 16))
        dense[:4, :4] = 1.0
        from repro.formats import CooMatrix

        bsr = BsrMatrix.from_dense(dense)
        coo = CooMatrix.from_dense(dense)
        assert bsr.storage().metadata_bits < coo.storage().metadata_bits


class TestDia:
    def test_banded_matrix_compact(self):
        dense = np.eye(20) + np.diag(np.ones(19), k=1)
        dia = DiaMatrix.from_dense(dense)
        assert dia.ndiags == 2
        coo_bits = None
        from repro.formats import CooMatrix

        coo_bits = CooMatrix.from_dense(dense).total_bits
        assert dia.total_bits < coo_bits

    def test_offsets_unique_sorted(self, small_matrix):
        dia = DiaMatrix.from_dense(small_matrix)
        assert len(np.unique(dia.offsets)) == dia.ndiags

    def test_wide_matrix(self, rng):
        dense = make_sparse(rng, (3, 40), 0.1)
        dia = DiaMatrix.from_dense(dense)
        assert np.array_equal(dia.to_dense(), dense)

    def test_tall_matrix(self, rng):
        dense = make_sparse(rng, (40, 3), 0.1)
        dia = DiaMatrix.from_dense(dense)
        assert np.array_equal(dia.to_dense(), dense)

    def test_rejects_duplicate_offsets(self):
        with pytest.raises(FormatError):
            DiaMatrix((3, 3), np.zeros((2, 3)), [0, 0])
