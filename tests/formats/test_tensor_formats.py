"""Round-trip and structural tests for the 3-D tensor formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    CooTensor,
    CsfTensor,
    DenseTensor,
    HicooTensor,
    RlcTensor,
    ZvcTensor,
)
from tests.conftest import make_sparse

ALL_TENSOR_CLASSES = [
    DenseTensor,
    CooTensor,
    CsfTensor,
    HicooTensor,
    RlcTensor,
    ZvcTensor,
]

SHAPES = [(1, 1, 1), (4, 4, 4), (2, 9, 5), (7, 1, 3)]
DENSITIES = [0.0, 0.1, 0.5, 1.0]


@pytest.mark.parametrize("cls", ALL_TENSOR_CLASSES)
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("density", DENSITIES)
def test_roundtrip_bit_exact(cls, shape, density, rng):
    dense = make_sparse(rng, shape, density)
    enc = cls.from_dense(dense)
    assert np.array_equal(enc.to_dense(), dense)
    assert enc.nnz == np.count_nonzero(dense)


@pytest.mark.parametrize("cls", ALL_TENSOR_CLASSES)
def test_storage_consistency(cls, small_tensor):
    enc = cls.from_dense(small_tensor)
    s = enc.storage()
    assert s.total_bits == s.data_bits + s.metadata_bits
    assert 0.0 <= s.metadata_fraction <= 1.0


@pytest.mark.parametrize("cls", ALL_TENSOR_CLASSES)
def test_rejects_2d_input(cls, small_matrix):
    with pytest.raises(ValueError):
        cls.from_dense(small_matrix)


class TestCsf:
    def test_tree_counts(self, small_tensor):
        csf = CsfTensor.from_dense(small_tensor)
        # Roots = distinct x coords; fibers = distinct (x, y) pairs.
        xs, ys, _ = np.nonzero(small_tensor)
        assert csf.nroots == len(np.unique(xs))
        assert csf.nfibers == len(
            np.unique(xs * small_tensor.shape[1] + ys)
        )

    def test_pointer_endpoints(self, small_tensor):
        csf = CsfTensor.from_dense(small_tensor)
        assert csf.x_ptr[-1] == csf.nfibers
        assert csf.y_ptr[-1] == len(csf.values)

    def test_coo_roundtrip(self, small_tensor):
        coo = CooTensor.from_dense(small_tensor)
        csf = CsfTensor.from_coo(coo)
        assert np.array_equal(csf.to_coo().to_dense(), small_tensor)

    def test_compression_vs_coo_on_clustered_fibers(self, rng):
        # Many leaves per fiber: CSF amortizes (x, y) across them.
        dense = np.zeros((4, 4, 64))
        dense[0, 0, :] = 1.0
        dense[1, 2, :] = 2.0
        csf = CsfTensor.from_dense(dense)
        coo = CooTensor.from_dense(dense)
        assert csf.storage().metadata_bits < coo.storage().metadata_bits

    def test_rejects_inconsistent_tree(self):
        with pytest.raises(FormatError):
            CsfTensor(
                (2, 2, 2),
                x_ids=[0],
                x_ptr=[0, 2],  # claims two fibers
                y_ids=[0],  # but only one exists
                y_ptr=[0, 1],
                z_ids=[0],
                values=[1.0],
            )


class TestCooTensor:
    def test_lexicographic_sort(self, small_tensor):
        coo = CooTensor.from_dense(small_tensor).sorted_lexicographic()
        key = (
            coo.x_ids * small_tensor.shape[1] + coo.y_ids
        ) * small_tensor.shape[2] + coo.z_ids
        assert np.all(np.diff(key) > 0)

    def test_rejects_duplicates(self):
        with pytest.raises(FormatError):
            CooTensor((2, 2, 2), [1.0, 2.0], [0, 0], [1, 1], [1, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            CooTensor((2, 2, 2), [1.0], [0], [0], [2])


class TestHicoo:
    def test_block_offsets_within_block(self, small_tensor):
        h = HicooTensor.from_dense(small_tensor)
        for axis in range(3):
            if len(h.values):
                assert h.elem_offsets[:, axis].max() < h.block_shape[axis]

    def test_bptr_partitions_entries(self, small_tensor):
        h = HicooTensor.from_dense(small_tensor)
        assert h.bptr[0] == 0 and h.bptr[-1] == len(h.values)
        assert np.all(np.diff(h.bptr) > 0)

    def test_custom_block_shape(self, rng):
        dense = make_sparse(rng, (8, 8, 8), 0.15)
        for bs in [(1, 1, 1), (4, 4, 4), (2, 4, 8)]:
            h = HicooTensor.from_dense(dense, block_shape=bs)
            assert np.array_equal(h.to_dense(), dense)

    def test_offset_bits_smaller_than_coo(self, rng):
        # Clustered data: HiCOO's narrow offsets beat COO's full indices.
        dense = np.zeros((16, 16, 16))
        dense[:2, :2, :2] = 1.0
        h = HicooTensor.from_dense(dense)
        coo = CooTensor.from_dense(dense)
        assert h.storage().metadata_bits < coo.storage().metadata_bits


class TestFlatTensor:
    def test_rlc_matches_flat_matrix_semantics(self, small_tensor):
        from repro.formats import RlcMatrix

        flat2d = small_tensor.reshape(1, -1)
        t = RlcTensor.from_dense(small_tensor)
        m = RlcMatrix.from_dense(flat2d)
        assert np.array_equal(t.runs, m.runs)
        assert np.array_equal(t.levels, m.levels)

    def test_zvc_mask_length(self, small_tensor):
        z = ZvcTensor.from_dense(small_tensor)
        assert len(z.mask) == small_tensor.size
        assert z.storage().metadata_bits == small_tensor.size
