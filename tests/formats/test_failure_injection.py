"""Failure injection: corrupted field arrays must be rejected at construction.

A downstream user deserializing format payloads from disk or a wire relies
on the constructors validating structural invariants; silently accepting a
corrupt pointer array would corrupt every kernel downstream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import (
    BsrMatrix,
    CooMatrix,
    CooTensor,
    CscMatrix,
    CsfTensor,
    CsrMatrix,
    EllMatrix,
    HicooTensor,
    RlcMatrix,
    ZvcMatrix,
)
from tests.conftest import make_sparse


@pytest.fixture
def csr(rng):
    return CsrMatrix.from_dense(make_sparse(rng, (8, 10), 0.3))


class TestCsrCorruption:
    def test_row_ptr_last_entry_wrong(self, csr):
        bad = csr.row_ptr.copy()
        bad[-1] += 1
        with pytest.raises(FormatError):
            CsrMatrix(csr.shape, csr.values, csr.col_ids, bad)

    def test_row_ptr_decreasing(self, csr):
        if csr.stored < 2:
            pytest.skip("needs 2 entries")
        bad = csr.row_ptr.copy()
        mid = len(bad) // 2
        bad[mid] = bad[-1] + 1  # spike above the end
        with pytest.raises(FormatError):
            CsrMatrix(csr.shape, csr.values, csr.col_ids, bad)

    def test_col_id_out_of_range(self, csr):
        bad = csr.col_ids.copy()
        bad[0] = csr.shape[1]
        with pytest.raises(FormatError):
            CsrMatrix(csr.shape, csr.values, bad, csr.row_ptr)

    def test_truncated_values(self, csr):
        with pytest.raises(FormatError):
            CsrMatrix(csr.shape, csr.values[:-1], csr.col_ids, csr.row_ptr)


class TestOtherMatrixCorruption:
    def test_coo_negative_index(self, rng):
        with pytest.raises(FormatError):
            CooMatrix((4, 4), [1.0], [-1], [0])

    def test_csc_ptr_wrong_length(self, rng):
        csc = CscMatrix.from_dense(make_sparse(rng, (5, 6), 0.4))
        with pytest.raises(FormatError):
            CscMatrix(csc.shape, csc.values, csc.row_ids, csc.col_ptr[:-1])

    def test_rlc_stream_overruns_shape(self):
        # Runs summing past the logical size must be rejected.
        with pytest.raises(FormatError):
            RlcMatrix((2, 2), runs=[3, 1], levels=[1.0, 2.0])

    def test_zvc_mask_all_zero_with_values(self):
        with pytest.raises(FormatError):
            ZvcMatrix((2, 2), [1.0], np.zeros(4, dtype=bool))

    def test_bsr_col_id_out_of_grid(self, rng):
        bsr = BsrMatrix.from_dense(make_sparse(rng, (6, 6), 0.5))
        if bsr.nblocks == 0:
            pytest.skip("no blocks")
        bad = bsr.block_col_ids.copy()
        bad[0] = bsr.block_cols
        with pytest.raises(FormatError):
            BsrMatrix(bsr.shape, bsr.values, bad, bsr.block_row_ptr,
                      block_shape=bsr.block_shape)

    def test_ell_nonzero_in_padding(self, rng):
        ell = EllMatrix.from_dense(make_sparse(rng, (5, 8), 0.2))
        if ell.width < 2:
            pytest.skip("needs padding slots")
        bad_vals = ell.values.copy()
        # Find a padding slot and plant a value without fixing the col id.
        pads = np.argwhere(ell.col_ids == -1)
        if len(pads) == 0:
            pytest.skip("no padding")
        i, j = pads[0]
        bad_vals[i, j] = 9.0
        with pytest.raises(FormatError):
            EllMatrix(ell.shape, bad_vals, ell.col_ids)

    def test_ell_shape_mismatch(self, rng):
        ell = EllMatrix.from_dense(make_sparse(rng, (5, 8), 0.3))
        with pytest.raises(FormatError):
            EllMatrix(ell.shape, ell.values, ell.col_ids[:-1])


class TestTensorCorruption:
    def test_csf_ptr_endpoint(self, rng):
        csf = CsfTensor.from_dense(make_sparse(rng, (4, 4, 4), 0.3))
        if csf.nroots == 0:
            pytest.skip("empty")
        bad = csf.x_ptr.copy()
        bad[-1] += 1
        with pytest.raises(FormatError):
            CsfTensor(csf.shape, csf.x_ids, bad, csf.y_ids, csf.y_ptr,
                      csf.z_ids, csf.values)

    def test_coo_tensor_duplicate(self):
        with pytest.raises(FormatError):
            CooTensor((2, 2, 2), [1.0, 2.0], [0, 0], [0, 0], [0, 0])

    def test_hicoo_offset_out_of_block(self, rng):
        h = HicooTensor.from_dense(make_sparse(rng, (6, 6, 6), 0.2))
        if len(h.values) == 0:
            pytest.skip("empty")
        bad = h.elem_offsets.copy()
        bad[0, 0] = h.block_shape[0]
        with pytest.raises(FormatError):
            HicooTensor(h.shape, h.values, h.bptr, h.block_ids, bad,
                        block_shape=h.block_shape)

    def test_hicoo_empty_block(self, rng):
        h = HicooTensor.from_dense(make_sparse(rng, (6, 6, 6), 0.2))
        if h.nblocks < 2:
            pytest.skip("needs blocks")
        bad = h.bptr.copy()
        bad[1] = bad[0]  # first block becomes empty
        with pytest.raises(FormatError):
            HicooTensor(h.shape, h.values, bad, h.block_ids, h.elem_offsets,
                        block_shape=h.block_shape)
