"""ELLPACK-specific structure and storage behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.compactness import storage_bits
from repro.formats import CooMatrix, CsrMatrix, EllMatrix
from repro.formats.registry import Format
from repro.workloads import random_sparse_matrix
from tests.conftest import make_sparse


class TestStructure:
    def test_width_is_max_row_nnz(self, rng):
        dense = make_sparse(rng, (10, 12), 0.3)
        ell = EllMatrix.from_dense(dense)
        assert ell.width == int(np.count_nonzero(dense, axis=1).max())

    def test_uniform_rows_no_padding(self):
        dense = np.eye(6) * 3.0
        ell = EllMatrix.from_dense(dense)
        assert ell.width == 1
        assert not np.any(ell.col_ids == -1)

    def test_one_hot_row_dominates_footprint(self, rng):
        """ELL's Achilles heel: one dense row pads every other row."""
        dense = make_sparse(rng, (50, 50), 0.02)
        dense[0, :] = 1.0  # one fully dense row
        ell = EllMatrix.from_dense(dense)
        assert ell.width == 50
        csr_bits = CsrMatrix.from_dense(dense).total_bits
        assert ell.total_bits > 5 * csr_bits

    def test_storage_counts_padding_as_data(self, rng):
        dense = make_sparse(rng, (8, 8), 0.2)
        ell = EllMatrix.from_dense(dense)
        assert ell.storage().data_bits == 8 * ell.width * 32

    def test_regular_sparsity_beats_coo_metadata(self):
        """Where every row has the same nnz, ELL stores no row structure."""
        dense = np.zeros((64, 64))
        for i in range(64):
            dense[i, (i * 7) % 64] = 1.0
            dense[i, (i * 13 + 1) % 64] = 2.0
        ell = EllMatrix.from_dense(dense)
        coo = CooMatrix.from_dense(dense)
        assert ell.storage().metadata_bits < coo.storage().metadata_bits


class TestClosedForm:
    def test_estimate_upper_bounds_typical_instance(self, rng):
        m, k, nnz = 60, 80, 600
        dense = random_sparse_matrix(m, k, nnz, rng)
        actual = EllMatrix.from_dense(dense).total_bits
        est = storage_bits(Format.ELL, (m, k), nnz)
        # The Gumbel-tail width estimate should be within ~40% of a sampled
        # instance (it models E[max] of the row-occupancy distribution).
        assert est == pytest.approx(actual, rel=0.4)

    def test_estimate_monotone_in_nnz(self):
        lo = storage_bits(Format.ELL, (100, 100), 500)
        hi = storage_bits(Format.ELL, (100, 100), 2000)
        assert hi > lo

    def test_zero_nnz(self):
        assert storage_bits(Format.ELL, (10, 10), 0) == 0.0
