"""All-pairs software conversions preserve values exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.formats import (
    MATRIX_FORMATS,
    TENSOR_FORMATS,
    convert_matrix,
    convert_tensor,
    matrix_class,
    tensor_class,
)
from repro.formats.registry import Format
from tests.conftest import make_sparse


@pytest.mark.parametrize("src", MATRIX_FORMATS)
@pytest.mark.parametrize("dst", MATRIX_FORMATS)
def test_matrix_all_pairs(src, dst, rng):
    dense = make_sparse(rng, (11, 13), 0.25)
    source = matrix_class(src).from_dense(dense)
    out = convert_matrix(source, dst)
    assert out.format is dst
    assert np.array_equal(out.to_dense(), dense)


@pytest.mark.parametrize("src", TENSOR_FORMATS)
@pytest.mark.parametrize("dst", TENSOR_FORMATS)
def test_tensor_all_pairs(src, dst, rng):
    dense = make_sparse(rng, (4, 6, 5), 0.2)
    source = tensor_class(src).from_dense(dense)
    out = convert_tensor(source, dst)
    assert out.format is dst
    assert np.array_equal(out.to_dense(), dense)


def test_dtype_bits_preserved(rng):
    dense = make_sparse(rng, (6, 6), 0.3)
    src = matrix_class(Format.CSR).from_dense(dense, dtype_bits=16)
    out = convert_matrix(src, Format.COO)
    assert out.dtype_bits == 16


def test_matrix_rejects_tensor_format(small_matrix):
    src = matrix_class(Format.CSR).from_dense(small_matrix)
    with pytest.raises(ConversionError):
        convert_matrix(src, Format.CSF)


def test_tensor_rejects_matrix_format(small_tensor):
    src = tensor_class(Format.COO).from_dense(small_tensor)
    with pytest.raises(ConversionError):
        convert_tensor(src, Format.CSR)


def test_encode_kwargs_forwarded(rng):
    dense = make_sparse(rng, (8, 8), 0.3)
    src = matrix_class(Format.DENSE).from_dense(dense)
    out = convert_matrix(src, Format.BSR, block_shape=(4, 4))
    assert out.block_shape == (4, 4)
