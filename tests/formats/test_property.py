"""Hypothesis property tests on the format substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import CooMatrix, CscMatrix, CsrMatrix, ZvcMatrix
from repro.formats._runlength import decode_runs, encode_runs
from repro.formats.registry import MATRIX_FORMATS, matrix_class

# Derived from the registry, not hand-listed: a format registered for the
# matrix catalog (e.g. a new stream-capable ACF) is property-tested here
# automatically — codec drift fails the suite before it reaches the
# accelerator layer.
MATRIX_CLASSES = [matrix_class(fmt) for fmt in MATRIX_FORMATS]


def sparse_matrices(max_dim: int = 12):
    """Strategy producing small float matrices with many exact zeros."""
    shapes = st.tuples(
        st.integers(1, max_dim), st.integers(1, max_dim)
    )
    return shapes.flatmap(
        lambda s: arrays(
            np.float64,
            s,
            elements=st.one_of(
                st.just(0.0),
                st.floats(
                    min_value=0.1,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
        )
    )


@given(dense=sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_all_formats_roundtrip(dense):
    for cls in MATRIX_CLASSES:
        enc = cls.from_dense(dense)
        assert np.array_equal(enc.to_dense(), dense), cls.__name__


@given(dense=sparse_matrices())
@settings(max_examples=30, deadline=None)
def test_streamable_acfs_have_roundtrip_codecs(dense):
    # Every ACF the accelerator can stream or pin stationary must have a
    # lossless codec in the formats registry — the two registries drift
    # independently as stream-capable formats land.
    from repro.accelerator.protocols import (
        stationary_formats,
        streamable_formats,
    )

    for fmt in {*streamable_formats(), *stationary_formats()}:
        enc = matrix_class(fmt).from_dense(dense)
        assert np.array_equal(enc.to_dense(), dense), fmt


@given(dense=sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_storage_lower_bound_is_payload(dense):
    # Every format must store at least the nonzero payload bits.
    nnz = int(np.count_nonzero(dense))
    for cls in MATRIX_CLASSES:
        enc = cls.from_dense(dense, dtype_bits=32)
        assert enc.storage().total_bits >= 32 * nnz, cls.__name__


@given(dense=sparse_matrices())
@settings(max_examples=40, deadline=None)
def test_coo_csr_csc_store_exactly_nnz_values(dense):
    nnz = int(np.count_nonzero(dense))
    for cls in (CooMatrix, CsrMatrix, CscMatrix, ZvcMatrix):
        enc = cls.from_dense(dense)
        assert len(enc.fields()["values"]) == nnz


@given(
    flat=arrays(
        np.float64,
        st.integers(0, 200),
        elements=st.one_of(
            st.just(0.0), st.floats(0.5, 2.0, allow_nan=False)
        ),
    ),
    run_bits=st.integers(1, 8),
)
@settings(max_examples=80, deadline=None)
def test_runlength_roundtrip(flat, run_bits):
    runs, levels = encode_runs(flat, run_bits)
    assert np.array_equal(decode_runs(runs, levels, len(flat)), flat)
    if len(runs):
        assert runs.max() < 2 ** run_bits
    # Padding entries are exactly the zero-valued levels.
    assert int(np.count_nonzero(levels)) == int(np.count_nonzero(flat))


@given(dense=sparse_matrices(max_dim=10))
@settings(max_examples=40, deadline=None)
def test_zvc_mask_is_nonzero_pattern(dense):
    zvc = ZvcMatrix.from_dense(dense)
    assert np.array_equal(
        zvc.mask.reshape(dense.shape), dense != 0.0
    )
