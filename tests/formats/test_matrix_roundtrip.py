"""Round-trip and structural tests for every matrix format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import (
    BsrMatrix,
    CooMatrix,
    CscMatrix,
    CsrMatrix,
    DenseMatrix,
    DiaMatrix,
    EllMatrix,
    RlcMatrix,
    ZvcMatrix,
)
from tests.conftest import make_sparse

ALL_MATRIX_CLASSES = [
    DenseMatrix,
    CooMatrix,
    CsrMatrix,
    CscMatrix,
    RlcMatrix,
    ZvcMatrix,
    BsrMatrix,
    DiaMatrix,
    EllMatrix,
]

SHAPES = [(1, 1), (1, 12), (12, 1), (7, 9), (16, 16), (5, 33)]
DENSITIES = [0.0, 0.05, 0.3, 0.7, 1.0]


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("density", DENSITIES)
def test_roundtrip_bit_exact(cls, shape, density, rng):
    dense = make_sparse(rng, shape, density)
    enc = cls.from_dense(dense)
    assert np.array_equal(enc.to_dense(), dense)


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_shape_and_nnz_reported(cls, small_matrix):
    enc = cls.from_dense(small_matrix)
    assert enc.shape == small_matrix.shape
    assert enc.nnz == np.count_nonzero(small_matrix)
    assert enc.size == small_matrix.size
    assert enc.density == pytest.approx(enc.nnz / enc.size)


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_storage_nonnegative_and_data_dominated_when_full(cls, rng):
    dense = 0.1 + rng.random((8, 8))  # fully dense
    enc = cls.from_dense(dense)
    s = enc.storage()
    assert s.data_bits >= 0 and s.metadata_bits >= 0
    assert s.total_bits == s.data_bits + s.metadata_bits
    # At full density the payload must dominate the footprint.
    assert s.data_bits >= s.metadata_bits


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_dtype_bits_scales_data(cls, small_matrix):
    s8 = cls.from_dense(small_matrix, dtype_bits=8).storage()
    s32 = cls.from_dense(small_matrix, dtype_bits=32).storage()
    assert s32.data_bits == 4 * s8.data_bits
    # Metadata width is independent of the payload dtype for all but RLC
    # (whose run field is fixed anyway).
    assert s32.metadata_bits == s8.metadata_bits


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_fields_are_arrays(cls, small_matrix):
    enc = cls.from_dense(small_matrix)
    fields = enc.fields()
    assert len(fields) >= 1
    for name, arr in fields.items():
        assert isinstance(name, str)
        assert isinstance(arr, np.ndarray)


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_empty_matrix(cls):
    dense = np.zeros((6, 5))
    enc = cls.from_dense(dense)
    assert enc.nnz == 0
    assert np.array_equal(enc.to_dense(), dense)


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_allclose_across_formats(cls, small_matrix):
    ref = DenseMatrix.from_dense(small_matrix)
    assert cls.from_dense(small_matrix).allclose(ref)


@pytest.mark.parametrize("cls", ALL_MATRIX_CLASSES)
def test_rejects_bad_dtype_bits(cls, small_matrix):
    with pytest.raises(Exception):
        cls.from_dense(small_matrix, dtype_bits=13)


def test_single_element_nonzero():
    dense = np.array([[3.5]])
    for cls in ALL_MATRIX_CLASSES:
        enc = cls.from_dense(dense)
        assert enc.nnz == 1
        assert enc.to_dense()[0, 0] == 3.5
