"""MINT building blocks: functional results + cost accounting (Fig. 8a/9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hardware.area import PrefixSumDesign
from repro.mint.blocks import (
    ClusterCounter,
    MemoryController,
    ParallelDivMod,
    PrefixSumUnit,
    SortingNetwork,
)


class TestPrefixSum:
    @pytest.mark.parametrize("design", list(PrefixSumDesign))
    def test_all_designs_compute_same_scan(self, design, rng):
        arr = rng.integers(0, 100, 200)
        unit = PrefixSumUnit(design, width=32)
        out, cycles = unit.scan(arr)
        assert np.array_equal(out, np.cumsum(arr))
        assert cycles >= 1

    def test_latency_ordering_matches_fig9(self, rng):
        """Serial chain has the longest pipeline, highly parallel the shortest."""
        arr = rng.integers(0, 10, 64)
        cycles = {
            d: PrefixSumUnit(d, 32).scan(arr)[1] for d in PrefixSumDesign
        }
        assert (
            cycles[PrefixSumDesign.HIGHLY_PARALLEL]
            < cycles[PrefixSumDesign.WORK_EFFICIENT]
            < cycles[PrefixSumDesign.SERIAL_CHAIN]
        )

    def test_adder_counts(self):
        # N=32: serial 2N=64; Brent-Kung 2N-2-log2N=57; Sklansky N/2*log2N=80.
        assert PrefixSumUnit(PrefixSumDesign.SERIAL_CHAIN, 32).adder_count == 64
        assert PrefixSumUnit(PrefixSumDesign.WORK_EFFICIENT, 32).adder_count == 57
        assert PrefixSumUnit(PrefixSumDesign.HIGHLY_PARALLEL, 32).adder_count == 80

    def test_pipeline_depths(self):
        assert PrefixSumUnit(PrefixSumDesign.SERIAL_CHAIN, 32).pipeline_depth == 32
        assert PrefixSumUnit(PrefixSumDesign.WORK_EFFICIENT, 32).pipeline_depth == 9
        assert PrefixSumUnit(PrefixSumDesign.HIGHLY_PARALLEL, 32).pipeline_depth == 5

    def test_empty_input_free(self):
        out, cycles = PrefixSumUnit().scan(np.array([], dtype=np.int64))
        assert len(out) == 0 and cycles == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            PrefixSumUnit(width=33)

    def test_stats_accumulate(self, rng):
        unit = PrefixSumUnit()
        unit.scan(rng.integers(0, 5, 100))
        unit.scan(rng.integers(0, 5, 100))
        assert unit.stats.elements_moved == 200
        assert unit.stats.int_adds > 0


class TestParallelDivMod:
    def test_results(self, rng):
        arr = rng.integers(0, 10_000, 500)
        unit = ParallelDivMod(8)
        q, r, cycles = unit.divmod_by(arr, 37)
        assert np.array_equal(q, arr // 37)
        assert np.array_equal(r, arr % 37)
        assert cycles >= len(arr) // 8

    def test_more_units_fewer_cycles(self, rng):
        arr = rng.integers(0, 100, 400)
        slow = ParallelDivMod(2).divmod_by(arr, 7)[2]
        fast = ParallelDivMod(16).divmod_by(arr, 7)[2]
        assert fast < slow

    def test_rejects_bad_divisor(self):
        with pytest.raises(ConfigError):
            ParallelDivMod().divmod_by(np.array([1]), 0)

    def test_counts_ops(self, rng):
        unit = ParallelDivMod()
        unit.divmod_by(rng.integers(0, 9, 50), 3)
        assert unit.stats.divides == 50 and unit.stats.mods == 50


class TestSortingNetwork:
    def test_sorts_within_chunks(self, rng):
        arr = rng.integers(0, 99, 64)
        net = SortingNetwork(16)
        out, _ = net.sort_chunks(arr)
        for lo in range(0, 64, 16):
            assert np.all(np.diff(out[lo : lo + 16]) >= 0)

    def test_bitonic_stage_count(self):
        assert SortingNetwork(16).stages == 10  # 4*5/2

    def test_empty(self):
        out, cycles = SortingNetwork(16).sort_chunks(np.array([], dtype=np.int64))
        assert cycles == 0 and len(out) == 0

    def test_rejects_width_one(self):
        with pytest.raises(ConfigError):
            SortingNetwork(1)


class TestClusterCounter:
    def test_histogram(self, rng):
        keys = rng.integers(0, 10, 300)
        counts, cycles = ClusterCounter().histogram(keys, 10)
        assert np.array_equal(counts, np.bincount(keys, minlength=10))
        assert cycles >= 1


class TestMemoryController:
    def test_stream_cycles(self):
        mc = MemoryController(16)
        assert mc.stream(0) == 0
        assert mc.stream(16) == 1
        assert mc.stream(17) == 2

    def test_scatter(self, rng):
        mc = MemoryController()
        vals = rng.random(5)
        pos = np.array([9, 1, 4, 7, 0])
        out, _ = mc.scatter(vals, pos, 10)
        assert np.array_equal(out[pos], vals)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            MemoryController().stream(-1)
