"""The conversion-graph registry and the memoized path/cost planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.formats import MATRIX_FORMATS, TENSOR_FORMATS, matrix_class
from repro.formats.registry import Format
from repro.mint.cost import PathPlanner, estimate_conversion_cost, shared_planner
from repro.mint.graph import (
    ConversionGraph,
    Datapath,
    HopStats,
    conversion_graph,
    register_conversion,
)
from tests.conftest import make_sparse

STATS_GRID = [
    HopStats(size=1 << 14, nnz=1 << 8, major_dim=1 << 7),
    HopStats(size=1 << 20, nnz=1 << 14, major_dim=1 << 10),
    HopStats(size=1 << 24, nnz=1 << 21, major_dim=1 << 12),
]


class TestRegistry:
    def test_every_datapath_carries_metadata(self):
        for tensor in (False, True):
            graph = conversion_graph(tensor=tensor)
            assert len(graph) > 0
            for dp in graph:
                assert dp.tensor is tensor
                assert dp.estimator is not None
                assert dp.cycles(HopStats.typical(tensor=tensor)) >= 1
                assert callable(dp.fn) and dp.name == dp.fn.__name__

    def test_no_static_dispatch_dicts_remain(self):
        import repro.mint.engine as engine

        assert not hasattr(engine, "_MATRIX_DIRECT")
        assert not hasattr(engine, "_TENSOR_DIRECT")

    def test_bsr_encoders_declare_block_shape(self):
        graph = conversion_graph(tensor=False)
        for pair in [(Format.CSR, Format.BSR), (Format.DENSE, Format.BSR)]:
            dp = graph.direct(*pair)
            assert dp is not None and "block_shape" in dp.accepts

    def test_registration_is_open(self):
        """A third-party format is one decorated function away."""
        scratch = ConversionGraph(tensor=False)

        @register_conversion(Format.CSR, Format.COO, graph=scratch)
        def my_path(src, blocks):  # pragma: no cover - never executed
            return src, 0

        dp = scratch.direct(Format.CSR, Format.COO)
        assert dp is not None and dp.fn is my_path
        # Re-registration replaces the edge (latest wins).

        @register_conversion(Format.CSR, Format.COO, graph=scratch)
        def my_path2(src, blocks):  # pragma: no cover
            return src, 0

        assert scratch.direct(Format.CSR, Format.COO).fn is my_path2
        assert len(scratch.edges_from(Format.CSR)) == 1

    def test_datapath_call_filters_unknown_kwargs(self):
        graph = conversion_graph(tensor=False)
        dp = graph.direct(Format.CSR, Format.COO)
        dense = np.eye(4)
        src = matrix_class(Format.CSR).from_dense(dense)
        from repro.mint.blockset import BlockSet

        out, _cycles = dp(src, BlockSet(), block_shape=(2, 2), bogus=1)
        assert np.array_equal(out.to_dense(), dense)


class TestDijkstraRouting:
    @pytest.mark.parametrize("tensor", [False, True])
    @pytest.mark.parametrize("stats_idx", range(len(STATS_GRID)))
    def test_route_never_costlier_than_hub_heuristic(self, tensor, stats_idx):
        """The planner property: Dijkstra <= legacy hub route, all pairs."""
        graph = conversion_graph(tensor=tensor)
        catalog = TENSOR_FORMATS if tensor else MATRIX_FORMATS
        base = STATS_GRID[stats_idx]
        stats = HopStats(
            size=base.size, nnz=base.nnz, major_dim=base.major_dim,
            tensor=tensor,
        )
        for src in catalog:
            for dst in catalog:
                if src is dst:
                    continue
                route = graph.find_path(src, dst, stats)
                hub = graph.hub_heuristic_path(src, dst)
                assert graph.path_cycles(route, stats) <= graph.path_cycles(
                    hub, stats
                ), f"{src}->{dst} regressed vs the hub heuristic"

    @pytest.mark.parametrize("tensor", [False, True])
    def test_all_pairs_reachable(self, tensor):
        graph = conversion_graph(tensor=tensor)
        catalog = TENSOR_FORMATS if tensor else MATRIX_FORMATS
        assert len(graph.supported_pairs()) == len(catalog) ** 2

    def test_identity_is_empty_route(self):
        graph = conversion_graph(tensor=False)
        assert graph.find_path(Format.CSR, Format.CSR) == ()
        assert graph.hub_heuristic_path(Format.CSR, Format.CSR) == ()

    def test_unreachable_raises(self):
        empty = ConversionGraph(tensor=False)
        with pytest.raises(ConversionError):
            empty.find_path(Format.CSR, Format.CSC)
        with pytest.raises(ConversionError):
            empty.hub_heuristic_path(Format.CSR, Format.CSC)

    def test_route_respects_operand_size(self):
        """Routes are planned against the operand, not a fixed table."""
        graph = conversion_graph(tensor=False)
        for stats in STATS_GRID:
            route = graph.find_path(Format.ZVC, Format.CSR, stats)
            assert [dp.pair for dp in route] == [
                (Format.ZVC, Format.DENSE),
                (Format.DENSE, Format.CSR),
            ]


class TestPathPlanner:
    def test_cost_cache_hits_on_repeat(self):
        planner = PathPlanner()
        kwargs = dict(size=1 << 20, nnz=1 << 12, major_dim=1 << 10)
        first = planner.estimate(Format.CSR, Format.CSC, **kwargs)
        info = planner.cache_info()
        assert info["cost"].misses == 1 and info["cost"].hits == 0
        second = planner.estimate(Format.CSR, Format.CSC, **kwargs)
        info = planner.cache_info()
        assert info["cost"].hits == 1 and info["cost"].misses == 1
        assert first == second

    def test_route_cache_shared_within_size_class(self):
        planner = PathPlanner()
        planner.estimate(Format.RLC, Format.CSC, size=1000, nnz=100,
                         major_dim=32)
        # Same power-of-two buckets, different exact stats: route is reused,
        # cost is recomputed exactly.
        planner.estimate(Format.RLC, Format.CSC, size=1023, nnz=101,
                         major_dim=33)
        info = planner.cache_info()
        assert info["route"].misses == 1 and info["route"].hits == 1
        assert info["cost"].misses == 2

    def test_cache_clear_resets(self):
        planner = PathPlanner()
        planner.estimate(Format.COO, Format.CSR, size=4096, nnz=64,
                         major_dim=64)
        planner.cache_clear()
        info = planner.cache_info()
        assert info["cost"].currsize == 0 and info["route"].currsize == 0
        assert info["cost"].hits == 0 and info["cost"].misses == 0

    def test_identity_costs_nothing_and_skips_cache(self):
        planner = PathPlanner()
        cost = planner.estimate(Format.CSR, Format.CSR, size=100, nnz=10,
                                major_dim=10)
        assert cost.cycles == 0 and planner.cache_info()["cost"].currsize == 0

    def test_export_seed_roundtrip(self):
        donor = PathPlanner()
        donor.estimate(Format.RLC, Format.CSR, size=1 << 18, nnz=1 << 10,
                       major_dim=1 << 9)
        snapshot = donor.export_routes()
        assert snapshot  # at least one route, as picklable format pairs
        for pairs in snapshot.values():
            assert all(isinstance(s, Format) and isinstance(t, Format)
                       for s, t in pairs)
        receiver = PathPlanner()
        receiver.seed_routes(snapshot)
        receiver.estimate(Format.RLC, Format.CSR, size=1 << 18, nnz=1 << 10,
                          major_dim=1 << 9)
        info = receiver.cache_info()
        assert info["route"].hits == 1 and info["route"].misses == 0

    def test_estimate_conversion_cost_uses_shared_planner(self):
        before = shared_planner().cache_info()["cost"]
        kwargs = dict(size=1 << 16, nnz=1 << 9, major_dim=1 << 8)
        a = estimate_conversion_cost(Format.ZVC, Format.COO, **kwargs)
        b = estimate_conversion_cost(Format.ZVC, Format.COO, **kwargs)
        after = shared_planner().cache_info()["cost"]
        assert a == b
        assert after.hits >= before.hits + 1

    def test_planner_matches_direct_graph_pricing(self):
        """Memoization must not change the numbers, only the work."""
        kwargs = dict(size=1 << 20, nnz=1 << 13, major_dim=1 << 10)
        fresh = PathPlanner().estimate(Format.RLC, Format.COO, **kwargs)
        again = PathPlanner().estimate(Format.RLC, Format.COO, **kwargs)
        assert fresh == again and fresh.cycles > 0


class TestCustomThroughputRouting:
    def test_throughput_overrides_edge_estimates(self):
        from repro.mint.cost import MintThroughput

        graph = conversion_graph(tensor=False)
        dp = graph.direct(Format.RLC, Format.COO)  # divmod-bound hop
        stats = HopStats(size=1 << 24, nnz=1 << 20, major_dim=1 << 12)
        starved = MintThroughput(divmod_units=1)
        assert dp.cycles(stats, throughput=starved) > dp.cycles(stats)

    def test_estimate_conversion_cost_custom_throughput(self):
        from repro.mint.cost import MintThroughput

        kwargs = dict(size=1 << 24, nnz=1 << 20, major_dim=1 << 12)
        base = estimate_conversion_cost(Format.RLC, Format.COO, **kwargs)
        starved = estimate_conversion_cost(
            Format.RLC, Format.COO,
            throughput=MintThroughput(divmod_units=1), **kwargs,
        )
        assert starved.cycles > base.cycles


class TestEngineKwargsValidation:
    def test_unknown_kwarg_raises(self, rng):
        from repro.mint.engine import MintEngine

        dense = make_sparse(rng, (8, 8), 0.3)
        src = matrix_class(Format.CSR).from_dense(dense)
        with pytest.raises(TypeError, match="blockshape"):
            MintEngine().convert(src, Format.BSR, blockshape=(4, 4))

    def test_kwarg_unused_by_route_raises(self, rng):
        from repro.mint.engine import MintEngine

        dense = make_sparse(rng, (8, 8), 0.3)
        src = matrix_class(Format.CSR).from_dense(dense)
        with pytest.raises(TypeError, match="block_shape"):
            MintEngine().convert(src, Format.COO, block_shape=(4, 4))


class TestVectorizedCsrToEll:
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 1.0])
    def test_element_exact_vs_dense_oracle(self, rng, density):
        from repro.mint.blockset import BlockSet
        from repro.mint.conversions import csr_to_ell

        dense = make_sparse(rng, (13, 9), density)
        dense[4, :] = 0.0  # force an empty row between populated ones
        src = matrix_class(Format.CSR).from_dense(dense)
        out, cycles = csr_to_ell(src, BlockSet())
        assert out.format is Format.ELL
        assert np.array_equal(out.to_dense(), dense)
        assert cycles >= 0


class TestPublicApi:
    def test_ell_matrix_exported_at_package_root(self):
        import repro

        assert "EllMatrix" in repro.__all__
        assert repro.EllMatrix is matrix_class(Format.ELL)

    def test_graph_api_exported_at_package_root(self):
        import repro

        for name in ("ConversionGraph", "Datapath", "HopStats",
                     "PathPlanner", "register_conversion",
                     "conversion_graph", "find_path", "shared_planner"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_datapath_is_frozen_metadata(self):
        graph = conversion_graph(tensor=False)
        dp = graph.direct(Format.CSR, Format.CSC)
        with pytest.raises(AttributeError):
            dp.source = Format.COO
        assert isinstance(dp, Datapath)


class TestConcurrentFirstUse:
    def test_racing_threads_never_see_an_empty_graph(self):
        """Regression: ``_ensure_datapaths_loaded`` used to flip its flag
        *before* importing the conversion modules, so the process's first
        prediction racing across threads (an in-process serve worker vs
        the request thread) could observe zero registered datapaths and
        fail with "no MINT datapath".  Run the first-use race in a fresh
        interpreter, where the lazy import is still pending."""
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "import threading\n"
            "from repro.mint.graph import conversion_graph\n"
            "errors = []\n"
            "def first_use():\n"
            "    try:\n"
            "        assert len(conversion_graph()) > 0, 'empty graph'\n"
            "    except Exception as exc:\n"
            "        errors.append(repr(exc))\n"
            "threads = [threading.Thread(target=first_use)"
            " for _ in range(8)]\n"
            "for t in threads: t.start()\n"
            "for t in threads: t.join()\n"
            "assert not errors, errors\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src)},
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
