"""Every MINT hardware-path conversion is element-exact vs the oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import matrix_class, tensor_class
from repro.formats.registry import Format
from repro.mint import conversions as mx
from repro.mint import tensor_conversions as tx
from repro.mint.blockset import BlockSet
from tests.conftest import make_sparse

MATRIX_CONVERSIONS = [
    (Format.CSR, Format.CSC, mx.csr_to_csc),
    (Format.CSC, Format.CSR, mx.csc_to_csr),
    (Format.RLC, Format.COO, mx.rlc_to_coo),
    (Format.RLC, Format.DENSE, mx.rlc_to_dense),
    (Format.CSR, Format.BSR, mx.csr_to_bsr),
    (Format.DENSE, Format.COO, mx.dense_to_coo),
    (Format.DENSE, Format.CSR, mx.dense_to_csr),
    (Format.DENSE, Format.CSC, mx.dense_to_csc),
    (Format.DENSE, Format.ZVC, mx.dense_to_zvc),
    (Format.DENSE, Format.RLC, mx.dense_to_rlc),
    (Format.DENSE, Format.BSR, mx.dense_to_bsr),
    (Format.DENSE, Format.DIA, mx.dense_to_dia),
    (Format.COO, Format.CSR, mx.coo_to_csr),
    (Format.COO, Format.CSC, mx.coo_to_csc),
    (Format.COO, Format.DENSE, mx.coo_to_dense),
    (Format.CSR, Format.COO, mx.csr_to_coo),
    (Format.CSR, Format.DENSE, mx.csr_to_dense),
    (Format.CSC, Format.COO, mx.csc_to_coo),
    (Format.CSC, Format.DENSE, mx.csc_to_dense),
    (Format.ZVC, Format.DENSE, mx.zvc_to_dense),
    (Format.BSR, Format.DENSE, mx.bsr_to_dense),
    (Format.DIA, Format.DENSE, mx.dia_to_dense),
]

TENSOR_CONVERSIONS = [
    (Format.DENSE, Format.COO, tx.dense_to_coo3),
    (Format.DENSE, Format.CSF, tx.dense_to_csf),
    (Format.DENSE, Format.ZVC, tx.dense_to_zvc3),
    (Format.DENSE, Format.RLC, tx.dense_to_rlc3),
    (Format.DENSE, Format.HICOO, tx.dense_to_hicoo),
    (Format.COO, Format.CSF, tx.coo3_to_csf),
    (Format.COO, Format.DENSE, tx.coo3_to_dense),
    (Format.COO, Format.HICOO, tx.coo3_to_hicoo),
    (Format.CSF, Format.COO, tx.csf_to_coo3),
    (Format.CSF, Format.DENSE, tx.csf_to_dense),
    (Format.ZVC, Format.DENSE, tx.zvc3_to_dense),
    (Format.RLC, Format.COO, tx.rlc3_to_coo3),
    (Format.RLC, Format.DENSE, tx.rlc3_to_dense),
    (Format.HICOO, Format.COO, tx.hicoo_to_coo3),
    (Format.HICOO, Format.DENSE, tx.hicoo_to_dense),
]


@pytest.mark.parametrize(
    "src,dst,fn", MATRIX_CONVERSIONS, ids=[f"{s.value}->{d.value}" for s, d, _ in MATRIX_CONVERSIONS]
)
@pytest.mark.parametrize("density", [0.0, 0.1, 0.5])
def test_matrix_conversion_exact(src, dst, fn, density, rng):
    dense = make_sparse(rng, (10, 14), density)
    source = matrix_class(src).from_dense(dense)
    out, cycles = fn(source, BlockSet())
    assert out.format is dst
    assert np.array_equal(out.to_dense(), dense)
    assert cycles >= 0


@pytest.mark.parametrize(
    "src,dst,fn", TENSOR_CONVERSIONS, ids=[f"{s.value}->{d.value}" for s, d, _ in TENSOR_CONVERSIONS]
)
@pytest.mark.parametrize("density", [0.0, 0.15, 0.6])
def test_tensor_conversion_exact(src, dst, fn, density, rng):
    dense = make_sparse(rng, (4, 5, 6), density)
    source = tensor_class(src).from_dense(dense)
    out, cycles = fn(source, BlockSet())
    assert out.format is dst
    assert np.array_equal(out.to_dense(), dense)
    assert cycles >= 0


def test_csr_to_csc_is_counting_sort(rng):
    """The scatter destinations equal a stable counting sort by column."""
    dense = make_sparse(rng, (8, 8), 0.4)
    csr = matrix_class(Format.CSR).from_dense(dense)
    csc, _ = mx.csr_to_csc(csr, BlockSet())
    oracle = matrix_class(Format.CSC).from_dense(dense)
    assert np.array_equal(csc.values, oracle.values)
    assert np.array_equal(csc.row_ids, oracle.row_ids)
    assert np.array_equal(csc.col_ptr, oracle.col_ptr)


def test_rlc_to_coo_drops_padding(rng):
    """Fixed-width padding entries must not surface as COO zeros."""
    dense = np.zeros((1, 200))
    dense[0, 150] = 3.0  # long gap forces padding with 5-bit runs
    rlc = matrix_class(Format.RLC).from_dense(dense)
    assert rlc.entries > 1
    coo, _ = mx.rlc_to_coo(rlc, BlockSet())
    assert coo.stored == 1
    assert np.array_equal(coo.to_dense(), dense)


def test_csr_to_bsr_custom_block(rng):
    dense = make_sparse(rng, (9, 12), 0.3)
    csr = matrix_class(Format.CSR).from_dense(dense)
    bsr, _ = mx.csr_to_bsr(csr, BlockSet(), block_shape=(3, 4))
    assert bsr.block_shape == (3, 4)
    assert np.array_equal(bsr.to_dense(), dense)


def test_conversions_accumulate_block_stats(rng):
    dense = make_sparse(rng, (12, 12), 0.3)
    blocks = BlockSet()
    mx.rlc_to_coo(matrix_class(Format.RLC).from_dense(dense), blocks)
    stats = blocks.total_stats()
    assert stats.divides > 0  # coordinate computation used the divmod bank
    assert stats.elements_moved > 0
    assert blocks.energy_joules() > 0.0
