"""MINT engine dispatch, design-point aggregates and SAGE cost estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConversionError
from repro.formats import MATRIX_FORMATS, TENSOR_FORMATS, matrix_class, tensor_class
from repro.formats.registry import Format
from repro.mint import (
    MintDesign,
    MintEngine,
    estimate_conversion_cost,
    mint_area,
    mint_power,
)
from repro.mint.designs import (
    CONVERTER_BLOCKS,
    MERGED_BLOCKS,
    accelerator_overhead,
    divmod_fraction,
)
from repro.mint.engine import find_path
from tests.conftest import make_sparse


class TestEngine:
    @pytest.mark.parametrize("src", MATRIX_FORMATS)
    @pytest.mark.parametrize("dst", MATRIX_FORMATS)
    def test_matrix_all_pairs(self, src, dst, rng):
        dense = make_sparse(rng, (9, 11), 0.3)
        out, report = MintEngine().convert(matrix_class(src).from_dense(dense), dst)
        assert out.format is dst
        assert np.array_equal(out.to_dense(), dense)
        assert report.source is src and report.target is dst
        assert report.seconds == pytest.approx(report.cycles / 1e9)

    @pytest.mark.parametrize("src", TENSOR_FORMATS)
    @pytest.mark.parametrize("dst", TENSOR_FORMATS)
    def test_tensor_all_pairs(self, src, dst, rng):
        dense = make_sparse(rng, (4, 5, 6), 0.25)
        out, report = MintEngine().convert(tensor_class(src).from_dense(dense), dst)
        assert out.format is dst
        assert np.array_equal(out.to_dense(), dense)

    def test_identity_is_free(self, rng):
        dense = make_sparse(rng, (6, 6), 0.4)
        src = matrix_class(Format.CSR).from_dense(dense)
        out, report = MintEngine().convert(src, Format.CSR)
        assert report.cycles == 0 and report.energy_j == 0.0
        assert out is src

    def test_direct_path_single_hop(self):
        assert len(find_path(Format.CSR, Format.CSC, tensor=False)) == 1

    def test_hub_path_two_hops(self):
        # ZVC -> CSR has no dedicated datapath: goes through Dense or COO.
        path = find_path(Format.ZVC, Format.CSR, tensor=False)
        assert len(path) == 2

    def test_kwargs_reach_final_hop(self, rng):
        dense = make_sparse(rng, (8, 8), 0.3)
        src = matrix_class(Format.CSR).from_dense(dense)
        out, _ = MintEngine().convert(src, Format.BSR, block_shape=(4, 4))
        assert out.block_shape == (4, 4)

    def test_supported_pairs_complete(self):
        eng = MintEngine()
        assert len(eng.supported_pairs(tensor=False)) == len(MATRIX_FORMATS) ** 2
        assert len(eng.supported_pairs(tensor=True)) == len(TENSOR_FORMATS) ** 2


class TestDesignAggregates:
    """Pins to the Sec. VII-B published numbers."""

    def test_areas_match_paper(self):
        assert mint_area(MintDesign.BASELINE) == pytest.approx(0.95, rel=0.05)
        assert mint_area(MintDesign.MERGED) == pytest.approx(0.41, rel=0.05)
        assert mint_area(MintDesign.MERGED_REUSE) == pytest.approx(0.23, rel=0.05)

    def test_merge_reduction_57pct(self):
        red = 1 - mint_area(MintDesign.MERGED) / mint_area(MintDesign.BASELINE)
        assert red == pytest.approx(0.57, abs=0.03)

    def test_reuse_reduction_45pct(self):
        red = 1 - mint_area(MintDesign.MERGED_REUSE) / mint_area(MintDesign.MERGED)
        assert red == pytest.approx(0.45, abs=0.03)

    def test_divmod_dominates_merged(self):
        area_frac, power_frac = divmod_fraction()
        assert area_frac == pytest.approx(0.74, abs=0.02)
        assert power_frac == pytest.approx(0.65, abs=0.02)

    def test_accelerator_overhead(self):
        area_frac, power_frac = accelerator_overhead()
        assert area_frac == pytest.approx(0.005, abs=0.001)
        assert power_frac == pytest.approx(0.004, abs=0.001)

    def test_power_ordering(self):
        assert (
            mint_power(MintDesign.MERGED_REUSE)
            < mint_power(MintDesign.MERGED)
            < mint_power(MintDesign.BASELINE)
        )

    def test_merged_is_union_of_converters(self):
        for inventory in CONVERTER_BLOCKS.values():
            for block, count in inventory.items():
                assert MERGED_BLOCKS.get(block, 0) >= min(count, MERGED_BLOCKS.get(block, count))
                assert block in MERGED_BLOCKS


class TestCostEstimates:
    def test_identity_zero(self):
        c = estimate_conversion_cost(
            Format.CSR, Format.CSR, size=10_000, nnz=500, major_dim=100
        )
        assert c.cycles == 0 and c.energy_j == 0.0

    def test_positive_and_monotone(self):
        lo = estimate_conversion_cost(
            Format.CSR, Format.CSC, size=1_000_000, nnz=10_000, major_dim=1000
        )
        hi = estimate_conversion_cost(
            Format.CSR, Format.CSC, size=1_000_000, nnz=100_000, major_dim=1000
        )
        assert 0 < lo.cycles < hi.cycles
        assert 0 < lo.energy_j < hi.energy_j

    def test_hub_path_costs_more_than_direct(self):
        direct = estimate_conversion_cost(
            Format.RLC, Format.COO, size=1_000_000, nnz=50_000, major_dim=1000
        )
        hub = estimate_conversion_cost(
            Format.RLC, Format.CSC, size=1_000_000, nnz=50_000, major_dim=1000
        )
        assert hub.cycles > direct.cycles

    def test_streaming_decompression_hides_behind_dram(self):
        """RLC->Dense keeps pace with the DRAM stream (Sec. V-B overlap)."""
        from repro.analysis.compactness import storage_bits
        from repro.hardware.dram import DramChannel

        size, nnz, major = 11_000 * 11_000, 12_100_000, 11_000
        conv = estimate_conversion_cost(
            Format.RLC, Format.DENSE, size=size, nnz=nnz, major_dim=major
        )
        dram = DramChannel().transfer_cycles(
            int(storage_bits(Format.RLC, (11_000, 11_000), nnz))
        )
        assert conv.cycles <= dram * 1.1

    def test_divmod_bound_conversion_visible(self):
        """Coordinate-producing conversions are limited by the 8-unit bank."""
        c = estimate_conversion_cost(
            Format.RLC, Format.COO, size=10**8, nnz=10**7, major_dim=10**4
        )
        assert c.cycles >= 10**7 / 8 * 0.9

    def test_estimate_within_factor_of_engine(self, rng):
        """Closed-form estimate tracks the functional engine's cycle count."""
        dense = make_sparse(rng, (64, 64), 0.2)
        src = matrix_class(Format.CSR).from_dense(dense)
        _, report = MintEngine().convert(src, Format.CSC)
        est = estimate_conversion_cost(
            Format.CSR,
            Format.CSC,
            size=64 * 64,
            nnz=int(np.count_nonzero(dense)),
            major_dim=64,
        )
        # The engine is element-granular, the estimate bit-granular; they
        # must agree within an order of magnitude on small operands.
        assert est.cycles <= report.cycles * 10
        assert report.cycles <= max(est.cycles, 1) * 50
