"""Workload generators, the Table III suite and the Fig. 14a layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    CONV_LAYERS,
    MATRIX_SUITE,
    TENSOR_SUITE,
    Kernel,
    MatrixWorkload,
    PruningStrategy,
    TensorWorkload,
    layer_gemm,
    random_sparse_matrix,
    random_sparse_tensor,
    suite_by_name,
)
from repro.workloads.dnn import BATCH_SIZE
from repro.workloads.synthetic import _sample_distinct, bernoulli_sparse_matrix


class TestSynthetic:
    @pytest.mark.parametrize("nnz", [0, 1, 17, 50, 63])
    def test_exact_nnz(self, nnz, rng):
        mat = random_sparse_matrix(8, 8, nnz, rng)
        assert np.count_nonzero(mat) == nnz

    def test_deterministic_with_seed(self):
        a = random_sparse_matrix(20, 20, 50, 7)
        b = random_sparse_matrix(20, 20, 50, 7)
        assert np.array_equal(a, b)

    def test_tensor_exact_nnz(self, rng):
        t = random_sparse_tensor((5, 6, 7), 40, rng)
        assert np.count_nonzero(t) == 40

    def test_values_never_zero_when_selected(self, rng):
        mat = random_sparse_matrix(10, 10, 100, rng)  # fully dense
        assert np.count_nonzero(mat) == 100

    @pytest.mark.parametrize("count", [0, 1, 499, 500, 999, 1000])
    def test_sample_distinct_boundaries(self, count, rng):
        idx = _sample_distinct(1000, count, rng)
        assert len(idx) == count
        assert len(np.unique(idx)) == count

    def test_sample_distinct_rejects_overdraw(self, rng):
        with pytest.raises(ValueError):
            _sample_distinct(10, 11, rng)

    def test_bernoulli_density(self, rng):
        mat = bernoulli_sparse_matrix(200, 200, 0.3, rng)
        assert np.count_nonzero(mat) / mat.size == pytest.approx(0.3, abs=0.05)


class TestSuite:
    def test_counts(self):
        assert len(MATRIX_SUITE) == 10
        assert len(TENSOR_SUITE) == 3

    def test_published_stats_verbatim(self):
        e = suite_by_name("speech2")
        assert e.dims == (7_700, 2_600) and e.nnz == 1_000_000
        e = suite_by_name("m3plates")
        assert e.dims == (11_000, 11_000) and e.nnz == 6_600
        e = suite_by_name("Uber")
        assert e.dims == (4_400, 1_100, 1_700) and e.nnz == 3_300_000

    def test_density_column_consistent(self):
        for e in MATRIX_SUITE + TENSOR_SUITE:
            computed = 100.0 * e.nnz / np.prod(e.dims)
            assert computed == pytest.approx(e.density_pct, rel=0.35)

    def test_spmm_workload_has_dense_b(self):
        wl = suite_by_name("nd3k").matrix_workload(Kernel.SPMM)
        assert wl.b_is_dense
        assert wl.n == wl.m // 2  # Sec. VII-A: factor is K x (M/2)

    def test_spgemm_workload_density_matched(self):
        e = suite_by_name("nd3k")
        wl = e.matrix_workload(Kernel.SPGEMM)
        assert wl.density_b == pytest.approx(wl.density_a, rel=0.05)

    def test_tensor_workload_rank(self):
        wl = suite_by_name("Crime").tensor_workload(Kernel.MTTKRP)
        assert wl.rank == 3_100  # first mode / 2

    def test_wrong_kind_raises(self):
        with pytest.raises(ValueError):
            suite_by_name("BrainQ").matrix_workload(Kernel.SPMM)
        with pytest.raises(ValueError):
            suite_by_name("nd3k").tensor_workload(Kernel.SPTTM)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            suite_by_name("nope")


class TestSpecValidation:
    def test_rejects_nnz_overflow(self):
        with pytest.raises(ValueError):
            MatrixWorkload("x", Kernel.SPMM, 2, 2, 2, nnz_a=5, nnz_b=4)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            TensorWorkload("x", Kernel.SPTTM, (2, 2, 2), 4, rank=0)

    def test_density_properties(self):
        wl = MatrixWorkload("x", Kernel.SPMM, 10, 10, 10, nnz_a=20, nnz_b=100)
        assert wl.density_a == pytest.approx(0.2)
        assert wl.b_is_dense


class TestDnn:
    def test_eight_layers(self):
        assert len(CONV_LAYERS) == 8

    def test_fig14a_verbatim_row7(self):
        layer = CONV_LAYERS[6]
        assert layer.in_channels == 512 and layer.out_channels == 2048
        act, w = layer.sparsities(PruningStrategy.GLOBAL_70)
        assert act == pytest.approx(0.410)
        assert w == pytest.approx(0.882)

    def test_normal_strategy_has_dense_weights(self):
        for layer in CONV_LAYERS:
            _act, w = layer.sparsities(PruningStrategy.NORMAL)
            assert w == 0.0

    def test_layer_prune_is_uniform_50(self):
        for layer in CONV_LAYERS:
            _act, w = layer.sparsities(PruningStrategy.LAYER_50)
            assert w == pytest.approx(0.5)

    def test_gemm_lowering_dims(self):
        wl = layer_gemm(CONV_LAYERS[1], PruningStrategy.NORMAL)  # conv2
        assert wl.m == 32 * 32 * BATCH_SIZE  # im2col activations rows
        assert wl.k == 64 * 1 * 1
        assert wl.n == 256  # output channels = weight columns

    def test_gemm_lowering_sparsities(self):
        wl = layer_gemm(CONV_LAYERS[1], PruningStrategy.LAYER_50)
        assert wl.density_a == pytest.approx(1 - 0.555, rel=0.01)
        assert wl.density_b == pytest.approx(0.5, rel=0.01)

    def test_global_prune_hits_late_layers_hardest(self):
        """Fig. 14a: layers 7-8 are far sparser under global pruning."""
        w7 = CONV_LAYERS[6].sparsities(PruningStrategy.GLOBAL_70)[1]
        w1 = CONV_LAYERS[0].sparsities(PruningStrategy.GLOBAL_70)[1]
        assert w7 > w1 + 0.3
