"""Binary wire frame: round-trips plus truncation/garbage fuzz."""

from __future__ import annotations

import io
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import wire
from repro.serve.wire import WireError


# ------------------------------------------------------------- packed codec
class TestPackedCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 2**62, -(2**62), 2**100, -(2**100),
        0.0, -1.5, 3.141592653589793, "", "hello", "κείμενο \U0001f600",
        b"", b"\x00\xff raw", [], [1, [2, [3]]], {}, {"a": 1},
        {"nested": {"list": [None, True, {"k": "v"}], "f": 2.5}},
    ])
    def test_round_trip(self, value):
        assert wire.unpack(wire.pack(value)) == value

    def test_int64_boundaries_stay_ints(self):
        for v in (2**63 - 1, -(2**63), 2**63, -(2**63) - 1):
            assert wire.unpack(wire.pack(v)) == v

    def test_dict_key_order_preserved(self):
        obj = {"z": 1, "a": 2, "m": 3}
        assert list(wire.unpack(wire.pack(obj))) == ["z", "a", "m"]

    def test_non_str_dict_keys_rejected(self):
        with pytest.raises(WireError, match="keys must be str"):
            wire.pack({1: "x"})

    def test_unpackable_type_rejected(self):
        with pytest.raises(WireError, match="cannot pack"):
            wire.pack({"x": object()})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            wire.unpack(wire.pack({"a": 1}) + b"\x00")

    def test_truncated_body_rejected(self):
        packed = wire.pack({"key": "a longer string value"})
        for cut in (1, len(packed) // 2, len(packed) - 1):
            with pytest.raises(WireError):
                wire.unpack(packed[:cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError, match="unknown packed tag"):
            wire.unpack(b"Z")

    def test_overlong_varint_rejected(self):
        with pytest.raises(WireError, match="overlong|truncated"):
            wire.unpack(b"s" + b"\xff" * 12)

    @settings(max_examples=50, deadline=None)
    @given(st.recursive(
        st.none() | st.booleans() | st.integers() | st.text()
        | st.floats(allow_nan=False),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=12,
    ))
    def test_round_trip_hypothesis(self, value):
        assert wire.unpack(wire.pack(value)) == value

    @settings(max_examples=50, deadline=None)
    @given(st.binary(max_size=64))
    def test_fuzz_never_hangs_or_crashes(self, blob):
        # Arbitrary bytes must either decode or raise WireError — never
        # loop, never raise anything else.
        try:
            wire.unpack(blob)
        except WireError:
            pass


# ------------------------------------------------------------------ frames
class TestFrames:
    def test_magic_byte_cannot_open_json(self):
        # The whole auto-detection contract: no JSON document's first
        # byte equals the frame magic's first byte.
        assert wire.MAGIC_BYTE == b"\xa5"
        for first in b'{["0123456789tfn- \t\r\n':
            assert bytes([first]) != wire.MAGIC_BYTE

    @pytest.mark.parametrize("packed", [False, True])
    @pytest.mark.parametrize("key", [None, 0, 2**64 - 1, 0x1234_5678])
    def test_round_trip(self, packed, key):
        payload = {"op": "predict", "workload": {"kind": "matrix"}, "top": 3}
        frame = wire.encode_frame(payload, packed=packed, routing_key=key)
        assert frame[:1] == wire.MAGIC_BYTE
        assert wire.read_frame(io.BytesIO(frame)) == payload

    def test_routed_flag_and_key_on_the_wire(self):
        frame = wire.encode_frame({"op": "predict"}, routing_key=0xABCD)
        flags, length = wire.parse_header(frame[:wire.HEADER.size])
        assert flags & wire.FLAG_ROUTED
        raw_key = frame[wire.HEADER.size:wire.HEADER.size + 8]
        assert wire.parse_routing_key(raw_key) == 0xABCD
        assert len(frame) == wire.HEADER.size + 8 + length

    def test_unrouted_frame_has_no_key(self):
        frame = wire.encode_frame({"op": "ping"})
        flags, length = wire.parse_header(frame[:wire.HEADER.size])
        assert not flags & wire.FLAG_ROUTED
        assert len(frame) == wire.HEADER.size + length

    def test_bad_magic_rejected(self):
        header = struct.pack("!HBBI", 0xDEAD, wire.WIRE_VERSION, 0, 0)
        with pytest.raises(WireError, match="magic"):
            wire.parse_header(header)

    def test_unknown_version_rejected(self):
        header = struct.pack("!HBBI", wire.MAGIC, 99, 0, 0)
        with pytest.raises(WireError, match="version"):
            wire.parse_header(header)

    def test_oversized_length_rejected_before_body_read(self):
        header = struct.pack(
            "!HBBI", wire.MAGIC, wire.WIRE_VERSION, 0, wire.MAX_FRAME + 1
        )
        with pytest.raises(WireError, match="MAX_FRAME"):
            wire.parse_header(header)

    def test_oversized_body_rejected_on_encode(self):
        with pytest.raises(WireError, match="MAX_FRAME"):
            wire.frame_for_body(b"x" * (wire.MAX_FRAME + 1))

    def test_short_header_rejected(self):
        with pytest.raises(WireError, match="short frame header"):
            wire.parse_header(b"\xa5\x5e\x01")

    def test_truncated_stream_rejected(self):
        frame = wire.encode_frame({"op": "predict", "pad": "x" * 64})
        for cut in (0, 3, wire.HEADER.size, len(frame) - 1):
            with pytest.raises(WireError):
                wire.read_frame(io.BytesIO(frame[:cut]))

    def test_truncated_routing_key_rejected(self):
        frame = wire.encode_frame({"op": "predict"}, routing_key=7)
        with pytest.raises(WireError, match="routing key"):
            wire.read_frame(io.BytesIO(frame[:wire.HEADER.size + 4]))

    def test_undecodable_json_body_rejected(self):
        frame = wire.frame_for_body(b"\xff\xfe not json")
        with pytest.raises(WireError, match="undecodable"):
            wire.read_frame(io.BytesIO(frame))

    def test_non_object_payload_rejected(self):
        frame = wire.frame_for_body(json.dumps([1, 2, 3]).encode())
        with pytest.raises(WireError, match="must decode to an object"):
            wire.read_frame(io.BytesIO(frame))

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=wire.HEADER.size, max_size=32))
    def test_header_fuzz(self, blob):
        try:
            flags, length = wire.parse_header(blob[:wire.HEADER.size])
            assert length <= wire.MAX_FRAME
        except WireError:
            pass
