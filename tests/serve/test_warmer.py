"""Speculative band warming: candidate synthesis and queue behavior."""

from __future__ import annotations

import threading

import pytest

from repro.serve import BandWarmer, DecisionCache, warm_candidates
from repro.serve.fingerprint import fingerprint_of
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _wl(nnz_a: int = 1_500) -> MatrixWorkload:
    return MatrixWorkload("warm-src", Kernel.SPMM, m=256, k=128, n=64,
                          nnz_a=nnz_a, nnz_b=128 * 64)


class TestWarmCandidates:
    def test_matrix_candidates_are_valid_workloads(self):
        # Synthesis must respect every spec invariant (nnz bounds, the
        # dense-B shape) — the constructors raise otherwise.
        for bands in (1, 2, 3):
            out = warm_candidates(fingerprint_of(_wl()), bands=bands)
            assert len(out) == 2 * bands + 1  # ±bands plus next-size

    def test_adjacent_bands_move_exactly_one_band(self):
        from repro.serve.fingerprint import density_band

        fp = fingerprint_of(_wl(nnz_a=1_500))
        src = density_band(1_500)
        scaled = [
            wl for wl in warm_candidates(fp, bands=1)
            if "next-size" not in wl.name
        ]
        assert sorted(density_band(wl.nnz_a) for wl in scaled) == [
            src - 1, src + 1
        ]

    def test_next_size_preserves_the_dense_b_invariant(self):
        fp = fingerprint_of(_wl())
        (next_size,) = [
            wl for wl in warm_candidates(fp, bands=1)
            if "next-size" in wl.name
        ]
        assert next_size.m == 512 and next_size.k == 256
        assert next_size.nnz_b == next_size.k * next_size.n

    def test_tensor_candidates_are_valid(self):
        wl = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 800, rank=8)
        out = warm_candidates(fingerprint_of(wl), bands=2)
        assert len(out) == 5
        for cand in out:
            assert isinstance(cand, TensorWorkload)
            assert 1 <= cand.nnz <= cand.shape[0] * cand.shape[1] * cand.shape[2]

    def test_nnz_clamped_inside_valid_range(self):
        # A nearly-dense operand cannot scale up past m*k.
        dense = _wl(nnz_a=256 * 128 - 1)
        for cand in warm_candidates(fingerprint_of(dense), bands=3):
            assert cand.nnz_a <= cand.m * cand.k


class TestBandWarmer:
    def test_misses_warm_adjacent_bands_into_the_cache(self):
        cache = DecisionCache(near_hit=True, scope="test")
        calls: list[str] = []
        sentinel = object()

        def predict(wl):
            calls.append(wl.name)
            return sentinel

        warmer = BandWarmer(predict, cache, bands=1)
        try:
            fp = fingerprint_of(_wl())
            accepted = warmer.enqueue(fp)
            assert accepted >= 1
            assert warmer.drain(timeout_s=10.0)
            stats = warmer.stats()
            assert stats["warmed"] == accepted
            assert stats["depth"] == 0
            # The warmed neighbours now answer as near-hits.
            for cand in warm_candidates(fp, bands=1):
                target = fingerprint_of(cand)
                assert cache.has_band(target.band_key())
        finally:
            warmer.close()

    def test_enqueue_deduplicates_pending_bands(self):
        cache = DecisionCache(near_hit=True, scope="test")
        release = threading.Event()

        def predict(wl):
            release.wait(timeout=10.0)
            return object()

        warmer = BandWarmer(predict, cache, bands=1)
        try:
            fp = fingerprint_of(_wl())
            first = warmer.enqueue(fp)
            second = warmer.enqueue(fp)  # same bands still pending
            assert first >= 1
            assert second == 0
            release.set()
            assert warmer.drain(timeout_s=10.0)
        finally:
            release.set()
            warmer.close()

    def test_covered_bands_are_skipped(self):
        cache = DecisionCache(near_hit=True, scope="test")
        warmer = BandWarmer(lambda wl: object(), cache, bands=1)
        try:
            fp = fingerprint_of(_wl())
            warmer.enqueue(fp)
            assert warmer.drain(timeout_s=10.0)
            warmed = warmer.stats()["warmed"]
            # Everything is covered now: a re-enqueue only skips.
            assert warmer.enqueue(fp) == 0
            assert warmer.stats()["warmed"] == warmed
            assert warmer.stats()["skipped"] >= 1
        finally:
            warmer.close()

    def test_overload_drops_new_speculation(self):
        cache = DecisionCache(near_hit=True, scope="test")
        release = threading.Event()

        def predict(wl):
            release.wait(timeout=10.0)
            return object()

        warmer = BandWarmer(predict, cache, bands=1, maxsize=1)
        try:
            warmer.enqueue(fingerprint_of(_wl(nnz_a=1_500)))
            # Distinct source bands so dedup does not mask the bound.
            warmer.enqueue(fingerprint_of(_wl(nnz_a=12_000)))
            warmer.enqueue(fingerprint_of(_wl(nnz_a=24_000)))
            assert warmer.stats()["dropped"] >= 1
            release.set()
            assert warmer.drain(timeout_s=10.0)
        finally:
            release.set()
            warmer.close()

    def test_predict_failures_are_counted_not_raised(self):
        cache = DecisionCache(near_hit=True, scope="test")

        def predict(wl):
            raise RuntimeError("synthetic failure")

        warmer = BandWarmer(predict, cache, bands=1)
        try:
            warmer.enqueue(fingerprint_of(_wl()))
            assert warmer.drain(timeout_s=10.0)
            stats = warmer.stats()
            assert stats["failed"] >= 1
            assert stats["warmed"] == 0
        finally:
            warmer.close()

    def test_close_stops_the_worker(self):
        warmer = BandWarmer(
            lambda wl: object(), DecisionCache(near_hit=True), bands=1
        )
        warmer.close()
        assert not warmer._thread.is_alive()
        # Enqueue after close is a quiet no-op.
        assert warmer.enqueue(fingerprint_of(_wl())) == 0


class TestServerIntegration:
    def test_server_with_warming_turns_band_traffic_into_near_hits(self):
        from repro.serve import SageServer, ServeClient, ServeConfig

        config = ServeConfig(port=0, shards=0, warm_bands=1)
        with SageServer(serve=config) as srv:
            with ServeClient(*srv.address) as client:
                client.predict(_wl(nnz_a=1_500))  # miss; warming kicks off
                assert srv._warmer is not None
                assert srv._warmer.drain(timeout_s=30.0)
                # Traffic in the adjacent band is now answered warm.
                neighbour = _wl(nnz_a=3_100)  # one band up
                client.predict(neighbour)
                stats = client.stats()
        assert stats["warming"]["warmed"] >= 1
        assert stats["cache"]["near_hits"] >= 1

    def test_warming_disabled_by_default(self):
        from repro.serve import SageServer, ServeConfig

        with SageServer(serve=ServeConfig(port=0, shards=0)) as srv:
            assert srv._warmer is None
            assert srv.stats()["warming"] is None


@pytest.mark.parametrize("bands", [0, -3])
def test_bands_floor_at_one(bands):
    warmer = BandWarmer(
        lambda wl: object(), DecisionCache(near_hit=True), bands=bands
    )
    try:
        assert warmer.bands == 1
    finally:
        warmer.close()
