"""Serve-tier observability: percentile fix, metrics RPC, stats CLI."""

from __future__ import annotations

import json

import pytest

from repro.serve import SageServer, ServeClient, ServeConfig
from repro.serve.server import _percentiles_ms
from repro.workloads.spec import Kernel, MatrixWorkload


class TestPercentiles:
    """Regression for the banker's-rounding nearest-rank bug.

    ``round(q * n) - 1`` under-selects on half cases — p90 of a 5-sample
    window picked ``round(4.5) - 1 = 3``, the 80th percentile.  Ceil-based
    nearest rank picks the smallest sample with at least ``q*n`` samples
    at or below it.
    """

    def test_odd_window(self):
        out = _percentiles_ms([0.001, 0.002, 0.003, 0.004, 0.005])
        assert out["count"] == 5
        assert out["p50"] == pytest.approx(3.0)
        assert out["p90"] == pytest.approx(5.0)  # was 4.0 pre-fix
        assert out["p99"] == pytest.approx(5.0)

    def test_even_window(self):
        out = _percentiles_ms([0.001, 0.002, 0.003, 0.004])
        assert out["p50"] == pytest.approx(2.0)
        assert out["p90"] == pytest.approx(4.0)
        assert out["p99"] == pytest.approx(4.0)

    def test_ten_samples(self):
        sample = [i / 1000 for i in range(1, 11)]
        out = _percentiles_ms(sample)
        assert out["p50"] == pytest.approx(5.0)
        assert out["p90"] == pytest.approx(9.0)
        assert out["p99"] == pytest.approx(10.0)

    def test_single_sample(self):
        out = _percentiles_ms([0.007])
        assert out["p50"] == out["p90"] == out["p99"] == pytest.approx(7.0)

    def test_empty_window(self):
        out = _percentiles_ms([])
        assert out == {"count": 0, "p50": None, "p90": None, "p99": None}


def _wl(m: int) -> MatrixWorkload:
    return MatrixWorkload("obs", Kernel.SPMM, m=m, k=128, n=64,
                          nnz_a=max(1, m), nnz_b=128 * 64)


@pytest.fixture(scope="module")
def server():
    with SageServer(
        serve=ServeConfig(port=0, shards=1, batch_window_ms=1.0)
    ) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


class TestMetricsRpc:
    def test_stats_exposes_merged_registry(self, client):
        client.predict(_wl(96))   # miss -> shard compute
        client.predict(_wl(96))   # front-cache hit
        stats = client.stats()
        metrics = stats["metrics"]
        assert metrics["shards_polled"] == 1
        assert metrics["shards_reporting"] == 1
        snapshot = metrics["registry"]
        requests = snapshot["repro_serve_requests_total"]["values"]
        assert requests["event=submitted"] >= 2
        assert requests["event=served"] >= 2

    def test_worker_side_counters_are_merged_in(self, client):
        client.predict(_wl(160))  # unseen workload: must reach the shard
        snapshot = client.stats()["metrics"]["registry"]
        cache_events = snapshot["repro_serve_cache_events_total"]["values"]
        # scope=shard series only ever increment inside the shard
        # process; their presence proves the cross-process merge.
        shard_series = [k for k in cache_events if "scope=shard" in k]
        assert shard_series
        assert snapshot["repro_sage_predictions_total"]["values"]
        assert "repro_span_seconds" in snapshot

    def test_stage_latency_histograms_recorded(self, client):
        client.predict(_wl(224))
        entry = client.stats()["metrics"]["registry"][
            "repro_serve_stage_seconds"
        ]
        stages = {k for k in entry["values"]}
        assert "stage=total" in stages

    def test_trace_id_propagates_over_the_wire(self, server):
        from repro.obs import set_trace_id

        set_trace_id("cafecafe12345678")
        try:
            with ServeClient(*server.address) as c:
                c.predict(_wl(288))
        finally:
            set_trace_id(None)
        # The handler adopted the client's ID for its spans; nothing to
        # read back without a server-side recorder, but the RPC must not
        # have been disturbed by the extra top-level key.
        with ServeClient(*server.address) as c:
            assert c.ping()


class TestStatsCli:
    def test_pretty_and_json_output(self, server, capsys):
        from repro.cli import main

        client = ServeClient(*server.address)
        client.predict(_wl(352))
        client.close()
        host, port = server.address
        assert main(["stats", f"tcp://{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "requests:" in out
        assert "repro_serve_requests_total" in out

        assert main(["stats", f"tcp://{host}:{port}", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "registry" in doc["metrics"]

    def test_invalid_spec_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="invalid server spec"):
            main(["stats", "nonsense"])
