"""Workload fingerprints: stability, sensitivity, banding, sharding."""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.serve.fingerprint import (
    WorkloadFingerprint,
    config_digest,
    density_band,
    fingerprint_of,
)
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _wl(**overrides) -> MatrixWorkload:
    base = dict(
        name="fp", kernel=Kernel.SPMM, m=512, k=512, n=256,
        nnz_a=10_000, nnz_b=512 * 256,
    )
    base.update(overrides)
    return MatrixWorkload(**base)


class TestStability:
    def test_same_stats_same_fingerprint(self):
        assert fingerprint_of(_wl()) == fingerprint_of(_wl(name="other"))

    def test_wire_dict_matches_object(self):
        wl = _wl()
        assert fingerprint_of(wl.to_dict()) == fingerprint_of(wl)

    def test_exact_key_hashable_and_stable(self):
        fp = fingerprint_of(_wl())
        assert fp.exact_key() == fingerprint_of(_wl()).exact_key()
        assert hash(fp.exact_key()) == hash(fingerprint_of(_wl()).exact_key())

    def test_tensor_fingerprint_carries_rank(self):
        a = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 500, rank=8)
        b = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 500, rank=16)
        assert fingerprint_of(a) != fingerprint_of(b)


class TestSensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"m": 513},
            {"n": 128, "nnz_b": 512 * 128},
            {"nnz_a": 10_001},
            {"dtype_bits": 16},
            {"kernel": Kernel.SPGEMM},
        ],
    )
    def test_any_statistic_changes_exact_key(self, change):
        assert (
            fingerprint_of(_wl(**change)).exact_key()
            != fingerprint_of(_wl()).exact_key()
        )

    def test_config_changes_fingerprint(self):
        small = AcceleratorConfig(num_pes=64)
        assert fingerprint_of(_wl(), small) != fingerprint_of(_wl())
        assert config_digest(small) != config_digest(
            AcceleratorConfig.paper_default()
        )

    def test_matrix_and_tensor_never_collide(self):
        # Same flattened dims/nnz on purpose.
        mat = MatrixWorkload("m", Kernel.SPMM, m=32, k=32, n=32,
                             nnz_a=100, nnz_b=32 * 32)
        ten = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 100, rank=32)
        assert fingerprint_of(mat).exact_key() != fingerprint_of(ten).exact_key()


class TestBanding:
    def test_density_band_is_power_of_two_bucket(self):
        assert density_band(1024) == density_band(2047)
        assert density_band(1024) != density_band(2048)
        assert density_band(0) == density_band(1)

    def test_band_key_merges_nnz_within_band(self):
        a, b = fingerprint_of(_wl(nnz_a=10_000)), fingerprint_of(_wl(nnz_a=11_000))
        assert a.exact_key() != b.exact_key()
        assert a.band_key() == b.band_key()

    def test_band_key_splits_across_bands(self):
        a, b = fingerprint_of(_wl(nnz_a=10_000)), fingerprint_of(_wl(nnz_a=20_000))
        assert a.band_key() != b.band_key()

    def test_band_key_merges_dims_within_band(self):
        # Real suites have no two workloads with identical extents; dims
        # must band like nnz does or near hits never fire (the Table III
        # near_hits=0 regression).
        a, b = fingerprint_of(_wl(m=512)), fingerprint_of(_wl(m=700))
        assert a.exact_key() != b.exact_key()
        assert a.band_key() == b.band_key()

    def test_band_key_splits_dims_across_bands(self):
        a, b = fingerprint_of(_wl(m=512)), fingerprint_of(_wl(m=2048))
        assert a.band_key() != b.band_key()


class TestSharding:
    def test_shard_stable_and_in_range(self):
        fp = fingerprint_of(_wl())
        for shards in (1, 2, 3, 8):
            assert 0 <= fp.shard(shards) < shards
            assert fp.shard(shards) == fingerprint_of(_wl()).shard(shards)

    def test_same_band_same_shard(self):
        a, b = fingerprint_of(_wl(nnz_a=10_000)), fingerprint_of(_wl(nnz_a=11_000))
        assert a.shard(8) == b.shard(8)

    def test_shards_actually_spread(self):
        # Multiplicative spread: band keys coarsen dims to powers of
        # two, so additive nudges all land in one or two bands.
        seen = {
            fingerprint_of(_wl(m=512 * (i + 1))).shard(4) for i in range(32)
        }
        assert len(seen) > 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadFingerprint(
                kind="vector", kernel="SpMV", dims=(4,), nnz=(4,),
                dtype_bits=32, config="00",
            )
