"""Wire-schema versioning: legacy compatibility, rejection, options."""

from __future__ import annotations

import json
import socket

import pytest

from repro.api.options import PredictOptions, WIRE_SCHEMA_VERSION
from repro.errors import ServeError
from repro.formats.registry import Format
from repro.sage import Sage
from repro.serve import SageServer, ServeClient, ServeConfig
from repro.workloads.spec import Kernel, MatrixWorkload


def _wl(m: int = 200, nnz_a: int = 1_600) -> MatrixWorkload:
    return MatrixWorkload("schema", Kernel.SPMM, m=m, k=200, n=100,
                          nnz_a=nnz_a, nnz_b=200 * 100)


@pytest.fixture(scope="module")
def server():
    with SageServer(
        serve=ServeConfig(port=0, shards=0, batch_window_ms=1.0)
    ) as srv:
        yield srv


def _raw_rpc(server, payload: dict) -> dict:
    """One request outside ServeClient, to control the exact wire bytes."""
    with socket.create_connection(server.address, timeout=60) as sock:
        f = sock.makefile("rwb")
        f.write((json.dumps(payload) + "\n").encode())
        f.flush()
        return json.loads(f.readline())


class TestLegacyCompatibility:
    def test_pr2_style_request_still_answered(self, server):
        """A request with no schema_version is the version-1 legacy shape."""
        reply = _raw_rpc(
            server, {"op": "predict", "workload": _wl().to_dict()}
        )
        assert reply["ok"] is True
        assert reply["decision"]["best"]["mcf"]

    def test_explicit_version_1_accepted(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict", "schema_version": 1,
             "workload": _wl(m=208).to_dict()},
        )
        assert reply["ok"] is True

    def test_legacy_predict_many_still_answered(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict_many",
             "workloads": [_wl(m=216).to_dict(), _wl(m=224).to_dict()]},
        )
        assert reply["ok"] is True
        assert len(reply["decisions"]) == 2


class TestVersionRejection:
    def test_unknown_version_rejected_with_help(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict", "schema_version": 99,
             "workload": _wl().to_dict()},
        )
        assert reply["ok"] is False
        assert "unsupported schema_version 99" in reply["error"]
        assert "1, 2" in reply["error"]  # names what the server speaks

    def test_options_on_legacy_version_rejected(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict", "schema_version": 1,
             "workload": _wl().to_dict(),
             "options": PredictOptions().to_wire()},
        )
        assert reply["ok"] is False
        assert str(WIRE_SCHEMA_VERSION) in reply["error"]

    def test_malformed_options_reported_in_band(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict", "schema_version": 2,
             "workload": _wl().to_dict(),
             "options": {"fidelity": "oracular"}},
        )
        assert reply["ok"] is False
        assert "unknown fidelity" in reply["error"]

    def test_unknown_option_field_reported_in_band(self, server):
        reply = _raw_rpc(
            server,
            {"op": "predict", "schema_version": 2,
             "workload": _wl().to_dict(),
             "options": {"mcf": ["CSR", "Dense"]}},
        )
        assert reply["ok"] is False
        assert "unknown PredictOptions" in reply["error"]


class TestOptionsOverTheWire:
    def test_restriction_honored_and_bypasses_cache(self, server):
        wl = _wl(m=232)
        with ServeClient(*server.address) as client:
            free = client.predict(wl, top=0)
            before = client.stats()["requests"]["bypassed"]
            pinned = client.predict(
                wl,
                top=0,
                options=PredictOptions(fixed_mcf=(Format.COO, Format.DENSE)),
            )
            after = client.stats()["requests"]["bypassed"]
        assert after == before + 1
        assert pinned.best.mcf == (Format.COO, Format.DENSE)
        assert all(c.mcf == (Format.COO, Format.DENSE) for c in pinned.ranking)
        # The unrestricted decision was not poisoned by the restricted one.
        assert free.best.edp <= pinned.best.edp

    def test_restriction_matches_local_sage(self, server):
        wl = _wl(m=240)
        opts = PredictOptions(mcf_b_space=(Format.ZVC,), top_k=4)
        with ServeClient(*server.address) as client:
            served = client.predict(wl, top=0, options=opts)
        local = Sage().predict(wl, options=opts)
        assert served.to_wire() == local.to_wire()

    def test_default_options_ride_the_cache(self, server):
        # Served-from-cache may be the exact tier or (same-band traffic
        # from sibling tests) the near tier; either proves the request
        # did not bypass the cache.
        wl = _wl(m=248)
        with ServeClient(*server.address) as client:
            client.predict(wl, options=PredictOptions())
            before = client.stats()["cache"]
            client.predict(wl, options=PredictOptions())
            after = client.stats()["cache"]
        assert (
            after["hits"] + after["near_hits"]
            > before["hits"] + before["near_hits"]
        )

    def test_off_tier_fidelity_bypasses_cache(self, server):
        # The server runs analytical; a cycle-tier request must not be
        # answered from the analytical cache.
        wl = MatrixWorkload("tier", Kernel.SPMM, m=96, k=96, n=64,
                            nnz_a=800, nnz_b=96 * 64)
        with ServeClient(*server.address) as client:
            client.predict(wl)  # warm the analytical cache
            cycle = client.predict(
                wl, options=PredictOptions(fidelity="cycle")
            )
        assert cycle.fidelity == "cycle"

    def test_deferred_fidelity_rides_a_cycle_server_cache(self):
        # Default options name no tier, so they ride the server's own —
        # a cycle server keeps answering cycle decisions from its cache
        # instead of being silently downgraded to analytical.
        wl = MatrixWorkload("tier2", Kernel.SPMM, m=96, k=96, n=64,
                            nnz_a=900, nnz_b=96 * 64)
        config = ServeConfig(port=0, shards=0, fidelity="cycle")
        with SageServer(serve=config) as srv:
            with ServeClient(*srv.address) as client:
                first = client.predict(wl, options=PredictOptions())
                again = client.predict(wl, options=PredictOptions())
                stats = client.stats()
        assert first.fidelity == again.fidelity == "cycle"
        assert stats["requests"]["bypassed"] == 0
        # The repeat is served from cache — either the decision cache or
        # the encoded-reply fast path (byte-identical framed repeats skip
        # the decision cache entirely); both are tier-consistent.
        assert stats["cache"]["hits"] + stats["requests"]["fast_path"] >= 1

    def test_top_k_honored_on_cacheable_path(self, server):
        # top_k must bound the shipped ranking whether or not the request
        # takes the cache path (no explicit `top` key sent).
        wl = _wl(m=280)
        with ServeClient(*server.address) as client:
            first = client.predict(wl, options=PredictOptions(top_k=3))
            cached = client.predict(wl, options=PredictOptions(top_k=3))
            full = client.predict(wl, options=PredictOptions())
        assert len(first.ranking) == 3
        assert len(cached.ranking) == 3
        assert len(full.ranking) > 3  # top_k=None ships the full ranking

    def test_options_apply_to_predict_many(self, server):
        suite = [_wl(m=256), _wl(m=264)]
        opts = PredictOptions(fixed_mcf=(Format.CSR, Format.CSC))
        with ServeClient(*server.address) as client:
            before = client.stats()["requests"]["bypassed"]
            decisions = client.predict_many(suite, options=opts)
            after = client.stats()["requests"]["bypassed"]
        assert all(d.best.mcf == (Format.CSR, Format.CSC) for d in decisions)
        assert after == before + len(suite)  # pooled bypass, not cached

    def test_restricted_predict_many_matches_local(self, server):
        suite = [_wl(m=272), _wl(m=296)]
        opts = PredictOptions(mcf_a_space=(Format.COO, Format.CSR), top_k=2)
        with ServeClient(*server.address) as client:
            served = client.predict_many(suite, top=0, options=opts)
        local = Sage().predict_many(suite, options=opts, processes=1)
        assert [d.to_wire() for d in served] == [d.to_wire() for d in local]

    def test_stats_advertise_schema_versions(self, server):
        with ServeClient(*server.address) as client:
            assert client.stats()["schema_versions"] == [1, 2]

    def test_in_band_schema_error_raises_serve_error(self, server):
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="unsupported schema_version"):
                client._rpc(
                    {"op": "predict", "schema_version": 7,
                     "workload": _wl().to_dict()}
                )
            assert client.ping()  # connection survives
