"""Consistent-hash ring unit tests plus end-to-end fleet tests."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.api import Session
from repro.serve import (
    HashRing,
    RouterConfig,
    SageRouter,
    SageServer,
    ServeClient,
    ServeConfig,
    routing_key,
)
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload

_SERVE = ServeConfig(port=0, shards=0, batch_window_ms=1.0)


def _wl(i: int = 0) -> MatrixWorkload:
    return MatrixWorkload(
        f"fleet-{i}", Kernel.SPMM, m=128 + 16 * i, k=96, n=64,
        nnz_a=900 + 37 * i, nnz_b=96 * 64,
    )


# ---------------------------------------------------------------- hash ring
class TestHashRing:
    def test_empty_ring_has_no_owner(self):
        assert HashRing().node_for(123) is None
        assert HashRing().nodes_for(123, 2) == []

    @staticmethod
    def _keys(count: int) -> list[int]:
        # Fibonacci-hash the index so keys cover the full 64-bit space
        # the way real (BLAKE2-digest) routing keys do.
        return [k * 11400714819323198485 % 2**64 for k in range(1, count + 1)]

    def test_every_node_owns_keys(self):
        ring = HashRing([f"n{i}" for i in range(4)])
        owners = {ring.node_for(key) for key in self._keys(2000)}
        assert owners == {"n0", "n1", "n2", "n3"}

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing([f"n{i}" for i in range(4)], vnodes=128)
        counts: dict[str, int] = {}
        for key in self._keys(4000):
            node = ring.node_for(key)
            counts[node] = counts.get(node, 0) + 1
        share = 4000 / 4
        for node, count in counts.items():
            # Virtual nodes bound the imbalance; 2x of fair share is a
            # loose bar a broken ring (e.g. one vnode) blows through.
            assert count > share / 2, (node, counts)
            assert count < share * 2, (node, counts)

    def test_removal_moves_only_the_lost_nodes_keys(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        keys = TestHashRing._keys(1500)
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("b")
        after = {k: ring.node_for(k) for k in keys}
        for k in keys:
            if before[k] != "b":
                # Consistency: survivors keep every key they owned.
                assert after[k] == before[k]
            else:
                assert after[k] in ("a", "c")

    def test_add_back_restores_ownership(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        keys = TestHashRing._keys(800)
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("b")
        ring.add("b")
        assert {k: ring.node_for(k) for k in keys} == before

    def test_nodes_for_yields_distinct_failover_order(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        order = ring.nodes_for(42, 3)
        assert len(order) == 3
        assert sorted(order) == ["a", "b", "c"]
        assert order[0] == ring.node_for(42)

    def test_add_is_idempotent(self):
        ring = HashRing(["a"], vnodes=8)
        ring.add("a")
        assert len(ring._points) == 8


# -------------------------------------------------------------- routing key
class TestRoutingKey:
    def test_stable_and_config_free(self):
        assert routing_key(_wl()) == routing_key(_wl())
        assert routing_key(_wl()) == routing_key(_wl().to_dict())

    def test_same_band_same_key(self):
        a = _wl()
        b = MatrixWorkload("renamed", a.kernel, m=a.m, k=a.k, n=a.n,
                           nnz_a=a.nnz_a + 1, nnz_b=a.nnz_b)
        assert routing_key(a) == routing_key(b)  # same density band

    def test_different_kernel_different_key(self):
        a = _wl()
        b = MatrixWorkload(a.name, Kernel.SPGEMM, m=a.m, k=a.k, n=a.n,
                           nnz_a=a.nnz_a, nnz_b=a.nnz_b)
        assert routing_key(a) != routing_key(b)

    def test_tensor_workloads_route(self):
        wl = TensorWorkload("t", Kernel.SPTTM, (32, 32, 32), 500, rank=8)
        assert routing_key(wl) == routing_key(wl.to_dict())


# ------------------------------------------------------------------- fleet
@pytest.fixture(scope="module")
def fleet():
    with SageRouter(
        router=RouterConfig(replicas=2, serve=_SERVE)
    ) as router:
        yield router


class TestFleetEndToEnd:
    def test_binary_and_legacy_clients_agree_with_local_session(self, fleet):
        wl = _wl(1)
        with Session() as session:
            local = session.predict(wl).to_wire()
        # top=0 requests the full ranking, matching the local wire form.
        with ServeClient(*fleet.address) as binary:
            served_binary = binary.predict(wl, top=0).to_wire()
        with ServeClient(*fleet.address, wire_mode="json") as legacy:
            served_legacy = legacy.predict(wl, top=0).to_wire()
        assert served_binary == local
        assert served_legacy == local

    def test_repeat_rides_the_edge_cache(self, fleet):
        # A band of its own (SpGEMM, far-off sizes): the first answer is
        # an exact miss — final, so the router may memoize it.  (A
        # near-hit reply would deliberately NOT be edge-cached.)
        wl = MatrixWorkload("edge", Kernel.SPGEMM, m=512, k=512, n=256,
                            nnz_a=30_000, nnz_b=20_000)
        with ServeClient(*fleet.address) as client:
            first = client.predict(wl)
            before = fleet._reply_cache.hits
            again = client.predict(wl)
        assert first.to_wire() == again.to_wire()
        assert fleet._reply_cache.hits > before

    def test_same_workload_routes_to_one_replica(self, fleet):
        # Ten sends of one workload must not fan out across replicas.
        wl = _wl(3)
        with ServeClient(*fleet.address) as client:
            for _ in range(3):
                client.predict(wl)
        key = routing_key(wl)
        assert len(fleet._ring.nodes_for(key, 1)) == 1

    def test_ping_answers_at_the_router(self, fleet):
        with ServeClient(*fleet.address) as client:
            assert client.ping()

    def test_stats_aggregates_the_fleet(self, fleet):
        with ServeClient(*fleet.address) as client:
            client.predict(_wl(4))
            stats = client.stats()
        ring = stats["fleet"]["ring"]
        assert sorted(ring["nodes"]) == ["replica-0", "replica-1"]
        assert len(stats["fleet"]["replicas"]) == 2
        assert stats["requests"]["submitted"] >= 1
        relay = stats["fleet"]["relay"]
        assert relay["frames"] + relay["edge_hits"] >= 1

    def test_legacy_line_reply_is_bit_identical_to_single_server(self):
        # The fleet compatibility pin: a legacy JSON-lines client must be
        # answered byte-for-byte as a single-process server answers it.
        wl = _wl(5)
        request = (
            json.dumps({"op": "predict", "workload": wl.to_dict(),
                        "top": 2}) + "\n"
        ).encode()

        def raw_reply(address) -> bytes:
            with socket.create_connection(address, timeout=30) as sock:
                f = sock.makefile("rwb")
                f.write(request)
                f.flush()
                return f.readline()

        with SageServer(serve=_SERVE) as single:
            single_reply = raw_reply(single.address)
        with SageRouter(
            router=RouterConfig(replicas=2, serve=_SERVE)
        ) as router:
            fleet_reply = raw_reply(router.address)
        assert json.loads(single_reply).get("ok") is True
        assert fleet_reply == single_reply

    def test_predict_many_round_trips(self, fleet):
        suite = [_wl(i) for i in range(6, 9)]
        with ServeClient(*fleet.address) as client:
            decisions = client.predict_many(suite)
        assert [d.workload_name for d in decisions] == [
            wl.name for wl in suite
        ]


class TestReplicaLoss:
    def test_requests_survive_a_dead_replica(self):
        config = RouterConfig(
            replicas=2, serve=_SERVE,
            health_interval_s=0.2, health_timeout_s=0.3,
        )
        with SageRouter(router=config) as fleet:
            suite = [_wl(i) for i in range(4)]
            with ServeClient(*fleet.address) as client:
                for wl in suite:
                    client.predict(wl)
                # Kill one replica out from under the router.
                fleet._servers[0].close()
                # Fresh workloads (no edge-cache cover) must still be
                # answered: either relayed straight to the survivor or
                # miss-forwarded after the dead node fails.
                for i in range(10, 16):
                    assert client.predict(_wl(i)).best is not None
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if "replica-0" in fleet._down:
                    break
                time.sleep(0.1)
            assert "replica-0" in fleet._down
            assert fleet._ring.nodes == {"replica-1"}

    def test_shutdown_rpc_stops_the_whole_fleet(self):
        fleet = SageRouter(
            router=RouterConfig(replicas=2, serve=_SERVE)
        )
        fleet.start()
        with ServeClient(*fleet.address, retries=0) as client:
            client.shutdown_server()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if fleet._closed.is_set() and all(
                srv._closed.is_set() for srv in fleet._servers
            ):
                break
            time.sleep(0.1)
        assert fleet._closed.is_set()
        assert all(srv._closed.is_set() for srv in fleet._servers)
