"""End-to-end serve tests: client <-> server on an ephemeral port."""

from __future__ import annotations

import threading

import pytest

from repro.errors import PredictionError, ServeError
from repro.sage import Sage
from repro.serve import SageServer, ServeClient, ServeConfig
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


def _wl(m: int = 256, nnz_a: int = 2_000) -> MatrixWorkload:
    return MatrixWorkload("e2e", Kernel.SPMM, m=m, k=256, n=128,
                          nnz_a=nnz_a, nnz_b=256 * 128)


@pytest.fixture(scope="module")
def server():
    with SageServer(
        serve=ServeConfig(port=0, shards=1, batch_window_ms=1.0)
    ) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


class TestRoundTrip:
    def test_ping(self, client):
        assert client.ping()

    def test_predict_matches_local_sage(self, client):
        wl = _wl()
        served = client.predict(wl)
        local = Sage().predict(wl)
        assert served.workload_name == local.workload_name
        assert served.best.mcf == local.best.mcf
        assert served.best.acf == local.best.acf
        assert served.best.edp == pytest.approx(local.best.edp)

    def test_predict_tensor_over_the_wire(self, client):
        wl = TensorWorkload("t-e2e", Kernel.SPTTM, (32, 32, 32), 800, rank=8)
        served = client.predict(wl)
        local = Sage().predict(wl)
        assert served.best.mcf == local.best.mcf

    def test_cache_hit_is_relabeled_for_the_requester(self, client):
        alice = MatrixWorkload("alice", Kernel.SPMM, m=224, k=224, n=96,
                               nnz_a=1_700, nnz_b=224 * 96)
        bob = MatrixWorkload("bob", Kernel.SPMM, m=224, k=224, n=96,
                             nnz_a=1_700, nnz_b=224 * 96)
        assert client.predict(alice).workload_name == "alice"
        served = client.predict(bob)  # identical stats: a cache hit
        assert served.workload_name == "bob"

    def test_repeat_is_served_from_cache(self, client):
        # The repeat may land in the exact tier or (same-band traffic
        # from sibling tests on this shared server) the near tier;
        # either way it must be answered from cache, not recomputed.
        wl = _wl(m=260)
        first = client.predict(wl)
        before = client.stats()["cache"]
        again = client.predict(wl)
        after = client.stats()["cache"]
        assert again.best == first.best
        assert (
            after["hits"] + after["near_hits"]
            > before["hits"] + before["near_hits"]
        )

    def test_predict_many_preserves_order(self, client):
        suite = [_wl(m=200 + 10 * i) for i in range(4)]
        decisions = client.predict_many(suite)
        assert [d.workload_name for d in decisions] == ["e2e"] * 4
        singles = [client.predict(wl) for wl in suite]
        assert [d.best.mcf for d in decisions] == [d.best.mcf for d in singles]

    def test_top_controls_shipped_ranking(self, client):
        wl = _wl(m=272)
        assert len(client.predict(wl, top=2).ranking) == 2
        full = client.predict(wl, top=0)
        assert len(full.ranking) > 8  # server default prefix exceeded

    def test_stats_shape(self, client):
        client.predict(_wl())
        stats = client.stats()
        assert stats["requests"]["served"] >= 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert len(stats["shards"]) == 1
        assert stats["shards"][0]["alive"]
        assert stats["latency_ms"]["p50"] is not None
        assert stats["batches"]["count"] >= 1

    def test_malformed_workload_reports_in_band(self, client):
        with pytest.raises(ServeError, match="kind"):
            client.predict({"kind": "graph"})
        # The connection survives an in-band error.
        assert client.ping()

    def test_invalid_json_line_reports_in_band(self, server):
        import json
        import socket

        with socket.create_connection(server.address, timeout=30) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            reply = json.loads(f.readline())
            assert reply["ok"] is False

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ServeError, match="unknown op"):
            client._rpc({"op": "transmogrify"})


class TestConcurrency:
    def test_concurrent_clients_coalesce_identical_requests(self, server):
        wl = _wl(m=384, nnz_a=3_000)  # not seen by other tests
        results: list = []
        errors: list = []
        barrier = threading.Barrier(6)

        def hit() -> None:
            try:
                with ServeClient(*server.address) as c:
                    barrier.wait()
                    results.append(c.predict(wl))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({d.best.mcf for d in results}) == 1
        stats = ServeClient(*server.address).stats()
        # At least some of the 6 identical in-flight requests coalesced
        # (cache hits absorb the rest).
        assert stats["batches"]["coalesced"] + stats["cache"]["hits"] >= 1

    def test_many_distinct_requests_across_clients(self, server):
        errors: list = []

        def sweep(offset: int) -> None:
            try:
                with ServeClient(*server.address) as c:
                    suite = [_wl(m=300 + offset + 4 * i) for i in range(3)]
                    decisions = c.predict_many(suite)
                    assert len(decisions) == 3
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=sweep, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestModes:
    def test_in_process_mode_no_shards(self):
        with SageServer(serve=ServeConfig(port=0, shards=0)) as srv:
            with ServeClient(*srv.address) as c:
                decision = c.predict(_wl())
                assert decision.best is not None
                assert c.stats()["shards"] == []

    def test_near_hit_mode_serves_banded_neighbour(self):
        config = ServeConfig(port=0, shards=0, near_hit=True)
        with SageServer(serve=config) as srv:
            with ServeClient(*srv.address) as c:
                c.predict(_wl(nnz_a=2_100))
                c.predict(_wl(nnz_a=2_500))  # same density band
                assert c.stats()["cache"]["near_hits"] >= 1

    def test_exact_mode_recomputes_banded_neighbour(self):
        config = ServeConfig(port=0, shards=0, near_hit=False)
        with SageServer(serve=config) as srv:
            with ServeClient(*srv.address) as c:
                c.predict(_wl(nnz_a=2_100))
                c.predict(_wl(nnz_a=2_500))
                stats = c.stats()["cache"]
                assert stats["near_hits"] == 0
                assert stats["misses"] >= 2

    def test_cycle_fidelity_server(self):
        # A cycle-tier server answers with simulator-validated decisions;
        # the small workload stays under the simulation proxy cap.
        config = ServeConfig(port=0, shards=1, fidelity="cycle")
        wl = MatrixWorkload("cyc", Kernel.SPMM, m=96, k=96, n=64,
                            nnz_a=900, nnz_b=96 * 64)
        with SageServer(serve=config) as srv:
            with ServeClient(*srv.address) as c:
                decision = c.predict(wl)
                assert decision.fidelity == "cycle"
                assert c.stats()["fidelity"] == "cycle"

    def test_cycle_server_operand_segments_cleaned_on_close(self):
        # Cycle-tier shards share proxy operands through named segments;
        # the namespace must die with the server (leak-check contract).
        from repro.sage import predictor
        from repro.util import shm

        if not shm.shm_available():
            pytest.skip("no shared memory on this platform")
        config = ServeConfig(port=0, shards=1, fidelity="cycle")
        wl = MatrixWorkload("cyc-shm", Kernel.SPMM, m=96, k=96, n=64,
                            nnz_a=900, nnz_b=96 * 64)
        srv = SageServer(serve=config)
        prefix = srv._operands.prefix
        with srv:
            with ServeClient(*srv.address) as c:
                assert c.predict(wl).fidelity == "cycle"
            assert any(
                name.startswith(prefix)
                for name in shm.active_operand_segments()
            ), "cycle prediction should have published warm operands"
        assert not any(
            name.startswith(prefix) for name in shm.active_operand_segments()
        )
        assert predictor._PROXY_OPERAND_CACHE is None

    def test_calibrated_fidelity_server(self, tmp_path):
        # A calibrated-tier server answers corrected decisions from its
        # preloaded factor table (shards inherit it across the fork).
        from repro.sage.calibrate import GRIDS, build_table
        from repro.xp.artifacts import ArtifactStore

        table = build_table(
            GRIDS["tiny"], store=ArtifactStore(tmp_path)
        ).table
        config = ServeConfig(port=0, shards=1, fidelity="calibrated")
        wl = MatrixWorkload("calib", Kernel.SPMM, m=96, k=96, n=64,
                            nnz_a=900, nnz_b=96 * 64)
        with SageServer(sage=Sage(calibration=table), serve=config) as srv:
            with ServeClient(*srv.address) as c:
                decision = c.predict(wl)
                assert decision.fidelity == "calibrated"
                assert c.stats()["fidelity"] == "calibrated"

    def test_calibrated_server_without_table_fails_fast(self, monkeypatch):
        # No table for this config: construction must raise, not every
        # later request.
        monkeypatch.setattr(
            "repro.sage.predictor.load_default_table", lambda config: None
        )
        with pytest.raises(PredictionError, match="repro calibrate"):
            SageServer(
                serve=ServeConfig(port=0, shards=0, fidelity="calibrated")
            )

    def test_unknown_fidelity_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown serve fidelity"):
            SageServer(serve=ServeConfig(port=0, fidelity="oracular"))

    def test_shutdown_rpc_stops_server(self):
        srv = SageServer(serve=ServeConfig(port=0, shards=0))
        address = srv.start()
        with ServeClient(*address) as c:
            c.shutdown_server()
        srv.serve_forever()  # returns: close() ran
        with pytest.raises(ServeError):
            ServeClient(*address, timeout=2).ping()

    def test_close_is_idempotent(self):
        srv = SageServer(serve=ServeConfig(port=0, shards=0))
        srv.start()
        srv.close()
        srv.close()

    def test_dead_shard_falls_back_to_inline_compute(self):
        with SageServer(serve=ServeConfig(port=0, shards=1)) as srv:
            srv._shards[0].proc.terminate()
            srv._shards[0].proc.join(timeout=5)
            with ServeClient(*srv.address) as c:
                decision = c.predict(_wl(m=444, nnz_a=1_234))
                assert decision.best is not None

    def test_client_poisons_connection_on_transport_failure(self):
        import socket as socket_mod

        with SageServer(serve=ServeConfig(port=0, shards=0)) as srv:
            # retries=0 opts out of the default transparent retry, which
            # restores the PR-2-era poison-on-first-failure contract.
            c = ServeClient(*srv.address, retries=0)
            assert c.ping()
            # Simulate a dropped transport mid-session.
            c._sock.shutdown(socket_mod.SHUT_RDWR)
            with pytest.raises(ServeError, match="transport failed"):
                c.ping()
            with pytest.raises(ServeError, match="poisoned"):
                c.ping()

    def test_client_retries_transparently_after_transport_failure(self):
        import socket as socket_mod

        with SageServer(serve=ServeConfig(port=0, shards=0)) as srv:
            c = ServeClient(*srv.address)  # default: retries=1
            assert c.ping()
            # Kill the transport under the client; the next idempotent op
            # must reconnect-and-resend instead of surfacing the failure.
            c._sock.shutdown(socket_mod.SHUT_RDWR)
            assert c.ping()
            assert not c.broken
            decision = c.predict(_wl())
            assert decision.best is not None
            c.close()

    def test_timeout_unwedges_inflight_fingerprint(self):
        # A result that never arrives (e.g. a killed shard) must not leave
        # its fingerprint permanently coalescing onto a dead computation.
        from repro.serve.fingerprint import fingerprint_of
        from repro.serve.server import _PendingRequest

        srv = SageServer(
            serve=ServeConfig(port=0, shards=0, request_timeout_s=0.05)
        )
        wl = _wl()
        fp = fingerprint_of(wl)
        req = _PendingRequest(wl.to_dict(), wl, fp)
        srv._inflight[fp.exact_key()] = [req]  # dispatched, never resolved
        reply = srv._reply_one(req, None)
        assert reply == {"ok": False, "error": "request timed out"}
        assert fp.exact_key() not in srv._inflight

    def test_submit_after_close_fails_fast(self):
        srv = SageServer(serve=ServeConfig(port=0, shards=0))
        srv.start()
        srv.close()
        req = srv._submit(_wl().to_dict())
        assert req.done.is_set()
        assert req.error == "server shutting down"


class TestClientPool:
    def test_pool_serves_concurrent_threads(self, server):
        from repro.serve import ServeClientPool

        with ServeClientPool(*server.address, size=3) as pool:
            results: list = []
            errors: list = []

            def worker(i: int) -> None:
                try:
                    results.append(pool.predict(_wl(m=256 + 16 * i)))
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 8
            assert all(d.best is not None for d in results)
            # Lazy creation never exceeds the configured bound.
            assert pool._created <= 3

    def test_pool_replaces_broken_connections(self, server):
        import socket as socket_mod

        from repro.serve import ServeClientPool

        with ServeClientPool(*server.address, size=1, retries=0) as pool:
            assert pool.ping()
            client = pool._checkout()
            client._sock.shutdown(socket_mod.SHUT_RDWR)
            with pytest.raises(ServeError):
                client.ping()  # retries=0: the transport failure poisons it
            assert client.broken
            pool._checkin(client)
            # The poisoned connection is discarded; the next call gets a
            # fresh socket.
            assert pool.ping()

    def test_pool_close_refuses_checkout(self, server):
        from repro.serve import ServeClientPool

        pool = ServeClientPool(*server.address, size=2)
        assert pool.ping()
        pool.close()
        with pytest.raises(ServeError, match="pool is closed"):
            pool.predict(_wl())

    def test_pool_size_must_be_positive(self, server):
        from repro.serve import ServeClientPool

        with pytest.raises(ValueError):
            ServeClientPool(*server.address, size=0)
