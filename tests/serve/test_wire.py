"""Wire-dict round trips: workloads, CostBreakdown, SageDecision."""

from __future__ import annotations

import json

import pytest

from repro.sage import Sage
from repro.sage.cost_model import CostBreakdown
from repro.sage.predictor import SageDecision
from repro.workloads.spec import (
    Kernel,
    MatrixWorkload,
    TensorWorkload,
    workload_from_dict,
)


@pytest.fixture(scope="module")
def decision() -> SageDecision:
    wl = MatrixWorkload("wire", Kernel.SPGEMM, m=128, k=128, n=64,
                        nnz_a=1_000, nnz_b=800)
    return Sage().predict_matrix(wl)


class TestWorkloadDicts:
    def test_matrix_round_trip(self):
        wl = MatrixWorkload("w", Kernel.SPMM, m=64, k=32, n=16,
                            nnz_a=100, nnz_b=32 * 16, dtype_bits=16)
        assert workload_from_dict(wl.to_dict()) == wl

    def test_tensor_round_trip(self):
        wl = TensorWorkload("t", Kernel.MTTKRP, (16, 8, 4), 50, rank=8)
        assert workload_from_dict(wl.to_dict()) == wl

    def test_dict_is_json_safe(self):
        wl = TensorWorkload("t", Kernel.SPTTM, (16, 8, 4), 50, rank=8)
        assert workload_from_dict(json.loads(json.dumps(wl.to_dict()))) == wl

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            workload_from_dict({"kind": "graph"})

    def test_bad_shape_rejected(self):
        data = TensorWorkload("t", Kernel.SPTTM, (4, 4, 4), 5, rank=2).to_dict()
        data["shape"] = [4, 4]
        with pytest.raises(ValueError):
            workload_from_dict(data)


class TestCostBreakdownWire:
    def test_round_trip_equality(self, decision):
        cand = decision.best
        assert CostBreakdown.from_wire(cand.to_wire()) == cand

    def test_wire_is_json_safe_and_formats_readable(self, decision):
        wire = json.loads(json.dumps(decision.best.to_wire()))
        assert wire["mcf"][0] in {
            "Dense", "COO", "CSR", "CSC", "RLC", "ZVC", "BSR", "DIA", "ELL",
        }
        rebuilt = CostBreakdown.from_wire(wire)
        assert rebuilt.edp == pytest.approx(decision.best.edp)


class TestSageDecisionWire:
    def test_full_round_trip_equality(self, decision):
        rebuilt = SageDecision.from_wire(decision.to_wire())
        assert rebuilt == decision  # dataclass equality: best + full ranking

    def test_json_round_trip_preserves_choice(self, decision):
        rebuilt = SageDecision.from_wire(
            json.loads(json.dumps(decision.to_wire()))
        )
        assert rebuilt.best.mcf == decision.best.mcf
        assert rebuilt.best.acf == decision.best.acf
        assert rebuilt.best.edp == pytest.approx(decision.best.edp)
        assert len(rebuilt.ranking) == len(decision.ranking)

    def test_top_truncates_ranking_but_keeps_best(self, decision):
        rebuilt = SageDecision.from_wire(decision.to_wire(top=3))
        assert len(rebuilt.ranking) == 3
        assert rebuilt.best == decision.best
        assert rebuilt.ranking[0] == decision.ranking[0]
