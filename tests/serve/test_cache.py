"""DecisionCache: LRU order, counters, and the near-hit tier."""

from __future__ import annotations

import threading

import pytest

from repro.serve.cache import DecisionCache
from repro.serve.fingerprint import fingerprint_of
from repro.workloads.spec import Kernel, MatrixWorkload


def _fp(nnz_a: int = 10_000, m: int = 512):
    return fingerprint_of(
        MatrixWorkload("c", Kernel.SPMM, m=m, k=512, n=256,
                       nnz_a=nnz_a, nnz_b=512 * 256)
    )


class TestLru:
    def test_get_put_round_trip(self):
        cache = DecisionCache(maxsize=4)
        fp = _fp()
        assert cache.get(fp) is None
        cache.put(fp, "decision")
        assert cache.get(fp) == "decision"

    def test_capacity_evicts_least_recently_used(self):
        cache = DecisionCache(maxsize=2)
        a, b, c = _fp(m=100), _fp(m=200), _fp(m=300)
        cache.put(a, "A")
        cache.put(b, "B")
        assert cache.get(a) == "A"  # refresh A; B is now LRU
        cache.put(c, "C")
        assert cache.get(b) is None
        assert cache.get(a) == "A"
        assert cache.get(c) == "C"
        assert cache.stats().evictions == 1

    def test_len_and_clear(self):
        cache = DecisionCache(maxsize=8)
        cache.put(_fp(m=100), "A")
        cache.put(_fp(m=200), "B")
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().lookups == 0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            DecisionCache(maxsize=0)


class TestCounters:
    def test_hits_misses_counted(self):
        cache = DecisionCache(maxsize=4)
        fp = _fp()
        cache.get(fp)
        cache.put(fp, "D")
        cache.get(fp)
        cache.get(fp)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.near_hits) == (2, 1, 0)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_stats_to_dict_is_json_safe(self):
        import json

        stats = DecisionCache(maxsize=4).stats()
        assert json.loads(json.dumps(stats.to_dict()))["maxsize"] == 4


class TestNearHit:
    def test_same_band_served_when_enabled(self):
        cache = DecisionCache(maxsize=4, near_hit=True)
        cache.put(_fp(nnz_a=10_000), "D")
        got = cache.get(_fp(nnz_a=11_000))  # same power-of-two band
        assert got == "D"
        stats = cache.stats()
        assert (stats.hits, stats.near_hits) == (0, 1)

    def test_exact_mode_never_serves_neighbours(self):
        cache = DecisionCache(maxsize=4, near_hit=False)
        cache.put(_fp(nnz_a=10_000), "D")
        assert cache.get(_fp(nnz_a=11_000)) is None

    def test_different_band_misses(self):
        cache = DecisionCache(maxsize=4, near_hit=True)
        cache.put(_fp(nnz_a=10_000), "D")
        assert cache.get(_fp(nnz_a=40_000)) is None

    def test_same_band_different_dims_served(self):
        # The Table III regression: no two real workloads share exact
        # dims, so a band key carrying exact dims never collided and
        # near_hits stayed 0.  Dims within 2x now band together.
        cache = DecisionCache(maxsize=4, near_hit=True)
        cache.put(_fp(m=512, nnz_a=10_000), "D")
        got = cache.get(_fp(m=700, nnz_a=11_000))  # same dim + nnz bands
        assert got == "D"
        assert cache.stats().near_hits == 1

    def test_band_pointer_cleared_on_eviction(self):
        cache = DecisionCache(maxsize=1, near_hit=True)
        cache.put(_fp(nnz_a=10_000), "OLD")
        cache.put(_fp(m=2000), "NEW")  # different dim band; evicts OLD
        assert cache.get(_fp(nnz_a=11_000)) is None

    def test_band_pointer_tracks_latest_representative(self):
        cache = DecisionCache(maxsize=8, near_hit=True)
        cache.put(_fp(nnz_a=10_000), "FIRST")
        cache.put(_fp(nnz_a=11_000), "SECOND")
        assert cache.get(_fp(nnz_a=12_000)) == "SECOND"


class TestThreadSafety:
    def test_concurrent_put_get_consistent(self):
        cache = DecisionCache(maxsize=64, near_hit=True)
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    fp = _fp(m=100 + (seed * 7 + i) % 32)
                    if cache.get(fp) is None:
                        cache.put(fp, f"d{seed}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == 8 * 200
        assert len(cache) <= 64
