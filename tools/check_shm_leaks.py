"""Fail if any repro shared-memory segments are left in ``/dev/shm``.

Every segment the zero-copy operand plane creates is named with
``repro.util.shm.SEGMENT_PREFIX``, and every owner (an
``OperandPlane``, an ``OperandCacheNamespace``) guarantees unlinking on
success, error, and interrupt.  A segment that survives a test or bench
run is therefore a lifecycle bug — leaked bytes that outlive the
process and quietly fill ``/dev/shm`` on a shared host.

CI runs this after the test suite and after bench-smoke::

    PYTHONPATH=src python tools/check_shm_leaks.py

Exit status is non-zero if any segment remains, listing each by name
and size.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.util.shm import SEGMENT_PREFIX, active_operand_segments


def main() -> int:
    leaked = active_operand_segments()
    if not leaked:
        print(f"ok: no {SEGMENT_PREFIX}* segments in /dev/shm")
        return 0
    print(
        f"LEAKED SEGMENTS: {len(leaked)} {SEGMENT_PREFIX}* segment(s) "
        f"survived the run:",
        file=sys.stderr,
    )
    for name in leaked:
        path = Path("/dev/shm") / name
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        print(f"  {name}  ({size} bytes)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
