"""Execute every fenced ``python`` block in README.md and docs/*.md.

Documentation that cannot run is documentation that rots: CI's
``docs-smoke`` job runs this script with ``REPRO_EXAMPLE_SMOKE=1`` so
every example in the guide set is executed against the real package on
every push.

Semantics:

* blocks are extracted per file, in order, and executed **notebook
  style** — one fresh subprocess per file, all of the file's blocks
  concatenated so later blocks may use names defined by earlier ones;
* only ` ```python ` fences run; ` ```sh `, ` ```text ` and other
  info-strings are prose;
* a block whose first line is ``# doc: no-run`` is compiled (syntax
  checked) but not executed — for fragments that illustrate an API
  without being self-contained.

Run locally::

    REPRO_EXAMPLE_SMOKE=1 PYTHONPATH=src python tools/docs_smoke.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)

NO_RUN = "# doc: no-run"


def doc_files() -> list[Path]:
    """The documentation set covered by the smoke run."""
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def extract_blocks(path: Path) -> list[str]:
    """Every fenced python block in *path*, in order."""
    return [m.group(1) for m in FENCE.finditer(path.read_text())]


def runnable_source(blocks: list[str]) -> str:
    """The file's executable program: runnable blocks concatenated."""
    runnable = [
        b for b in blocks if not b.lstrip().startswith(NO_RUN)
    ]
    return "\n\n".join(runnable)


def main() -> int:
    env = dict(os.environ)
    env.setdefault("REPRO_EXAMPLE_SMOKE", "1")
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    failures = 0
    total_blocks = 0
    for path in doc_files():
        blocks = extract_blocks(path)
        rel = path.relative_to(ROOT)
        if not blocks:
            print(f"--   {rel}: no python blocks")
            continue
        total_blocks += len(blocks)
        for i, block in enumerate(blocks):  # syntax-check everything
            compile(block, f"{rel}[block {i + 1}]", "exec")
        source = runnable_source(blocks)
        if not source.strip():
            print(f"ok   {rel}: {len(blocks)} block(s), all no-run")
            continue
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-c", source],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(ROOT),
            timeout=600,
        )
        elapsed = time.perf_counter() - t0
        if proc.returncode != 0:
            failures += 1
            print(f"FAIL {rel}: {len(blocks)} block(s), {elapsed:.1f}s")
            sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-4000:] + "\n")
        else:
            print(f"ok   {rel}: {len(blocks)} block(s), {elapsed:.1f}s")
    if total_blocks == 0:
        print("FAIL: no fenced python blocks found anywhere", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
