"""Serving demo: the same Session code, answered by a remote server.

Starts a :class:`~repro.serve.server.SageServer` on an ephemeral port
(warm shard workers, near-hit cache on) and drives it through the
``Session`` facade with a ``tcp://`` backend — cold pass, warm repeat, a
density-band near-hit, a search-restricted request that bypasses the
cache — then prints the server's stats RPC.  Nothing but the backend URL
distinguishes this code from an in-process ``Session()``.

Run with ``PYTHONPATH=src python examples/serve_demo.py``.
(set ``REPRO_EXAMPLE_SMOKE=1`` for a smaller headless-CI instance)
"""

from __future__ import annotations

import json
import os
import time

from repro import (
    MATRIX_SUITE,
    Format,
    Kernel,
    MatrixWorkload,
    PredictOptions,
    Session,
)
from repro.serve import SageServer, ServeConfig

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    entries = MATRIX_SUITE[:3] if SMOKE else MATRIX_SUITE
    suite = [entry.matrix_workload(Kernel.SPMM) for entry in entries]
    config = ServeConfig(port=0, shards=1 if SMOKE else 2, near_hit=True)
    with SageServer(serve=config) as server:
        host, port = server.address
        print(f"server up on {host}:{port}\n")
        with Session(f"tcp://{host}:{port}") as session:
            t0 = time.perf_counter()
            decisions = session.predict(suite)
            cold_ms = (time.perf_counter() - t0) * 1e3
            print(f"cold pass: {len(suite)} suite workloads in {cold_ms:.1f} ms")
            for decision in decisions[:3]:
                best = decision.best
                print(
                    f"  {decision.workload_name:>16}: "
                    f"MCF=({best.mcf[0]},{best.mcf[1]}) "
                    f"ACF=({best.acf[0]},{best.acf[1]})"
                )

            t0 = time.perf_counter()
            session.predict(suite)
            warm_ms = (time.perf_counter() - t0) * 1e3
            print(f"warm pass: same suite in {warm_ms:.1f} ms (decision cache)")

            # A workload the server never saw, but in the same density
            # band as a cached one: served as a near-hit.
            seen = suite[-1]
            neighbour = MatrixWorkload(
                f"{seen.name}-retrained", seen.kernel, seen.m, seen.k,
                seen.n, seen.nnz_a + 512, seen.nnz_b,
            )
            session.predict(neighbour)
            print("near-hit: unseen neighbour answered from the band cache")

            # Typed options travel the versioned wire schema; restricted
            # searches bypass the decision cache on the server side.
            pinned = session.predict(
                seen, PredictOptions(fixed_mcf=(Format.CSR, Format.DENSE))
            )
            print(
                f"restricted: CSR-pinned best ACF = "
                f"({pinned.best.acf[0]},{pinned.best.acf[1]}) "
                f"(computed cache-bypassing)\n"
            )

            print("server stats:")
            print(json.dumps(session.backend.stats(), indent=2))
    print("\nserver shut down cleanly")


if __name__ == "__main__":
    main()
