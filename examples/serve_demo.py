"""Serving demo: run SAGE as a service and query it over TCP.

Starts a :class:`~repro.serve.server.SageServer` on an ephemeral port
(two warm shard workers, near-hit cache on), drives it with a
:class:`~repro.serve.client.ServeClient` — cold pass, warm repeat, a
density-band near-hit — and prints the server's stats RPC.

Run with ``PYTHONPATH=src python examples/serve_demo.py``.
"""

from __future__ import annotations

import json
import time

from repro import MATRIX_SUITE, Kernel, MatrixWorkload
from repro.serve import SageServer, ServeClient, ServeConfig


def main() -> None:
    suite = [entry.matrix_workload(Kernel.SPMM) for entry in MATRIX_SUITE]
    config = ServeConfig(port=0, shards=2, near_hit=True)
    with SageServer(serve=config) as server:
        host, port = server.address
        print(f"server up on {host}:{port}\n")
        with ServeClient(host, port) as client:
            t0 = time.perf_counter()
            decisions = client.predict_many(suite)
            cold_ms = (time.perf_counter() - t0) * 1e3
            print(f"cold pass: {len(suite)} suite workloads in {cold_ms:.1f} ms")
            for decision in decisions[:3]:
                best = decision.best
                print(
                    f"  {decision.workload_name:>16}: "
                    f"MCF=({best.mcf[0]},{best.mcf[1]}) "
                    f"ACF=({best.acf[0]},{best.acf[1]})"
                )

            t0 = time.perf_counter()
            client.predict_many(suite)
            warm_ms = (time.perf_counter() - t0) * 1e3
            print(f"warm pass: same suite in {warm_ms:.1f} ms (decision cache)")

            # A workload the server never saw, but in the same density
            # band as a cached one: served as a near-hit.
            speech2 = suite[4]
            neighbour = MatrixWorkload(
                "speech2-retrained", speech2.kernel, speech2.m, speech2.k,
                speech2.n, speech2.nnz_a + 512, speech2.nnz_b,
            )
            client.predict(neighbour)
            print("near-hit: unseen neighbour answered from the band cache\n")

            print("server stats:")
            print(json.dumps(client.stats(), indent=2))
    print("\nserver shut down cleanly")


if __name__ == "__main__":
    main()
