#!/usr/bin/env python3
"""Format explorer: compactness and compute-efficiency across density.

Interactive-style tour of the paper's Sec. III analysis on a matrix shape
of your choice: which MCF is most compact where (Fig. 4), where the format
crossovers fall, which GPU ACF algorithm wins where (Fig. 5) — and, to
close the loop, what SAGE actually picks across the same densities (one
batched ``Session.predict``).

Run: ``python examples/format_explorer.py [M] [K]``  (defaults 11000 11000;
set ``REPRO_EXAMPLE_SMOKE=1`` for a small headless-CI shape)
"""

from __future__ import annotations

import os
import sys

from repro import (
    Format,
    GpuModel,
    Kernel,
    MatrixWorkload,
    MMAlgorithm,
    Session,
)
from repro.analysis.compactness import (
    crossover_density,
    storage_bits,
    transfer_energy_sweep,
)

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))

FORMATS = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC, Format.ZVC]
DENSITIES = [1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]


def main() -> None:
    default = 500 if SMOKE else 11_000
    m = int(sys.argv[1]) if len(sys.argv) > 1 else default
    k = int(sys.argv[2]) if len(sys.argv) > 2 else default
    dims = (m, k)

    print(f"=== Storage footprint relative to CSR ({m} x {k}, 32-bit) ===")
    sweep = transfer_energy_sweep(dims, DENSITIES, FORMATS, 32)
    print(f"{'density':>9} | " + " ".join(f"{f.value:>7}" for f in FORMATS) + " | best")
    for i, d in enumerate(DENSITIES):
        vals = {f: sweep[f][i] for f in FORMATS}
        best = min(vals, key=vals.get)
        print(
            f"{d:>9.0e} | "
            + " ".join(f"{vals[f]:>7.3f}" for f in FORMATS)
            + f" | {best.value}"
        )

    print()
    print("=== Crossover densities ===")
    for low, high, note in [
        (Format.COO, Format.CSR, "COO wins below"),
        (Format.CSR, Format.ZVC, "CSR wins below"),
        (Format.ZVC, Format.DENSE, "ZVC wins below"),
    ]:
        try:
            x = crossover_density(low, high, dims)
            print(f"  {low.value:>5} vs {high.value:<5}: {note} {x:.3e}")
        except ValueError as exc:
            print(f"  {low.value:>5} vs {high.value:<5}: {exc}")

    print()
    print("=== Metadata share per format at 10% density ===")
    nnz = int(0.10 * m * k)
    for f in FORMATS:
        total = storage_bits(f, dims, nnz, 32)
        payload = nnz * 32
        meta = max(0.0, total - payload)
        print(f"  {f.value:>5}: {meta / total:>6.1%} metadata "
              f"({total / 8 / 1e6:,.1f} MB total)")

    print()
    print(f"=== GPU ACF winner per density (Fig. 5 model, {m}x{k}x{k}) ===")
    gpu = GpuModel()
    for d in DENSITIES:
        times = {a: gpu.mm_time(a, m, k, k, d).seconds for a in MMAlgorithm}
        best = min(times, key=times.get)
        print(f"  {d:>9.0e}: {best.value:<28} ({times[best]:.3g} s)")

    print()
    print(f"=== What SAGE picks at each density (SpMM, {m}x{k}x{k}) ===")
    densities = [1e-4, 1e-2, 0.1, 0.5] if SMOKE else [1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5]
    workloads = [
        MatrixWorkload(
            name=f"d={d:g}", kernel=Kernel.SPMM, m=m, k=k, n=k,
            nnz_a=max(1, int(d * m * k)), nnz_b=k * k,
        )
        for d in densities
    ]
    with Session() as session:
        for wl, dec in zip(workloads, session.predict(workloads)):
            b = dec.best
            print(
                f"  {wl.name:>8}: MCF=({b.mcf[0].value},{b.mcf[1].value}) "
                f"ACF=({b.acf[0].value},{b.acf[1].value}) "
                f"EDP {b.edp:.2e}"
            )


if __name__ == "__main__":
    main()
