#!/usr/bin/env python3
"""Format explorer: compactness and compute-efficiency across density.

Interactive-style tour of the paper's Sec. III analysis on a matrix shape
of your choice: which MCF is most compact where (Fig. 4), where the format
crossovers fall, and which GPU ACF algorithm wins where (Fig. 5).

Run: ``python examples/format_explorer.py [M] [K]``  (defaults 11000 11000)
"""

from __future__ import annotations

import sys

from repro import Format, GpuModel, MMAlgorithm
from repro.analysis.compactness import (
    crossover_density,
    storage_bits,
    transfer_energy_sweep,
)

FORMATS = [Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC, Format.ZVC]
DENSITIES = [1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 11_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 11_000
    dims = (m, k)

    print(f"=== Storage footprint relative to CSR ({m} x {k}, 32-bit) ===")
    sweep = transfer_energy_sweep(dims, DENSITIES, FORMATS, 32)
    print(f"{'density':>9} | " + " ".join(f"{f.value:>7}" for f in FORMATS) + " | best")
    for i, d in enumerate(DENSITIES):
        vals = {f: sweep[f][i] for f in FORMATS}
        best = min(vals, key=vals.get)
        print(
            f"{d:>9.0e} | "
            + " ".join(f"{vals[f]:>7.3f}" for f in FORMATS)
            + f" | {best.value}"
        )

    print()
    print("=== Crossover densities ===")
    for low, high, note in [
        (Format.COO, Format.CSR, "COO wins below"),
        (Format.CSR, Format.ZVC, "CSR wins below"),
        (Format.ZVC, Format.DENSE, "ZVC wins below"),
    ]:
        try:
            x = crossover_density(low, high, dims)
            print(f"  {low.value:>5} vs {high.value:<5}: {note} {x:.3e}")
        except ValueError as exc:
            print(f"  {low.value:>5} vs {high.value:<5}: {exc}")

    print()
    print("=== Metadata share per format at 10% density ===")
    nnz = int(0.10 * m * k)
    for f in FORMATS:
        total = storage_bits(f, dims, nnz, 32)
        payload = nnz * 32
        meta = max(0.0, total - payload)
        print(f"  {f.value:>5}: {meta / total:>6.1%} metadata "
              f"({total / 8 / 1e6:,.1f} MB total)")

    print()
    print(f"=== GPU ACF winner per density (Fig. 5 model, {m}x{k}x{k}) ===")
    gpu = GpuModel()
    for d in DENSITIES:
        times = {a: gpu.mm_time(a, m, k, k, d).seconds for a in MMAlgorithm}
        best = min(times, key=times.get)
        print(f"  {d:>9.0e}: {best.value:<28} ({times[best]:.3g} s)")


if __name__ == "__main__":
    main()
