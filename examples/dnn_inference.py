#!/usr/bin/env python3
"""DNN case study: pruned ResNet-50 convolution layers (the paper's Fig. 14).

Lowers the eight published convolution layers to im2col GEMMs under three
pruning regimes, lets SAGE choose formats per layer (one batched
``Session.predict`` over the whole stack), and compares against the
Table II baselines.  Demonstrates the paper's Sec. VII-D observations:

* early layers are activation-dominated, so weight pruning barely moves
  their EDP;
* heavily-pruned late layers (7-8 under global pruning) gain from CSC
  weight buffers and compressed weight MCFs;
* a format-flexible accelerator beats every fixed-format baseline on the
  suite average.

Run: ``python examples/dnn_inference.py``
(set ``REPRO_EXAMPLE_SMOKE=1`` for a two-layer, one-strategy subset)
"""

from __future__ import annotations

import os

from repro import CONV_LAYERS, PruningStrategy, Session, evaluate_all, layer_gemm

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    layers = CONV_LAYERS[:2] if SMOKE else CONV_LAYERS
    strategies = (
        [PruningStrategy.GLOBAL_70] if SMOKE else list(PruningStrategy)
    )
    session = Session()

    print("=== Per-layer SAGE decisions under 70% global pruning ===")
    print(f"{'layer':>6} {'GEMM (MxKxN)':>22} {'w.sparsity':>10} | MCF(A,B) -> ACF(A,B)")
    workloads = [
        layer_gemm(layer, PruningStrategy.GLOBAL_70) for layer in layers
    ]
    decisions = session.predict(workloads)  # one batched call, pooled
    for layer, wl, d in zip(layers, workloads, decisions):
        _act, w_sp = layer.sparsities(PruningStrategy.GLOBAL_70)
        print(
            f"conv{layer.layer_id:>2} {f'{wl.m}x{wl.k}x{wl.n}':>22} "
            f"{w_sp:>9.1%} | "
            f"({d.mcf[0].value},{d.mcf[1].value}) -> "
            f"({d.acf[0].value},{d.acf[1].value})"
        )

    print()
    print("=== EDP per layer and pruning strategy (this work) ===")
    print(f"{'layer':>6} " + " ".join(f"{s.value:>20}" for s in strategies))
    totals: dict[str, float] = {}
    for layer in layers:
        row = [f"conv{layer.layer_id:>2}"]
        for strategy in strategies:
            results = evaluate_all(layer_gemm(layer, strategy))
            row.append(f"{results['Flex_Flex_HW'].edp:>20.3e}")
            for name, r in results.items():
                totals[name] = totals.get(name, 0.0) + r.edp
        print(" ".join(row))

    print()
    print("=== Average EDP vs hardware baselines (paper Fig. 14c) ===")
    ours = totals["Flex_Flex_HW"]
    for name, total in sorted(totals.items(), key=lambda kv: kv[1]):
        marker = " <- this work" if name == "Flex_Flex_HW" else ""
        reduction = "" if name == "Flex_Flex_HW" else (
            f"  (ours {1 - ours / total:.0%} lower)"
        )
        print(f"  {name:>15}: {total:.3e}{reduction}{marker}")


if __name__ == "__main__":
    main()
