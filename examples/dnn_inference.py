#!/usr/bin/env python3
"""DNN case study: pruned ResNet-50 convolution layers (the paper's Fig. 14).

Lowers the eight published convolution layers to im2col GEMMs under three
pruning regimes, lets SAGE choose formats per layer, and compares against
the Table II baselines.  Demonstrates the paper's Sec. VII-D observations:

* early layers are activation-dominated, so weight pruning barely moves
  their EDP;
* heavily-pruned late layers (7-8 under global pruning) gain from CSC
  weight buffers and compressed weight MCFs;
* a format-flexible accelerator beats every fixed-format baseline on the
  suite average.

Run: ``python examples/dnn_inference.py``
"""

from __future__ import annotations

from repro import (
    CONV_LAYERS,
    PruningStrategy,
    Sage,
    evaluate_all,
    layer_gemm,
)


def main() -> None:
    sage = Sage()

    print("=== Per-layer SAGE decisions under 70% global pruning ===")
    print(f"{'layer':>6} {'GEMM (MxKxN)':>22} {'w.sparsity':>10} | MCF(A,B) -> ACF(A,B)")
    for layer in CONV_LAYERS:
        wl = layer_gemm(layer, PruningStrategy.GLOBAL_70)
        _act, w_sp = layer.sparsities(PruningStrategy.GLOBAL_70)
        d = sage.predict_matrix(wl)
        print(
            f"conv{layer.layer_id:>2} {f'{wl.m}x{wl.k}x{wl.n}':>22} "
            f"{w_sp:>9.1%} | "
            f"({d.mcf[0].value},{d.mcf[1].value}) -> "
            f"({d.acf[0].value},{d.acf[1].value})"
        )

    print()
    print("=== EDP per layer and pruning strategy (this work) ===")
    print(f"{'layer':>6} " + " ".join(f"{s.value:>20}" for s in PruningStrategy))
    totals: dict[str, float] = {}
    for layer in CONV_LAYERS:
        row = [f"conv{layer.layer_id:>2}"]
        for strategy in PruningStrategy:
            results = evaluate_all(layer_gemm(layer, strategy))
            row.append(f"{results['Flex_Flex_HW'].edp:>20.3e}")
            for name, r in results.items():
                totals[name] = totals.get(name, 0.0) + r.edp
        print(" ".join(row))

    print()
    print("=== Average EDP vs hardware baselines (paper Fig. 14c) ===")
    ours = totals["Flex_Flex_HW"]
    for name, total in sorted(totals.items(), key=lambda kv: kv[1]):
        marker = " <- this work" if name == "Flex_Flex_HW" else ""
        reduction = "" if name == "Flex_Flex_HW" else (
            f"  (ours {1 - ours / total:.0%} lower)"
        )
        print(f"  {name:>15}: {total:.3e}{reduction}{marker}")


if __name__ == "__main__":
    main()
