#!/usr/bin/env python3
"""Quickstart: the full Fig. 1b pipeline on one sparse workload.

One ``Session`` call does the whole flow: SAGE picks the best
Memory/Algorithm Compression Format combination, MINT converts real
operands along the planned route, and the cycle-level accelerator
simulator executes the chosen ACFs — returning a unified ``RunResult``
with the decision, both conversion reports and the cycle/energy report.

Run: ``python examples/quickstart.py``
(set ``REPRO_EXAMPLE_SMOKE=1`` for a tiny headless-CI instance)
"""

from __future__ import annotations

import os

from repro import AcceleratorConfig, Kernel, MatrixWorkload, Session

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    # A small fabric so the cycle-level simulation stays instant; swap in
    # AcceleratorConfig.paper_default() for the 16384-MAC system.
    config = AcceleratorConfig(
        num_pes=8, vector_lanes=4, pe_buffer_bytes=32 * 4, bus_bits=8 * 32
    )

    # --- 1. the workload ----------------------------------------------------
    m, k, n = (32, 48, 16) if SMOKE else (64, 96, 32)
    density = 0.08
    nnz_a = int(density * m * k)
    workload = MatrixWorkload(
        name="quickstart", kernel=Kernel.SPMM, m=m, k=k, n=n,
        nnz_a=nnz_a, nnz_b=k * n,
    )

    # --- 2. predict / convert / execute, in one call -------------------------
    with Session(config=config) as session:
        decision = session.predict(workload)
        print(decision.summary(top=4))
        print()

        result = session.run(workload)

    # --- 3. inspect the unified result ---------------------------------------
    print(result.summary())
    print()
    c = result.report.cycles
    print(
        f"MACs: issued={c.issued_macs} matched={c.matched_macs} "
        f"(utilization {c.utilization:.1%}); output shape "
        f"{result.output.shape}"
    )
    print()
    print(
        "note: the cycle simulator models the literal Fig. 6 walkthrough —\n"
        "dense ACFs stream and multiply zeros (hence the low utilization\n"
        "above), while SAGE's analytical model assumes the Sec. VI flexible\n"
        "NoC that skips them.  The same Session code answers from a server\n"
        'instead: Session("tcp://127.0.0.1:7342") after `repro serve`.'
    )


if __name__ == "__main__":
    main()
