#!/usr/bin/env python3
"""Quickstart: the full Fig. 1b pipeline on one sparse workload.

1. Describe a sparse matrix-multiply workload by its statistics.
2. Ask SAGE for the best Memory/Algorithm Compression Format combination.
3. Encode real operands in the chosen MCFs, convert with MINT, and run the
   cycle-level accelerator simulator on the chosen ACFs.
4. Check the numeric output and inspect the cycle/energy reports.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    AcceleratorConfig,
    Format,
    Kernel,
    MatrixWorkload,
    MintEngine,
    Sage,
    WeightStationarySimulator,
    matrix_class,
    random_sparse_matrix,
)
from repro.formats import CscMatrix, DenseMatrix


def main() -> None:
    # A small fabric so the cycle-level simulation stays instant; swap in
    # AcceleratorConfig.paper_default() for the 16384-MAC system.
    config = AcceleratorConfig(
        num_pes=8, vector_lanes=4, pe_buffer_bytes=32 * 4, bus_bits=8 * 32
    )

    # --- 1. the workload ----------------------------------------------------
    m, k, n = 64, 96, 32
    density = 0.08
    nnz_a = int(density * m * k)
    workload = MatrixWorkload(
        name="quickstart", kernel=Kernel.SPMM, m=m, k=k, n=n,
        nnz_a=nnz_a, nnz_b=k * n,
    )

    # --- 2. SAGE picks the formats -------------------------------------------
    decision = Sage(config=config).predict_matrix(workload)
    print(decision.summary(top=4))
    print()

    # --- 3. encode, convert, execute ----------------------------------------
    a_dense = random_sparse_matrix(m, k, nnz_a, rng=0)
    b_dense = random_sparse_matrix(k, n, k * n, rng=1)

    engine = MintEngine()
    a_mem = matrix_class(decision.mcf[0]).from_dense(a_dense)
    a_acf, conv_a = engine.convert(a_mem, decision.acf[0])
    b_mem = matrix_class(decision.mcf[1]).from_dense(b_dense)
    b_acf, conv_b = engine.convert(b_mem, decision.acf[1])
    print(
        f"MINT: A {conv_a.source}->{conv_a.target} in {conv_a.cycles} cycles "
        f"({conv_a.energy_j:.2e} J) via {conv_a.path or ('identity',)}"
    )
    print(
        f"MINT: B {conv_b.source}->{conv_b.target} in {conv_b.cycles} cycles"
    )

    sim = WeightStationarySimulator(config)
    b_stationary = (
        b_acf
        if decision.acf[1] is Format.CSC
        else DenseMatrix.from_dense(b_acf.to_dense())
    )
    assert isinstance(b_stationary, (DenseMatrix, CscMatrix))
    out, report = sim.run_gemm(a_acf, decision.acf[0], b_stationary, decision.acf[1])

    # --- 4. verify and report -------------------------------------------------
    assert np.allclose(out, a_dense @ b_dense), "simulator output mismatch!"
    c = report.cycles
    print()
    print(f"simulator: output verified against numpy ({m}x{n})")
    print(
        f"cycles: load={c.load_cycles} stream={c.stream_cycles} "
        f"drain={c.drain_cycles} compute={c.compute_cycles} "
        f"-> total={c.total_cycles}"
    )
    print(
        f"MACs: issued={c.issued_macs} matched={c.matched_macs} "
        f"(utilization {c.utilization:.1%})"
    )
    print(f"on-chip energy: {report.energy.total_j:.3e} J, EDP {report.edp:.3e}")
    print()
    print(
        "note: the cycle simulator models the literal Fig. 6 walkthrough —\n"
        "dense ACFs stream and multiply zeros (hence the low utilization\n"
        "above), while SAGE's analytical model assumes the Sec. VI flexible\n"
        "NoC that skips them.  Try Format.CSR as the streamed ACF to see the\n"
        "sparse path."
    )


if __name__ == "__main__":
    main()
