#!/usr/bin/env python3
"""Scientific-computing tour: SAGE across the Table III suite.

Walks the paper's SuiteSparse/DeepBench/FROSTT/BrainQ workload suite (exact
published dimensions and nonzero counts), asks SAGE for the optimal format
combination per workload and scenario, and shows how much a
fixed-format accelerator would lose on each — the core datacenter argument
of the paper (Sec. I: a suite of applications spans every sparsity region,
so fixed formats can't win everywhere).

Run: ``python examples/scientific_workloads.py``
"""

from __future__ import annotations

from repro import (
    Kernel,
    MATRIX_SUITE,
    Sage,
    TENSOR_SUITE,
    evaluate_all,
)


def main() -> None:
    sage = Sage()

    print("=== SAGE decisions for the Table III suite (SpMM scenario) ===")
    header = f"{'workload':>14} {'density':>10} | {'MCF(A,B)':>14} {'ACF(A,B)':>14} | EDP"
    print(header)
    print("-" * len(header))
    for entry in MATRIX_SUITE:
        wl = entry.matrix_workload(Kernel.SPMM)
        d = sage.predict_matrix(wl)
        print(
            f"{entry.name:>14} {entry.density_pct:>9.4g}% | "
            f"{d.mcf[0].value + ',' + d.mcf[1].value:>14} "
            f"{d.acf[0].value + ',' + d.acf[1].value:>14} | "
            f"{d.best.edp:.2e}"
        )

    print()
    print("=== Tensor workloads (MTTKRP scenario) ===")
    for entry in TENSOR_SUITE:
        wl = entry.tensor_workload(Kernel.MTTKRP)
        d = sage.predict_tensor(wl)
        print(
            f"{entry.name:>14} {entry.density_pct:>9.4g}% | "
            f"tensor MCF={d.mcf[0].value:<5} ACF={d.acf[0].value:<5} | "
            f"EDP {d.best.edp:.2e}"
        )

    print()
    print("=== What a fixed-format accelerator loses (SpGEMM scenario) ===")
    for name in ("journals", "speech2", "m3plates"):
        entry = next(e for e in MATRIX_SUITE if e.name == name)
        results = evaluate_all(entry.matrix_workload(Kernel.SPGEMM))
        ours = results["Flex_Flex_HW"].edp
        print(f"{name} ({entry.density_pct:g}% dense):")
        for policy, result in sorted(results.items(), key=lambda kv: kv[1].edp):
            penalty = result.edp / ours
            bar = "#" * min(60, max(1, int(round(4 * penalty))))
            print(f"  {policy:>15} {penalty:7.2f}x {bar}")
        print()


if __name__ == "__main__":
    main()
