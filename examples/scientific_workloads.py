#!/usr/bin/env python3
"""Scientific-computing tour: SAGE across the Table III suite.

Walks the paper's SuiteSparse/DeepBench/FROSTT/BrainQ workload suite (exact
published dimensions and nonzero counts) through one batched
``Session.predict`` per scenario — matrix and 3-D tensor workloads route
through the same call — and shows how much a fixed-format accelerator
would lose on each: the core datacenter argument of the paper (Sec. I, a
suite of applications spans every sparsity region, so fixed formats can't
win everywhere).

Run: ``python examples/scientific_workloads.py``
(set ``REPRO_EXAMPLE_SMOKE=1`` for a three-workload subset)
"""

from __future__ import annotations

import os

from repro import MATRIX_SUITE, TENSOR_SUITE, Kernel, Session, evaluate_all

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    matrix_entries = MATRIX_SUITE[:3] if SMOKE else MATRIX_SUITE
    tensor_entries = TENSOR_SUITE[:1] if SMOKE else TENSOR_SUITE
    session = Session()

    print("=== SAGE decisions for the Table III suite (SpMM scenario) ===")
    header = f"{'workload':>14} {'density':>10} | {'MCF(A,B)':>14} {'ACF(A,B)':>14} | EDP"
    print(header)
    print("-" * len(header))
    workloads = [e.matrix_workload(Kernel.SPMM) for e in matrix_entries]
    for entry, d in zip(matrix_entries, session.predict(workloads)):
        print(
            f"{entry.name:>14} {entry.density_pct:>9.4g}% | "
            f"{d.mcf[0].value + ',' + d.mcf[1].value:>14} "
            f"{d.acf[0].value + ',' + d.acf[1].value:>14} | "
            f"{d.best.edp:.2e}"
        )

    print()
    print("=== Tensor workloads (MTTKRP scenario) ===")
    tensor_wls = [e.tensor_workload(Kernel.MTTKRP) for e in tensor_entries]
    for entry, d in zip(tensor_entries, session.predict(tensor_wls)):
        print(
            f"{entry.name:>14} {entry.density_pct:>9.4g}% | "
            f"tensor MCF={d.mcf[0].value:<5} ACF={d.acf[0].value:<5} | "
            f"EDP {d.best.edp:.2e}"
        )

    print()
    print("=== What a fixed-format accelerator loses (SpGEMM scenario) ===")
    names = ("journals",) if SMOKE else ("journals", "speech2", "m3plates")
    for name in names:
        entry = next(e for e in MATRIX_SUITE if e.name == name)
        results = evaluate_all(entry.matrix_workload(Kernel.SPGEMM))
        ours = results["Flex_Flex_HW"].edp
        print(f"{name} ({entry.density_pct:g}% dense):")
        for policy, result in sorted(results.items(), key=lambda kv: kv[1].edp):
            penalty = result.edp / ours
            bar = "#" * min(60, max(1, int(round(4 * penalty))))
            print(f"  {policy:>15} {penalty:7.2f}x {bar}")
        print()


if __name__ == "__main__":
    main()
