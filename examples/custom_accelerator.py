#!/usr/bin/env python3
"""Custom accelerator design-space exploration.

Uses the cycle-level simulator and the analytical model to compare fabric
configurations (bus width, PE buffer, PE count) on a sparse GEMM — the kind
of what-if a hardware architect would run before committing a design.  The
cycle-level check runs through ``Session.run`` bound to a custom fabric, so
the SAGE decision, MINT conversion and simulation all share that config.
Also demonstrates defining a *custom format policy* (an accelerator that
only speaks COO) and evaluating it against the built-in Table II designs.

Run: ``python examples/custom_accelerator.py``
(set ``REPRO_EXAMPLE_SMOKE=1`` for smaller sweeps)
"""

from __future__ import annotations

import os

from repro import (
    AcceleratorConfig,
    Format,
    Kernel,
    MatrixWorkload,
    Session,
    analytical_gemm_stats,
    evaluate_all,
    evaluate_policy,
)
from repro.baselines.policies import AcceleratorPolicy, ConverterKind

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def sweep_fabrics() -> None:
    print("=== Fabric sweep on a 2k x 2k x 1k SpMM at 3% density ===")
    m, k, n = (400, 400, 200) if SMOKE else (2000, 2000, 1000)
    nnz = int(0.03 * m * k)
    print(f"{'config':>34} | {'total cycles':>12} {'energy J':>10} {'EDP':>10}")
    for name, cfg in [
        ("paper default (2048 PE, 512b bus)", AcceleratorConfig.paper_default()),
        ("half bus (256b)", AcceleratorConfig(bus_bits=256)),
        ("double buffer (1 KiB/PE)", AcceleratorConfig(pe_buffer_bytes=1024)),
        ("quarter PEs (512)", AcceleratorConfig(num_pes=512)),
        ("edge-scale (64 PE, 128b bus)", AcceleratorConfig(
            num_pes=64, bus_bits=128, pe_buffer_bytes=256)),
    ]:
        rep = analytical_gemm_stats(
            m, k, n, nnz, k * n, Format.CSR, Format.DENSE, cfg
        )
        edp = rep.energy.total_j * rep.cycles.total_cycles / cfg.clock_hz
        print(
            f"{name:>34} | {rep.cycles.total_cycles:>12,} "
            f"{rep.energy.total_j:>10.2e} {edp:>10.2e}"
        )


def run_on_custom_fabric() -> None:
    print()
    print("=== End-to-end run on an edge-scale fabric (Session.run) ===")
    cfg = AcceleratorConfig(
        num_pes=6, vector_lanes=4, pe_buffer_bytes=16 * 4, bus_bits=8 * 32
    )
    m, k, n = (16, 24, 8) if SMOKE else (24, 32, 12)
    wl = MatrixWorkload(
        "edge", Kernel.SPGEMM, m=m, k=k, n=n,
        nnz_a=m * 2, nnz_b=k * n // 6,
    )
    with Session(config=cfg) as session:
        result = session.run(wl)
    print(result.summary())


def custom_policy() -> None:
    print()
    print("=== A custom COO-only accelerator vs the Table II designs ===")
    coo_only = AcceleratorPolicy(
        name="COO_Only",
        category="Fix Fix None (custom)",
        mcf_pairs=((Format.COO, Format.COO),),
        acf_pairs=((Format.COO, Format.CSC),),
        converter=ConverterKind.HW,  # COO memory, CSC stationary buffers
        reference="example custom design",
    )
    m, k, n = (1000, 1000, 500) if SMOKE else (5000, 5000, 2500)
    wl = MatrixWorkload(
        "custom", Kernel.SPGEMM, m=m, k=k, n=n,
        nnz_a=max(1, m * 12 // 5), nnz_b=max(1, k * 6 // 5),
    )
    results = {p: r.edp for p, r in evaluate_all(wl).items()}
    results["COO_Only"] = evaluate_policy(wl, coo_only).edp
    ours = results["Flex_Flex_HW"]
    for name, edp in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:>15}: {edp / ours:8.2f}x this work")
    print(
        "  (a COO-only design is near-optimal at this extreme sparsity but "
        "would fall behind on denser workloads — the paper's flexibility "
        "argument)"
    )


if __name__ == "__main__":
    sweep_fabrics()
    run_on_custom_fabric()
    custom_policy()
