#!/usr/bin/env python3
"""Pipeline planning: chained DNN layers with carried inter-stage formats.

Extends the paper's single-kernel SAGE to a layer chain (Sec. III-C
motivates the output side: accelerators "may require compression before
storing back to memory").  The format a layer writes to DRAM is the format
the next layer must read — so the planner threads the output MCF of stage i
into the streamed-operand search of stage i+1 and reports what the chain
costs versus planning each layer in isolation (which would silently assume
free re-encoding in DRAM between layers).

The isolated lower bound is computed through the ``Session`` facade with a
per-stage ``mcf_a_space`` restriction — the same typed option the chain
planner uses internally.

Run: ``python examples/pipeline_planning.py``
(set ``REPRO_EXAMPLE_SMOKE=1`` for a shorter chain)
"""

from __future__ import annotations

import os

from repro import Format, Session, plan_chain
from repro.workloads.dnn import CONV_LAYERS, PruningStrategy, layer_gemm

SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    layers = CONV_LAYERS[:3] if SMOKE else CONV_LAYERS
    workloads = [
        layer_gemm(layer, PruningStrategy.GLOBAL_70) for layer in layers
    ]

    print("=== Chained plan (output format carried between layers) ===")
    plan = plan_chain(workloads)
    print(plan.summary())

    print()
    print("=== The same chain when the input arrives CSR-encoded ===")
    plan_csr = plan_chain(workloads, first_input_mcf=Format.CSR)
    first = plan_csr.stages[0].decision.best
    print(
        f"stage 0 now reads CSR and converts to "
        f"ACF=({first.acf[0].value},{first.acf[1].value}); "
        f"chain EDP {plan_csr.edp:.3e} vs free-input {plan.edp:.3e}"
    )

    print()
    print("=== Versus isolated per-layer planning (lower bound) ===")
    with Session() as session:
        isolated_decisions = session.predict(workloads)
    isolated = sum(d.best.edp for d in isolated_decisions)
    chained = sum(s.decision.best.edp for s in plan.stages)
    print(
        f"sum of isolated optima: {isolated:.3e}  "
        f"(ignores inter-layer re-encoding)"
    )
    print(
        f"chained plan:           {chained:.3e}  "
        f"(+{(chained / isolated - 1):.1%} for format continuity)"
    )


if __name__ == "__main__":
    main()
