"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e .`` or
``python setup.py develop``) on machines without the ``wheel`` package,
where PEP 660 editable wheel builds are unavailable.
"""

from setuptools import setup

setup()
