"""Coordinate (COO) 3-D tensor encoding.

Stores every nonzero with (x, y, z) coordinates (Fig. 3b).  The paper's MCF
choice for the extremely sparse Uber tensor (Table III) and the hub format
MINT routes conversions through ("COO enables fast translation to other
formats", Sec. V-B2).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import StorageBreakdown, TensorFormat
from repro.formats.registry import Format
from repro.util.bits import bits_for_index
from repro.util.validation import check_dense_tensor


class CooTensor(TensorFormat):
    """COO encoding: parallel ``values`` / ``x_ids`` / ``y_ids`` / ``z_ids``."""

    format = Format.COO

    def __init__(
        self,
        shape: tuple[int, int, int],
        values: np.ndarray,
        x_ids: np.ndarray,
        y_ids: np.ndarray,
        z_ids: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.x_ids = np.asarray(x_ids, dtype=np.int64).ravel()
        self.y_ids = np.asarray(y_ids, dtype=np.int64).ravel()
        self.z_ids = np.asarray(z_ids, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        n = len(self.values)
        for name, ids, dim in (
            ("x_ids", self.x_ids, self.shape[0]),
            ("y_ids", self.y_ids, self.shape[1]),
            ("z_ids", self.z_ids, self.shape[2]),
        ):
            if len(ids) != n:
                raise FormatError(f"COO tensor {name} length mismatch")
            if n and (ids.min() < 0 or ids.max() >= dim):
                raise FormatError(f"COO tensor {name} out of range")
        if n:
            linear = (
                self.x_ids * self.shape[1] + self.y_ids
            ) * self.shape[2] + self.z_ids
            if len(np.unique(linear)) != n:
                raise FormatError("COO tensor contains duplicate coordinates")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "CooTensor":
        dense = check_dense_tensor(dense)
        xs, ys, zs = np.nonzero(dense)
        return cls(dense.shape, dense[xs, ys, zs], xs, ys, zs, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.x_ids, self.y_ids, self.z_ids] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored entries (may include explicit zeros)."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        meta = sum(bits_for_index(d) for d in self.shape)
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=self.stored * meta,
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values,
            "x_ids": self.x_ids,
            "y_ids": self.y_ids,
            "z_ids": self.z_ids,
        }

    def sorted_lexicographic(self) -> "CooTensor":
        """Entries sorted by (x, y, z) — the order CSF construction expects."""
        order = np.lexsort((self.z_ids, self.y_ids, self.x_ids))
        return CooTensor(
            self.shape,
            self.values[order],
            self.x_ids[order],
            self.y_ids[order],
            self.z_ids[order],
            dtype_bits=self.dtype_bits,
        )
