"""Format enumeration and class registry.

A single :class:`Format` enum names every compression format in the paper;
the registry maps (format, operand kind) to the implementing class.  SAGE's
search spaces (:mod:`repro.sage.spaces`) and the baseline accelerator
policies (Table II) are expressed in terms of these enum members.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Type

from repro.errors import FormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.formats.base import MatrixFormat, TensorFormat


class Format(Enum):
    """Every compression format discussed in the paper (Fig. 3)."""

    DENSE = "Dense"
    COO = "COO"
    CSR = "CSR"
    CSC = "CSC"
    RLC = "RLC"
    ZVC = "ZVC"
    BSR = "BSR"
    DIA = "DIA"
    CSF = "CSF"
    HICOO = "HiCOO"
    ELL = "ELL"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Formats implemented for 2-D operands.
MATRIX_FORMATS: tuple[Format, ...] = (
    Format.DENSE,
    Format.COO,
    Format.CSR,
    Format.CSC,
    Format.RLC,
    Format.ZVC,
    Format.BSR,
    Format.DIA,
    Format.ELL,
)

#: Formats implemented for 3-D operands.
TENSOR_FORMATS: tuple[Format, ...] = (
    Format.DENSE,
    Format.COO,
    Format.CSF,
    Format.HICOO,
    Format.RLC,
    Format.ZVC,
)


def matrix_class(fmt: Format) -> "Type[MatrixFormat]":
    """Return the matrix class implementing *fmt*."""
    # Imported lazily to avoid circular imports at package init.
    from repro.formats.bsr import BsrMatrix
    from repro.formats.coo import CooMatrix
    from repro.formats.csc import CscMatrix
    from repro.formats.csr import CsrMatrix
    from repro.formats.dense import DenseMatrix
    from repro.formats.dia import DiaMatrix
    from repro.formats.ell import EllMatrix
    from repro.formats.rlc import RlcMatrix
    from repro.formats.zvc import ZvcMatrix

    table: dict[Format, Type[MatrixFormat]] = {
        Format.DENSE: DenseMatrix,
        Format.COO: CooMatrix,
        Format.CSR: CsrMatrix,
        Format.CSC: CscMatrix,
        Format.RLC: RlcMatrix,
        Format.ZVC: ZvcMatrix,
        Format.BSR: BsrMatrix,
        Format.DIA: DiaMatrix,
        Format.ELL: EllMatrix,
    }
    try:
        return table[fmt]
    except KeyError:
        raise FormatError(f"{fmt} is not a matrix format") from None


def tensor_class(fmt: Format) -> "Type[TensorFormat]":
    """Return the 3-D tensor class implementing *fmt*."""
    from repro.formats.csf import CsfTensor
    from repro.formats.hicoo import HicooTensor
    from repro.formats.tensor_coo import CooTensor
    from repro.formats.tensor_dense import DenseTensor
    from repro.formats.tensor_flat import RlcTensor, ZvcTensor

    table: dict[Format, Type[TensorFormat]] = {
        Format.DENSE: DenseTensor,
        Format.COO: CooTensor,
        Format.CSF: CsfTensor,
        Format.HICOO: HicooTensor,
        Format.RLC: RlcTensor,
        Format.ZVC: ZvcTensor,
    }
    try:
        return table[fmt]
    except KeyError:
        raise FormatError(f"{fmt} is not a 3-D tensor format") from None
