"""Abstract base classes and storage accounting for compression formats.

The two criteria the paper optimizes (Sec. I) are *compactness* (total bits of
data + metadata, driving DRAM energy) and *compute efficiency* (how an
algorithm walks the format).  The base classes fix the compactness interface;
compute efficiency lives in :mod:`repro.kernels` and
:mod:`repro.accelerator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Mapping

import numpy as np

from repro.errors import FormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.formats.registry import Format


@dataclass(frozen=True)
class StorageBreakdown:
    """Bits of payload data vs format metadata for one encoded tensor.

    The paper's Fig. 4 plots are derived entirely from this split: DRAM
    transfer energy is proportional to ``total_bits``.
    """

    data_bits: int
    metadata_bits: int

    @property
    def total_bits(self) -> int:
        """Data plus metadata bits."""
        return self.data_bits + self.metadata_bits

    @property
    def metadata_fraction(self) -> float:
        """Share of the footprint spent on metadata (0 when empty)."""
        total = self.total_bits
        return self.metadata_bits / total if total else 0.0

    def __add__(self, other: "StorageBreakdown") -> "StorageBreakdown":
        return StorageBreakdown(
            self.data_bits + other.data_bits,
            self.metadata_bits + other.metadata_bits,
        )


class _EncodedBase(ABC):
    """Shared behaviour of matrix and tensor encodings."""

    #: Registry tag filled in by each concrete class.
    format: ClassVar["Format"]

    shape: tuple[int, ...]
    dtype_bits: int

    @abstractmethod
    def to_dense(self) -> np.ndarray:
        """Decode to a dense float64 ndarray of ``self.shape``."""

    @abstractmethod
    def storage(self) -> StorageBreakdown:
        """Bit accounting under the Sec. III-A metadata-width model."""

    @abstractmethod
    def fields(self) -> Mapping[str, np.ndarray]:
        """Ordered raw field arrays (as streamed by MINT), name -> array."""

    # ------------------------------------------------------------------ misc
    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of stored nonzero values (explicit zeros excluded)."""

    @property
    def size(self) -> int:
        """Number of logical positions in the tensor."""
        return int(np.prod(self.shape))

    @property
    def density(self) -> float:
        """nnz / size (0 for an empty shape)."""
        return self.nnz / self.size if self.size else 0.0

    @property
    def total_bits(self) -> int:
        """Convenience: ``storage().total_bits``."""
        return self.storage().total_bits

    def allclose(self, other: "_EncodedBase", rtol: float = 1e-12) -> bool:
        """True when both encodings decode to (almost) the same dense array."""
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), rtol=rtol))

    def _check_dtype_bits(self) -> None:
        if self.dtype_bits not in (8, 16, 32, 64):
            raise FormatError(
                f"dtype_bits must be one of 8/16/32/64, got {self.dtype_bits}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(shape={self.shape}, nnz={self.nnz}, "
            f"dtype_bits={self.dtype_bits}, total_bits={self.total_bits})"
        )


class MatrixFormat(_EncodedBase):
    """Base class for 2-D encodings."""

    shape: tuple[int, int]

    @classmethod
    @abstractmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "MatrixFormat":
        """Encode a dense 2-D array."""

    @property
    def nrows(self) -> int:
        """Row count (M)."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Column count (K or N depending on operand role)."""
        return self.shape[1]


class TensorFormat(_EncodedBase):
    """Base class for 3-D encodings."""

    shape: tuple[int, int, int]

    @classmethod
    @abstractmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "TensorFormat":
        """Encode a dense 3-D array."""
