"""Zero-Value Compression (ZVC) matrix encoding.

Stores the nonzero values plus a one-bit-per-position occupancy mask
(Fig. 3).  The most compact MCF around 50% density (Fig. 4a): the mask costs
exactly 1 bit/position regardless of sparsity, so ZVC beats Dense whenever
density < (b-1)/b and beats index-based formats once indices are wider than
the amortized mask cost.  Used as the fixed MCF of SIGMA and NVDLA
(Table II).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.validation import check_dense_matrix


class ZvcMatrix(MatrixFormat):
    """ZVC encoding: ``values`` plus a flat row-major bit ``mask``."""

    format = Format.ZVC

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        mask: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.mask = np.asarray(mask, dtype=bool).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        if len(self.mask) != self.size:
            raise FormatError(
                f"ZVC mask must have {self.size} bits, got {len(self.mask)}"
            )
        if int(self.mask.sum()) != len(self.values):
            raise FormatError("ZVC mask popcount must equal stored value count")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "ZvcMatrix":
        dense = check_dense_matrix(dense)
        flat = dense.ravel()
        mask = flat != 0.0
        return cls(dense.shape, flat[mask], mask, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        flat = np.zeros(self.size, dtype=np.float64)
        flat[self.mask] = self.values
        return flat.reshape(self.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored value-array entries."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=self.size,  # one mask bit per logical position
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"values": self.values, "mask": self.mask.astype(np.int64)}
