"""Dense (uncompressed) matrix encoding.

The degenerate format: every position stored, no metadata.  Best MCF at
~100% density (Fig. 4a) and the simplest ACF (direct indexing, Fig. 6a).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.validation import check_dense_matrix


class DenseMatrix(MatrixFormat):
    """Row-major dense storage of an M x K matrix."""

    format = Format.DENSE

    def __init__(self, values: np.ndarray, *, dtype_bits: int = 32) -> None:
        self.values = check_dense_matrix(values, "values")
        self.shape = (int(self.values.shape[0]), int(self.values.shape[1]))
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "DenseMatrix":
        dense = check_dense_matrix(dense)
        return cls(dense.copy(), dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        return self.values.copy()

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.size * self.dtype_bits,
            metadata_bits=0,
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"values": self.values.ravel()}
