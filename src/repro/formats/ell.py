"""ELLPACK (ELL) matrix encoding.

The fourth structured format the paper names (Sec. VI: "structured formats
(e.g. DIA, HiCOO, BSR and ELLPACK)", citing Bell & Garland).  Every row
stores exactly ``width = max_row_nnz`` (value, col id) slots, padding short
rows — a fixed-shape layout GPUs and systolic arrays like, whose footprint
is hostage to the densest row.

The paper leaves structured-format *performance* modelling as future work;
like BSR/DIA/HiCOO, ELL participates here in the compactness analysis and
the conversion library.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_index
from repro.util.validation import check_dense_matrix

#: Column-id value marking a padding slot.
PAD_COL = -1


class EllMatrix(MatrixFormat):
    """ELL encoding: ``values`` and ``col_ids`` of shape (M, width)."""

    format = Format.ELL

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        col_ids: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.values = np.asarray(values, dtype=np.float64)
        self.col_ids = np.asarray(col_ids, dtype=np.int64)
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    @property
    def width(self) -> int:
        """Stored slots per row (the maximum row nonzero count)."""
        return self.values.shape[1] if self.values.ndim == 2 else 0

    def _validate(self) -> None:
        m, k = self.shape
        if self.values.ndim != 2 or self.values.shape[0] != m:
            raise FormatError(
                f"ELL values must have shape ({m}, width), got {self.values.shape}"
            )
        if self.col_ids.shape != self.values.shape:
            raise FormatError("ELL values/col_ids shape mismatch")
        real = self.col_ids != PAD_COL
        if real.any():
            cols = self.col_ids[real]
            if cols.min() < 0 or cols.max() >= k:
                raise FormatError("ELL col_ids out of range")
        if np.any(self.values[~real] != 0.0):
            raise FormatError("ELL padding slots must hold zero values")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "EllMatrix":
        dense = check_dense_matrix(dense)
        m, k = dense.shape
        row_nnz = np.count_nonzero(dense, axis=1)
        width = int(row_nnz.max()) if m else 0
        values = np.zeros((m, width), dtype=np.float64)
        col_ids = np.full((m, width), PAD_COL, dtype=np.int64)
        for i in range(m):
            cols = np.flatnonzero(dense[i])
            values[i, : len(cols)] = dense[i, cols]
            col_ids[i, : len(cols)] = cols
        return cls(dense.shape, values, col_ids, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            real = self.col_ids[i] != PAD_COL
            out[i, self.col_ids[i, real]] = self.values[i, real]
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def storage(self) -> StorageBreakdown:
        slots = self.shape[0] * self.width
        return StorageBreakdown(
            # Padding slots store explicit zero values — the ELL trade-off.
            data_bits=slots * self.dtype_bits,
            metadata_bits=slots * bits_for_index(self.shape[1]),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"values": self.values, "col_ids": self.col_ids}
