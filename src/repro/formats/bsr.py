"""Block Compressed Sparse Row (BSR) matrix encoding.

A blocked CSR (Fig. 3): nonzero *blocks* are indexed CSR-style, and each
stored block keeps its full ``br x bc`` contents — zero-filling incomplete
blocks (Sec. V-B3: "zeros are inserted into the values if the blocks are not
complete").  Reduces metadata and regularizes access when nonzeros cluster;
target of MINT's CSR->BSR conversion (Fig. 8e).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_count, bits_for_index, ceil_div
from repro.util.validation import check_dense_matrix

DEFAULT_BLOCK = (2, 2)
"""Paper's example block shape (Fig. 3 / Fig. 8e)."""


class BsrMatrix(MatrixFormat):
    """BSR encoding: block ``values`` / ``block_col_ids`` / ``block_row_ptr``.

    ``values`` has shape ``(nblocks, br, bc)``.  Logical shapes that are not
    multiples of the block shape are zero-padded on encode and cropped on
    decode.
    """

    format = Format.BSR

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        block_col_ids: np.ndarray,
        block_row_ptr: np.ndarray,
        *,
        block_shape: tuple[int, int] = DEFAULT_BLOCK,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_shape = (int(block_shape[0]), int(block_shape[1]))
        self.values = np.asarray(values, dtype=np.float64)
        self.block_col_ids = np.asarray(block_col_ids, dtype=np.int64).ravel()
        self.block_row_ptr = np.asarray(block_row_ptr, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    # ------------------------------------------------------------------ grid
    @property
    def block_rows(self) -> int:
        """Number of block rows in the padded grid."""
        return ceil_div(self.shape[0], self.block_shape[0])

    @property
    def block_cols(self) -> int:
        """Number of block columns in the padded grid."""
        return ceil_div(self.shape[1], self.block_shape[1])

    @property
    def nblocks(self) -> int:
        """Stored block count."""
        return self.values.shape[0] if self.values.ndim == 3 else 0

    def _validate(self) -> None:
        br, bc = self.block_shape
        if br < 1 or bc < 1:
            raise FormatError(f"block_shape must be positive, got {self.block_shape}")
        if self.values.ndim != 3 or self.values.shape[1:] != (br, bc):
            raise FormatError(
                f"BSR values must have shape (nblocks, {br}, {bc}), "
                f"got {self.values.shape}"
            )
        if len(self.block_col_ids) != self.nblocks:
            raise FormatError("BSR block_col_ids length mismatch")
        if len(self.block_row_ptr) != self.block_rows + 1:
            raise FormatError(
                f"BSR block_row_ptr must have {self.block_rows + 1} entries"
            )
        if self.block_row_ptr[0] != 0 or self.block_row_ptr[-1] != self.nblocks:
            raise FormatError("BSR block_row_ptr endpoints must be 0 and nblocks")
        if np.any(np.diff(self.block_row_ptr) < 0):
            raise FormatError("BSR block_row_ptr must be non-decreasing")
        if self.nblocks and (
            self.block_col_ids.min() < 0 or self.block_col_ids.max() >= self.block_cols
        ):
            raise FormatError("BSR block_col_ids out of range")

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        *,
        dtype_bits: int = 32,
        block_shape: tuple[int, int] = DEFAULT_BLOCK,
    ) -> "BsrMatrix":
        dense = check_dense_matrix(dense)
        br, bc = int(block_shape[0]), int(block_shape[1])
        if br < 1 or bc < 1:
            raise FormatError(f"block_shape must be positive, got {block_shape}")
        m, k = dense.shape
        pm, pk = ceil_div(m, br) * br, ceil_div(k, bc) * bc
        padded = np.zeros((pm, pk), dtype=np.float64)
        padded[:m, :k] = dense
        grid_rows, grid_cols = pm // br, pk // bc
        # View as (grid_rows, br, grid_cols, bc) -> block-major (gr, gc, br, bc)
        blocks = padded.reshape(grid_rows, br, grid_cols, bc).swapaxes(1, 2)
        occupied = blocks.reshape(grid_rows, grid_cols, -1).any(axis=2)
        grs, gcs = np.nonzero(occupied)
        values = blocks[grs, gcs].copy()
        block_row_ptr = np.zeros(grid_rows + 1, dtype=np.int64)
        np.add.at(block_row_ptr, grs + 1, 1)
        np.cumsum(block_row_ptr, out=block_row_ptr)
        return cls(
            dense.shape,
            values,
            gcs,
            block_row_ptr,
            block_shape=(br, bc),
            dtype_bits=dtype_bits,
        )

    def to_dense(self) -> np.ndarray:
        br, bc = self.block_shape
        pm, pk = self.block_rows * br, self.block_cols * bc
        padded = np.zeros((pm, pk), dtype=np.float64)
        for gr in range(self.block_rows):
            lo, hi = int(self.block_row_ptr[gr]), int(self.block_row_ptr[gr + 1])
            for idx in range(lo, hi):
                gc = int(self.block_col_ids[idx])
                padded[gr * br : (gr + 1) * br, gc * bc : (gc + 1) * bc] = self.values[
                    idx
                ]
        return padded[: self.shape[0], : self.shape[1]].copy()

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def storage(self) -> StorageBreakdown:
        br, bc = self.block_shape
        return StorageBreakdown(
            # Whole blocks stored, zero fill included (the BSR trade-off).
            data_bits=self.nblocks * br * bc * self.dtype_bits,
            metadata_bits=(
                self.nblocks * bits_for_index(max(1, self.block_cols))
                + (self.block_rows + 1) * bits_for_count(self.nblocks)
            ),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values.reshape(self.nblocks, -1),
            "block_col_ids": self.block_col_ids,
            "block_row_ptr": self.block_row_ptr,
        }
