"""Run-Length Coding (RLC) matrix encoding.

Alternates zero-run lengths with nonzero values over the row-major flattened
matrix (Fig. 3); Eyeriss stores fmaps this way (Table I).  The most compact
MCF in the ~3%-20% density band (Fig. 4a's 10% star).  Run-field width is a
knob (``run_bits``, default 5, Eyeriss's choice): see
:mod:`repro.formats._runlength` for the fixed-width padding semantics that
make RLC degrade at extreme sparsity.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats._runlength import decode_runs, encode_runs
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.validation import check_dense_matrix

DEFAULT_RUN_BITS = 5
"""Default width of the zero-run field, in bits (5, as in Eyeriss [17])."""


class RlcMatrix(MatrixFormat):
    """RLC encoding: parallel ``runs`` / ``levels`` entry arrays."""

    format = Format.RLC

    def __init__(
        self,
        shape: tuple[int, int],
        runs: np.ndarray,
        levels: np.ndarray,
        *,
        dtype_bits: int = 32,
        run_bits: int = DEFAULT_RUN_BITS,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.runs = np.asarray(runs, dtype=np.int64).ravel()
        self.levels = np.asarray(levels, dtype=np.float64).ravel()
        self.dtype_bits = dtype_bits
        self.run_bits = run_bits
        self._check_dtype_bits()
        # decode_runs re-validates stream consistency against the shape.
        decode_runs(self.runs, self.levels, self.size)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        *,
        dtype_bits: int = 32,
        run_bits: int = DEFAULT_RUN_BITS,
    ) -> "RlcMatrix":
        dense = check_dense_matrix(dense)
        runs, levels = encode_runs(dense.ravel(), run_bits)
        return cls(dense.shape, runs, levels, dtype_bits=dtype_bits, run_bits=run_bits)

    def to_dense(self) -> np.ndarray:
        return decode_runs(self.runs, self.levels, self.size).reshape(self.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.levels))

    @property
    def entries(self) -> int:
        """Stored (run, level) pairs, including overflow padding entries."""
        return len(self.levels)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.entries * self.dtype_bits,
            metadata_bits=self.entries * self.run_bits,
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"runs": self.runs, "levels": self.levels}
