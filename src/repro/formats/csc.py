"""Compressed Sparse Column (CSC) matrix encoding.

CSR's column-major mirror.  The paper's recurring ACF for stationary sparse
weights (Fig. 6b: CSC(B) keeps nonzeros + row indices in the PE buffer) and
the target of the CSR->CSC transpose conversion needed by DL
backpropagation (Sec. III-C, Fig. 8c).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_count, bits_for_index
from repro.util.validation import check_dense_matrix


class CscMatrix(MatrixFormat):
    """CSC encoding: ``values`` / ``row_ids`` / ``col_ptr`` arrays."""

    format = Format.CSC

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        row_ids: np.ndarray,
        col_ptr: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        self.col_ptr = np.asarray(col_ptr, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        n = len(self.values)
        if len(self.row_ids) != n:
            raise FormatError("CSC values/row_ids length mismatch")
        if len(self.col_ptr) != self.shape[1] + 1:
            raise FormatError(
                f"CSC col_ptr must have {self.shape[1] + 1} entries, "
                f"got {len(self.col_ptr)}"
            )
        if self.col_ptr[0] != 0 or self.col_ptr[-1] != n:
            raise FormatError("CSC col_ptr endpoints must be 0 and nnz")
        if np.any(np.diff(self.col_ptr) < 0):
            raise FormatError("CSC col_ptr must be non-decreasing")
        if n and (self.row_ids.min() < 0 or self.row_ids.max() >= self.shape[0]):
            raise FormatError("CSC row_ids out of range")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "CscMatrix":
        dense = check_dense_matrix(dense)
        # Column-major walk: transpose, reuse the CSR construction pattern.
        cols_t, rows_t = np.nonzero(dense.T)
        col_ptr = np.zeros(dense.shape[1] + 1, dtype=np.int64)
        np.add.at(col_ptr, cols_t + 1, 1)
        np.cumsum(col_ptr, out=col_ptr)
        return cls(
            dense.shape,
            dense[rows_t, cols_t],
            rows_t,
            col_ptr,
            dtype_bits=dtype_bits,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(np.arange(self.shape[1]), np.diff(self.col_ptr))
        out[self.row_ids, cols] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored entries (may include explicit zeros)."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=(
                self.stored * bits_for_index(self.shape[0])
                + (self.shape[1] + 1) * bits_for_count(self.stored)
            ),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values,
            "row_ids": self.row_ids,
            "col_ptr": self.col_ptr,
        }

    def col_lengths(self) -> np.ndarray:
        """Per-column nonzero counts (stationary-buffer occupancy model)."""
        return np.diff(self.col_ptr)

    def col_slice(self, col: int) -> tuple[np.ndarray, np.ndarray]:
        """(row_ids, values) view of one column."""
        lo, hi = int(self.col_ptr[col]), int(self.col_ptr[col + 1])
        return self.row_ids[lo:hi], self.values[lo:hi]
