"""Diagonal (DIA) matrix encoding.

Stores each occupied diagonal as a padded fixed-length row plus its offset
(Fig. 3: the ``*`` entries are padding).  Extremely compact for banded
matrices, catastrophic for scattered sparsity — which is why the paper
classes it (with BSR/HiCOO) as a *structured* format whose performance
modelling is future work (Sec. VI).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_index
from repro.util.validation import check_dense_matrix


class DiaMatrix(MatrixFormat):
    """DIA encoding: ``data`` of shape (ndiags, L) plus ``offsets``.

    Diagonal ``d`` holds entries ``A[i, i + d]``; the padded row length is
    ``L = min(M, K)`` so every diagonal fits with left/right padding, matching
    the regular-access layout of Fig. 3.
    """

    format = Format.DIA

    def __init__(
        self,
        shape: tuple[int, int],
        data: np.ndarray,
        offsets: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.data = np.asarray(data, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    @property
    def padded_length(self) -> int:
        """Uniform stored length of each diagonal row."""
        return min(self.shape)

    @property
    def ndiags(self) -> int:
        """Stored diagonal count."""
        return len(self.offsets)

    def _validate(self) -> None:
        m, k = self.shape
        if self.data.ndim != 2 or self.data.shape != (
            self.ndiags,
            self.padded_length,
        ):
            raise FormatError(
                f"DIA data must have shape ({self.ndiags}, {self.padded_length}), "
                f"got {self.data.shape}"
            )
        if self.ndiags:
            if self.offsets.min() < -(m - 1) or self.offsets.max() > k - 1:
                raise FormatError("DIA offsets out of range")
            if len(np.unique(self.offsets)) != self.ndiags:
                raise FormatError("DIA offsets must be unique")

    @staticmethod
    def _diag_span(m: int, k: int, d: int) -> tuple[int, int]:
        """(first_row, length) of diagonal *d* in an m x k matrix."""
        if d >= 0:
            return 0, min(m, k - d)
        return -d, min(m + d, k)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "DiaMatrix":
        dense = check_dense_matrix(dense)
        m, k = dense.shape
        rows, cols = np.nonzero(dense)
        offsets = np.unique(cols - rows)
        length = min(m, k)
        data = np.zeros((len(offsets), length), dtype=np.float64)
        for di, d in enumerate(offsets):
            first_row, span = cls._diag_span(m, k, int(d))
            idx = np.arange(span)
            data[di, :span] = dense[first_row + idx, first_row + idx + d]
        return cls(dense.shape, data, offsets, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        out = np.zeros((m, k), dtype=np.float64)
        for di, d in enumerate(self.offsets):
            first_row, span = self._diag_span(m, k, int(d))
            idx = np.arange(span)
            out[first_row + idx, first_row + idx + d] = self.data[di, :span]
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    def storage(self) -> StorageBreakdown:
        m, k = self.shape
        return StorageBreakdown(
            # Padded diagonals stored in full (the DIA trade-off).
            data_bits=self.ndiags * self.padded_length * self.dtype_bits,
            metadata_bits=self.ndiags * bits_for_index(m + k - 1),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"data": self.data, "offsets": self.offsets}
