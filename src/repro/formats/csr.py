"""Compressed Sparse Row (CSR) matrix encoding.

Replaces COO's per-entry row ids by an (M+1)-entry row-pointer array.  The
most compact MCF in the ~0.1%-few% density band for square matrices
(Fig. 4a); the paper normalizes all compactness plots to CSR.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_count, bits_for_index
from repro.util.validation import check_dense_matrix


class CsrMatrix(MatrixFormat):
    """CSR encoding: ``values`` / ``col_ids`` / ``row_ptr`` arrays."""

    format = Format.CSR

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        col_ids: np.ndarray,
        row_ptr: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.col_ids = np.asarray(col_ids, dtype=np.int64).ravel()
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        n = len(self.values)
        if len(self.col_ids) != n:
            raise FormatError("CSR values/col_ids length mismatch")
        if len(self.row_ptr) != self.shape[0] + 1:
            raise FormatError(
                f"CSR row_ptr must have {self.shape[0] + 1} entries, "
                f"got {len(self.row_ptr)}"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != n:
            raise FormatError("CSR row_ptr endpoints must be 0 and nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise FormatError("CSR row_ptr must be non-decreasing")
        if n and (self.col_ids.min() < 0 or self.col_ids.max() >= self.shape[1]):
            raise FormatError("CSR col_ids out of range")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "CsrMatrix":
        dense = check_dense_matrix(dense)
        rows, cols = np.nonzero(dense)
        row_ptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.add.at(row_ptr, rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return cls(dense.shape, dense[rows, cols], cols, row_ptr, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptr))
        out[rows, self.col_ids] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored entries (may include explicit zeros)."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=(
                self.stored * bits_for_index(self.shape[1])
                + (self.shape[0] + 1) * bits_for_count(self.stored)
            ),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values,
            "col_ids": self.col_ids,
            "row_ptr": self.row_ptr,
        }

    def row_lengths(self) -> np.ndarray:
        """Per-row nonzero counts (used by the streaming cycle models)."""
        return np.diff(self.row_ptr)

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(col_ids, values) view of one row."""
        lo, hi = int(self.row_ptr[row]), int(self.row_ptr[row + 1])
        return self.col_ids[lo:hi], self.values[lo:hi]
