"""Dense (uncompressed) 3-D tensor encoding."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import StorageBreakdown, TensorFormat
from repro.formats.registry import Format
from repro.util.validation import check_dense_tensor


class DenseTensor(TensorFormat):
    """Row-major dense storage of an X x Y x Z tensor."""

    format = Format.DENSE

    def __init__(self, values: np.ndarray, *, dtype_bits: int = 32) -> None:
        self.values = check_dense_tensor(values, "values")
        self.shape = tuple(int(s) for s in self.values.shape)  # type: ignore[assignment]
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "DenseTensor":
        dense = check_dense_tensor(dense)
        return cls(dense.copy(), dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        return self.values.copy()

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(data_bits=self.size * self.dtype_bits, metadata_bits=0)

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"values": self.values.ravel()}
