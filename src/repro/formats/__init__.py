"""Compression-format substrate.

Implements, from scratch, every lossless sparse format the paper discusses
(Fig. 3): Dense, COO, CSR, CSC, RLC, ZVC, BSR and DIA for matrices; Dense,
COO, CSF, HiCOO, RLC and ZVC for 3-D tensors.  Each class provides

* ``from_dense`` / ``to_dense`` encode/decode (bit-exact round trip),
* ``storage()`` returning the data/metadata bit accounting used by the
  compactness analysis (Sec. III-A), and
* ``fields()`` exposing the raw field arrays the MINT converter streams.
"""

from repro.formats.base import (
    MatrixFormat,
    StorageBreakdown,
    TensorFormat,
)
from repro.formats.bsr import BsrMatrix
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csf import CsfTensor
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.dia import DiaMatrix
from repro.formats.ell import EllMatrix
from repro.formats.hicoo import HicooTensor
from repro.formats.registry import (
    Format,
    MATRIX_FORMATS,
    TENSOR_FORMATS,
    matrix_class,
    tensor_class,
)
from repro.formats.rlc import RlcMatrix
from repro.formats.tensor_coo import CooTensor
from repro.formats.tensor_dense import DenseTensor
from repro.formats.tensor_flat import RlcTensor, ZvcTensor
from repro.formats.zvc import ZvcMatrix
from repro.formats.convert import convert_matrix, convert_tensor

__all__ = [
    "Format",
    "MATRIX_FORMATS",
    "TENSOR_FORMATS",
    "MatrixFormat",
    "TensorFormat",
    "StorageBreakdown",
    "DenseMatrix",
    "CooMatrix",
    "CsrMatrix",
    "CscMatrix",
    "RlcMatrix",
    "ZvcMatrix",
    "BsrMatrix",
    "DiaMatrix",
    "EllMatrix",
    "DenseTensor",
    "CooTensor",
    "CsfTensor",
    "HicooTensor",
    "RlcTensor",
    "ZvcTensor",
    "matrix_class",
    "tensor_class",
    "convert_matrix",
    "convert_tensor",
]
