"""Reference (software) format conversions.

These are the *semantic oracle* for MINT: convert through a dense
intermediate, which is trivially correct.  The hardware-path conversions in
:mod:`repro.mint.conversions` never materialize dense unless the paper's own
conversion does (Dense->CSF), and are verified element-exact against these.

This module also stands in for the paper's "Flex Flex SW" baseline semantics
(conversion performed by a host library); the *cost* of that path is modelled
by :mod:`repro.baselines.cpu` / :mod:`repro.baselines.gpu`.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConversionError
from repro.formats.base import MatrixFormat, TensorFormat
from repro.formats.registry import (
    Format,
    MATRIX_FORMATS,
    TENSOR_FORMATS,
    matrix_class,
    tensor_class,
)


def convert_matrix(
    source: MatrixFormat, target: Format, **encode_kwargs: Any
) -> MatrixFormat:
    """Convert a matrix encoding to *target* via the dense oracle path.

    Encoding keyword arguments (``run_bits``, ``block_shape``) are forwarded
    to formats that accept them.
    """
    if target not in MATRIX_FORMATS:
        raise ConversionError(f"{target} is not a matrix format")
    cls = matrix_class(target)
    return cls.from_dense(
        source.to_dense(), dtype_bits=source.dtype_bits, **encode_kwargs
    )


def convert_tensor(
    source: TensorFormat, target: Format, **encode_kwargs: Any
) -> TensorFormat:
    """Convert a 3-D tensor encoding to *target* via the dense oracle path."""
    if target not in TENSOR_FORMATS:
        raise ConversionError(f"{target} is not a 3-D tensor format")
    cls = tensor_class(target)
    return cls.from_dense(
        source.to_dense(), dtype_bits=source.dtype_bits, **encode_kwargs
    )
