"""Shared run-length machinery for RLC on flattened arrays.

RLC (Fig. 3) alternates a zero-run count with the following nonzero value:
``0 a 0 b 2 c ...``.  The run field has a fixed hardware width ``run_bits``
(Eyeriss uses 5-bit runs; we default to 4 and make it an ablation knob).
A gap longer than ``2**run_bits - 1`` is encoded by inserting *padding
entries* — a maximal run followed by an explicit zero value — exactly as
fixed-width RLC hardware does.  This is what makes RLC collapse at extreme
sparsity in Fig. 4a: each padding entry burns ``run_bits + dtype_bits``.

Trailing zeros after the final nonzero are implicit: the decoder knows the
logical size from the stored dimension metadata (Fig. 3 stores ``m_dim``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError


def encode_runs(flat: np.ndarray, run_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Encode a flat array into (runs, levels) entry pairs.

    Returns
    -------
    runs:
        Zero-run length preceding each stored level, each < 2**run_bits.
    levels:
        The stored values; padding entries store an explicit 0.0 level.
    """
    if run_bits < 1:
        raise FormatError(f"run_bits must be >= 1, got {run_bits}")
    flat = np.asarray(flat, dtype=np.float64).ravel()
    max_run = (1 << run_bits) - 1
    positions = np.nonzero(flat)[0]
    runs: list[int] = []
    levels: list[float] = []
    prev_end = -1  # index of the previously consumed position
    for pos in positions:
        gap = int(pos) - prev_end - 1
        # Each padding entry covers max_run zeros plus its own zero level.
        while gap > max_run:
            runs.append(max_run)
            levels.append(0.0)
            gap -= max_run + 1
        runs.append(gap)
        levels.append(float(flat[pos]))
        prev_end = int(pos)
    return np.asarray(runs, dtype=np.int64), np.asarray(levels, dtype=np.float64)


def decode_runs(
    runs: np.ndarray, levels: np.ndarray, size: int
) -> np.ndarray:
    """Decode (runs, levels) pairs back into a flat array of *size*."""
    runs = np.asarray(runs, dtype=np.int64).ravel()
    levels = np.asarray(levels, dtype=np.float64).ravel()
    if len(runs) != len(levels):
        raise FormatError("RLC runs/levels length mismatch")
    out = np.zeros(size, dtype=np.float64)
    if len(runs) == 0:
        return out
    # Position of entry i = sum(runs[:i+1]) + i  (each entry consumes its
    # preceding zeros plus one slot for itself).
    positions = np.cumsum(runs) + np.arange(len(runs))
    if len(positions) and positions[-1] >= size:
        raise FormatError(
            f"RLC stream overruns logical size {size} (last position "
            f"{int(positions[-1])})"
        )
    out[positions] = levels
    return out


def entry_count_expected(size: int, nnz: int, run_bits: int) -> float:
    """Expected RLC entry count for *nnz* uniform-random nonzeros.

    Used by SAGE's fast path when only summary statistics are available.
    Under uniform placement the mean gap is ``(size - nnz) / (nnz + 1)``;
    padding inflates entries by roughly ``gap / (2**run_bits)`` per nonzero.
    """
    if nnz <= 0:
        return 0.0
    max_span = float(1 << run_bits)
    mean_gap = (size - nnz) / (nnz + 1.0)
    pads_per_entry = max(0.0, mean_gap - (max_span - 1.0)) / max_span
    return nnz * (1.0 + pads_per_entry)
