"""Coordinate (COO) matrix encoding.

Stores every nonzero with its (row, col) coordinates, sorted row-major.
The most compact MCF at extreme sparsity (Fig. 4a: nnz << M means CSR's
row-pointer array dominates, which COO avoids) and the ACF of Alg. 1.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import MatrixFormat, StorageBreakdown
from repro.formats.registry import Format
from repro.util.bits import bits_for_index
from repro.util.validation import check_dense_matrix


class CooMatrix(MatrixFormat):
    """COO encoding: parallel ``values`` / ``row_ids`` / ``col_ids`` arrays."""

    format = Format.COO

    def __init__(
        self,
        shape: tuple[int, int],
        values: np.ndarray,
        row_ids: np.ndarray,
        col_ids: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.row_ids = np.asarray(row_ids, dtype=np.int64).ravel()
        self.col_ids = np.asarray(col_ids, dtype=np.int64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        n = len(self.values)
        if len(self.row_ids) != n or len(self.col_ids) != n:
            raise FormatError("COO field arrays must have equal length")
        if n:
            if self.row_ids.min() < 0 or self.row_ids.max() >= self.shape[0]:
                raise FormatError("COO row_ids out of range")
            if self.col_ids.min() < 0 or self.col_ids.max() >= self.shape[1]:
                raise FormatError("COO col_ids out of range")
            linear = self.row_ids * self.shape[1] + self.col_ids
            if len(np.unique(linear)) != n:
                raise FormatError("COO contains duplicate coordinates")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "CooMatrix":
        dense = check_dense_matrix(dense)
        rows, cols = np.nonzero(dense)
        return cls(
            dense.shape,
            dense[rows, cols],
            rows,
            cols,
            dtype_bits=dtype_bits,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        out[self.row_ids, self.col_ids] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored entries (may include explicit zeros after arithmetic)."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        row_bits = bits_for_index(self.shape[0])
        col_bits = bits_for_index(self.shape[1])
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=self.stored * (row_bits + col_bits),
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values,
            "row_ids": self.row_ids,
            "col_ids": self.col_ids,
        }

    def sorted_row_major(self) -> "CooMatrix":
        """Return an equivalent COO with entries sorted (row, col)."""
        order = np.lexsort((self.col_ids, self.row_ids))
        return CooMatrix(
            self.shape,
            self.values[order],
            self.row_ids[order],
            self.col_ids[order],
            dtype_bits=self.dtype_bits,
        )
