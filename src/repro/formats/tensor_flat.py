"""RLC and ZVC encodings for 3-D tensors.

Fig. 3b applies both schemes to the row-major flattening of the tensor —
RLC alternates zero-run/value entries and ZVC keeps a one-bit-per-position
mask — so these classes share the matrix machinery on the flat view.
BrainQ's MCF in Table III is tensor ZVC.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats._runlength import decode_runs, encode_runs
from repro.formats.base import StorageBreakdown, TensorFormat
from repro.formats.registry import Format
from repro.formats.rlc import DEFAULT_RUN_BITS
from repro.util.validation import check_dense_tensor


class RlcTensor(TensorFormat):
    """RLC over the row-major flattened tensor."""

    format = Format.RLC

    def __init__(
        self,
        shape: tuple[int, int, int],
        runs: np.ndarray,
        levels: np.ndarray,
        *,
        dtype_bits: int = 32,
        run_bits: int = DEFAULT_RUN_BITS,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.runs = np.asarray(runs, dtype=np.int64).ravel()
        self.levels = np.asarray(levels, dtype=np.float64).ravel()
        self.dtype_bits = dtype_bits
        self.run_bits = run_bits
        self._check_dtype_bits()
        decode_runs(self.runs, self.levels, self.size)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        *,
        dtype_bits: int = 32,
        run_bits: int = DEFAULT_RUN_BITS,
    ) -> "RlcTensor":
        dense = check_dense_tensor(dense)
        runs, levels = encode_runs(dense.ravel(), run_bits)
        return cls(dense.shape, runs, levels, dtype_bits=dtype_bits, run_bits=run_bits)

    def to_dense(self) -> np.ndarray:
        return decode_runs(self.runs, self.levels, self.size).reshape(self.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.levels))

    @property
    def entries(self) -> int:
        """Stored (run, level) pairs, including padding entries."""
        return len(self.levels)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.entries * self.dtype_bits,
            metadata_bits=self.entries * self.run_bits,
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"runs": self.runs, "levels": self.levels}


class ZvcTensor(TensorFormat):
    """ZVC over the row-major flattened tensor."""

    format = Format.ZVC

    def __init__(
        self,
        shape: tuple[int, int, int],
        values: np.ndarray,
        mask: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.mask = np.asarray(mask, dtype=bool).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        if len(self.mask) != self.size:
            raise FormatError(
                f"ZVC tensor mask must have {self.size} bits, got {len(self.mask)}"
            )
        if int(self.mask.sum()) != len(self.values):
            raise FormatError("ZVC tensor mask popcount must equal value count")

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "ZvcTensor":
        dense = check_dense_tensor(dense)
        flat = dense.ravel()
        mask = flat != 0.0
        return cls(dense.shape, flat[mask], mask, dtype_bits=dtype_bits)

    def to_dense(self) -> np.ndarray:
        flat = np.zeros(self.size, dtype=np.float64)
        flat[self.mask] = self.values
        return flat.reshape(self.shape)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def stored(self) -> int:
        """Stored value-array entries."""
        return len(self.values)

    def storage(self) -> StorageBreakdown:
        return StorageBreakdown(
            data_bits=self.stored * self.dtype_bits,
            metadata_bits=self.size,
        )

    def fields(self) -> Mapping[str, np.ndarray]:
        return {"values": self.values, "mask": self.mask.astype(np.int64)}
