"""Compressed Sparse Fiber (CSF) 3-D tensor encoding.

CSF (Smith & Karypis) stores the nonzeros of a tensor as a tree: one node
layer per mode, with pointer arrays compressing shared coordinate prefixes
(Fig. 3b).  The paper's MCF/ACF of choice for the mid-density Crime and Uber
tensors (Table III) and the target of MINT's Dense->CSF conversion
(Fig. 8f).

Mode order is fixed to (x, y, z): roots are unique x coordinates, their
children unique (x, y) fibers, and leaves the (z, value) pairs.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import StorageBreakdown, TensorFormat
from repro.formats.registry import Format
from repro.formats.tensor_coo import CooTensor
from repro.util.bits import bits_for_count, bits_for_index
from repro.util.validation import check_dense_tensor


class CsfTensor(TensorFormat):
    """CSF encoding with arrays ``x_ids/x_ptr``, ``y_ids/y_ptr``, ``z_ids/values``."""

    format = Format.CSF

    def __init__(
        self,
        shape: tuple[int, int, int],
        x_ids: np.ndarray,
        x_ptr: np.ndarray,
        y_ids: np.ndarray,
        y_ptr: np.ndarray,
        z_ids: np.ndarray,
        values: np.ndarray,
        *,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.x_ids = np.asarray(x_ids, dtype=np.int64).ravel()
        self.x_ptr = np.asarray(x_ptr, dtype=np.int64).ravel()
        self.y_ids = np.asarray(y_ids, dtype=np.int64).ravel()
        self.y_ptr = np.asarray(y_ptr, dtype=np.int64).ravel()
        self.z_ids = np.asarray(z_ids, dtype=np.int64).ravel()
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    def _validate(self) -> None:
        n0, n1, n2 = len(self.x_ids), len(self.y_ids), len(self.values)
        if len(self.z_ids) != n2:
            raise FormatError("CSF z_ids/values length mismatch")
        if len(self.x_ptr) != n0 + 1 or len(self.y_ptr) != n1 + 1:
            raise FormatError("CSF pointer array length mismatch")
        if n0:
            if self.x_ptr[0] != 0 or self.x_ptr[-1] != n1:
                raise FormatError("CSF x_ptr endpoints must be 0 and len(y_ids)")
            if self.y_ptr[0] != 0 or self.y_ptr[-1] != n2:
                raise FormatError("CSF y_ptr endpoints must be 0 and nnz")
        elif n1 or n2:
            raise FormatError("CSF with no roots cannot have fibers or leaves")
        for name, ptr in (("x_ptr", self.x_ptr), ("y_ptr", self.y_ptr)):
            if np.any(np.diff(ptr) < 0):
                raise FormatError(f"CSF {name} must be non-decreasing")

    # ----------------------------------------------------------- construction
    @classmethod
    def from_coo(cls, coo: CooTensor) -> "CsfTensor":
        """Build the CSF tree from a COO tensor (sorted internally)."""
        sorted_coo = coo.sorted_lexicographic()
        xs, ys, zs = sorted_coo.x_ids, sorted_coo.y_ids, sorted_coo.z_ids
        vals = sorted_coo.values
        n = len(vals)
        if n == 0:
            empty_i = np.empty(0, dtype=np.int64)
            return cls(
                coo.shape,
                empty_i,
                np.zeros(1, dtype=np.int64),
                empty_i,
                np.zeros(1, dtype=np.int64),
                empty_i,
                np.empty(0, dtype=np.float64),
                dtype_bits=coo.dtype_bits,
            )
        # Fiber boundaries: new (x) root where x changes; new (x, y) fiber
        # where x or y changes.
        x_new = np.empty(n, dtype=bool)
        x_new[0] = True
        x_new[1:] = xs[1:] != xs[:-1]
        xy_new = np.empty(n, dtype=bool)
        xy_new[0] = True
        xy_new[1:] = x_new[1:] | (ys[1:] != ys[:-1])

        x_starts = np.flatnonzero(x_new)
        xy_starts = np.flatnonzero(xy_new)
        x_ids = xs[x_starts]
        y_ids = ys[xy_starts]
        # x_ptr[i] = number of fibers starting before root i's first entry.
        fiber_index_of_entry = np.cumsum(xy_new) - 1
        x_ptr = np.concatenate(
            [fiber_index_of_entry[x_starts], [len(xy_starts)]]
        ).astype(np.int64)
        y_ptr = np.concatenate([xy_starts, [n]]).astype(np.int64)
        return cls(
            coo.shape, x_ids, x_ptr, y_ids, y_ptr, zs, vals, dtype_bits=coo.dtype_bits
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, dtype_bits: int = 32) -> "CsfTensor":
        dense = check_dense_tensor(dense)
        return cls.from_coo(CooTensor.from_dense(dense, dtype_bits=dtype_bits))

    def to_coo(self) -> CooTensor:
        """Flatten the tree back to COO."""
        n1 = len(self.y_ids)
        n2 = len(self.values)
        fiber_counts = np.diff(self.y_ptr)  # leaves per (x, y) fiber
        ys = np.repeat(self.y_ids, fiber_counts) if n1 else np.empty(0, dtype=np.int64)
        if len(self.x_ids):
            # Entries per root = leaves summed over that root's fiber range.
            cum = np.concatenate([[0], np.cumsum(fiber_counts)])
            entries_per_root = cum[self.x_ptr[1:]] - cum[self.x_ptr[:-1]]
            xs = np.repeat(self.x_ids, entries_per_root)
        else:
            xs = np.empty(0, dtype=np.int64)
        if len(xs) != n2 or len(ys) != n2:
            raise FormatError("CSF tree is inconsistent: leaf counts disagree")
        return CooTensor(
            self.shape, self.values, xs, ys, self.z_ids, dtype_bits=self.dtype_bits
        )

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def nroots(self) -> int:
        """Unique x coordinates."""
        return len(self.x_ids)

    @property
    def nfibers(self) -> int:
        """Unique (x, y) fibers."""
        return len(self.y_ids)

    def storage(self) -> StorageBreakdown:
        n0, n1, n2 = self.nroots, self.nfibers, len(self.values)
        meta = (
            n0 * bits_for_index(self.shape[0])
            + (n0 + 1) * bits_for_count(max(n1, 1))
            + n1 * bits_for_index(self.shape[1])
            + (n1 + 1) * bits_for_count(max(n2, 1))
            + n2 * bits_for_index(self.shape[2])
        )
        return StorageBreakdown(data_bits=n2 * self.dtype_bits, metadata_bits=meta)

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "x_ids": self.x_ids,
            "x_ptr": self.x_ptr,
            "y_ids": self.y_ids,
            "y_ptr": self.y_ptr,
            "z_ids": self.z_ids,
            "values": self.values,
        }
