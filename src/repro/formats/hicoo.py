"""Hierarchical Coordinate (HiCOO) 3-D tensor encoding.

HiCOO (Li et al., SC'18) groups nonzeros into fixed-size blocks: block
coordinates are stored once per block at full width while per-element
offsets inside a block need only ``log2(block_dim)`` bits each (Fig. 3b:
``bptr``, ``bx/by/bz``, ``ex/ey/ez``).  A structured format in the paper's
taxonomy (performance modelling is future work, Sec. VI); implemented for
compactness analysis and conversions.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FormatError
from repro.formats.base import StorageBreakdown, TensorFormat
from repro.formats.registry import Format
from repro.util.bits import bits_for_count, bits_for_index, ceil_div
from repro.util.validation import check_dense_tensor

DEFAULT_BLOCK = (2, 2, 2)
"""Paper's example block shape (Fig. 3b)."""


class HicooTensor(TensorFormat):
    """HiCOO encoding with per-block coordinates and per-entry offsets."""

    format = Format.HICOO

    def __init__(
        self,
        shape: tuple[int, int, int],
        values: np.ndarray,
        bptr: np.ndarray,
        block_ids: np.ndarray,
        elem_offsets: np.ndarray,
        *,
        block_shape: tuple[int, int, int] = DEFAULT_BLOCK,
        dtype_bits: int = 32,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)  # type: ignore[assignment]
        self.block_shape = tuple(int(b) for b in block_shape)
        self.values = np.asarray(values, dtype=np.float64).ravel()
        self.bptr = np.asarray(bptr, dtype=np.int64).ravel()
        self.block_ids = np.asarray(block_ids, dtype=np.int64)  # (nblocks, 3)
        self.elem_offsets = np.asarray(elem_offsets, dtype=np.int64)  # (nnz, 3)
        self.dtype_bits = dtype_bits
        self._check_dtype_bits()
        self._validate()

    @property
    def nblocks(self) -> int:
        """Stored block count."""
        return self.block_ids.shape[0] if self.block_ids.ndim == 2 else 0

    def _validate(self) -> None:
        n = len(self.values)
        if any(b < 1 for b in self.block_shape):
            raise FormatError(f"block_shape must be positive, got {self.block_shape}")
        if self.block_ids.ndim != 2 or self.block_ids.shape[1] != 3:
            raise FormatError("HiCOO block_ids must have shape (nblocks, 3)")
        if self.elem_offsets.shape != (n, 3):
            raise FormatError("HiCOO elem_offsets must have shape (nnz, 3)")
        if len(self.bptr) != self.nblocks + 1:
            raise FormatError("HiCOO bptr length mismatch")
        if self.nblocks:
            if self.bptr[0] != 0 or self.bptr[-1] != n:
                raise FormatError("HiCOO bptr endpoints must be 0 and nnz")
            if np.any(np.diff(self.bptr) <= 0):
                raise FormatError("HiCOO blocks must be non-empty and ordered")
        elif n:
            raise FormatError("HiCOO with entries must have blocks")
        for axis in range(3):
            if n and (
                self.elem_offsets[:, axis].min() < 0
                or self.elem_offsets[:, axis].max() >= self.block_shape[axis]
            ):
                raise FormatError("HiCOO element offsets out of block range")

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        *,
        dtype_bits: int = 32,
        block_shape: tuple[int, int, int] = DEFAULT_BLOCK,
    ) -> "HicooTensor":
        dense = check_dense_tensor(dense)
        bx, by, bz = (int(b) for b in block_shape)
        xs, ys, zs = (a.astype(np.int64) for a in np.nonzero(dense))
        vals = dense[xs, ys, zs]
        blocks = np.stack([xs // bx, ys // by, zs // bz], axis=1)
        offsets = np.stack([xs % bx, ys % by, zs % bz], axis=1)
        # Sort by block (lexicographic), then by offset within block.
        order = np.lexsort(
            (offsets[:, 2], offsets[:, 1], offsets[:, 0],
             blocks[:, 2], blocks[:, 1], blocks[:, 0])
        )
        blocks, offsets, vals = blocks[order], offsets[order], vals[order]
        n = len(vals)
        if n == 0:
            return cls(
                dense.shape,
                vals,
                np.zeros(1, dtype=np.int64),
                np.empty((0, 3), dtype=np.int64),
                offsets,
                block_shape=(bx, by, bz),
                dtype_bits=dtype_bits,
            )
        new_block = np.empty(n, dtype=bool)
        new_block[0] = True
        new_block[1:] = np.any(blocks[1:] != blocks[:-1], axis=1)
        starts = np.flatnonzero(new_block)
        bptr = np.concatenate([starts, [n]]).astype(np.int64)
        return cls(
            dense.shape,
            vals,
            bptr,
            blocks[starts],
            offsets,
            block_shape=(bx, by, bz),
            dtype_bits=dtype_bits,
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nblocks == 0:
            return out
        counts = np.diff(self.bptr)
        block_of_entry = np.repeat(np.arange(self.nblocks), counts)
        base = self.block_ids[block_of_entry] * np.asarray(
            self.block_shape, dtype=np.int64
        )
        coords = base + self.elem_offsets
        out[coords[:, 0], coords[:, 1], coords[:, 2]] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def storage(self) -> StorageBreakdown:
        n = len(self.values)
        grid = [ceil_div(s, b) for s, b in zip(self.shape, self.block_shape)]
        block_coord_bits = sum(bits_for_index(max(1, g)) for g in grid)
        offset_bits = sum(bits_for_index(b) for b in self.block_shape)
        meta = (
            (self.nblocks + 1) * bits_for_count(max(n, 1))  # bptr
            + self.nblocks * block_coord_bits  # bx, by, bz
            + n * offset_bits  # ex, ey, ez
        )
        return StorageBreakdown(data_bits=n * self.dtype_bits, metadata_bits=meta)

    def fields(self) -> Mapping[str, np.ndarray]:
        return {
            "values": self.values,
            "bptr": self.bptr,
            "block_ids": self.block_ids,
            "elem_offsets": self.elem_offsets,
        }
