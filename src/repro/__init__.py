"""repro — reproduction of "Extending Sparse Tensor Accelerators to Support
Multiple Compression Formats" (Qin et al., IPDPS 2021).

The package implements the paper's three contributions plus every substrate
they depend on:

* **Accelerator extensions** (Sec. IV): a weight-stationary sparse
  accelerator whose PEs execute multiple Algorithm Compression Formats —
  :class:`~repro.accelerator.simulator.WeightStationarySimulator` (cycle
  level) and :mod:`repro.accelerator.perf_model` (analytical).
* **MINT** (Sec. V): a general-purpose format converter built from shared
  building blocks — :class:`~repro.mint.engine.MintEngine` and the
  :mod:`repro.mint.designs` area/power model.
* **SAGE** (Sec. VI): the MCF/ACF predictor minimizing energy-delay
  product — :class:`~repro.sage.predictor.Sage`.

The preferred call surface is the :class:`~repro.api.session.Session`
facade, which fronts the whole flow behind pluggable local/remote
backends::

    from repro import Session, MatrixWorkload, Kernel

    wl = MatrixWorkload("mine", Kernel.SPMM, m=4096, k=4096, n=2048,
                        nnz_a=800_000, nnz_b=4096 * 2048)
    with Session() as s:                 # or Session("tcp://host:port")
        decision = s.predict(wl)         # batch-first: lists work too
        result = s.run(wl)               # predict -> convert -> simulate
    print(decision.summary())

``Sage`` and ``MintEngine`` remain importable as the stable in-process
primitives underneath (``Session`` composes them); prefer ``Session`` for
new code — the old per-class entry points are kept for compatibility.

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/`` for
the per-figure reproduction harnesses.
"""

from repro.accelerator import (
    AcceleratorConfig,
    CycleReport,
    EnergyReport,
    RunReport,
    WeightStationarySimulator,
    analytical_gemm,
    analytical_gemm_stats,
    analytical_mttkrp,
    analytical_spttm,
)
from repro.api import (
    Backend,
    LocalBackend,
    PredictOptions,
    RemoteBackend,
    RunOptions,
    RunResult,
    Session,
)
from repro.baselines import (
    ALL_POLICIES,
    AcceleratorPolicy,
    CpuModel,
    GpuModel,
    MMAlgorithm,
    evaluate_all,
    evaluate_policy,
    policy_by_name,
)
from repro.formats import (
    MATRIX_FORMATS,
    TENSOR_FORMATS,
    BsrMatrix,
    CooMatrix,
    CooTensor,
    CscMatrix,
    CsfTensor,
    CsrMatrix,
    DenseMatrix,
    DenseTensor,
    DiaMatrix,
    EllMatrix,
    Format,
    HicooTensor,
    MatrixFormat,
    RlcMatrix,
    RlcTensor,
    StorageBreakdown,
    TensorFormat,
    ZvcMatrix,
    ZvcTensor,
    convert_matrix,
    convert_tensor,
    matrix_class,
    tensor_class,
)
from repro.hardware import AreaModel, DramChannel, EnergyModel
from repro.mint import (
    ConversionCost,
    ConversionGraph,
    ConversionReport,
    Datapath,
    HopStats,
    MintDesign,
    MintEngine,
    MintThroughput,
    PathPlanner,
    conversion_graph,
    estimate_conversion_cost,
    find_path,
    mint_area,
    mint_power,
    register_conversion,
    shared_planner,
)
from repro.sage import (
    CostBreakdown,
    PipelinePlan,
    Sage,
    SageDecision,
    plan_chain,
)
from repro.serve import (
    DecisionCache,
    SageServer,
    ServeClient,
    ServeConfig,
    WorkloadFingerprint,
    fingerprint_of,
)
from repro.workloads import (
    CONV_LAYERS,
    MATRIX_SUITE,
    TENSOR_SUITE,
    Kernel,
    MatrixWorkload,
    PruningStrategy,
    TensorWorkload,
    layer_gemm,
    random_sparse_matrix,
    random_sparse_tensor,
    suite_by_name,
    workload_from_dict,
)

__version__ = "1.1.0"

__all__ = [
    # api (the preferred surface)
    "Session",
    "PredictOptions",
    "RunOptions",
    "RunResult",
    "Backend",
    "LocalBackend",
    "RemoteBackend",
    # formats
    "Format",
    "MATRIX_FORMATS",
    "TENSOR_FORMATS",
    "MatrixFormat",
    "TensorFormat",
    "StorageBreakdown",
    "DenseMatrix",
    "CooMatrix",
    "CsrMatrix",
    "CscMatrix",
    "RlcMatrix",
    "ZvcMatrix",
    "BsrMatrix",
    "DiaMatrix",
    "EllMatrix",
    "DenseTensor",
    "CooTensor",
    "CsfTensor",
    "HicooTensor",
    "RlcTensor",
    "ZvcTensor",
    "matrix_class",
    "tensor_class",
    "convert_matrix",
    "convert_tensor",
    # accelerator
    "AcceleratorConfig",
    "WeightStationarySimulator",
    "CycleReport",
    "EnergyReport",
    "RunReport",
    "analytical_gemm",
    "analytical_gemm_stats",
    "analytical_spttm",
    "analytical_mttkrp",
    # mint
    "MintEngine",
    "MintDesign",
    "ConversionReport",
    "ConversionCost",
    "ConversionGraph",
    "Datapath",
    "HopStats",
    "MintThroughput",
    "PathPlanner",
    "conversion_graph",
    "find_path",
    "register_conversion",
    "shared_planner",
    "mint_area",
    "mint_power",
    "estimate_conversion_cost",
    # sage
    "Sage",
    "SageDecision",
    "CostBreakdown",
    "PipelinePlan",
    "plan_chain",
    # serve
    "SageServer",
    "ServeClient",
    "ServeConfig",
    "DecisionCache",
    "WorkloadFingerprint",
    "fingerprint_of",
    # baselines
    "ALL_POLICIES",
    "AcceleratorPolicy",
    "policy_by_name",
    "evaluate_all",
    "evaluate_policy",
    "CpuModel",
    "GpuModel",
    "MMAlgorithm",
    # hardware
    "EnergyModel",
    "DramChannel",
    "AreaModel",
    # workloads
    "Kernel",
    "MatrixWorkload",
    "TensorWorkload",
    "workload_from_dict",
    "MATRIX_SUITE",
    "TENSOR_SUITE",
    "suite_by_name",
    "CONV_LAYERS",
    "PruningStrategy",
    "layer_gemm",
    "random_sparse_matrix",
    "random_sparse_tensor",
]
