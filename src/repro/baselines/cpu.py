"""Roofline-style CPU device model (Intel MKL stand-in).

Replaces the paper's Intel Core i9-9820X measurements (Sec. VII-B: 10 cores
at 3.3 GHz, 85 GB/s, 165 W TDP).  Format conversions in MKL are
bandwidth-bound multi-pass loops; no PCIe transfers are involved, but
absolute bandwidth is ~8x below the GPU's.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuModel:
    """i9-9820X-class host parameters."""

    name: str = "Core i9-9820X (model)"
    cores: int = 10
    clock_hz: float = 3.3e9
    mem_bw_bytes: float = 85.0e9
    tdp_w: float = 165.0
    call_overhead_s: float = 5.0e-6
    # MKL's conversion routines reach roughly half of stream bandwidth
    # (model parameter; conversions are not pure streaming loops).
    conversion_efficiency: float = 0.5

    @property
    def peak_flops(self) -> float:
        """fp32 peak: 2 x 16-wide FMA per core per cycle (AVX-512)."""
        return 2.0 * 16 * self.cores * self.clock_hz

    def conversion_time(
        self, bytes_in: float, bytes_out: float, passes: int = 2
    ) -> float:
        """Seconds for an MKL-style format conversion."""
        effective_bw = self.conversion_efficiency * self.mem_bw_bytes
        return passes * (bytes_in + bytes_out) / effective_bw + self.call_overhead_s

    def conversion_energy(self, seconds: float) -> float:
        """TDP-based conversion energy."""
        return self.tdp_w * seconds
