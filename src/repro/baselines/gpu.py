"""Roofline-style GPU device model (cuBLAS / cuSPARSE stand-in).

Replaces the paper's NVIDIA Titan RTX measurements (Sec. VII-B: 4608 CUDA
cores at 1.77 GHz, 672 GB/s, 280 W TDP, PCIe-attached).  The model prices
each matrix-multiplication algorithm of Fig. 5 by its dominant resource:

* Dense GEMM — compute-bound at high efficiency (cuBLAS);
* CSR SpMM — sparse-kernel compute throughput (irregular gather limits it
  to a small fraction of peak);
* CSR x CSR SpGEMM — "often latency bound" (Sec. III-B): multi-pass kernel
  launches plus per-metadata-element processing plus low-efficiency flops;
* format conversions — bandwidth-bound passes at cuSPARSE's (modest)
  effective conversion bandwidth, plus H2D/D2H transfers over PCIe, which
  is what Fig. 11 shows consuming ~50% (up to 75%) of wall time.

Efficiency constants are model parameters chosen so the Fig. 5 crossovers
land where the paper reports them (Dense best at >= 10% density, CSR-CSR
best below ~0.1%); they are not measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.kernels.ops import expected_output_nnz


class MMAlgorithm(Enum):
    """The four Fig. 5 matrix-multiplication ACF algorithms."""

    DENSE_DENSE_DENSE = "Dense(A)-Dense(B)-Dense(O)"  # cuBLAS GEMM
    CSR_DENSE_DENSE = "CSR(A)-Dense(B)-Dense(O)"  # cuSPARSE csrmm
    DENSE_CSC_DENSE = "Dense(A)-CSC(B)-Dense(O)"  # cuSPARSE gemmi-style
    CSR_CSR_CSR = "CSR(A)-CSR(B)-CSR(O)"  # cuSPARSE csrgemm


@dataclass(frozen=True)
class KernelEstimate:
    """Time and utilization estimate for one GPU kernel invocation."""

    seconds: float
    sm_utilization: float
    mem_utilization: float
    energy_j: float


@dataclass(frozen=True)
class GpuModel:
    """Titan RTX-class device parameters."""

    name: str = "Titan RTX (model)"
    cuda_cores: int = 4608
    clock_hz: float = 1.77e9
    mem_bw_bytes: float = 672.0e9
    pcie_bw_bytes: float = 16.0e9
    tdp_w: float = 280.0
    kernel_launch_s: float = 10.0e-6
    # Achievable-fraction constants (model parameters, see module docstring).
    dense_efficiency: float = 0.85
    spmm_efficiency: float = 0.08
    spgemm_efficiency: float = 0.01
    metadata_rate: float = 2.0e9  # metadata elements processed per second
    conversion_bw_bytes: float = 40.0e9  # effective cuSPARSE conversion b/w

    @property
    def peak_flops(self) -> float:
        """fp32 peak: 2 FLOPs per core per cycle."""
        return 2.0 * self.cuda_cores * self.clock_hz

    # ----------------------------------------------------------- transfers --
    def transfer_seconds(self, bytes_moved: float) -> float:
        """H2D or D2H time over PCIe."""
        return bytes_moved / self.pcie_bw_bytes

    # ------------------------------------------------------ Fig. 5 kernels --
    def mm_time(
        self, algorithm: MMAlgorithm, m: int, k: int, n: int, density: float,
        dtype_bytes: int = 4,
    ) -> KernelEstimate:
        """Execution-time estimate for one MM algorithm at one density.

        Both operands share *density*, as in Fig. 5's sweep.
        """
        nnz_a = density * m * k
        nnz_b = density * k * n
        dense_flops = 2.0 * m * k * n
        if algorithm is MMAlgorithm.DENSE_DENSE_DENSE:
            t_compute = dense_flops / (self.dense_efficiency * self.peak_flops)
            bytes_moved = dtype_bytes * (m * k + k * n + m * n)
            t = max(t_compute, bytes_moved / self.mem_bw_bytes) + self.kernel_launch_s
            achieved = dense_flops / t
            return KernelEstimate(
                seconds=t,
                sm_utilization=min(1.0, achieved / self.peak_flops),
                mem_utilization=min(1.0, bytes_moved / t / self.mem_bw_bytes),
                energy_j=self.tdp_w * t,
            )
        if algorithm in (MMAlgorithm.CSR_DENSE_DENSE, MMAlgorithm.DENSE_CSC_DENSE):
            nnz_sparse = nnz_a if algorithm is MMAlgorithm.CSR_DENSE_DENSE else nnz_b
            other = n if algorithm is MMAlgorithm.CSR_DENSE_DENSE else m
            flops = 2.0 * nnz_sparse * other
            bytes_moved = dtype_bytes * (2 * nnz_sparse + k * n + m * n)
            t = (
                max(
                    flops / (self.spmm_efficiency * self.peak_flops),
                    bytes_moved / self.mem_bw_bytes,
                )
                + self.kernel_launch_s
            )
            return KernelEstimate(
                seconds=t,
                sm_utilization=min(1.0, (flops / t) / self.peak_flops),
                mem_utilization=min(1.0, bytes_moved / t / self.mem_bw_bytes),
                energy_j=self.tdp_w * t,
            )
        # CSR x CSR SpGEMM: latency + metadata + low-efficiency flops.
        flops = 2.0 * nnz_a * nnz_b / k if k else 0.0
        nnz_o = expected_output_nnz(m, n, k, int(nnz_a), int(nnz_b))
        metadata = nnz_a + nnz_b + nnz_o
        bytes_moved = dtype_bytes * (2 * nnz_a + 2 * nnz_b + 2 * nnz_o)
        t = (
            3.0 * self.kernel_launch_s  # symbolic + numeric + compaction passes
            + metadata / self.metadata_rate
            + max(
                flops / (self.spgemm_efficiency * self.peak_flops),
                bytes_moved / self.mem_bw_bytes,
            )
        )
        return KernelEstimate(
            seconds=t,
            sm_utilization=min(1.0, (flops / t) / self.peak_flops),
            mem_utilization=min(1.0, bytes_moved / t / self.mem_bw_bytes),
            energy_j=self.tdp_w * t,
        )

    # ------------------------------------------- Fig. 10/11 conversions -----
    def conversion_time(
        self,
        bytes_in: float,
        bytes_out: float,
        passes: int = 2,
    ) -> tuple[float, float, float]:
        """(device seconds, h2d seconds, d2h seconds) for a conversion.

        The device part streams the operand ``passes`` times at the
        effective conversion bandwidth; transfers move the source in and the
        result out over PCIe.  Fig. 11's transfer-dominance follows from
        ``pcie_bw << conversion_bw`` not holding strongly — cuSPARSE's
        conversion kernels are far from streaming speed.
        """
        device = (
            passes * (bytes_in + bytes_out) / self.conversion_bw_bytes
            + 2.0 * self.kernel_launch_s
        )
        return device, self.transfer_seconds(bytes_in), self.transfer_seconds(
            bytes_out
        )

    def conversion_energy(self, total_seconds: float) -> float:
        """TDP-based energy for a conversion (device busy the whole time)."""
        return self.tdp_w * total_seconds
