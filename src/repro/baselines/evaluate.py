"""Evaluate a workload under every Table II policy (Fig. 12 / 13 / 14c).

Each policy runs on identical hardware; within its admissible format space
it gets the *best* candidate (the evaluation is charitable to baselines —
they are assumed to pick their optimal configuration), costed by the same
SAGE cost model.  Software-converting policies pay the host-library
conversion time plus the PCIe round trip (Fig. 11's overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.analysis.compactness import storage_bits
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel
from repro.baselines.policies import (
    ALL_POLICIES,
    AcceleratorPolicy,
    ConverterKind,
)
from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.hardware.dram import DramChannel
from repro.mint.cost import ConversionCost
from repro.sage.cost_model import (
    CostBreakdown,
    evaluate_matrix_combo,
    mint_provider,
)
from repro.workloads.spec import MatrixWorkload


def sw_provider_factory(device: CpuModel | GpuModel, clock_hz: float):
    """Conversion provider that prices conversions on a host device.

    The accelerator stalls for the host wall time (converted to accelerator
    cycles); GPU conversions additionally pay H2D/D2H transfers.
    """

    def provider(
        src: Format,
        dst: Format,
        size: int,
        nnz: int,
        major_dim: int,
        dtype_bits: int,
        tensor: bool,
    ) -> ConversionCost:
        dims = (major_dim, max(1, size // major_dim))
        bytes_in = storage_bits(src, dims, nnz, dtype_bits) / 8.0
        bytes_out = storage_bits(dst, dims, nnz, dtype_bits) / 8.0
        if isinstance(device, GpuModel):
            dev_s, h2d_s, d2h_s = device.conversion_time(bytes_in, bytes_out)
            seconds = dev_s + h2d_s + d2h_s
            energy = device.conversion_energy(seconds)
        else:
            seconds = device.conversion_time(bytes_in, bytes_out)
            energy = device.conversion_energy(seconds)
        return ConversionCost(int(seconds * clock_hz), energy, seconds)

    return provider


@dataclass(frozen=True)
class PolicyResult:
    """Best-candidate cost of one policy on one workload."""

    policy: AcceleratorPolicy
    workload: MatrixWorkload
    best: CostBreakdown

    @property
    def edp(self) -> float:
        """The policy's energy-delay product on this workload."""
        return self.best.edp


def evaluate_policy(
    workload: MatrixWorkload,
    policy: AcceleratorPolicy,
    *,
    config: AcceleratorConfig | None = None,
    dram: DramChannel | None = None,
    sw_device: CpuModel | GpuModel | None = None,
) -> PolicyResult:
    """Best admissible candidate for *policy* on *workload*."""
    cfg = config or AcceleratorConfig.paper_default()
    dram = dram or DramChannel(clock_hz=cfg.clock_hz)
    if policy.converter is ConverterKind.NONE:
        provider = None
    elif policy.converter is ConverterKind.HW:
        provider = mint_provider
    else:
        provider = sw_provider_factory(sw_device or CpuModel(), cfg.clock_hz)

    best: CostBreakdown | None = None
    for mcf, acf in policy.candidates():
        cost = evaluate_matrix_combo(
            workload,
            mcf,
            acf,
            config=cfg,
            dram=dram,
            provider=provider,
            flexible_noc=policy.zero_skipping,
        )
        if cost is None:
            continue
        if best is None or cost.edp < best.edp:
            best = cost
    if best is None:
        raise PredictionError(
            f"policy {policy.name} has no feasible candidate on {workload.name}"
        )
    return PolicyResult(policy=policy, workload=workload, best=best)


def evaluate_all(
    workload: MatrixWorkload,
    *,
    config: AcceleratorConfig | None = None,
    dram: DramChannel | None = None,
    sw_device: CpuModel | GpuModel | None = None,
    policies: tuple[AcceleratorPolicy, ...] = ALL_POLICIES,
) -> dict[str, PolicyResult]:
    """Evaluate every Table II policy on *workload*, keyed by policy name."""
    return {
        policy.name: evaluate_policy(
            workload, policy, config=config, dram=dram, sw_device=sw_device
        )
        for policy in policies
    }
