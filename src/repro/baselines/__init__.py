"""Comparison systems: host-device models and Table II accelerator policies.

* :mod:`repro.baselines.cpu` / :mod:`repro.baselines.gpu` — roofline-style
  device models standing in for Intel MKL on the i9-9820X and cuSPARSE /
  cuBLAS on the Titan RTX (the paper's Fig. 5 / 10 / 11 hardware, see
  DESIGN.md substitution table).
* :mod:`repro.baselines.policies` — the format-flexibility policies of
  Table I / Table II (TPU, EIE, SIGMA, ExTensor, NVDLA, software, this
  work).
* :mod:`repro.baselines.evaluate` — run a workload under every policy on
  identical accelerator hardware and report the EDP breakdown (Fig. 12/13).
"""

from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GpuModel, MMAlgorithm
from repro.baselines.policies import (
    ALL_POLICIES,
    AcceleratorPolicy,
    ConverterKind,
    policy_by_name,
)
from repro.baselines.evaluate import PolicyResult, evaluate_policy, evaluate_all

__all__ = [
    "CpuModel",
    "GpuModel",
    "MMAlgorithm",
    "ALL_POLICIES",
    "AcceleratorPolicy",
    "ConverterKind",
    "policy_by_name",
    "PolicyResult",
    "evaluate_policy",
    "evaluate_all",
]
