"""Format-flexibility policies of the evaluated accelerators (Table II).

Every accelerator in the evaluation runs on the *same* fabric (16384 MACs,
512 B/PE, 512-bit bus — Sec. VII-A); what distinguishes them is which MCFs
and ACFs they may use and how conversions happen.  A policy is therefore a
constraint on SAGE's search space plus a conversion provider:

=================  ==========================  ==========================  =========
Design (Table I)   MCF (A-B)                   ACF (A-B)                   Converter
=================  ==========================  ==========================  =========
Fix Fix None       Dense-Dense                 Dense-Dense                 none (TPU)
Fix Fix None2      CSR-Dense / Dense-CSC       same as MCF                 none (EIE)
Fix Flex HW        ZVC-ZVC                     CSR-Dense / Dense-CSC /     HW (SIGMA)
                                               Dense-Dense
Flex Flex None     (CSR/Dense)-(Dense/CSC)     must equal MCF              none (ExTensor)
Flex Fix HW        (ZVC/Dense)-(ZVC/Dense)     Dense-Dense                 HW (NVDLA)
Flex Flex SW       any                         any                         host SW (MKL /
                                                                           cuSPARSE)
Flex Flex HW       any                         any                         MINT (this work)
=================  ==========================  ==========================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import product
from typing import Iterator

from repro.formats.registry import Format
from repro.sage.spaces import (
    MATRIX_ACF_STATIONARY,
    MATRIX_ACF_STREAMED,
    MATRIX_MCF,
)

F = Format


class ConverterKind(Enum):
    """How (and where) a policy converts between MCF and ACF."""

    NONE = "none"  # MCF must equal ACF
    HW = "hw"  # on-accelerator converter (MINT-class)
    SW = "sw"  # host library + PCIe round trip


@dataclass(frozen=True)
class AcceleratorPolicy:
    """One Table II row: allowed format pairs and the conversion mechanism."""

    name: str
    category: str
    mcf_pairs: tuple[tuple[Format, Format], ...]
    acf_pairs: tuple[tuple[Format, Format], ...]
    converter: ConverterKind
    reference: str = ""
    #: Whether the design's PEs skip zero-valued operands (TPU and NVDLA
    #: compute on zeros; sparse accelerators and this work do not).
    zero_skipping: bool = True

    def candidates(
        self,
    ) -> Iterator[tuple[tuple[Format, Format], tuple[Format, Format]]]:
        """All (MCF pair, ACF pair) combinations the policy admits."""
        for mcf, acf in product(self.mcf_pairs, self.acf_pairs):
            if self.converter is ConverterKind.NONE and mcf != acf:
                continue
            yield mcf, acf


def _pairs(*items: tuple[Format, Format]) -> tuple[tuple[Format, Format], ...]:
    return tuple(items)


_FULL_MCF = tuple(product(MATRIX_MCF, MATRIX_MCF))
_FULL_ACF = tuple(product(MATRIX_ACF_STREAMED, MATRIX_ACF_STATIONARY))

TPU_POLICY = AcceleratorPolicy(
    name="Fix_Fix_None",
    category="Fix Fix None",
    mcf_pairs=_pairs((F.DENSE, F.DENSE)),
    acf_pairs=_pairs((F.DENSE, F.DENSE)),
    converter=ConverterKind.NONE,
    reference="TPUv1 [4]",
    zero_skipping=False,
)

EIE_POLICY = AcceleratorPolicy(
    name="Fix_Fix_None2",
    category="Fix Fix None",
    mcf_pairs=_pairs((F.CSR, F.DENSE), (F.DENSE, F.CSC)),
    acf_pairs=_pairs((F.CSR, F.DENSE), (F.DENSE, F.CSC)),
    converter=ConverterKind.NONE,
    reference="EIE [14]",
)

SIGMA_POLICY = AcceleratorPolicy(
    name="Fix_Flex_HW",
    category="Fix Flex HW",
    mcf_pairs=_pairs((F.ZVC, F.ZVC)),
    acf_pairs=_pairs(
        (F.CSR, F.DENSE), (F.DENSE, F.CSC), (F.DENSE, F.DENSE)
    ),
    converter=ConverterKind.HW,
    reference="SIGMA [19]",
)

EXTENSOR_POLICY = AcceleratorPolicy(
    name="Flex_Flex_None",
    category="Flex Flex None",
    mcf_pairs=tuple(product((F.CSR, F.DENSE), (F.DENSE, F.CSC))),
    acf_pairs=tuple(product((F.CSR, F.DENSE), (F.DENSE, F.CSC))),
    converter=ConverterKind.NONE,
    reference="ExTensor [5]",
)

NVDLA_POLICY = AcceleratorPolicy(
    name="Flex_Fix_HW",
    category="Flex Fix HW",
    mcf_pairs=tuple(product((F.ZVC, F.DENSE), (F.ZVC, F.DENSE))),
    acf_pairs=_pairs((F.DENSE, F.DENSE)),
    converter=ConverterKind.HW,
    reference="NVDLA [22]",
    zero_skipping=False,
)

SW_POLICY = AcceleratorPolicy(
    name="Flex_Flex_SW",
    category="Flex Flex SW",
    mcf_pairs=_FULL_MCF,
    acf_pairs=_FULL_ACF,
    converter=ConverterKind.SW,
    reference="Intel MKL / cuSPARSE",
)

THIS_WORK_POLICY = AcceleratorPolicy(
    name="Flex_Flex_HW",
    category="Flex Flex HW",
    mcf_pairs=_FULL_MCF,
    acf_pairs=_FULL_ACF,
    converter=ConverterKind.HW,
    reference="This work (MINT + SAGE)",
)

#: Table II, in its printed order.
ALL_POLICIES: tuple[AcceleratorPolicy, ...] = (
    TPU_POLICY,
    EIE_POLICY,
    SIGMA_POLICY,
    EXTENSOR_POLICY,
    NVDLA_POLICY,
    SW_POLICY,
    THIS_WORK_POLICY,
)


def policy_by_name(name: str) -> AcceleratorPolicy:
    """Look up a Table II policy by its design name."""
    for policy in ALL_POLICIES:
        if policy.name == name:
            return policy
    raise KeyError(f"unknown policy {name!r}")
