"""Workload definitions and generators.

* :mod:`repro.workloads.spec` — kernel/shape/nnz descriptors consumed by
  SAGE and the policy evaluator;
* :mod:`repro.workloads.synthetic` — seeded uniform-random sparse operand
  generators (the paper's own performance model assumes uniform-random
  placement, Sec. VI);
* :mod:`repro.workloads.suite` — the 13 Table III workloads with their
  exact published dimensions and nonzero counts;
* :mod:`repro.workloads.dnn` — the Fig. 14a ResNet-50/CIFAR-10 convolution
  layers with their published sparsities, lowered to GEMMs via im2col.
"""

from repro.workloads.dnn import CONV_LAYERS, ConvLayer, PruningStrategy, layer_gemm
from repro.workloads.spec import (
    Kernel,
    MatrixWorkload,
    TensorWorkload,
    workload_from_dict,
)
from repro.workloads.suite import (
    MATRIX_SUITE,
    TENSOR_SUITE,
    SuiteEntry,
    suite_by_name,
)
from repro.workloads.synthetic import random_sparse_matrix, random_sparse_tensor

__all__ = [
    "Kernel",
    "MatrixWorkload",
    "TensorWorkload",
    "workload_from_dict",
    "random_sparse_matrix",
    "random_sparse_tensor",
    "MATRIX_SUITE",
    "TENSOR_SUITE",
    "SuiteEntry",
    "suite_by_name",
    "CONV_LAYERS",
    "ConvLayer",
    "PruningStrategy",
    "layer_gemm",
]
