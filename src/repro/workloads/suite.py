"""The Table III evaluation suite, dimensions and nonzero counts verbatim.

Each entry also records the MCF/ACF combinations SAGE chose in the paper
(left block = SpGEMM for matrices / SpTTM for tensors; right block = SpMM /
MTTKRP), so the Table III reproduction bench can print paper-vs-ours side
by side.

Factor operands follow Sec. VII-A: "The factorizing matrices that are
multiplied with the tensors are generalized to have dimensions of
K by (M/2)" — the second operand is K x (M/2); it shares A's density for
the SpGEMM scenario and is dense for the SpMM scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formats.registry import Format
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload


@dataclass(frozen=True)
class PaperChoice:
    """One MCF/ACF quadruple as printed in Table III."""

    mcf_t: Format
    mcf_f: Format
    acf_t: Format
    acf_f: Format


@dataclass(frozen=True)
class SuiteEntry:
    """A Table III row: workload stats plus the paper's format decisions."""

    name: str
    source: str
    dims: tuple[int, ...]
    nnz: int
    density_pct: float
    spgemm_choice: PaperChoice  # blue/tan shading (sparse second operand)
    spmm_choice: PaperChoice  # grey/yellow shading (dense second operand)

    @property
    def is_tensor(self) -> bool:
        """3-D workloads (BrainQ / Crime / Uber)."""
        return len(self.dims) == 3

    # --------------------------------------------------------- workloads ---
    def matrix_workload(self, kernel: Kernel) -> MatrixWorkload:
        """Build the SpGEMM or SpMM workload for a 2-D entry."""
        if self.is_tensor:
            raise ValueError(f"{self.name} is a tensor entry")
        m, k = self.dims
        n = max(1, m // 2)
        if kernel is Kernel.SPMM:
            nnz_b = k * n
        elif kernel is Kernel.SPGEMM:
            nnz_b = max(1, min(k * n, round(self.nnz / (m * k) * k * n)))
        else:
            raise ValueError(f"unsupported matrix kernel {kernel}")
        return MatrixWorkload(
            name=f"{self.name}-{kernel.value}",
            kernel=kernel,
            m=m,
            k=k,
            n=n,
            nnz_a=self.nnz,
            nnz_b=nnz_b,
        )

    def tensor_workload(self, kernel: Kernel) -> TensorWorkload:
        """Build the SpTTM or MTTKRP workload for a 3-D entry."""
        if not self.is_tensor:
            raise ValueError(f"{self.name} is a matrix entry")
        if kernel not in (Kernel.SPTTM, Kernel.MTTKRP):
            raise ValueError(f"unsupported tensor kernel {kernel}")
        return TensorWorkload(
            name=f"{self.name}-{kernel.value}",
            kernel=kernel,
            shape=self.dims,  # type: ignore[arg-type]
            nnz=self.nnz,
            rank=max(1, self.dims[0] // 2),
        )


def _c(mt: Format, mf: Format, at: Format, af: Format) -> PaperChoice:
    return PaperChoice(mt, mf, at, af)


F = Format

#: Table III, matrix rows (SuiteSparse [1] and DeepBench [35]).
MATRIX_SUITE: tuple[SuiteEntry, ...] = (
    SuiteEntry(
        "journals", "SuiteSparse", (124, 124), 12_068, 78.5,
        _c(F.ZVC, F.ZVC, F.DENSE, F.DENSE), _c(F.ZVC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "bibd_17_8", "SuiteSparse", (171, 92_000), 3_300_000, 20.9,
        _c(F.RLC, F.CSC, F.DENSE, F.CSC), _c(F.RLC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "dendrimer", "SuiteSparse", (730, 730), 63_000, 11.8,
        _c(F.RLC, F.CSC, F.DENSE, F.CSC), _c(F.RLC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "speech1", "DeepBench", (11_000, 3_600), 3_900_000, 10.0,
        _c(F.RLC, F.CSC, F.DENSE, F.CSC), _c(F.RLC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "speech2", "DeepBench", (7_700, 2_600), 1_000_000, 5.0,
        _c(F.RLC, F.CSC, F.DENSE, F.CSC), _c(F.RLC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "nd3k", "SuiteSparse", (9_000, 9_000), 3_300_000, 4.1,
        _c(F.RLC, F.CSC, F.DENSE, F.CSC), _c(F.RLC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "cavity14", "SuiteSparse", (2_600, 2_600), 76_000, 1.1,
        _c(F.CSR, F.CSC, F.DENSE, F.CSC), _c(F.CSR, F.DENSE, F.CSR, F.DENSE),
    ),
    SuiteEntry(
        "model3", "SuiteSparse", (1_600, 4_600), 24_000, 0.32,
        _c(F.CSR, F.CSC, F.CSR, F.CSC), _c(F.CSR, F.DENSE, F.CSR, F.DENSE),
    ),
    SuiteEntry(
        "cat_ears_4_4", "SuiteSparse", (5_200, 13_200), 40_000, 0.057,
        _c(F.CSR, F.CSC, F.CSR, F.CSC), _c(F.CSR, F.DENSE, F.CSR, F.DENSE),
    ),
    SuiteEntry(
        "m3plates", "SuiteSparse", (11_000, 11_000), 6_600, 0.0054,
        _c(F.COO, F.COO, F.CSR, F.CSC), _c(F.COO, F.DENSE, F.CSR, F.DENSE),
    ),
)

#: Table III, tensor rows (BrainQ [36], FROSTT [3]).
TENSOR_SUITE: tuple[SuiteEntry, ...] = (
    SuiteEntry(
        "BrainQ", "BrainQ", (60, 70_000, 9), 11_000_000, 29.1,
        _c(F.ZVC, F.DENSE, F.DENSE, F.DENSE), _c(F.ZVC, F.DENSE, F.DENSE, F.DENSE),
    ),
    SuiteEntry(
        "Crime", "FROSTT", (6_200, 24, 2_500), 5_200_000, 1.5,
        _c(F.CSF, F.DENSE, F.CSF, F.DENSE), _c(F.CSF, F.DENSE, F.CSF, F.DENSE),
    ),
    SuiteEntry(
        "Uber", "FROSTT", (4_400, 1_100, 1_700), 3_300_000, 0.039,
        _c(F.COO, F.DENSE, F.CSF, F.DENSE), _c(F.COO, F.DENSE, F.CSF, F.DENSE),
    ),
)


#: Name index over both suites, built once at import time.
_SUITE_INDEX: dict[str, SuiteEntry] = {
    entry.name: entry for entry in MATRIX_SUITE + TENSOR_SUITE
}


def suite_by_name(name: str) -> SuiteEntry:
    """Look up a Table III entry by its workload name."""
    try:
        return _SUITE_INDEX[name]
    except KeyError:
        raise KeyError(f"unknown suite workload {name!r}") from None
