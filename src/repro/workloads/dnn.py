"""The Fig. 14 CNN case study: ResNet-50/CIFAR-10 convolution layers.

Fig. 14a publishes, for eight selected convolution layers, the layer shapes
and the input-activation / weight sparsities under three regimes: no
pruning, 50% per-layer L1 pruning (0.29% accuracy loss) and 70% global L1
pruning (0.74% loss).  We encode that table verbatim — it fully determines
the GEMM workloads the EDP evaluation consumes — instead of re-training the
network (see DESIGN.md substitution table).

Convolutions are lowered to GEMM with im2col, as the paper does ("Like TPU,
we use im2col"), with stride 1 and batch size 64.  On the weight-stationary
accelerator the *weights are the stationary operand B* — Sec. VII-D: "the
weight matrix (B) is much sparser, and will utilize less PE buffer space
when stored as CSC":

    A = im2col activations:  (H*W*batch) x (C*R*S)   (sparse after ReLU)
    B = pruned weights:      (C*R*S) x K_out         (sparse after pruning)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.workloads.spec import Kernel, MatrixWorkload

BATCH_SIZE = 64
"""Sec. VII-D: "For our evaluations, we use a batch size of 64."""


class PruningStrategy(Enum):
    """The three Fig. 14 sparsity regimes."""

    NORMAL = "normal"
    LAYER_50 = "50% prune (layer)"
    GLOBAL_70 = "70% prune (global)"


@dataclass(frozen=True)
class ConvLayer:
    """One Fig. 14a row.

    Sparsities are stored as *fractions of zeros* per regime, in the order
    (NORMAL, LAYER_50, GLOBAL_70).
    """

    layer_id: int
    in_channels: int  # C
    out_channels: int  # K
    spatial: tuple[int, int]  # (H, W)
    filter_shape: tuple[int, int]  # (R, S)
    act_sparsity: tuple[float, float, float]
    weight_sparsity: tuple[float, float, float]

    def sparsities(self, strategy: PruningStrategy) -> tuple[float, float]:
        """(activation, weight) zero fractions under *strategy*."""
        idx = list(PruningStrategy).index(strategy)
        return self.act_sparsity[idx], self.weight_sparsity[idx]


#: Fig. 14a, verbatim (percentages converted to fractions).
CONV_LAYERS: tuple[ConvLayer, ...] = (
    ConvLayer(1, 3, 64, (32, 32), (3, 3),
              (0.0, 0.0, 0.0), (0.0, 0.500, 0.454)),
    ConvLayer(2, 64, 256, (32, 32), (1, 1),
              (0.566, 0.555, 0.550), (0.0, 0.500, 0.748)),
    ConvLayer(3, 128, 512, (16, 16), (1, 1),
              (0.631, 0.592, 0.604), (0.0, 0.500, 0.634)),
    ConvLayer(4, 128, 128, (16, 16), (3, 3),
              (0.526, 0.520, 0.523), (0.0, 0.500, 0.353)),
    ConvLayer(5, 1024, 256, (8, 8), (1, 1),
              (0.602, 0.570, 0.598), (0.0, 0.500, 0.499)),
    ConvLayer(6, 256, 256, (8, 8), (3, 3),
              (0.594, 0.565, 0.570), (0.0, 0.500, 0.383)),
    ConvLayer(7, 512, 2048, (4, 4), (1, 1),
              (0.640, 0.610, 0.410), (0.0, 0.500, 0.882)),
    ConvLayer(8, 512, 512, (4, 4), (3, 3),
              (0.492, 0.478, 0.436), (0.0, 0.500, 0.984)),
)


def layer_gemm(
    layer: ConvLayer,
    strategy: PruningStrategy,
    batch: int = BATCH_SIZE,
) -> MatrixWorkload:
    """Lower one convolution layer to its im2col GEMM workload.

    A = im2col activations (H*W*batch x C*R*S), B = pruned weights
    (C*R*S x K_out).  With stride 1 and same padding the output spatial
    size equals the input's.
    """
    act_sp, w_sp = layer.sparsities(strategy)
    m = layer.spatial[0] * layer.spatial[1] * batch
    k = layer.in_channels * layer.filter_shape[0] * layer.filter_shape[1]
    n = layer.out_channels
    nnz_a = round((1.0 - act_sp) * m * k)
    nnz_b = round((1.0 - w_sp) * k * n)
    kernel = Kernel.SPGEMM if (w_sp > 0 and act_sp > 0) else Kernel.SPMM
    return MatrixWorkload(
        name=f"conv{layer.layer_id}-{strategy.name.lower()}",
        kernel=kernel,
        m=m,
        k=k,
        n=n,
        nnz_a=max(1, nnz_a),
        nnz_b=max(1, nnz_b),
    )
