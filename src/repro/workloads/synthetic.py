"""Seeded uniform-random sparse operand generators.

Stands in for SuiteSparse / DeepBench / FROSTT / BrainQ downloads: the
paper's models consume only (dimensions, nnz, dtype), and its performance
model explicitly assumes "a uniform random distribution of the dense
values" (Sec. VI), so uniform-random operands with the exact published
dimensions and nonzero counts exercise the same behaviour.

Values are drawn from (0.1, 1] so no sampled nonzero collapses to zero.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_probability


def _sample_distinct(total: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample *count* distinct linear indices from [0, total).

    Over-samples with replacement and deduplicates, looping until enough
    distinct positions exist — O(count) memory even for huge *total*
    (``rng.choice(..., replace=False)`` would materialize the whole range).
    """
    if count < 0 or count > total:
        raise ValueError(f"cannot sample {count} distinct from {total}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count == total:
        return np.arange(total, dtype=np.int64)
    if count > total // 2:
        # Sample the complement instead: it is the smaller set.
        holes = _sample_distinct(total, total - count, rng)
        mask = np.ones(total, dtype=bool)
        mask[holes] = False
        return np.flatnonzero(mask).astype(np.int64)
    chosen = np.unique(rng.integers(0, total, size=int(count * 1.2) + 16))
    while len(chosen) < count:
        extra = rng.integers(0, total, size=int(count * 0.2) + 16)
        chosen = np.unique(np.concatenate([chosen, extra]))
    rng.shuffle(chosen)
    return np.sort(chosen[:count]).astype(np.int64)


def random_sparse_matrix(
    m: int,
    k: int,
    nnz: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Dense array of shape (m, k) with exactly *nnz* uniform nonzeros."""
    rng = np.random.default_rng(rng)
    out = np.zeros(m * k, dtype=np.float64)
    idx = _sample_distinct(m * k, nnz, rng)
    out[idx] = 0.1 + 0.9 * rng.random(len(idx))
    return out.reshape(m, k)


def random_sparse_tensor(
    shape: tuple[int, int, int],
    nnz: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Dense 3-D array with exactly *nnz* uniform nonzeros."""
    rng = np.random.default_rng(rng)
    size = int(np.prod(shape))
    out = np.zeros(size, dtype=np.float64)
    idx = _sample_distinct(size, nnz, rng)
    out[idx] = 0.1 + 0.9 * rng.random(len(idx))
    return out.reshape(shape)


def random_dense_matrix(
    m: int, k: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Fully dense random matrix in (0.1, 1]."""
    rng = np.random.default_rng(rng)
    return 0.1 + 0.9 * rng.random((m, k))


def bernoulli_sparse_matrix(
    m: int,
    k: int,
    density: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Matrix whose entries are independently nonzero with prob. *density*.

    Used where the paper specifies a density region rather than an exact
    nonzero count (the Fig. 14 pruning sweeps).
    """
    check_probability(density, "density")
    rng = np.random.default_rng(rng)
    mask = rng.random((m, k)) < density
    return (0.1 + 0.9 * rng.random((m, k))) * mask
