"""Workload descriptors: what SAGE and the policy evaluator consume.

A workload is summary statistics only — dimensions, nonzero counts,
datatype — matching the paper's cost/performance model inputs ("workload
size, datatype, density region", Sec. VI).  Concrete operands are sampled
separately by :mod:`repro.workloads.synthetic` when the cycle simulator or
a functional kernel needs real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Mapping


class Kernel(Enum):
    """Tensor kernels of Fig. 2."""

    GEMM = "GEMM"
    SPMV = "SpMV"
    SPMM = "SpMM"
    SPGEMM = "SpGEMM"
    SPTTM = "SpTTM"
    MTTKRP = "MTTKRP"


@dataclass(frozen=True)
class MatrixWorkload:
    """A (sparse) matrix x matrix workload: A is M x K, B is K x N.

    ``nnz_b`` equal to ``k * n`` makes B dense (SpMM); smaller makes the
    kernel SpGEMM.
    """

    name: str
    kernel: Kernel
    m: int
    k: int
    n: int
    nnz_a: int
    nnz_b: int
    dtype_bits: int = 32

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"{self.name}: dimensions must be positive")
        if not 0 <= self.nnz_a <= self.m * self.k:
            raise ValueError(f"{self.name}: nnz_a out of range")
        if not 0 <= self.nnz_b <= self.k * self.n:
            raise ValueError(f"{self.name}: nnz_b out of range")

    @property
    def density_a(self) -> float:
        """Density of operand A."""
        return self.nnz_a / (self.m * self.k)

    @property
    def density_b(self) -> float:
        """Density of operand B."""
        return self.nnz_b / (self.k * self.n)

    @property
    def b_is_dense(self) -> bool:
        """True when operand B has no zeros (SpMM-style workloads)."""
        return self.nnz_b == self.k * self.n

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe wire form (inverse of :meth:`from_dict`)."""
        return {
            "kind": "matrix",
            "name": self.name,
            "kernel": self.kernel.value,
            "m": self.m,
            "k": self.k,
            "n": self.n,
            "nnz_a": self.nnz_a,
            "nnz_b": self.nnz_b,
            "dtype_bits": self.dtype_bits,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MatrixWorkload":
        """Rebuild a workload from its :meth:`to_dict` form."""
        return cls(
            name=str(data["name"]),
            kernel=Kernel(data["kernel"]),
            m=int(data["m"]),
            k=int(data["k"]),
            n=int(data["n"]),
            nnz_a=int(data["nnz_a"]),
            nnz_b=int(data["nnz_b"]),
            dtype_bits=int(data.get("dtype_bits", 32)),
        )


@dataclass(frozen=True)
class TensorWorkload:
    """A sparse 3-D tensor kernel with dense factor matrices.

    Following Sec. VII-A, "the factorizing matrices that are multiplied with
    the tensors are generalized to have dimensions of K by (M/2)" — i.e.
    rank = first mode / 2.
    """

    name: str
    kernel: Kernel
    shape: tuple[int, int, int]
    nnz: int
    rank: int
    dtype_bits: int = 32

    def __post_init__(self) -> None:
        if min(self.shape) < 1:
            raise ValueError(f"{self.name}: dimensions must be positive")
        size = self.shape[0] * self.shape[1] * self.shape[2]
        if not 0 <= self.nnz <= size:
            raise ValueError(f"{self.name}: nnz out of range")
        if self.rank < 1:
            raise ValueError(f"{self.name}: rank must be positive")

    @property
    def size(self) -> int:
        """Logical element count."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    @property
    def density(self) -> float:
        """Tensor density."""
        return self.nnz / self.size

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe wire form (inverse of :meth:`from_dict`)."""
        return {
            "kind": "tensor",
            "name": self.name,
            "kernel": self.kernel.value,
            "shape": list(self.shape),
            "nnz": self.nnz,
            "rank": self.rank,
            "dtype_bits": self.dtype_bits,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TensorWorkload":
        """Rebuild a workload from its :meth:`to_dict` form."""
        shape = tuple(int(d) for d in data["shape"])
        if len(shape) != 3:
            raise ValueError(f"tensor workload shape must be 3-D, got {shape}")
        return cls(
            name=str(data["name"]),
            kernel=Kernel(data["kernel"]),
            shape=shape,  # type: ignore[arg-type]
            nnz=int(data["nnz"]),
            rank=int(data["rank"]),
            dtype_bits=int(data.get("dtype_bits", 32)),
        )


def workload_from_dict(
    data: Mapping[str, Any],
) -> MatrixWorkload | TensorWorkload:
    """Dispatch on the wire ``kind`` tag (``matrix`` / ``tensor``)."""
    kind = data.get("kind")
    if kind == "matrix":
        return MatrixWorkload.from_dict(data)
    if kind == "tensor":
        return TensorWorkload.from_dict(data)
    raise ValueError(f"unknown workload kind {kind!r}")
