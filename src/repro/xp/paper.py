"""The paper's figure/table/ablation suite as registered experiments.

Every ``benchmarks/bench_fig*/bench_table*/bench_ablation*`` seed script
lives here as one declarative :func:`~repro.xp.registry.experiment`: the
scenario matrix is the figure's sweep, the measure function produces one
JSON-safe cell, and the check holds the paper claims the seed script
asserted.  The old scripts remain as thin shims over this registry.

Conventions:

* **Session-first** — wherever a cell predicts or executes, it goes
  through the :class:`~repro.api.session.Session` the runner hands it
  (so ``repro xp run --backend tcp://...`` sweeps against a live server).
  The "this work" policy of the Fig. 12/13/14 comparisons *is*
  ``session.predict`` — pinned equal to the charitable
  ``Flex_Flex_HW`` policy evaluation inside :func:`_policy_edps`.
  Closed-form cells (storage models, area models) read shared hardware
  parameters from ``session.config``.
* **JSON-safe cells** — formats travel as their ``Format.value`` strings,
  never enum objects.
* **Smoke grids** — only the expensive experiments shrink under the
  smoke grid, and every check still holds on the smoke subset (pins that
  need the full grid are gated on ``not smoke``).
"""

from __future__ import annotations

import numpy as np

from repro.formats.registry import Format
from repro.workloads.spec import Kernel, MatrixWorkload
from repro.xp.registry import experiment

__all__: list[str] = []

# The compactness sweeps of Fig. 4 / Fig. 5 share these axes.
_FIG4_FMTS = (
    Format.DENSE, Format.COO, Format.CSR, Format.CSC, Format.RLC, Format.ZVC
)
_FIG4_DENSITIES = (
    1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0
)


def _cell(cells, **match):
    """The first result whose params carry every ``match`` item."""
    for params, result in cells:
        if all(params.get(k) == v for k, v in match.items()):
            return result
    raise AssertionError(f"no cell matching {match}")


# =========================================================== Fig. 4 ========
@experiment(
    name="fig04_compactness",
    kind="figure",
    anchor="Fig. 4",
    title="Relative DRAM-transfer energy of each MCF across density",
    matrix={"part": ("a-i-32bit", "a-ii-8bit", "b-i-1e-5", "b-ii-1e-2",
                     "crossover")},
    schema=("rows", "summary"),
    headline=("summary",),
)
def measure_fig04(session, params):
    from repro.analysis.compactness import (
        crossover_density,
        storage_bits,
        transfer_energy_sweep,
    )

    part = params["part"]
    if part.startswith("a-"):
        bits = int(part.rsplit("-", 1)[1].removesuffix("bit"))
        sweep = transfer_energy_sweep(
            (11_000, 11_000), list(_FIG4_DENSITIES), list(_FIG4_FMTS), bits
        )
        best = [
            min(_FIG4_FMTS, key=lambda f: sweep[f][i]).value
            for i in range(len(_FIG4_DENSITIES))
        ]
        rows = [
            [f"{d:.0e}"]
            + [round(sweep[f][i], 4) for f in _FIG4_FMTS]
            + [best[i]]
            for i, d in enumerate(_FIG4_DENSITIES)
        ]
        return {"rows": rows, "best": best,
                "summary": "best ladder " + "/".join(dict.fromkeys(best))}
    if part.startswith("b-"):
        density = 1e-5 if part == "b-i-1e-5" else 1e-2
        rows = []
        for k in (1_000, 10_000, 100_000, 1_000_000):
            dims = (1_000, k)
            nnz = max(1, int(density * dims[0] * dims[1]))
            bits = {f: storage_bits(f, dims, nnz, 16) for f in _FIG4_FMTS}
            ref = bits[Format.CSR]
            rows.append([f"K={k}"] + [round(bits[f] / ref, 4)
                                      for f in _FIG4_FMTS])
        return {"rows": rows, "summary": f"K-sweep at density {density:g}"}
    csr_zvc = crossover_density(Format.CSR, Format.ZVC, (11_000, 11_000))
    coo_csr = crossover_density(Format.COO, Format.CSR, (11_000, 11_000))
    return {
        "rows": [["CSR/ZVC", csr_zvc], ["COO/CSR", coo_csr]],
        "csr_zvc": csr_zvc,
        "coo_csr": coo_csr,
        "summary": f"CSR/ZVC at {csr_zvc:.3%}, COO/CSR at {coo_csr:.2e}",
    }


@measure_fig04.check
def check_fig04(cells, *, smoke):
    # Paper pins: the four stars of Fig. 4a-i.
    best = _cell(cells, part="a-i-32bit")["best"]
    stars = {1e-8: "COO", 0.10: "RLC", 0.50: "ZVC", 1.0: "Dense"}
    for d, expected in stars.items():
        got = best[_FIG4_DENSITIES.index(d)]
        assert got == expected, (d, got)
    cross = _cell(cells, part="crossover")
    assert 0.0 < cross["coo_csr"] < cross["csr_zvc"] < 1.0


# =========================================================== Fig. 5 ========
@experiment(
    name="fig05_gpu_acf",
    kind="figure",
    anchor="Fig. 5",
    title="GPU time / SM util / memory util of four ACF algorithms",
    matrix={"density": (1e-8, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0)},
    schema=("winner", "seconds", "sm_util", "mem_util"),
    headline=("winner",),
)
def measure_fig05(session, params):
    from repro.baselines.gpu import GpuModel, MMAlgorithm

    gpu = GpuModel()
    dims = (11_000, 11_000, 11_000)
    results = {a: gpu.mm_time(a, *dims, params["density"]) for a in MMAlgorithm}
    winner = min(results, key=lambda a: results[a].seconds)
    return {
        "winner": winner.value,
        "seconds": {a.value: r.seconds for a, r in results.items()},
        "sm_util": {a.value: r.sm_utilization for a, r in results.items()},
        "mem_util": {a.value: r.mem_utilization for a, r in results.items()},
    }


@measure_fig05.check
def check_fig05(cells, *, smoke):
    from repro.baselines.gpu import MMAlgorithm

    dense = MMAlgorithm.DENSE_DENSE_DENSE.value
    spgemm = MMAlgorithm.CSR_CSR_CSR.value
    for params, result in cells:
        if params["density"] >= 0.1:
            assert result["winner"] == dense, params
        elif params["density"] <= 1e-3:
            assert result["winner"] == spgemm, params


# =========================================================== Fig. 6 ========
_FIG6_ENCODERS = ("Dense", "CSR", "COO", "CSC")


def _fig6_operands():
    a = np.zeros((4, 8))
    a[0, 0], a[0, 2], a[0, 4], a[3, 5] = 1.0, 2.0, 3.0, 4.0
    b = np.zeros((8, 4))
    for r, c, v in [
        (0, 0, 1.0), (0, 1, 2.0), (2, 0, 3.0), (3, 2, 4.0),
        (4, 0, 5.0), (5, 2, 6.0), (5, 3, 7.0), (7, 1, 8.0),
    ]:
        b[r, c] = v
    return a, b


@experiment(
    name="fig06_walkthrough",
    kind="figure",
    anchor="Fig. 6",
    title="The walkthrough example, cycle-exact, over every ACF pair",
    matrix={"acf_a": _FIG6_ENCODERS, "acf_b": ("Dense", "CSC")},
    schema=("total_cycles", "macs", "utilization", "energy_j", "verified"),
    headline=("total_cycles", "utilization"),
)
def measure_fig06(session, params):
    from repro.accelerator import AcceleratorConfig, WeightStationarySimulator
    from repro.errors import SimulationError
    from repro.formats.registry import matrix_class

    acf_a = Format(params["acf_a"])
    acf_b = Format(params["acf_b"])
    a, b = _fig6_operands()
    sim = WeightStationarySimulator(AcceleratorConfig.walkthrough())
    a_enc = matrix_class(acf_a).from_dense(a)
    b_enc = matrix_class(acf_b).from_dense(b)
    out, rep = sim.run_gemm(a_enc, acf_a, b_enc, acf_b)
    if not np.allclose(out, a @ b):
        raise SimulationError(f"walkthrough output mismatch for {params}")
    c = rep.cycles
    stream = (
        sim.stream_cycles_only(a_enc, acf_a)
        if acf_a in (Format.DENSE, Format.CSR, Format.COO)
        else None
    )
    return {
        "stream_cycles": stream,
        "total_cycles": c.total_cycles,
        "macs": c.issued_macs,
        "utilization": round(c.utilization, 4),
        "energy_j": rep.energy.total_j,
        "verified": True,
    }


@measure_fig06.check
def check_fig06(cells, *, smoke):
    # Paper pins: 8 / 3 / 4 cycles to stream matrix A.
    pins = {"Dense": 8, "CSR": 3, "COO": 4}
    for acf, expected in pins.items():
        got = _cell(cells, acf_a=acf, acf_b="Dense")["stream_cycles"]
        assert got == expected, (acf, got)
    assert all(r["verified"] for _, r in cells)


# =========================================================== Fig. 7 ========
@experiment(
    name="fig07_pe_overhead",
    kind="figure",
    anchor="Fig. 7b",
    title="Area overhead of the extended PE over the base PE",
    matrix={"buffer_bytes": (128, 256, 512)},
    schema=("overhead", "base_mm2", "extension_mm2"),
    headline=("overhead",),
)
def measure_fig07(session, params):
    from repro.hardware.area import DEFAULT_AREA, pe_breakdown

    bd = pe_breakdown(
        DEFAULT_AREA, buffer_bytes=params["buffer_bytes"], lanes=8
    )
    return {
        "overhead": bd.extension / bd.base,
        "base_mm2": bd.base,
        "extension_mm2": bd.extension,
        "components": {
            "mac_lanes": bd.mac_lanes,
            "buffer": bd.buffer,
            "control": bd.control,
            "comparators": bd.comparators,
            "encoder": bd.encoder,
            "addr_gen": bd.addr_gen,
            "flags": bd.flags,
        },
    }


@measure_fig07.check
def check_fig07(cells, *, smoke):
    # Paper: ~10% at a 128 B buffer; bigger buffers dilute the extension.
    assert 0.08 <= _cell(cells, buffer_bytes=128)["overhead"] <= 0.12
    overheads = [r["overhead"] for p, r in sorted(
        cells, key=lambda c: c[0]["buffer_bytes"])]
    assert overheads == sorted(overheads, reverse=True)


# =========================================================== Fig. 9 ========
@experiment(
    name="fig09_prefix_sum",
    kind="figure",
    anchor="Fig. 9",
    title="The three prefix-sum (scan) designs overlaid on the accelerator",
    matrix={"design": ("serial_chain", "work_efficient", "highly_parallel")},
    schema=("pipeline_depth", "adders", "cycles", "overlay_area",
            "overlay_power"),
    headline=("pipeline_depth", "cycles"),
)
def measure_fig09(session, params):
    from repro.hardware.area import PrefixSumDesign, prefix_sum_overlay
    from repro.mint.blocks import PrefixSumUnit

    design = PrefixSumDesign(params["design"])
    rng = np.random.default_rng(0)
    data = rng.integers(0, 50, 4096)
    unit = PrefixSumUnit(design, width=32)
    result, cycles = unit.scan(data)
    assert np.array_equal(result, np.cumsum(data))
    overlay = prefix_sum_overlay(design)
    return {
        "pipeline_depth": unit.pipeline_depth,
        "adders": unit.adder_count,
        "cycles": int(cycles),
        "overlay_area": overlay.area_fraction,
        "overlay_power": overlay.power_fraction,
    }


@measure_fig09.check
def check_fig09(cells, *, smoke):
    depth = {p["design"]: r["pipeline_depth"] for p, r in cells}
    assert (
        depth["highly_parallel"]
        < depth["work_efficient"]
        < depth["serial_chain"]
    )


# ========================================================== Fig. 10 ========
@experiment(
    name="fig10_conversion",
    kind="figure",
    anchor="Fig. 10",
    title="Conversion wall time and energy: MINT vs MKL-CPU vs cuSPARSE",
    matrix={"route": ("CSR->CSC", "Dense->CSR")},
    schema=("speedup_cpu", "speedup_gpu", "energy_ratio", "rows"),
    headline=("speedup_cpu", "speedup_gpu", "energy_ratio"),
)
def measure_fig10(session, params):
    from repro.analysis.compactness import storage_bits
    from repro.baselines import CpuModel, GpuModel
    from repro.mint.cost import estimate_conversion_cost
    from repro.util.stats import geomean
    from repro.workloads import MATRIX_SUITE

    src, dst = (Format(f) for f in params["route"].split("->"))
    cpu, gpu = CpuModel(), GpuModel()
    rows, speed_cpu, speed_gpu, energy_ratio = [], [], [], []
    for entry in MATRIX_SUITE:
        m, k = entry.dims
        mint = estimate_conversion_cost(
            src, dst, size=m * k, nnz=entry.nnz, major_dim=m
        )
        bytes_in = storage_bits(src, (m, k), entry.nnz) / 8
        bytes_out = storage_bits(dst, (m, k), entry.nnz) / 8
        t_cpu = cpu.conversion_time(bytes_in, bytes_out)
        dev, h2d, d2h = gpu.conversion_time(bytes_in, bytes_out)
        t_gpu = dev + h2d + d2h
        mint_s = max(mint.seconds, 1e-9)
        speed_cpu.append(t_cpu / mint_s)
        speed_gpu.append(t_gpu / mint_s)
        energy_ratio.append(
            gpu.conversion_energy(t_gpu) / max(mint.energy_j, 1e-12)
        )
        rows.append([entry.name, mint.seconds, t_cpu, t_gpu])
    return {
        "speedup_cpu": geomean(speed_cpu),
        "speedup_gpu": geomean(speed_gpu),
        "energy_ratio": geomean(energy_ratio),
        "rows": rows,
    }


@measure_fig10.check
def check_fig10(cells, *, smoke):
    # Paper: MINT beats both hosts; ~3 orders of magnitude energy.
    csr2csc = _cell(cells, route="CSR->CSC")
    assert csr2csc["speedup_cpu"] > 1.0 and csr2csc["speedup_gpu"] > 1.0
    assert csr2csc["energy_ratio"] >= 1e3


# ========================================================== Fig. 11 ========
@experiment(
    name="fig11_transfer_ratio",
    kind="figure",
    anchor="Fig. 11",
    title="GPU H2D/D2H transfer share of conversion wall time",
    matrix={"entry": ("journals", "bibd_17_8", "dendrimer", "speech1",
                      "speech2", "nd3k", "cavity14", "model3",
                      "cat_ears_4_4", "m3plates")},
    schema=("share", "device_ms", "transfer_ms"),
    headline=("share",),
)
def measure_fig11(session, params):
    from repro.analysis.compactness import storage_bits
    from repro.baselines import GpuModel
    from repro.workloads import suite_by_name

    entry = suite_by_name(params["entry"])
    m, k = entry.dims
    bytes_in = storage_bits(Format.DENSE, (m, k), entry.nnz) / 8
    bytes_out = storage_bits(Format.CSR, (m, k), entry.nnz) / 8
    dev, h2d, d2h = GpuModel().conversion_time(bytes_in, bytes_out)
    return {
        "share": (h2d + d2h) / (dev + h2d + d2h),
        "device_ms": dev * 1e3,
        "transfer_ms": (h2d + d2h) * 1e3,
    }


@measure_fig11.check
def check_fig11(cells, *, smoke):
    from repro.util.stats import geomean

    shares = [r["share"] for _, r in cells]
    # Paper: "up to 75% ... geomean of roughly 50%".
    assert 0.30 <= geomean(shares) <= 0.70
    assert max(shares) <= 0.85


# ----------------------------------------------- shared policy evaluation --
def _policy_edps(session, wl: MatrixWorkload) -> dict[str, dict]:
    """Every Table II policy's best candidate on *wl*, ours via Session.

    The baselines run the charitable in-space search of
    :func:`repro.baselines.evaluate_all`; the ``Flex_Flex_HW`` ("this
    work") row is the live API path — ``session.predict`` — asserted
    consistent with the policy-space search it replaces.
    """
    from repro.baselines import ALL_POLICIES, evaluate_all

    baselines = tuple(p for p in ALL_POLICIES if p.name != "Flex_Flex_HW")
    results = evaluate_all(wl, policies=baselines)
    ours = session.predict(wl).best
    table = {
        name: {
            "edp": r.best.edp,
            "total_cycles": r.best.total_cycles,
            "energy_j": r.best.total_energy_j,
            "conv_energy_j": r.best.conv_energy_j,
            "ingest_cycles": r.best.ingest_cycles,
            "conv_cycles": r.best.conv_cycles,
            "compute_cycles": r.best.compute_cycles,
            "writeback_cycles": r.best.writeback_cycles,
            "mcf": [f.value for f in r.best.mcf],
            "acf": [f.value for f in r.best.acf],
        }
        for name, r in results.items()
    }
    table["Flex_Flex_HW"] = {
        "edp": ours.edp,
        "total_cycles": ours.total_cycles,
        "energy_j": ours.total_energy_j,
        "conv_energy_j": ours.conv_energy_j,
        "ingest_cycles": ours.ingest_cycles,
        "conv_cycles": ours.conv_cycles,
        "compute_cycles": ours.compute_cycles,
        "writeback_cycles": ours.writeback_cycles,
        "mcf": [f.value for f in ours.mcf],
        "acf": [f.value for f in ours.acf],
    }
    return table


# ========================================================== Fig. 12 ========
@experiment(
    name="fig12_breakdown",
    kind="figure",
    anchor="Fig. 12",
    title="Cycle/energy/EDP breakdown of SpGEMM across the Table II policies",
    matrix={"workload": ("journals", "speech2", "m3plates")},
    schema=("policies", "best", "worst"),
    headline=("best", "worst"),
)
def measure_fig12(session, params):
    from repro.workloads import suite_by_name

    wl = suite_by_name(params["workload"]).matrix_workload(Kernel.SPGEMM)
    policies = _policy_edps(session, wl)
    ranked = sorted(policies, key=lambda name: policies[name]["edp"])
    return {"policies": policies, "best": ranked[0], "worst": ranked[-1]}


@measure_fig12.check
def check_fig12(cells, *, smoke):
    # (a) journals: EIE (Fix_Fix_None2) is the worst of the seven.
    journals = _cell(cells, workload="journals")["policies"]
    assert max(journals, key=lambda n: journals[n]["edp"]) == "Fix_Fix_None2"
    # (c) m3plates: this work is >= 10x ahead of the fixed-dense design.
    m3 = _cell(cells, workload="m3plates")["policies"]
    assert m3["Flex_Flex_HW"]["edp"] * 10 < m3["Fix_Fix_None"]["edp"]
    # This work is the minimum everywhere.
    for _, result in cells:
        ours = result["policies"]["Flex_Flex_HW"]["edp"]
        assert all(
            ours <= p["edp"] * 1.0001 for p in result["policies"].values()
        )


# ========================================================== Fig. 13 ========
@experiment(
    name="fig13_normalized_edp",
    kind="figure",
    anchor="Fig. 13",
    title="SpGEMM+SpMM normalized EDP of every baseline vs this work",
    matrix={"entry": ("journals", "bibd_17_8", "dendrimer", "speech1",
                      "speech2", "nd3k", "cavity14", "model3",
                      "cat_ears_4_4", "m3plates")},
    smoke={"entry": ("journals", "dendrimer", "speech2", "cavity14",
                     "m3plates")},
    schema=("mean_edp", "conv_energy_j", "total_energy_j"),
    headline=("mean_edp",),
)
def measure_fig13(session, params):
    from repro.workloads import suite_by_name

    entry = suite_by_name(params["entry"])
    sums: dict[str, list[float]] = {}
    conv, total = 0.0, 0.0
    for kernel in (Kernel.SPGEMM, Kernel.SPMM):
        table = _policy_edps(session, entry.matrix_workload(kernel))
        for name, row in table.items():
            sums.setdefault(name, []).append(row["edp"])
        conv += table["Flex_Flex_HW"]["conv_energy_j"]
        total += table["Flex_Flex_HW"]["energy_j"]
    return {
        "mean_edp": {k: float(np.mean(v)) for k, v in sums.items()},
        "conv_energy_j": conv,
        "total_energy_j": total,
    }


@measure_fig13.check
def check_fig13(cells, *, smoke):
    from repro.analysis.edp import edp_table

    per_wl = {p["entry"]: r["mean_edp"] for p, r in cells}
    summary = edp_table(per_wl, "Flex_Flex_HW")
    # This work wins against every baseline on geomean (any grid).
    for name, s in summary.items():
        if name != "Flex_Flex_HW":
            assert s["geomean_reduction_pct"] > 0.0, name
    # Conversion energy is negligible (Sec. VII-C: 0.023% in the paper).
    conv = sum(r["conv_energy_j"] for _, r in cells)
    total = sum(r["total_energy_j"] for _, r in cells)
    assert conv / total < 0.01
    if not smoke:
        # Ordering pin: the paper's ranking of baselines, full suite only.
        assert (
            summary["Fix_Fix_None"]["geomean_reduction_pct"]
            > summary["Flex_Fix_HW"]["geomean_reduction_pct"]
            > summary["Fix_Fix_None2"]["geomean_reduction_pct"]
            > summary["Fix_Flex_HW"]["geomean_reduction_pct"]
        )


# ========================================================== Fig. 14 ========
_PRUNING = ("normal", "50% prune (layer)", "70% prune (global)")


@experiment(
    name="fig14_cnn",
    kind="figure",
    anchor="Fig. 14",
    title="ResNet-50/CIFAR-10 per-layer EDP under three pruning regimes",
    matrix={"layer": (1, 2, 3, 4, 5, 6, 7, 8), "strategy": _PRUNING},
    smoke={"layer": (1, 7, 8)},
    schema=("edp",),
    headline=("edp",),
)
def measure_fig14(session, params):
    from repro.workloads.dnn import CONV_LAYERS, PruningStrategy, layer_gemm

    layer = next(
        l for l in CONV_LAYERS if l.layer_id == params["layer"]
    )
    strategy = PruningStrategy(params["strategy"])
    table = _policy_edps(session, layer_gemm(layer, strategy))
    return {"edp": {name: row["edp"] for name, row in table.items()}}


@measure_fig14.check
def check_fig14(cells, *, smoke):
    totals: dict[str, float] = {}
    for _, result in cells:
        for name, edp in result["edp"].items():
            totals[name] = totals.get(name, 0.0) + edp
    ours = totals["Flex_Flex_HW"]
    # This work beats every baseline on the aggregate.
    assert all(ours <= v * 1.0001 for v in totals.values())
    # Global pruning helps most on the late, weight-heavy layers (7-8).
    for lid in (7, 8):
        by_strategy = {
            p["strategy"]: r["edp"]["Flex_Flex_HW"]
            for p, r in cells
            if p["layer"] == lid
        }
        assert (
            by_strategy["70% prune (global)"] <= by_strategy["normal"]
        ), lid
    # Early layer 1 has dense activations: pruning barely moves it.
    layer1 = {
        p["strategy"]: r["edp"]["Flex_Flex_HW"]
        for p, r in cells
        if p["layer"] == 1
    }
    ratio = layer1["50% prune (layer)"] / layer1["normal"]
    assert abs(ratio - 1.0) <= 0.35


# ====================================================== Tables I & II ======
@experiment(
    name="table01_02_policies",
    kind="table",
    anchor="Tables I/II",
    title="The MCF/ACF flexibility taxonomy and evaluated policies",
    matrix={"policy": ("Fix_Fix_None", "Fix_Fix_None2", "Fix_Flex_HW",
                       "Flex_Flex_None", "Flex_Fix_HW", "Flex_Flex_SW",
                       "Flex_Flex_HW")},
    schema=("category", "n_mcf", "n_acf", "n_candidates", "converter",
            "zero_skipping", "reference"),
    headline=("category", "n_candidates", "converter"),
)
def measure_table01_02(session, params):
    from repro.baselines import ALL_POLICIES

    policy = next(p for p in ALL_POLICIES if p.name == params["policy"])
    return {
        "category": policy.category,
        "n_mcf": len(policy.mcf_pairs),
        "n_acf": len(policy.acf_pairs),
        "n_candidates": len(list(policy.candidates())),
        "converter": policy.converter.value,
        "zero_skipping": policy.zero_skipping,
        "reference": policy.reference,
    }


@measure_table01_02.check
def check_table01_02(cells, *, smoke):
    from repro.baselines import ALL_POLICIES

    assert len(cells) == len(ALL_POLICIES) == 7
    # The taxonomy's ends: fully-fixed designs search one candidate,
    # this work searches the largest space of the seven.
    counts = {p["policy"]: r["n_candidates"] for p, r in cells}
    assert counts["Flex_Flex_HW"] == max(counts.values())


# ========================================================= Table III =======
_SUITE_NAMES = ("journals", "bibd_17_8", "dendrimer", "speech1", "speech2",
                "nd3k", "cavity14", "model3", "cat_ears_4_4", "m3plates",
                "BrainQ", "Crime", "Uber")


@experiment(
    name="table03_sage",
    kind="table",
    anchor="Table III",
    title="SAGE's MCF/ACF decisions for the 13-workload suite, paper vs ours",
    matrix={"entry": _SUITE_NAMES, "scenario": ("sparse", "dense")},
    schema=("hits", "fields", "kernel", "ours", "paper"),
    headline=("kernel", "hits", "fields"),
)
def measure_table03(session, params):
    from repro.workloads import suite_by_name

    entry = suite_by_name(params["entry"])
    sparse = params["scenario"] == "sparse"
    choice = entry.spgemm_choice if sparse else entry.spmm_choice
    if entry.is_tensor:
        kernel = Kernel.SPTTM if sparse else Kernel.MTTKRP
        decision = session.predict(entry.tensor_workload(kernel))
        matches = [
            choice.mcf_t is decision.mcf[0],
            choice.acf_t is decision.acf[0],
        ]
        paper = {"mcf_t": choice.mcf_t.value, "acf_t": choice.acf_t.value}
        ours = {"mcf_t": decision.mcf[0].value,
                "acf_t": decision.acf[0].value}
    else:
        kernel = Kernel.SPGEMM if sparse else Kernel.SPMM
        decision = session.predict(entry.matrix_workload(kernel))
        matches = [
            choice.mcf_t is decision.mcf[0],
            choice.acf_t is decision.acf[0],
            choice.acf_f is decision.acf[1],
        ]
        paper = {"mcf_t": choice.mcf_t.value, "acf_t": choice.acf_t.value,
                 "acf_f": choice.acf_f.value}
        ours = {"mcf_t": decision.mcf[0].value,
                "acf_t": decision.acf[0].value,
                "acf_f": decision.acf[1].value}
    return {
        "kernel": kernel.value,
        "hits": sum(matches),
        "fields": len(matches),
        "paper": paper,
        "ours": ours,
    }


@measure_table03.check
def check_table03(cells, *, smoke):
    hits = sum(r["hits"] for _, r in cells)
    fields = sum(r["fields"] for _, r in cells)
    # The seed's aggregate agreement floor with the published table.
    assert hits / fields >= 0.80, f"{hits}/{fields}"


# ================================================== Ablation: buffer =======
@experiment(
    name="ablation_buffer",
    kind="ablation",
    anchor="Sec. IV",
    title="Flexible vs rigid 50/50 PE buffer partitioning",
    matrix={"density": (0.6, 0.2, 0.05)},
    schema=("penalty", "cycles_flexible", "cycles_rigid"),
    headline=("penalty",),
)
def measure_ablation_buffer(session, params):
    import dataclasses

    from repro.accelerator import analytical_gemm_stats

    m = k = 4000
    n = 2000
    nnz = int(params["density"] * m * k)
    flexible = session.config
    rigid = dataclasses.replace(
        flexible, pe_buffer_bytes=flexible.pe_buffer_bytes // 2
    )
    flex_rep = analytical_gemm_stats(
        m, k, n, nnz, k * n, Format.DENSE, Format.DENSE, flexible
    )
    rigid_rep = analytical_gemm_stats(
        m, k, n, nnz, k * n, Format.DENSE, Format.DENSE, rigid
    )
    return {
        "penalty": rigid_rep.cycles.total_cycles
        / flex_rep.cycles.total_cycles,
        "cycles_flexible": flex_rep.cycles.total_cycles,
        "cycles_rigid": rigid_rep.cycles.total_cycles,
        "k_tiles": [flex_rep.cycles.k_tiles, rigid_rep.cycles.k_tiles],
    }


@measure_ablation_buffer.check
def check_ablation_buffer(cells, *, smoke):
    penalties = [r["penalty"] for _, r in cells]
    assert all(p >= 1.0 for p in penalties)
    assert max(penalties) > 1.2


# ==================================================== Ablation: DRAM =======
_DRAM_DENSITIES = (0.6, 0.2, 0.05, 0.005)


@experiment(
    name="ablation_dram",
    kind="ablation",
    anchor="Fig. 1b",
    title="DRAM bandwidth sensitivity of SAGE's streamed-operand MCF",
    matrix={"bandwidth_gbps": (16, 64, 256, 1024)},
    schema=("mcf",),
    headline=("mcf",),
)
def measure_ablation_dram(session, params):
    from repro.api.backends import LocalBackend
    from repro.api.session import Session
    from repro.hardware.dram import DramChannel
    from repro.sage.predictor import Sage

    # The axis varies a hardware parameter, so each cell wraps its own
    # Sage in a fresh Session — still the one facade, custom backend.
    backend = LocalBackend(
        Sage(dram=DramChannel(
            bandwidth_bytes_per_s=params["bandwidth_gbps"] * 1e9
        ))
    )
    mcf = {}
    with Session(backend) as bw_session:
        for density in _DRAM_DENSITIES:
            m = k = 2000
            wl = MatrixWorkload(
                name=f"bw{params['bandwidth_gbps']}-d{density:g}",
                kernel=Kernel.SPMM,
                m=m, k=k, n=1000,
                nnz_a=max(1, int(density * m * k)),
                nnz_b=k * 1000,
            )
            mcf[f"{density:g}"] = bw_session.predict(wl).mcf[0].value
    return {"mcf": mcf}


@measure_ablation_dram.check
def check_ablation_dram(cells, *, smoke):
    rank = {"Dense": 0, "ZVC": 1, "RLC": 1, "CSR": 2, "CSC": 2, "COO": 2}
    by_bw = sorted(cells, key=lambda c: c[0]["bandwidth_gbps"])
    # Extreme sparsity keeps its canonical formats at every bandwidth.
    for _, result in by_bw:
        assert result["mcf"]["0.005"] in ("CSR", "COO")
    # Scarce bandwidth never prefers a less compact format than abundant.
    for density in _DRAM_DENSITIES:
        ranks = [rank[r["mcf"][f"{density:g}"]] for _, r in by_bw]
        assert ranks == sorted(ranks, reverse=True) or len(set(ranks)) == 1


# =================================================== Ablation: dtype =======
_DTYPE_DENSITIES = (0.9, 0.5, 0.2, 0.01)


@experiment(
    name="ablation_dtype",
    kind="ablation",
    anchor="Fig. 4a-ii",
    title="Datatype width at the system level: MCF boundaries vs bits",
    matrix={"dtype_bits": (32, 16, 8)},
    schema=("mcf",),
    headline=("mcf",),
)
def measure_ablation_dtype(session, params):
    mcf = {}
    for density in _DTYPE_DENSITIES:
        m = k = 2000
        wl = MatrixWorkload(
            name=f"b{params['dtype_bits']}-d{density:g}",
            kernel=Kernel.SPMM,
            m=m, k=k, n=1000,
            nnz_a=max(1, int(density * m * k)),
            nnz_b=k * 1000,
            dtype_bits=params["dtype_bits"],
        )
        mcf[f"{density:g}"] = session.predict(wl).mcf[0].value
    return {"mcf": mcf}


@measure_ablation_dtype.check
def check_ablation_dtype(cells, *, smoke):
    rank = {"Dense": 0, "ZVC": 1, "RLC": 2, "CSR": 3, "CSC": 3, "COO": 4}
    by_bits = sorted(
        cells, key=lambda c: c[0]["dtype_bits"], reverse=True
    )  # 32 -> 8
    for density in _DTYPE_DENSITIES:
        ranks = [rank[r["mcf"][f"{density:g}"]] for _, r in by_bits]
        assert ranks == sorted(ranks, reverse=True) or len(set(ranks)) <= 2


# ============================================== Ablation: prefix sum =======
@experiment(
    name="ablation_prefix",
    kind="ablation",
    anchor="Sec. V-A / VII-B",
    title="Prefix-sum design inside MINT on real conversion scans",
    matrix={"design": ("serial_chain", "work_efficient", "highly_parallel")},
    schema=("cycles", "adds", "overlay_area", "overlay_power"),
    headline=("cycles", "overlay_area"),
)
def measure_ablation_prefix(session, params):
    from repro.hardware.area import PrefixSumDesign, prefix_sum_overlay
    from repro.mint.blocks import PrefixSumUnit
    from repro.workloads import MATRIX_SUITE

    design = PrefixSumDesign(params["design"])
    rng = np.random.default_rng(0)
    total_cycles = 0
    total_adds = 0
    for entry in MATRIX_SUITE[:6]:
        counts = rng.integers(0, 50, min(entry.dims[1], 50_000))
        unit = PrefixSumUnit(design, width=32)
        _, cycles = unit.scan(counts)
        total_cycles += cycles
        total_adds += unit.stats.int_adds
    overlay = prefix_sum_overlay(design)
    return {
        "cycles": int(total_cycles),
        "adds": int(total_adds),
        "overlay_area": overlay.area_fraction,
        "overlay_power": overlay.power_fraction,
    }


@measure_ablation_prefix.check
def check_ablation_prefix(cells, *, smoke):
    cycles = {p["design"]: r["cycles"] for p, r in cells}
    # The trade exists: the cheapest-overlay design is the slowest.
    assert cycles["serial_chain"] >= cycles["highly_parallel"]


# ===================================================== Ablation: RLC =======
_RLC_DENSITIES = (0.5, 0.2, 0.1, 0.05, 0.01, 0.001)


@experiment(
    name="ablation_rlc",
    kind="ablation",
    anchor="Fig. 3",
    title="RLC zero-run field width: metadata vs overflow padding",
    matrix={"run_bits": (2, 3, 4, 5, 6, 8, 12)},
    schema=("ratio",),
    headline=("ratio",),
)
def measure_ablation_rlc(session, params):
    from repro.analysis.compactness import storage_bits

    dims = (11_000, 11_000)
    size = dims[0] * dims[1]
    ratio = {}
    for density in _RLC_DENSITIES:
        nnz = int(density * size)
        rlc = storage_bits(
            Format.RLC, dims, nnz, 32, run_bits=params["run_bits"]
        )
        csr = storage_bits(Format.CSR, dims, nnz, 32)
        ratio[f"{density:g}"] = rlc / csr
    return {"ratio": ratio}


@measure_ablation_rlc.check
def check_ablation_rlc(cells, *, smoke):
    table = {p["run_bits"]: r["ratio"] for p, r in cells}
    # 5-bit runs keep RLC ahead of CSR at the 10% star...
    assert table[5]["0.1"] < 1.0
    # ...a 2-bit field pays heavy padding at lower density...
    assert table[2]["0.01"] > table[5]["0.01"]
    # ...and practical widths all lose in the CSR regime.
    assert all(table[rb]["0.001"] > 1.0 for rb in (2, 3, 4, 5, 6))
    assert table[12]["0.5"] > table[5]["0.5"]


# ================================================= Ablation: scaling =======
@experiment(
    name="ablation_scaling",
    kind="ablation",
    anchor="Sec. IV-B / VII-A",
    title="Fabric scaling: bus width shrinks streaming, PEs shrink rounds",
    matrix={"sweep": ("bus:128", "bus:256", "bus:512", "bus:1024",
                      "bus:2048", "pes:256", "pes:1024", "pes:2048",
                      "pes:4096", "pes:8192")},
    schema=("stream_cycles", "rounds", "total_cycles"),
    headline=("total_cycles",),
)
def measure_ablation_scaling(session, params):
    import dataclasses

    from repro.accelerator import analytical_gemm_stats

    knob, _, raw = params["sweep"].partition(":")
    value = int(raw)
    cfg = dataclasses.replace(
        session.config,
        **({"bus_bits": value} if knob == "bus" else {"num_pes": value}),
    )
    m = k = n = 4000
    rep = analytical_gemm_stats(
        m, k, n, int(0.05 * m * k), k * n, Format.CSR, Format.DENSE, cfg
    )
    return {
        "stream_cycles": rep.cycles.stream_cycles,
        "rounds": rep.cycles.rounds,
        "total_cycles": rep.cycles.total_cycles,
    }


@measure_ablation_scaling.check
def check_ablation_scaling(cells, *, smoke):
    stream = {
        int(p["sweep"].split(":")[1]): r["stream_cycles"]
        for p, r in cells
        if p["sweep"].startswith("bus:")
    }
    widths = sorted(stream)
    assert all(
        stream[a] >= stream[b] for a, b in zip(widths, widths[1:])
    )
    rounds = {
        int(p["sweep"].split(":")[1]): r["rounds"]
        for p, r in cells
        if p["sweep"].startswith("pes:")
    }
    assert rounds[256] > rounds[2048]
    assert rounds[4096] == rounds[8192] == 1


# ============================================== Ablation grids as seeds ====
def _register_tune_seeds() -> None:
    """Register the four hardware-ablation grids as tuner seed points.

    Each grid's swept knob becomes a one-knob-off-anchor
    :class:`~repro.tune.space.TunePoint`, so the ``tune_grid`` experiment
    below (and any `repro tune` run with seeds enabled) prices the same
    designs the ablations study — through shared artifact cells, never
    recomputed on either side.
    """
    import dataclasses

    from repro.tune.space import TunePoint, register_seed_points

    anchor = TunePoint()
    register_seed_points(
        "ablation_buffer",
        [anchor, dataclasses.replace(
            anchor, pe_buffer_bytes=anchor.pe_buffer_bytes // 2
        )],
    )
    register_seed_points(
        "ablation_dram",
        [
            dataclasses.replace(anchor, dram_gbps=float(gbps))
            for gbps in measure_ablation_dram.experiment.matrix[
                "bandwidth_gbps"
            ]
        ],
    )
    register_seed_points(
        "ablation_dtype",
        [
            dataclasses.replace(anchor, dtype_bits=int(bits))
            for bits in measure_ablation_dtype.experiment.matrix["dtype_bits"]
        ],
    )
    scaling_points = []
    for sweep in measure_ablation_scaling.experiment.matrix["sweep"]:
        knob, _, raw = sweep.partition(":")
        field = "bus_bits" if knob == "bus" else "num_pes"
        scaling_points.append(dataclasses.replace(anchor, **{field: int(raw)}))
    register_seed_points("ablation_scaling", scaling_points)


_register_tune_seeds()


def _tune_seed_param_axis() -> tuple:
    from repro.tune.space import seed_points

    return tuple(point.params() for point in seed_points())


# =================================================== Tune: seed grid =======
@experiment(
    name="tune_grid",
    kind="ablation",
    anchor="Sec. VII-A",
    title="Hardware-ablation grids priced as repro.tune evaluations",
    matrix={
        "point": _tune_seed_param_axis(),
        "suite": ("smoke",),
        "fidelity": ("analytical",),
    },
    schema=("cycles", "energy_j", "area_mm2", "edp"),
    headline=("cycles", "area_mm2", "edp"),
    version=1,
)
def measure_tune_grid(session, params):
    # The tuner's own objective, byte-for-byte: both sides build params
    # through TunePoint.params() and share artifact cells (same name,
    # version and canonical param JSON), so an xp run pre-seeds a tune
    # sweep and vice versa.
    from repro.tune.objective import evaluate_with_session

    return evaluate_with_session(session, params)


@measure_tune_grid.check
def check_tune_grid(cells, *, smoke):
    from repro.tune.space import TunePoint

    rows = {TunePoint.from_params(p["point"]): r for p, r in cells}
    anchor = rows[TunePoint()]
    assert all(r["cycles"] > 0 and r["area_mm2"] > 0 for r in rows.values())
    # Halving the anchor's PE buffer must shrink the die and never
    # accelerate it (the Sec. IV flexible-buffer ablation, relived as a
    # tune objective).
    halved = rows[TunePoint(pe_buffer_bytes=256)]
    assert halved["area_mm2"] < anchor["area_mm2"]
    assert halved["cycles"] >= anchor["cycles"]
