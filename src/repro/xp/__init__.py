"""repro.xp — the parallel experiment orchestrator.

Every figure, table and ablation of the paper registers here as one
declarative :class:`~repro.xp.registry.Experiment` (scenario matrix +
measure function + expected-shape schema + pinned-claim check); the
runner expands the scenario grid, executes it across the shared fork
pool through the :class:`~repro.api.session.Session` facade, caches
every cell in a content-hashed artifact store (``--resume`` skips
completed cells, ``--force`` invalidates), and renders markdown reports.

Entry points::

    repro xp list                 # registered experiments
    repro xp run --all --smoke    # the whole suite, CI-sized
    repro xp report               # re-render benchmarks/out/report.md

and programmatically::

    from repro.xp import RunConfig, run_experiments

    summary = run_experiments(["fig04_compactness"], RunConfig(smoke=True))
    assert summary.ok

See ``docs/benchmarking.md`` for the architecture of the store, the
resume semantics, and the floors methodology.
"""

from repro.xp.artifacts import ArtifactStore, default_store_root
from repro.xp.registry import (
    Experiment,
    ExperimentError,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
    load_paper_suite,
    register,
)
from repro.xp.runner import (
    RunConfig,
    RunSummary,
    default_out_dir,
    run_experiments,
)

__all__ = [
    "ArtifactStore",
    "Experiment",
    "ExperimentError",
    "RunConfig",
    "RunSummary",
    "all_experiments",
    "default_out_dir",
    "default_store_root",
    "experiment",
    "experiment_names",
    "get_experiment",
    "load_paper_suite",
    "register",
    "run_experiments",
]
