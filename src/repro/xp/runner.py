"""The grid runner: expand, cache-check, fan out, validate, check, record.

One :func:`run_experiments` call is the whole orchestration pipeline the
seed scripts hand-rolled twenty times:

1. **Expand** every selected experiment's scenario matrix into cells
   (smoke grid under ``smoke=True``).
2. **Plan** against the :class:`~repro.xp.artifacts.ArtifactStore`:
   ``force`` invalidates the experiments' cached cells first; ``resume``
   skips cells whose content hash is already stored.
3. **Execute** the pending cells across the shared
   :func:`repro.util.pool.fork_map` worker pool — *one* flat batch over
   all experiments, so a wide grid saturates the pool even when single
   experiments are narrow.  Every worker measures through a process-wide
   warm :class:`~repro.api.session.Session` (local or ``tcp://``
   backend); ``isolate=True`` instead gives every cell a cold session and
   cleared planner caches, reproducing the seed scripts'
   one-process-per-figure behavior (the serial baseline of
   ``benchmarks/bench_xp_runner.py``).
4. **Validate** each result against the experiment's expected-shape
   schema and persist it to the store.
5. **Check** each completed grid (cached cells included) against the
   paper's pinned claims.
6. **Record** the run into ``benchmarks/out/xp_runner.json`` and render
   the markdown report (:mod:`repro.xp.report`).

Example — a smoke run of two experiments, then a resume that re-executes
nothing::

    from repro.xp import RunConfig, run_experiments

    cfg = RunConfig(smoke=True, store_root=tmp_path, out_dir=tmp_path)
    first = run_experiments(["fig07_pe_overhead", "fig09_prefix_sum"], cfg)
    assert first.executed_cells > 0 and first.ok

    again = run_experiments(
        ["fig07_pe_overhead", "fig09_prefix_sum"],
        RunConfig(smoke=True, resume=True, store_root=tmp_path,
                  out_dir=tmp_path),
    )
    assert again.executed_cells == 0          # everything answered from cache
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import collect_spans, span
from repro.util.pool import fork_map
from repro.xp.artifacts import ArtifactStore
from repro.xp.registry import Experiment, get_experiment

__all__ = [
    "CellState",
    "ExperimentRun",
    "RunConfig",
    "RunSummary",
    "default_out_dir",
    "run_experiments",
]

#: Run records kept in ``xp_runner.json`` (oldest dropped first).
RUNS_KEPT = 40


def default_out_dir() -> Path:
    """Where reports and the runner journal land: ``benchmarks/out``."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "out"


@dataclass(frozen=True)
class RunConfig:
    """Knobs of one orchestrated run.

    Attributes
    ----------
    backend:
        Session backend every measure function goes through: ``"local"``
        or a ``tcp://host:port`` URL of a running ``repro serve``.
    processes:
        Fork-pool width (``None`` = one per CPU; ``1`` = serial).
    smoke:
        Use each experiment's smoke grid (CI-sized axes).
    resume:
        Skip cells already in the artifact store.
    force:
        Invalidate the selected experiments' cached cells first.
    isolate:
        Cold session + cleared planner caches per cell (the seed-script
        serial baseline; implies no cross-cell warmth).
    store_root, out_dir:
        Artifact store location and report/journal directory (defaults:
        ``benchmarks/out/xp/store`` and ``benchmarks/out``).
    report:
        Render markdown reports after the run.
    record:
        Append the run record to ``<out_dir>/xp_runner.json``.
    cached_only:
        Never execute: answer from the artifact store and *skip* cells
        that are not cached (``repro xp report``'s pure re-render mode).
        Skipped cells are excluded from the grid and counted on the
        summary; grid checks only run on complete grids.
    transport:
        Worker wire format for the flat cell batch: ``"auto"`` (the
        zero-copy operand plane where available), ``"shm"``, or
        ``"pickle"`` — see :func:`repro.util.pool.fork_map`.
    """

    backend: str = "local"
    processes: int | None = None
    smoke: bool = False
    resume: bool = False
    force: bool = False
    isolate: bool = False
    store_root: Path | str | None = None
    out_dir: Path | str | None = None
    report: bool = True
    record: bool = True
    cached_only: bool = False
    transport: str = "auto"


@dataclass
class CellState:
    """One grid cell after the run."""

    params: dict
    key: str
    result: dict | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    cached: bool = False
    #: Per-span breakdown of the cell's measure time
    #: (``{span_name: {"count": n, "seconds": total}}``); persisted with
    #: the artifact so report pages can show where grid time goes.
    spans: dict | None = None

    @property
    def ok(self) -> bool:
        """True when the cell measured (or resumed) successfully."""
        return self.error is None and self.result is not None


@dataclass
class ExperimentRun:
    """One experiment's completed grid plus its check verdict."""

    experiment: Experiment
    cells: list[CellState] = field(default_factory=list)
    check_error: str | None = None
    skipped: int = 0  # uncached cells dropped by cached_only mode

    @property
    def executed(self) -> int:
        """Cells measured fresh in this run."""
        return sum(1 for c in self.cells if not c.cached and c.ok)

    @property
    def cached(self) -> int:
        """Cells answered from the artifact store."""
        return sum(1 for c in self.cells if c.cached)

    @property
    def failed(self) -> int:
        """Cells whose measure raised or violated the schema."""
        return sum(1 for c in self.cells if not c.ok)

    @property
    def elapsed_s(self) -> float:
        """Summed per-cell measure time (excludes cached cells)."""
        return sum(c.elapsed_s for c in self.cells if not c.cached)

    @property
    def ok(self) -> bool:
        """True when every cell measured and the check passed."""
        return self.failed == 0 and self.check_error is None

    @property
    def status(self) -> str:
        """One-line verdict for reports: ok / failed / check failed."""
        if self.failed:
            return f"failed ({self.failed}/{len(self.cells)} cells)"
        if self.check_error is not None:
            return f"check failed: {self.check_error}"
        if self.skipped:
            return f"partial ({self.skipped} uncached cells skipped)"
        return "ok"


@dataclass
class RunSummary:
    """Aggregate of one :func:`run_experiments` call."""

    experiments: list[ExperimentRun]
    wall_s: float
    config: RunConfig

    @property
    def total_cells(self) -> int:
        """Grid size across every selected experiment."""
        return sum(len(e.cells) for e in self.experiments)

    @property
    def executed_cells(self) -> int:
        """Cells measured fresh across the run."""
        return sum(e.executed for e in self.experiments)

    @property
    def cached_cells(self) -> int:
        """Cells answered from the artifact store across the run."""
        return sum(e.cached for e in self.experiments)

    @property
    def failed_cells(self) -> int:
        """Failed cells across the run."""
        return sum(e.failed for e in self.experiments)

    @property
    def skipped_cells(self) -> int:
        """Uncached cells dropped by ``cached_only`` mode."""
        return sum(e.skipped for e in self.experiments)

    @property
    def serial_cell_s(self) -> float:
        """Summed per-cell measure time — a serial-execution proxy."""
        return sum(e.elapsed_s for e in self.experiments)

    @property
    def ok(self) -> bool:
        """True when every experiment's grid and check succeeded."""
        return all(e.ok for e in self.experiments)

    def record(self) -> dict:
        """The JSON run record appended to ``xp_runner.json``."""
        return {
            "when": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "experiments": [e.experiment.name for e in self.experiments],
            "backend": self.config.backend,
            "smoke": self.config.smoke,
            "resume": self.config.resume,
            "force": self.config.force,
            "isolate": self.config.isolate,
            "processes": self.config.processes,
            "transport": self.config.transport,
            "cells": self.total_cells,
            "executed_cells": self.executed_cells,
            "cached_cells": self.cached_cells,
            "failed_cells": self.failed_cells,
            "skipped_cells": self.skipped_cells,
            "wall_s": round(self.wall_s, 4),
            "serial_cell_s": round(self.serial_cell_s, 4),
            "ok": self.ok,
            "statuses": {
                e.experiment.name: e.status for e in self.experiments
            },
        }


# --------------------------------------------------------------- cell worker
@dataclass(frozen=True)
class _CellJob:
    """Picklable unit of work handed to the fork pool."""

    experiment: str
    params: tuple  # sorted (axis, value) pairs
    key: str
    backend: str
    isolate: bool


#: Per-worker-process warm sessions, keyed by backend spec.
_SESSIONS: dict = {}


def _session_for(backend: str, isolate: bool):
    from repro.api.session import Session

    if isolate:
        # The seed-script baseline: no warmth carried between cells.
        from repro.mint.cost import shared_planner

        shared_planner().cache_clear()
        return Session(backend), True
    session = _SESSIONS.get(backend)
    if session is None:
        session = _SESSIONS[backend] = Session(backend)
    return session, False


def _execute_cell(job: _CellJob) -> CellState:
    """Measure one cell: resolve, run through Session, validate."""
    params = dict(job.params)
    t0 = time.perf_counter()
    try:
        exp = get_experiment(job.experiment)
        session, transient = _session_for(job.backend, job.isolate)
        try:
            with collect_spans() as spans, span(
                "xp.cell", experiment=job.experiment
            ):
                measured = exp.measure(session, params)
            result = exp.validate_result(params, measured)
        finally:
            if transient:
                session.close()
        return CellState(
            params=params,
            key=job.key,
            result=result,
            elapsed_s=time.perf_counter() - t0,
            spans=spans.summary() or None,
        )
    except Exception as exc:  # noqa: BLE001 - cell failures are data
        return CellState(
            params=params,
            key=job.key,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - t0,
        )


# ------------------------------------------------------------------ the run
def run_experiments(
    names: list[str] | None,
    config: RunConfig | None = None,
) -> RunSummary:
    """Run a set of registered experiments (``None`` = all of them).

    See the module docstring for the pipeline; returns the
    :class:`RunSummary` (check ``summary.ok``).
    """
    from repro.xp.registry import experiment_names

    config = config or RunConfig()
    t0 = time.perf_counter()
    if names is None:
        names = experiment_names()
    # Duplicate selections would double-execute their grids and inflate
    # every count; first mention wins.
    names = list(dict.fromkeys(names))
    experiments = [get_experiment(n) for n in names]
    store = ArtifactStore(config.store_root)

    if config.force:
        for exp in experiments:
            store.invalidate(exp.name)

    resume = config.resume or config.cached_only
    runs = {exp.name: ExperimentRun(experiment=exp) for exp in experiments}
    owner: dict[str, str] = {}  # cell key -> experiment name
    pending: list[_CellJob] = []
    for exp in experiments:
        for params in exp.scenarios(smoke=config.smoke):
            key = store.cell_key(exp, params, backend=config.backend)
            cached = store.load(exp.name, key) if resume else None
            if cached is not None and "result" in cached:
                runs[exp.name].cells.append(
                    CellState(
                        params=params,
                        key=key,
                        result=cached["result"],
                        elapsed_s=float(cached.get("elapsed_s", 0.0)),
                        cached=True,
                        spans=cached.get("spans"),
                    )
                )
                continue
            if config.cached_only:
                runs[exp.name].skipped += 1
                continue
            owner[key] = exp.name
            pending.append(
                _CellJob(
                    experiment=exp.name,
                    params=tuple(sorted(params.items())),
                    key=key,
                    backend=config.backend,
                    isolate=config.isolate,
                )
            )
            runs[exp.name].cells.append(
                CellState(params=params, key=key)
            )  # placeholder, filled below

    def persist(cell: CellState) -> None:
        # Runs in this process as each result arrives, so an interrupted
        # batch keeps every completed cell for the next --resume.
        if cell.ok:
            store.store(
                owner[cell.key],
                cell.key,
                {
                    "experiment": owner[cell.key],
                    "params": cell.params,
                    "result": cell.result,
                    "elapsed_s": round(cell.elapsed_s, 6),
                    "spans": cell.spans,
                    "digest": store.config_digest(),
                },
            )

    outcomes = fork_map(
        _execute_cell,
        pending,
        processes=config.processes,
        consume=persist,
        transport=config.transport,
    )
    by_key = {o.key: o for o in outcomes}
    for run in runs.values():
        run.cells = [
            by_key.get(c.key, c) if not c.cached else c for c in run.cells
        ]

    for run in runs.values():
        if run.failed or run.skipped:
            continue  # incomplete grids cannot be checked
        if run.experiment.check is None:
            continue
        cells = [(c.params, c.result) for c in run.cells]
        try:
            run.experiment.check(cells, smoke=config.smoke)
        except Exception as exc:  # noqa: BLE001 - verdicts are data
            run.check_error = f"{type(exc).__name__}: {exc}"

    summary = RunSummary(
        experiments=list(runs.values()),
        wall_s=time.perf_counter() - t0,
        config=config,
    )
    if config.record:
        record_run(summary)
    if config.report:
        from repro.xp.report import write_reports

        write_reports(summary, out_dir=_out_dir(config))
    return summary


def _out_dir(config: RunConfig) -> Path:
    return (
        Path(config.out_dir) if config.out_dir is not None else default_out_dir()
    )


def runner_journal_path(config: RunConfig) -> Path:
    """Where this config's run records accumulate."""
    return _out_dir(config) / "xp_runner.json"


def record_run(summary: RunSummary) -> Path:
    """Append the run record to ``xp_runner.json`` (keeping the last 40).

    The document shape is ``{"runs": [...oldest→newest...],
    "comparison": {...}}``; the ``comparison`` block (serial seed scripts
    vs the orchestrator, written by ``benchmarks/bench_xp_runner.py``) is
    preserved across appends.
    """
    path = runner_journal_path(summary.config)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        doc = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        doc = {}
    runs = list(doc.get("runs", []))
    runs.append(summary.record())
    doc["runs"] = runs[-RUNS_KEPT:]
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path
