"""Content-hashed artifact store: cached cell results with resume semantics.

Every executed grid cell lands here as one JSON document, keyed by a
digest of everything the measurement depends on:

* the **experiment identity** — name plus its declared ``version`` (bump
  the version when the measure function changes semantics);
* the **scenario cell** — the canonical JSON of its parameter values
  (the workload fingerprint: each cell's params describe the workloads it
  measures);
* the **configuration digest** — the accelerator-config digest the serve
  layer already computes (:func:`repro.serve.fingerprint.config_digest`),
  plus the wire-schema version, so a hardware-parameter or schema change
  silently invalidates every stale cell;
* the **store format version** (:data:`STORE_VERSION`).

The **local** backend is deliberately not part of the key: decisions are
wire-identical across the in-process backend and a default-configured
server for the same workload and options (pinned by
``tests/api/test_session.py``).  A **remote** backend's spec *is* folded
in, because a server may be configured for a different prediction tier or
hardware config than the local default — a grid measured against
``tcp://host:port`` must not silently answer a local ``--resume`` (or
vice versa).

Example — the round trip the runner performs per cell::

    from repro.xp import ArtifactStore, get_experiment

    store = ArtifactStore(tmp_path)
    exp = get_experiment("fig07_pe_overhead")
    params = exp.scenarios()[0]
    key = store.cell_key(exp, params)
    if store.load(exp.name, key) is None:          # --resume miss
        record = {"params": params, "result": {...}, "elapsed_s": 0.1}
        store.store(exp.name, key, record)
    assert store.load(exp.name, key)["params"] == params
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.xp.registry import Experiment

__all__ = ["ArtifactStore", "STORE_VERSION", "default_store_root"]

#: Bump to invalidate every artifact at once (layout/semantic changes).
STORE_VERSION = 1


def default_store_root() -> Path:
    """The default on-disk location, ``benchmarks/out/xp/store``."""
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "out"
        / "xp"
        / "store"
    )


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ArtifactStore:
    """Filesystem-backed map of cell digests to measurement records.

    Layout: ``<root>/<experiment>/<key>.json``, one JSON document per
    cell — small, diffable, and safe to commit or upload as a CI
    artifact.  All operations are idempotent; concurrent writers of the
    same key converge via atomic ``os.replace``.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    # ----------------------------------------------------------------- keys
    def config_digest(self) -> str:
        """Digest of the run-wide configuration baked into every key."""
        from repro.api.options import WIRE_SCHEMA_VERSION
        from repro.accelerator.config import AcceleratorConfig
        from repro.serve.fingerprint import config_digest

        return (
            f"store{STORE_VERSION}-wire{WIRE_SCHEMA_VERSION}-"
            f"{config_digest(AcceleratorConfig.paper_default())}"
        )

    def cell_key(
        self, experiment: Experiment, params: Mapping, *,
        backend: str = "local",
    ) -> str:
        """Content hash of one scenario cell (see the module docstring)."""
        payload = _canonical(
            {
                "experiment": experiment.name,
                "version": experiment.version,
                "params": dict(params),
                "digest": self.config_digest(),
                # Local answers are backend-invariant; a server may run a
                # different tier/config, so its spec joins the key.
                "backend": None if backend == "local" else backend,
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def path(self, experiment_name: str, key: str) -> Path:
        """Where one cell record lives."""
        return self.root / experiment_name / f"{key}.json"

    # ------------------------------------------------------------------ I/O
    def load(self, experiment_name: str, key: str) -> dict | None:
        """The stored record for *key*, or ``None`` (miss / corrupt file)."""
        path = self.path(experiment_name, key)
        try:
            with path.open() as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn write is a miss, not an error: re-measure the cell.
            return None

    def store(self, experiment_name: str, key: str, record: dict) -> Path:
        """Atomically persist one cell record; returns its path."""
        path = self.path(experiment_name, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------- bulk lifecycle
    def invalidate(self, experiment_name: str | None = None) -> int:
        """Drop cached cells (one experiment, or everything); returns count."""
        removed = 0
        if experiment_name is not None:
            dirs = [self.root / experiment_name]
        elif self.root.exists():
            dirs = [d for d in self.root.iterdir() if d.is_dir()]
        else:
            dirs = []
        for directory in dirs:
            if not directory.exists():
                continue
            for path in directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                directory.rmdir()
            except OSError:  # pragma: no cover - non-empty (stray files)
                pass
        return removed

    def count(self, experiment_name: str | None = None) -> int:
        """Number of cached cells (one experiment, or everything)."""
        if experiment_name is not None:
            return len(list((self.root / experiment_name).glob("*.json")))
        if not self.root.exists():
            return 0
        return sum(
            1 for _ in self.root.glob("*/*.json")
        )
