"""Experiment registry: every paper figure/table/ablation as one object.

The seed reproduction regenerated the paper's evidence through ~20
disconnected ``benchmarks/bench_*.py`` scripts, each hand-rolling its own
workload setup and running serially.  This module replaces that with a
declarative registry: an :class:`Experiment` is a **scenario matrix** (the
cartesian product of parameter axes — one *cell* per combination), a
**measure function** (one cell → one JSON-safe result dict, executed
through the :class:`~repro.api.session.Session` facade), an
**expected-shape schema** (keys every cell result must carry), and an
optional grid-level **check** holding the paper's pinned claims.

Experiments self-register through the :func:`experiment` decorator, the
same extension pattern as the conversion-graph and streaming-protocol
registries below this layer::

    from repro.xp import experiment

    @experiment(
        name="fig99_example",
        kind="figure",
        anchor="Fig. 99",
        title="An example sweep",
        matrix={"density": (0.5, 0.05)},
        smoke={"density": (0.5,)},
        schema=("edp",),
        headline=("edp",),
    )
    def measure_fig99(session, params):
        from repro.workloads.spec import Kernel, MatrixWorkload
        wl = MatrixWorkload("x", Kernel.SPMM, m=64, k=64, n=32,
                            nnz_a=max(1, int(params["density"] * 64 * 64)),
                            nnz_b=64 * 32)
        return {"edp": session.predict(wl).best.edp}

    @measure_fig99.check
    def check_fig99(cells, *, smoke):
        assert all(r["edp"] > 0 for _, r in cells)

The runner (:mod:`repro.xp.runner`) expands the grid, executes cells
through the shared fork pool with artifact-store caching, and calls the
check on the complete grid (cached cells included).  The paper's suite of
experiments registers in :mod:`repro.xp.paper`; call
:func:`load_paper_suite` before listing.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError

__all__ = [
    "Experiment",
    "ExperimentError",
    "KINDS",
    "all_experiments",
    "experiment",
    "experiment_names",
    "get_experiment",
    "load_paper_suite",
    "register",
]

#: Recognized experiment kinds, in report order.
KINDS = ("figure", "table", "ablation")


class ExperimentError(ReproError):
    """Raised for malformed experiment declarations or lookups."""


#: One grid cell as handed to measure/check functions: parameter values
#: keyed by axis name.
Params = dict
#: ``(params, result)`` pairs of a completed grid, input to check fns.
Cells = Sequence[tuple[Params, dict]]

MeasureFn = Callable[..., dict]
CheckFn = Callable[..., None]


def _json_safe(value: Any, *, where: str) -> None:
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"{where} is not JSON-serializable: {exc}")


class Experiment:
    """One registered figure/table/ablation reproduction.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"fig04_compactness"`` (also the CLI handle:
        ``repro xp run fig04_compactness``).
    kind:
        ``"figure"``, ``"table"`` or ``"ablation"`` — the report groups
        by this.
    anchor:
        The paper anchor the experiment reproduces (``"Fig. 4"``,
        ``"Table III"``, ``"Sec. VII-B"`` ...).
    title:
        One-line human description.
    matrix:
        Scenario axes: ``{axis: (value, ...)}``.  The grid is the
        cartesian product, one cell per combination, expanded in
        declaration order.
    smoke:
        Axis overrides applied under the smoke grid (CI-sized runs);
        axes not named keep their full-matrix values.
    schema:
        Keys every cell result must contain — the expected shape of one
        measurement, validated by the runner before a result is stored.
    headline:
        Subset of schema keys surfaced in the roll-up report tables.
    measure:
        ``measure(session, params) -> dict``: one cell, through the
        Session facade.
    check:
        ``check(cells, *, smoke) -> None``: grid-level assertions over
        all ``(params, result)`` pairs, holding the paper's pinned
        claims.  Attached via ``@measure.check``.
    version:
        Folded into every cell's artifact key; bump it when the measure
        function's semantics change so stale cached results are not
        resumed.
    """

    def __init__(
        self,
        *,
        name: str,
        kind: str,
        anchor: str,
        title: str,
        matrix: Mapping[str, Iterable],
        measure: MeasureFn,
        smoke: Mapping[str, Iterable] | None = None,
        schema: Sequence[str] = (),
        headline: Sequence[str] = (),
        check: CheckFn | None = None,
        version: int = 1,
    ) -> None:
        if kind not in KINDS:
            raise ExperimentError(
                f"experiment {name!r}: unknown kind {kind!r} "
                f"(choose from {', '.join(KINDS)})"
            )
        if not matrix:
            raise ExperimentError(f"experiment {name!r}: empty scenario matrix")
        self.name = name
        self.kind = kind
        self.anchor = anchor
        self.title = title
        self.matrix = {axis: tuple(values) for axis, values in matrix.items()}
        self.smoke = {
            axis: tuple(values) for axis, values in (smoke or {}).items()
        }
        unknown = sorted(set(self.smoke) - set(self.matrix))
        if unknown:
            raise ExperimentError(
                f"experiment {name!r}: smoke overrides unknown axes "
                f"{', '.join(unknown)}"
            )
        for axis, values in {**self.matrix, **self.smoke}.items():
            if not values:
                raise ExperimentError(
                    f"experiment {name!r}: axis {axis!r} has no values"
                )
            _json_safe(list(values), where=f"experiment {name!r} axis {axis!r}")
        self.schema = tuple(schema)
        self.headline = tuple(headline)
        missing = sorted(set(self.headline) - set(self.schema))
        if missing and self.schema:
            raise ExperimentError(
                f"experiment {name!r}: headline keys {', '.join(missing)} "
                f"not in schema"
            )
        self.measure = measure
        self.check = check
        self.version = version

    # ------------------------------------------------------------- the grid
    def axes(self, *, smoke: bool = False) -> dict[str, tuple]:
        """The active axis values (smoke overrides applied when asked)."""
        if not smoke:
            return dict(self.matrix)
        return {**self.matrix, **self.smoke}

    def scenarios(self, *, smoke: bool = False) -> list[Params]:
        """Expand the scenario matrix into its grid cells, in order."""
        axes = self.axes(smoke=smoke)
        names = list(axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(axes[n] for n in names))
        ]

    def validate_result(self, params: Params, result: Any) -> dict:
        """Check one cell result against the expected shape.

        Returns the result when it is a dict carrying every schema key
        and is JSON-serializable; raises :class:`ExperimentError`
        otherwise (the runner records this as a cell failure).
        """
        if not isinstance(result, dict):
            raise ExperimentError(
                f"experiment {self.name!r} cell {params}: measure returned "
                f"{type(result).__name__}, expected dict"
            )
        missing = sorted(set(self.schema) - set(result))
        if missing:
            raise ExperimentError(
                f"experiment {self.name!r} cell {params}: result missing "
                f"schema key(s) {', '.join(missing)}"
            )
        _json_safe(result, where=f"experiment {self.name!r} cell {params} result")
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Experiment({self.name!r}, kind={self.kind!r}, "
            f"cells={len(self.scenarios())})"
        )


_REGISTRY: dict[str, Experiment] = {}


def register(exp: Experiment) -> Experiment:
    """Add an experiment to the registry (rejecting name collisions)."""
    if exp.name in _REGISTRY:
        raise ExperimentError(f"experiment {exp.name!r} already registered")
    _REGISTRY[exp.name] = exp
    return exp


def experiment(
    *,
    name: str,
    kind: str,
    anchor: str,
    title: str,
    matrix: Mapping[str, Iterable],
    smoke: Mapping[str, Iterable] | None = None,
    schema: Sequence[str] = (),
    headline: Sequence[str] = (),
    version: int = 1,
) -> Callable[[MeasureFn], MeasureFn]:
    """Decorator form of :func:`register` (see the module example).

    The decorated measure function is returned unchanged but gains two
    attributes: ``.experiment`` (the registered :class:`Experiment`) and
    ``.check`` (a decorator attaching the grid-level check function).
    """

    def decorate(measure: MeasureFn) -> MeasureFn:
        exp = Experiment(
            name=name,
            kind=kind,
            anchor=anchor,
            title=title,
            matrix=matrix,
            smoke=smoke,
            schema=schema,
            headline=headline,
            measure=measure,
            version=version,
        )
        register(exp)

        def attach_check(fn: CheckFn) -> CheckFn:
            exp.check = fn
            return fn

        measure.experiment = exp  # type: ignore[attr-defined]
        measure.check = attach_check  # type: ignore[attr-defined]
        return measure

    return decorate


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment (loading the paper suite first)."""
    load_paper_suite()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "none registered"
        raise ExperimentError(
            f"unknown experiment {name!r} (known: {known})"
        ) from None


def experiment_names(kind: str | None = None) -> list[str]:
    """Registered names in registration order, optionally one kind."""
    load_paper_suite()
    return [
        n for n, e in _REGISTRY.items() if kind is None or e.kind == kind
    ]


def all_experiments(kind: str | None = None) -> list[Experiment]:
    """Registered experiments in registration order, optionally one kind."""
    load_paper_suite()
    return [
        e for e in _REGISTRY.values() if kind is None or e.kind == kind
    ]


def load_paper_suite() -> None:
    """Import :mod:`repro.xp.paper`, registering the paper's experiments.

    Idempotent (imports cache); separate from import-of-``repro.xp`` so
    unit tests can register toy experiments without dragging the full
    suite in.
    """
    from repro.xp import paper  # noqa: F401  (import = registration)
