"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can catch
everything from this package with a single ``except`` clause while still being
able to discriminate the failure domain (format encoding, conversion,
simulation, prediction, configuration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class FormatError(ReproError):
    """A compression-format payload is malformed or inconsistent.

    Raised when decoding a format whose field arrays disagree (e.g. a CSR
    ``row_ptr`` that is not monotonically non-decreasing) or when an encoding
    request cannot be represented (e.g. a BSR block size that does not divide
    into the matrix shape and padding is disabled).
    """


class ConversionError(ReproError):
    """A format conversion was requested that the engine cannot perform."""


class SimulationError(ReproError):
    """The cycle-level accelerator simulator reached an inconsistent state."""


class SchedulingError(SimulationError):
    """A workload cannot be mapped onto the configured accelerator.

    Typically the per-PE buffer is too small to hold even a single stationary
    element group and no further tiling is possible.
    """


class PredictionError(ReproError):
    """SAGE could not produce a decision (e.g. empty candidate space)."""


class ConfigError(ReproError):
    """An invalid hardware or model configuration was supplied."""


class ServeError(ReproError):
    """The prediction service rejected a request or the transport failed.

    Raised client-side both for protocol-level failures (connection dropped,
    malformed reply) and for errors the server reports in-band (e.g. a
    workload dict the predictor cannot satisfy).
    """
