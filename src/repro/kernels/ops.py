"""Closed-form operation/traffic counts for the device cost models.

The roofline CPU/GPU stand-ins (Fig. 5 / 10 / 11) and SAGE's conversion
complexity argument (Sec. VII-C: conversion is O(MK + KN) while compute is
O(MNK)) consume these counts rather than timing the Python kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix


@dataclass(frozen=True)
class OpCounts:
    """Arithmetic and traffic accounting for one kernel invocation.

    Attributes
    ----------
    macs:
        Multiply-accumulates actually issued by the algorithm (zero-valued
        operands included for dense ACFs — that is the utilization story of
        Fig. 5b).
    useful_macs:
        MACs whose both operands are nonzero.
    metadata_ops:
        Integer/compare operations spent walking format metadata.
    bits_read / bits_written:
        Memory traffic at the device's last level (operand footprints).
    """

    macs: float
    useful_macs: float
    metadata_ops: float
    bits_read: float
    bits_written: float

    @property
    def utilization(self) -> float:
        """Fraction of issued MACs doing useful work (Fig. 5b's SM story)."""
        return self.useful_macs / self.macs if self.macs else 0.0


def gemm_ops(m: int, k: int, n: int, nnz_a: int, nnz_b: int, dtype_bits: int) -> OpCounts:
    """Dense(A)-Dense(B)-Dense(O): all M*K*N MACs issued."""
    density_a = nnz_a / (m * k) if m * k else 0.0
    density_b = nnz_b / (k * n) if k * n else 0.0
    return OpCounts(
        macs=float(m) * k * n,
        useful_macs=float(m) * k * n * density_a * density_b,
        metadata_ops=0.0,
        bits_read=float(m * k + k * n) * dtype_bits,
        bits_written=float(m * n) * dtype_bits,
    )


def spmm_ops(
    nnz_a: int,
    a_bits: int,
    k: int,
    n: int,
    m: int,
    dtype_bits: int,
    useful_fraction: float = 1.0,
) -> OpCounts:
    """Sparse(A) x Dense(B): one MAC row (N lanes) per stored nonzero of A."""
    macs = float(nnz_a) * n
    return OpCounts(
        macs=macs,
        useful_macs=macs * useful_fraction,
        metadata_ops=float(nnz_a),  # one index dereference per nonzero
        bits_read=float(a_bits) + float(min(nnz_a, k)) * n * dtype_bits,
        bits_written=float(m * n) * dtype_bits,
    )


def matching_macs(a: CsrMatrix, b: CscMatrix | CsrMatrix) -> int:
    """Exact useful-MAC count of A @ B: sum_k nnz_col_A(k) * nnz_row_B(k)."""
    col_counts_a = np.bincount(a.col_ids, minlength=a.ncols)
    if isinstance(b, CsrMatrix):
        row_counts_b = b.row_lengths()
    else:
        row_counts_b = np.bincount(b.row_ids, minlength=b.nrows)
    return int(np.dot(col_counts_a.astype(np.int64), row_counts_b.astype(np.int64)))


def expected_output_nnz(m: int, n: int, k: int, nnz_a: int, nnz_b: int) -> float:
    """Expected nnz of A @ B under uniform-random placement.

    P[O[i,j] != 0] = 1 - (1 - dA*dB)^K with dA, dB the operand densities —
    the same uniform-random assumption as the paper's performance model.
    """
    if m * k == 0 or k * n == 0:
        return 0.0
    pa, pb = nnz_a / (m * k), nnz_b / (k * n)
    return float(m) * n * (1.0 - (1.0 - pa * pb) ** k)


def spgemm_ops(
    m: int,
    k: int,
    n: int,
    nnz_a: int,
    nnz_b: int,
    a_bits: int,
    b_bits: int,
    dtype_bits: int,
    useful_macs: float | None = None,
) -> OpCounts:
    """Sparse(A) x Sparse(B): only matching pairs reach the MACs.

    When *useful_macs* is not supplied (SAGE's statistics-only fast path) the
    uniform-random expectation ``nnz_a * nnz_b / K`` is used.
    """
    if useful_macs is None:
        useful_macs = float(nnz_a) * nnz_b / k if k else 0.0
    out_nnz = expected_output_nnz(m, n, k, nnz_a, nnz_b)
    return OpCounts(
        macs=useful_macs,
        useful_macs=useful_macs,
        metadata_ops=float(nnz_a + nnz_b),  # every index participates in matching
        bits_read=float(a_bits + b_bits),
        bits_written=out_nnz * dtype_bits,
    )


def spmv_ops(nnz_a: int, a_bits: int, m: int, k: int, dtype_bits: int) -> OpCounts:
    """Sparse(A) x dense vector."""
    return OpCounts(
        macs=float(nnz_a),
        useful_macs=float(nnz_a),
        metadata_ops=float(nnz_a),
        bits_read=float(a_bits) + float(k) * dtype_bits,
        bits_written=float(m) * dtype_bits,
    )
