"""Dense GEMM: the Dense(A)-Dense(B)-Dense(O) ACF."""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_dense_matrix


def gemm_dense(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compute ``O = A @ B`` with dense operands.

    The baseline ACF of TPU-class accelerators (Table II): every position,
    zero or not, is multiplied — which is exactly why dense ACFs waste PE
    utilization on sparse inputs (Sec. III-B).
    """
    a = check_dense_matrix(a, "a")
    b = check_dense_matrix(b, "b")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    return a @ b
