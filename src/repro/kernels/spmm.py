"""Sparse matrix - dense matrix products (SpMM), one function per ACF.

Each function walks its operands exactly the way the named ACF's hardware
or library algorithm would, so downstream op accounting (and the cycle
simulator cross-checks) see the right access pattern.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.util.validation import check_dense_matrix


def spmm_coo_dense(a: CooMatrix, b: np.ndarray) -> np.ndarray:
    """Alg. 1 of the paper: COO(A) - Dense(B) - Dense(O).

    Iterates A's nonzeros; each contributes ``val * B[col, :]`` into row
    ``row`` of the output.
    """
    b = check_dense_matrix(b, "b")
    if a.ncols != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = np.zeros((a.nrows, b.shape[1]), dtype=np.float64)
    # Vectorized equivalent of the Alg. 1 double loop: scatter-add of scaled
    # B rows, one per nonzero of A.
    np.add.at(out, a.row_ids, a.values[:, None] * b[a.col_ids, :])
    return out


def spmm_csr_dense(a: CsrMatrix, b: np.ndarray) -> np.ndarray:
    """CSR(A) - Dense(B) - Dense(O): row-wise gather of B rows."""
    b = check_dense_matrix(b, "b")
    if a.ncols != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = np.zeros((a.nrows, b.shape[1]), dtype=np.float64)
    for i in range(a.nrows):
        cols, vals = a.row_slice(i)
        if len(cols):
            out[i, :] = vals @ b[cols, :]
    return out


def spmm_dense_csc(a: np.ndarray, b: CscMatrix) -> np.ndarray:
    """Dense(A) - CSC(B) - Dense(O): column-wise gather of A columns.

    EIE's second operating mode and the ACF the paper's CNN case study
    prefers for heavily pruned weight matrices (Sec. VII-D).
    """
    a = check_dense_matrix(a, "a")
    if a.shape[1] != b.nrows:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.ncols), dtype=np.float64)
    for j in range(b.ncols):
        rows, vals = b.col_slice(j)
        if len(rows):
            out[:, j] = a[:, rows] @ vals
    return out
