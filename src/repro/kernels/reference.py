"""Independent numpy/scipy oracles used by the test suite.

Kept separate from the kernels so tests compare two *different*
implementations of each operation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def ref_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matmul oracle."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)


def ref_spgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sparse-sparse product oracle via scipy CSR."""
    return np.asarray(
        (sp.csr_matrix(a) @ sp.csr_matrix(b)).todense(), dtype=np.float64
    )


def ref_spttm(x: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Mode-3 tensor-times-matrix oracle."""
    return np.einsum("ijk,kr->ijr", x, u)


def ref_mttkrp(x: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Mode-1 MTTKRP oracle."""
    return np.einsum("ijk,jr,kr->ir", x, b, c)
