"""Functional tensor-algebra kernels, one per ACF access pattern.

These implement the algorithms of Sec. II / Fig. 2 (GEMM, SpMM, SpGEMM,
SpMV, SpTTM, MTTKRP) the way each Algorithm Compression Format walks its
operands — e.g. Alg. 1's COO(A)-Dense(B)-Dense(O) loop.  They are the
functional ground truth for the cycle simulator and the operation-count
source for the roofline device models.
"""

from repro.kernels.gemm import gemm_dense
from repro.kernels.matricize import (
    fold_mode3,
    khatri_rao,
    matricize_mode1,
    matricize_mode3,
)
from repro.kernels.mttkrp import mttkrp_coo, mttkrp_csf, mttkrp_dense
from repro.kernels.ops import (
    OpCounts,
    gemm_ops,
    spgemm_ops,
    spmm_ops,
    spmv_ops,
)
from repro.kernels.spgemm import spgemm_csr_csc, spgemm_csr_csr
from repro.kernels.spmm import spmm_coo_dense, spmm_csr_dense, spmm_dense_csc
from repro.kernels.spmv import spmv_coo, spmv_csr
from repro.kernels.spttm import spttm_coo, spttm_csf, spttm_dense

__all__ = [
    "OpCounts",
    "gemm_dense",
    "gemm_ops",
    "spmv_csr",
    "spmv_coo",
    "spmv_ops",
    "spmm_coo_dense",
    "spmm_csr_dense",
    "spmm_dense_csc",
    "spmm_ops",
    "spgemm_csr_csr",
    "spgemm_csr_csc",
    "spgemm_ops",
    "spttm_csf",
    "spttm_coo",
    "spttm_dense",
    "matricize_mode1",
    "matricize_mode3",
    "fold_mode3",
    "khatri_rao",
    "mttkrp_coo",
    "mttkrp_csf",
    "mttkrp_dense",
]
