"""Matricized Tensor Times Khatri-Rao Product (MTTKRP).

The CP-decomposition bottleneck (Sec. II): for a sparse X (I x J x K) and
dense factors B (J x R), C (K x R),

    M[i, r] = sum_{j,k} X[i, j, k] * B[j, r] * C[k, r].

The paper evaluates MTTKRP on BrainQ / Crime / Uber (Table III, yellow
combos), with the tensor sparse and both factor matrices dense.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csf import CsfTensor
from repro.formats.tensor_coo import CooTensor
from repro.util.validation import check_dense_matrix, check_dense_tensor


def _check_factors(
    shape: tuple[int, int, int], b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    b = check_dense_matrix(b, "b")
    c = check_dense_matrix(c, "c")
    if b.shape[0] != shape[1]:
        raise ValueError(f"B rows {b.shape[0]} must equal mode-2 size {shape[1]}")
    if c.shape[0] != shape[2]:
        raise ValueError(f"C rows {c.shape[0]} must equal mode-3 size {shape[2]}")
    if b.shape[1] != c.shape[1]:
        raise ValueError("factor ranks disagree")
    return b, c


def mttkrp_dense(x: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Dense reference: ``einsum('ijk,jr,kr->ir')``."""
    x = check_dense_tensor(x, "x")
    b, c = _check_factors(x.shape, b, c)
    return np.einsum("ijk,jr,kr->ir", x, b, c)


def mttkrp_coo(x: CooTensor, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """COO walk: each nonzero contributes ``val * B[y,:] * C[z,:]`` to M[x,:]."""
    b, c = _check_factors(x.shape, b, c)
    out = np.zeros((x.shape[0], b.shape[1]), dtype=np.float64)
    np.add.at(out, x.x_ids, x.values[:, None] * b[x.y_ids, :] * c[x.z_ids, :])
    return out


def mttkrp_csf(x: CsfTensor, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """CSF walk: per-fiber partial sums reuse the shared B[y, :] factor.

    This is the operation-saving CSF traversal (Smith & Karypis): the inner
    reduction over z happens once per fiber before the multiply by B[y, :].
    """
    b, c = _check_factors(x.shape, b, c)
    out = np.zeros((x.shape[0], b.shape[1]), dtype=np.float64)
    for root_idx in range(x.nroots):
        xi = int(x.x_ids[root_idx])
        acc = np.zeros(b.shape[1], dtype=np.float64)
        for fiber_idx in range(int(x.x_ptr[root_idx]), int(x.x_ptr[root_idx + 1])):
            yi = int(x.y_ids[fiber_idx])
            lo, hi = int(x.y_ptr[fiber_idx]), int(x.y_ptr[fiber_idx + 1])
            inner = x.values[lo:hi] @ c[x.z_ids[lo:hi], :]
            acc += inner * b[yi, :]
        out[xi, :] += acc
    return out
