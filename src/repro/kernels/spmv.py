"""Sparse matrix - dense vector products (SpMV)."""

from __future__ import annotations

import numpy as np

from repro.formats.coo import CooMatrix
from repro.formats.csr import CsrMatrix


def spmv_csr(a: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` walking A row-by-row in CSR order.

    The key iterative-solver kernel the paper motivates (Sec. II).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if len(x) != a.ncols:
        raise ValueError(f"vector length {len(x)} != ncols {a.ncols}")
    y = np.zeros(a.nrows, dtype=np.float64)
    for i in range(a.nrows):
        cols, vals = a.row_slice(i)
        if len(cols):
            y[i] = np.dot(vals, x[cols])
    return y


def spmv_coo(a: CooMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` iterating A's nonzeros in COO order (Alg. 1, N=1)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if len(x) != a.ncols:
        raise ValueError(f"vector length {len(x)} != ncols {a.ncols}")
    y = np.zeros(a.nrows, dtype=np.float64)
    np.add.at(y, a.row_ids, a.values * x[a.col_ids])
    return y
