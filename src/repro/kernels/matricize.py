"""Tensor matricization and the Khatri-Rao product.

These lower the 3-D kernels onto the 2-D accelerator, which is how the
paper's WS template executes them (Sec. VI models tensors through the same
streaming machinery):

* **SpTTM** ``Y[i,j,r] = sum_k X[i,j,k] U[k,r]`` is exactly the GEMM
  ``X_(3) @ U`` where ``X_(3)`` is the mode-3 unfolding ((I*J) x K) — each
  row is one (i, j) fiber, so CSR rows of the unfolding are CSF fibers.
* **MTTKRP** ``M[i,r] = sum_{j,k} X[i,j,k] B[j,r] C[k,r]`` is the GEMM
  ``X_(1) @ (B (kr) C)`` with ``X_(1)`` the mode-1 unfolding (I x (J*K))
  and ``(kr)`` the column-wise Khatri-Rao product.

The integration tests run both lowerings through the cycle-level simulator
and check them against the direct einsum oracles.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_dense_matrix, check_dense_tensor


def matricize_mode3(x: np.ndarray) -> np.ndarray:
    """Mode-3 unfolding: (I, J, K) -> (I*J, K), fiber-major rows."""
    x = check_dense_tensor(x, "x")
    i, j, k = x.shape
    return x.reshape(i * j, k)


def matricize_mode1(x: np.ndarray) -> np.ndarray:
    """Mode-1 unfolding: (I, J, K) -> (I, J*K), row-major within a slice."""
    x = check_dense_tensor(x, "x")
    i, j, k = x.shape
    return x.reshape(i, j * k)


def khatri_rao(b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Column-wise Khatri-Rao product: (J, R) x (K, R) -> (J*K, R).

    Column r of the result is ``kron(B[:, r], C[:, r])``; rows are ordered
    (j, k) row-major, matching :func:`matricize_mode1`'s column order.
    """
    b = check_dense_matrix(b, "b")
    c = check_dense_matrix(c, "c")
    if b.shape[1] != c.shape[1]:
        raise ValueError(
            f"factor ranks disagree: {b.shape[1]} vs {c.shape[1]}"
        )
    j, r = b.shape
    k, _ = c.shape
    return (b[:, None, :] * c[None, :, :]).reshape(j * k, r)


def fold_mode3(y: np.ndarray, shape: tuple[int, int, int]) -> np.ndarray:
    """Inverse of :func:`matricize_mode3` on the output side:
    ((I*J), R) -> (I, J, R)."""
    y = check_dense_matrix(y, "y")
    i, j, _k = shape
    return y.reshape(i, j, y.shape[1])
