"""Sparse matrix - sparse matrix products (SpGEMM).

Two ACF walks: the inner-product CSR(A)-CSC(B) style the walkthrough
accelerator executes (Fig. 6b), and the row-wise Gustavson CSR(A)-CSR(B)
style cuSPARSE implements (Fig. 5's CSR-CSR-CSR series).
"""

from __future__ import annotations

import numpy as np

from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix


def spgemm_csr_csc(a: CsrMatrix, b: CscMatrix) -> np.ndarray:
    """CSR(A) - CSC(B) - Dense(O) via sorted-list intersection per (i, j).

    Mirrors the index-matching the extended PEs perform: streaming (CSR)
    metadata is compared against stationary (CSC) metadata and only
    matching pairs reach the MAC units.
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = np.zeros((a.nrows, b.ncols), dtype=np.float64)
    # Precompute column slices once; rows iterate over them.
    col_slices = [b.col_slice(j) for j in range(b.ncols)]
    for i in range(a.nrows):
        a_cols, a_vals = a.row_slice(i)
        if not len(a_cols):
            continue
        for j, (b_rows, b_vals) in enumerate(col_slices):
            if not len(b_rows):
                continue
            # Sorted intersection of a_cols (k of A) with b_rows (k of B).
            matches_a = np.searchsorted(b_rows, a_cols)
            in_range = matches_a < len(b_rows)
            hit = np.zeros(len(a_cols), dtype=bool)
            hit[in_range] = b_rows[matches_a[in_range]] == a_cols[in_range]
            if hit.any():
                out[i, j] = np.dot(a_vals[hit], b_vals[matches_a[hit]])
    return out


def spgemm_csr_csr(a: CsrMatrix, b: CsrMatrix) -> np.ndarray:
    """CSR(A) - CSR(B) - Dense(O), Gustavson row-wise formulation.

    For each nonzero A[i, k], accumulate ``A[i,k] * B[k, :]`` into output
    row i — the useful-work count equals the matching-pair MAC count, which
    is what makes sparse ACFs win at low density (Fig. 5a).
    """
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    out = np.zeros((a.nrows, b.ncols), dtype=np.float64)
    for i in range(a.nrows):
        a_cols, a_vals = a.row_slice(i)
        acc = out[i, :]
        for k, v in zip(a_cols, a_vals):
            b_cols, b_vals = b.row_slice(int(k))
            if len(b_cols):
                acc[b_cols] += v * b_vals
    return out
