"""Sparse Tensor Times Matrix (SpTTM), the Tucker-decomposition kernel.

Mode-3 product: ``Y[i, j, r] = sum_k X[i, j, k] * U[k, r]`` with X sparse
(I x J x K) and U dense (K x R).  The paper evaluates SpTTM on the BrainQ
and Crime tensors (Table III, tan-shaded combos).
"""

from __future__ import annotations

import numpy as np

from repro.formats.csf import CsfTensor
from repro.formats.tensor_coo import CooTensor
from repro.util.validation import check_dense_matrix, check_dense_tensor


def _check_factor(x_shape: tuple[int, int, int], u: np.ndarray) -> np.ndarray:
    u = check_dense_matrix(u, "u")
    if u.shape[0] != x_shape[2]:
        raise ValueError(
            f"factor rows {u.shape[0]} must equal tensor mode-3 size {x_shape[2]}"
        )
    return u


def spttm_dense(x: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Dense reference: ``einsum('ijk,kr->ijr')``."""
    x = check_dense_tensor(x, "x")
    u = _check_factor(x.shape, u)
    return np.einsum("ijk,kr->ijr", x, u)


def spttm_coo(x: CooTensor, u: np.ndarray) -> np.ndarray:
    """COO walk: each nonzero scatters ``val * U[z, :]`` into Y[x, y, :]."""
    u = _check_factor(x.shape, u)
    out = np.zeros((x.shape[0], x.shape[1], u.shape[1]), dtype=np.float64)
    np.add.at(out, (x.x_ids, x.y_ids), x.values[:, None] * u[x.z_ids, :])
    return out


def spttm_csf(x: CsfTensor, u: np.ndarray) -> np.ndarray:
    """CSF walk: one dense accumulation per (x, y) fiber.

    The fiber-major traversal is what makes CSF the efficient ACF for TTM
    (Smith & Karypis): each output fiber is produced by a single dense
    gather over its leaves.
    """
    u = _check_factor(x.shape, u)
    out = np.zeros((x.shape[0], x.shape[1], u.shape[1]), dtype=np.float64)
    for root_idx in range(x.nroots):
        xi = int(x.x_ids[root_idx])
        for fiber_idx in range(int(x.x_ptr[root_idx]), int(x.x_ptr[root_idx + 1])):
            yi = int(x.y_ids[fiber_idx])
            lo, hi = int(x.y_ptr[fiber_idx]), int(x.y_ptr[fiber_idx + 1])
            out[xi, yi, :] = x.values[lo:hi] @ u[x.z_ids[lo:hi], :]
    return out
