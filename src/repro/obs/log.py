"""Stdlib logging wiring for the repro stack.

Every module logs through ``logging.getLogger("repro.<area>")`` —
:func:`get_logger` is a thin helper that prefixes the namespace.  By
default nothing is emitted (the root ``repro`` logger gets a
``NullHandler``), matching library etiquette; :func:`configure` attaches
a stderr handler at a chosen level.

Two activation paths:

* ``REPRO_LOG=debug|info|warning|error`` in the environment — picked up
  lazily the first time any repro logger is fetched, so serve shard
  processes and fork-pool workers inherit the setting with no plumbing;
* ``repro --log-level debug ...`` on the CLI, which calls
  :func:`configure` explicitly (and wins over the env default).

The serve tier logs shard-worker and handler exceptions at WARNING —
previously they were counted in the error stats but their tracebacks
vanished into the wire error string.
"""

from __future__ import annotations

import logging
import os

__all__ = ["configure", "get_logger"]

_ROOT_NAME = "repro"
_configured = False


def _root() -> logging.Logger:
    return logging.getLogger(_ROOT_NAME)


def configure(level: str | int | None = None) -> None:
    """Attach a stderr handler to the ``repro`` logger at *level*.

    ``None`` falls back to ``REPRO_LOG`` (doing nothing when unset).
    Calling again replaces the level; only one handler is ever attached.
    """
    global _configured
    if level is None:
        level = os.environ.get("REPRO_LOG", "").strip()
        if not level:
            _configured = True
            return
    if isinstance(level, str):
        level = getattr(logging, level.upper(), None)
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root = _root()
    if not any(
        isinstance(h, logging.StreamHandler)
        and not isinstance(h, logging.NullHandler)
        for h in root.handlers
    ):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s"
            )
        )
        root.addHandler(handler)
    root.setLevel(level)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """``logging.getLogger("repro.<name>")``, env-configured on first use."""
    global _configured
    if not _configured:
        _root().addHandler(logging.NullHandler())
        configure(None)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
