"""repro.obs — unified metrics + tracing plane.

Three small modules:

* :mod:`repro.obs.metrics` — process-local :class:`MetricRegistry` of
  labeled counters/gauges/fixed-log-bucket histograms whose snapshots
  merge exactly across processes;
* :mod:`repro.obs.trace` — contextvar-scoped :class:`span` timers with
  trace-ID propagation and Chrome trace-event export;
* :mod:`repro.obs.log` — stdlib logging wiring (``REPRO_LOG`` env,
  ``--log-level`` CLI flag).

``REPRO_OBS=off`` disables the whole plane (see
``benchmarks/bench_obs_overhead.py`` for the ≤5% overhead floor).
"""

from .log import configure as configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    enabled,
    merge_snapshots,
    registry,
    render_prometheus,
    reset_registry,
    set_enabled,
)
from .trace import (
    TraceRecorder,
    collect_spans,
    current_trace_id,
    drain_events,
    export_chrome_trace,
    new_trace_id,
    recording,
    resume_trace,
    set_trace_id,
    span,
    start_trace,
    stop_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "TraceRecorder",
    "collect_spans",
    "configure_logging",
    "current_trace_id",
    "drain_events",
    "enabled",
    "export_chrome_trace",
    "get_logger",
    "merge_snapshots",
    "new_trace_id",
    "recording",
    "registry",
    "render_prometheus",
    "reset_registry",
    "resume_trace",
    "set_enabled",
    "set_trace_id",
    "span",
    "start_trace",
    "stop_trace",
]
