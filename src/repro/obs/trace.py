"""Contextvar-scoped spans with Chrome trace-event export.

One primitive — :class:`span` — feeds both halves of the obs plane:

* every exited span observes ``repro_span_seconds{span=<name>}`` on the
  process-global metric registry, so aggregate where-does-time-go data
  exists even when no trace is being recorded;
* when a :class:`TraceRecorder` is active (``repro run --trace out.json``
  turns one on), each span additionally emits a Chrome trace-event
  ``"X"`` (complete) event with microsecond ``ts``/``dur`` derived from
  ``time.perf_counter()`` — CLOCK_MONOTONIC on Linux, so timestamps from
  forked workers land on the same timeline as the parent's.

Trace identity is a :mod:`contextvars` ``ContextVar`` so concurrent
serve handlers keep distinct trace IDs; :func:`current_trace_id` /
:func:`set_trace_id` are the propagation hooks the serve wire schema
(optional ``"trace"`` message key) and the fork-pool initializer use to
carry the ID across process and socket boundaries.

Span *names* follow a ``layer.operation`` taxonomy (``api.predict``,
``sage.enumerate``, ``mint.hop``, ``accel.gemm`` …) documented in
``docs/observability.md``.  Extra keyword arguments on ``span(...)``
become Chrome-trace ``args`` (and are never used as metric labels, to
keep series cardinality bounded).

Like the metric plane, everything short-circuits when ``REPRO_OBS=off``.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from typing import Any

from .metrics import enabled, registry

__all__ = [
    "TraceRecorder",
    "collect_spans",
    "current_trace_id",
    "drain_events",
    "export_chrome_trace",
    "new_trace_id",
    "recording",
    "resume_trace",
    "set_trace_id",
    "span",
    "start_trace",
    "stop_trace",
]

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)

#: Histogram every span observes into (one series per span name).
_SPAN_SECONDS = registry().histogram(
    "repro_span_seconds", "Wall-seconds spent inside each span"
)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace ID."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID bound to the current context, if any."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: str | None) -> None:
    """Bind *trace_id* to the current context (``None`` clears it)."""
    _TRACE_ID.set(trace_id)


class TraceRecorder:
    """Buffers Chrome trace events for one recording session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: list[dict]) -> None:
        """Absorb events shipped back from another process."""
        if events:
            with self._lock:
                self._events.extend(events)

    def drain(self) -> list[dict]:
        """Remove and return all buffered events."""
        with self._lock:
            events = self._events
            self._events = []
            return events

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)


_RECORDER: TraceRecorder | None = None
#: Collector stack depth — see :class:`collect_spans`.  A plain int
#: guarded by the GIL; incremented/decremented on enter/exit.
_COLLECTORS: list["collect_spans"] = []


def recording() -> bool:
    """Whether a trace recorder or span collector is active."""
    return _RECORDER is not None or bool(_COLLECTORS)


def start_trace() -> TraceRecorder:
    """Install a fresh process-global :class:`TraceRecorder`."""
    global _RECORDER
    _RECORDER = TraceRecorder()
    if _TRACE_ID.get() is None:
        _TRACE_ID.set(new_trace_id())
    return _RECORDER


def resume_trace(recorder: TraceRecorder | None) -> None:
    """Install an existing recorder (fork-pool worker init)."""
    global _RECORDER
    _RECORDER = recorder


def stop_trace() -> list[dict]:
    """Tear down the recorder, returning its buffered events."""
    global _RECORDER
    recorder, _RECORDER = _RECORDER, None
    return recorder.drain() if recorder is not None else []


def drain_events() -> list[dict]:
    """Drain buffered events without stopping the recorder.

    Fork-pool workers call this after each task so span deltas ride the
    result chunk back to the parent, which folds them into its own
    recorder — keeping worker spans on the trace without a shared file.
    """
    return _RECORDER.drain() if _RECORDER is not None else []


def export_chrome_trace(events: list[dict], path: str) -> None:
    """Write *events* as a Chrome trace-event JSON file.

    Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fh,
            default=str,
        )


class span:
    """Context manager timing one named operation.

    ``with span("sage.predict", nnz=workload.nnz): ...`` — on exit the
    duration is observed into ``repro_span_seconds{span=...}`` and, when
    a recorder/collector is live, a Chrome ``"X"`` event is buffered.
    Deliberately a slim ``__slots__`` class (not ``@contextmanager``):
    the predict hot path enters thousands of these, and the generator
    protocol's frame churn is measurable at that rate.
    """

    __slots__ = ("name", "args", "_t0")

    def __init__(self, name: str, **args: Any) -> None:
        self.name = name
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "span":
        if enabled():
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not enabled() or not self._t0:
            return
        t1 = time.perf_counter()
        seconds = t1 - self._t0
        _SPAN_SECONDS.observe(seconds, span=self.name)
        for collector in _COLLECTORS:
            collector._add(self.name, seconds)
        recorder = _RECORDER
        if recorder is not None:
            event: dict[str, Any] = {
                "name": self.name,
                "ph": "X",
                "ts": self._t0 * 1e6,
                "dur": seconds * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "cat": self.name.split(".", 1)[0],
            }
            args = dict(self.args)
            trace_id = _TRACE_ID.get()
            if trace_id is not None:
                args["trace_id"] = trace_id
            if exc_type is not None:
                args["error"] = exc_type.__name__
            if args:
                event["args"] = args
            recorder.record(event)


class collect_spans:
    """Collect per-span aggregate timings within a scope.

    The xp runner wraps each grid cell's measure function in one of
    these so report pages can show where cell time goes even when no
    global trace is being written::

        with collect_spans() as spans:
            result = measure(session, **params)
        record["spans"] = spans.summary()

    ``summary()`` maps span name to ``{"count": n, "seconds": total}``.
    Collectors nest (each sees spans from its own scope inward) and work
    independently of :func:`start_trace`.
    """

    def __init__(self) -> None:
        self._spans: dict[str, dict[str, float]] = {}

    def _add(self, name: str, seconds: float) -> None:
        entry = self._spans.get(name)
        if entry is None:
            entry = self._spans[name] = {"count": 0, "seconds": 0.0}
        entry["count"] += 1
        entry["seconds"] += seconds

    def __enter__(self) -> "collect_spans":
        _COLLECTORS.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            _COLLECTORS.remove(self)
        except ValueError:  # pragma: no cover - unbalanced exit
            pass

    def summary(self) -> dict[str, dict[str, float]]:
        """``{span_name: {"count": n, "seconds": total}}``, name-sorted."""
        return {
            name: {
                "count": int(entry["count"]),
                "seconds": entry["seconds"],
            }
            for name, entry in sorted(self._spans.items())
        }
