"""Process-local metric registry whose snapshots merge exactly.

Every layer of the stack (``Session``, SAGE, MINT, the simulator, the
fork pool, the shm operand plane, the serve tier) records onto one
process-global :class:`MetricRegistry` of labeled :class:`Counter`,
:class:`Gauge` and fixed-log-bucket :class:`Histogram` metrics.  The
design constraint — in the spirit of the paper's own per-phase cycle
accounting — is that telemetry must survive the repo's fan-out shapes:
fork-pool workers, serve shard processes, and remote servers all hold
*their own* registry, and the aggregate is produced by **merging
snapshots**, so merge must be exact:

* counters and histogram buckets **sum** (associative and commutative);
* gauges merge by **max** (the only order-free reduction that makes
  sense for point-in-time values);
* histograms use **fixed log-spaced bucket bounds** shared by every
  process, so bucket-wise sums align without re-binning and quantile
  estimates are bounded by the width of the containing bucket.

Snapshots are JSON-safe dicts (they travel on fork-pool result chunks
and on the serve ``stats`` RPC) and :func:`merge_snapshots` is a pure
function over them, property-tested for associativity/commutativity in
``tests/obs/test_metrics.py``.

The whole plane is switchable: ``REPRO_OBS=off`` (or
:func:`set_enabled`\\ ``(False)``) turns every ``inc``/``observe`` into
an early return, and ``benchmarks/bench_obs_overhead.py`` pins the
instrumented-vs-off overhead of the predict hot path below 5%.

Label values are sanitized (``,`` ``=`` and newlines become ``_``) so a
snapshot's canonical ``"k=v,k2=v2"`` label keys parse back losslessly.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "enabled",
    "merge_snapshots",
    "registry",
    "reset_registry",
    "set_enabled",
]

#: Default histogram bounds: log2-spaced seconds from ~1 microsecond to
#: 128 s, plus an implicit overflow bucket.  Fixed (not adaptive) so
#: every process bins identically and snapshot merges are bucket-exact.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 8))

_ENABLED = os.environ.get("REPRO_OBS", "on").strip().lower() not in (
    "off", "0", "false", "no",
)


def enabled() -> bool:
    """Whether the metrics plane records anything (``REPRO_OBS`` gate)."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Flip the metrics plane on/off at runtime (benchmarks, tests)."""
    global _ENABLED
    _ENABLED = bool(flag)


def _sanitize(value: object) -> str:
    text = str(value)
    for ch in (",", "=", "\n"):
        if ch in text:
            text = text.replace(ch, "_")
    return text


def _label_key(labels: dict) -> str:
    """Canonical snapshot key: ``""`` or ``"k=v,k2=v2"`` (sorted)."""
    if not labels:
        return ""
    if len(labels) == 1:  # the hot-path shape (span=..., op=..., ...)
        ((k, v),) = labels.items()
        return f"{k}={_sanitize(v)}"
    return ",".join(
        f"{k}={_sanitize(v)}" for k, v in sorted(labels.items())
    )


def _parse_label_key(key: str) -> dict[str, str]:
    """Inverse of :func:`_label_key` (labels are sanitized, so exact)."""
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))


class _Metric:
    """Shared bookkeeping: name, help text, a lock, labeled value slots."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[str, object] = {}

    def label_keys(self) -> list[str]:
        with self._lock:
            return list(self._values)


class Counter(_Metric):
    """Monotonic sum; snapshots merge by addition."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (default 1) to the labeled series."""
        if not _ENABLED:
            return
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of the labeled series (0 when never touched)."""
        with self._lock:
            return float(self._values.get(_label_key(labels), 0))

    def _snapshot_values(self) -> dict:
        with self._lock:
            return dict(self._values)

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for key, value in values.items():
                self._values[key] = self._values.get(key, 0) + value


class Gauge(_Metric):
    """Point-in-time value; snapshots merge by max (order-free)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labeled series to *value*."""
        if not _ENABLED:
            return
        with self._lock:
            self._values[_label_key(labels)] = value

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(_label_key(labels), 0))

    def _snapshot_values(self) -> dict:
        with self._lock:
            return dict(self._values)

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for key, value in values.items():
                mine = self._values.get(key)
                self._values[key] = (
                    value if mine is None else max(mine, value)
                )


class Histogram(_Metric):
    """Fixed-bucket distribution; bucket counts merge by addition.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]`` (``bounds[-1]`` is
    the last finite edge; larger samples land in the overflow bucket).
    Alongside the counts the histogram keeps exact ``count``/``sum`` and
    ``min``/``max``, all of which merge exactly, so
    :meth:`quantile` estimates from a merged snapshot are identical to
    estimates from a single-process run over the same samples.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing"
            )

    def _state(self, key: str) -> dict:
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = {
                "buckets": [0] * (len(self.bounds) + 1),
                "count": 0,
                "sum": 0.0,
                "min": None,
                "max": None,
            }
        return state

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the labeled series."""
        if not _ENABLED:
            return
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            state = self._state(_label_key(labels))
            state["buckets"][index] += 1
            state["count"] += 1
            state["sum"] += value
            state["min"] = (
                value if state["min"] is None else min(state["min"], value)
            )
            state["max"] = (
                value if state["max"] is None else max(state["max"], value)
            )

    def count(self, **labels) -> int:
        """Number of samples in the labeled series."""
        with self._lock:
            state = self._values.get(_label_key(labels))
            return 0 if state is None else int(state["count"])

    def sum(self, **labels) -> float:
        """Sum of samples in the labeled series."""
        with self._lock:
            state = self._values.get(_label_key(labels))
            return 0.0 if state is None else float(state["sum"])

    def quantile(self, q: float, **labels) -> float | None:
        """Nearest-rank quantile estimate, bounded by bucket width.

        Returns the upper edge of the bucket holding the ``ceil(q*n)``-th
        sample (clamped to the observed max), so the estimate is within
        one bucket width of the true nearest-rank sample.  ``None`` when
        the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            state = self._values.get(_label_key(labels))
            if state is None or not state["count"]:
                return None
            return _bucket_quantile(dict(state), self.bounds, q)

    def _snapshot_values(self) -> dict:
        with self._lock:
            return {
                key: {
                    "buckets": list(state["buckets"]),
                    "count": state["count"],
                    "sum": state["sum"],
                    "min": state["min"],
                    "max": state["max"],
                }
                for key, state in self._values.items()
            }

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for key, other in values.items():
                state = self._state(key)
                _merge_histogram_state(state, other)


def _merge_histogram_state(state: dict, other: dict) -> None:
    if len(other["buckets"]) != len(state["buckets"]):
        raise ValueError(
            "cannot merge histogram snapshots with different bucketing"
        )
    state["buckets"] = [
        a + b for a, b in zip(state["buckets"], other["buckets"])
    ]
    state["count"] += other["count"]
    state["sum"] += other["sum"]
    for field, pick in (("min", min), ("max", max)):
        theirs = other[field]
        if theirs is not None:
            mine = state[field]
            state[field] = theirs if mine is None else pick(mine, theirs)


def _bucket_quantile(
    state: dict, bounds: tuple[float, ...], q: float
) -> float:
    rank = max(1, math.ceil(q * state["count"]))
    cumulative = 0
    for index, bucket_count in enumerate(state["buckets"]):
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):  # overflow bucket
                return float(state["max"])
            upper = bounds[index]
            return float(
                upper if state["max"] is None else min(upper, state["max"])
            )
    return float(state["max"])  # pragma: no cover - count guards this


class MetricRegistry:
    """A named collection of metrics with exact-merge snapshots.

    One process-global instance (:func:`registry`) backs the whole
    stack; separate instances exist only in tests and inside the serve
    ``stats`` merge path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(
        self, cls, name: str, help: str, factory: Callable[[], _Metric]
    ) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {cls.kind}"
                )
            if help and not metric.help:
                metric.help = help
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create the named :class:`Counter`."""
        return self._get_or_create(
            Counter, name, help, lambda: Counter(name, help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get-or-create the named :class:`Gauge`."""
        return self._get_or_create(
            Gauge, name, help, lambda: Gauge(name, help)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create the named :class:`Histogram` (bounds must agree)."""
        metric = self._get_or_create(
            Histogram, name, help, lambda: Histogram(name, help, bounds)
        )
        if tuple(metric.bounds) != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with different "
                f"bucket bounds"
            )
        return metric

    def metrics(self) -> list[_Metric]:
        """The registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> dict:
        """JSON-safe state of every metric (see :func:`merge_snapshots`)."""
        out: dict = {}
        for metric in self.metrics():
            entry: dict = {
                "type": metric.kind,
                "help": metric.help,
                "values": metric._snapshot_values(),
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            out[metric.name] = entry
        return out

    to_dict = snapshot

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another process's snapshot into this registry."""
        for name, entry in snapshot.items():
            kind = entry.get("type")
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry.get("help", ""),
                    tuple(entry.get("bounds", DEFAULT_BUCKETS)),
                )
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            metric._merge_values(entry["values"])

    def reset(self) -> None:
        """Zero every metric's values (definitions survive).

        Metric *objects* stay valid — module-level handles held by the
        instrumented layers keep working — which is what lets a forked
        worker reset the registry it inherited without invalidating the
        parent's handles it shares pre-fork state with.
        """
        for metric in self.metrics():
            with metric._lock:
                metric._values.clear()

    # ------------------------------------------------------------ rendering
    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        return render_prometheus(self.snapshot())


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text form of a snapshot (``# HELP`` / ``# TYPE`` / series)."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        values = entry["values"]
        if entry["type"] in ("counter", "gauge"):
            for key in sorted(values):
                lines.append(
                    f"{name}{_prom_labels(key)} {_prom_num(values[key])}"
                )
            continue
        bounds = entry.get("bounds", [])
        for key in sorted(values):
            state = values[key]
            cumulative = 0
            for index, bucket_count in enumerate(state["buckets"]):
                cumulative += bucket_count
                le = (
                    _prom_num(bounds[index])
                    if index < len(bounds)
                    else "+Inf"
                )
                lines.append(
                    f"{name}_bucket{_prom_labels(key, le=le)} {cumulative}"
                )
            lines.append(
                f"{name}_sum{_prom_labels(key)} {_prom_num(state['sum'])}"
            )
            lines.append(f"{name}_count{_prom_labels(key)} {state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_labels(key: str, **extra: str) -> str:
    labels = _parse_label_key(key)
    labels.update(extra)
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def _prom_num(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def merge_snapshots(*snapshots: dict) -> dict:
    """Pure merge of any number of snapshots (associative, commutative).

    Counters and histogram buckets sum; gauges take the max; histogram
    bucket bounds must agree.  The result is itself a snapshot, so
    merging is closed and can be chained across any fan-out topology
    (pool workers -> parent -> serve stats -> CLI).
    """
    merged = MetricRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def snapshot_quantile(entry: dict, key: str, q: float) -> float | None:
    """Quantile estimate straight from one histogram snapshot entry.

    ``entry`` is one metric's snapshot dict (``type == "histogram"``);
    ``key`` is the canonical label key (``""`` for unlabeled).  Used by
    the ``repro stats`` CLI to summarize remote histograms without
    rebuilding metric objects.
    """
    state = entry["values"].get(key)
    if state is None or not state["count"]:
        return None
    return _bucket_quantile(state, tuple(entry["bounds"]), q)


#: The process-global registry the whole stack records onto.
_REGISTRY = MetricRegistry()


def registry() -> MetricRegistry:
    """The process-global :class:`MetricRegistry`."""
    return _REGISTRY


def reset_registry() -> None:
    """Zero the process-global registry (fork-pool worker init, tests)."""
    _REGISTRY.reset()


def labeled_series(snapshot: dict, name: str) -> Iterable[tuple[dict, object]]:
    """Iterate ``(labels, value)`` pairs of one snapshot metric."""
    entry = snapshot.get(name)
    if entry is None:
        return
    for key, value in sorted(entry["values"].items()):
        yield _parse_label_key(key), value
