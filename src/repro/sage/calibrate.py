"""The calibrated fidelity tier: analytical counts x measured overhead.

The fidelity ladder's missing middle rung (ROADMAP "Calibrated fidelity
tier"): the analytical cost model is fast but uncalibrated; the cycle
tier is the operational ground truth but pays a full simulation per
candidate.  The csl-experiments compute-model exemplar closes the same
gap for SUMMA GEMM kernels by predicting cycles as a *pure analytical
count times a measured overhead factor* — this module does that for the
SAGE compute stage.

Methodology
-----------

A **training grid** of synthetic workloads (sizes x densities x kernels,
:class:`CalibrationGrid`) is priced twice per (streamed ACF, stationary
ACF) pair: once by :func:`~repro.accelerator.perf_model.
analytical_gemm_stats` and once by the vectorized cycle simulator
(:meth:`~repro.accelerator.simulator.WeightStationarySimulator.
simulate_many` — the ~139x engine makes the grid cheap).  Each sample's
cycle and energy ratios are grouped by **(kernel, ACF pair, density
band)** — a power-of-two bucket of the streamed operand's density — and
aggregated into one :class:`CellStats` per cell: the geometric-mean
**correction factor** plus p50/p95 relative-error **residual bounds**
describing how well that single factor explains the cell's samples.

Registry-only streamed ACFs (e.g. ELL) have no closed-form model
(:func:`analytical_gemm_stats` rejects them), so their factors are
regressed against the :data:`ANALYTICAL_BASE_ACF` proxy — the factor
absorbs the padding/extraction overhead, and the predictor applies the
same base at decision time, keeping training and inference symmetric.

Persistence
-----------

Every grid cell is cached through the :class:`~repro.xp.artifacts.
ArtifactStore` (so ``repro calibrate --resume`` re-executes nothing),
and the aggregated table is stored under a key derived from the
accelerator-config digest, the wire-schema version and
:data:`GRID_VERSION` — a hardware or schema change silently invalidates
the stale table (:func:`load_table` returns ``None``; the predictor then
demands a rebuild instead of applying wrong factors).

Everything here is deterministic: operand seeds derive from workload
names, sample aggregation iterates in sorted order — rebuilding a table
from the same grid reproduces bit-identical factors (pinned by
``tests/sage/test_calibration.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf_model import analytical_gemm_stats
from repro.accelerator.protocols import streamable_formats
from repro.accelerator.simulator import WeightStationarySimulator
from repro.api.options import WIRE_SCHEMA_VERSION
from repro.errors import PredictionError, SimulationError
from repro.formats.csc import CscMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format, matrix_class
from repro.sage.cost_model import CostBreakdown
from repro.sage.spaces import MATRIX_ACF_STATIONARY, MATRIX_ACF_STREAMED
from repro.workloads.spec import Kernel, MatrixWorkload
from repro.workloads.synthetic import random_sparse_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an xp cycle)
    from repro.xp.artifacts import ArtifactStore

__all__ = [
    "ANALYTICAL_BASE_ACF",
    "CalibrationBuild",
    "CalibrationError",
    "CalibrationGrid",
    "CalibrationTable",
    "CellStats",
    "ErrorBound",
    "GRIDS",
    "GRID_VERSION",
    "analytical_base_acf",
    "build_table",
    "calibration_band",
    "load_default_table",
    "load_table",
]

#: Bump when the grid/measurement semantics change: invalidates every
#: stored cell and table at once (it is part of both store keys).
GRID_VERSION = 1

#: Artifact-store "experiment" directories (cells and aggregated tables).
CELL_EXPERIMENT = "sage_calibration"
TABLE_EXPERIMENT = "sage_calibration_table"

#: Densest representable band (density ~1) and the sparse clamp.
MIN_BAND = -24

#: The closed-form stand-in for streamed ACFs outside the analytical
#: space (row-grouped, like ELL's row-major padding): training regresses
#: the simulator against this base, prediction applies the same base.
ANALYTICAL_BASE_ACF = Format.CSR


class CalibrationError(PredictionError):
    """A calibration table is malformed, stale, or cannot be built."""


def calibration_band(density: float) -> int:
    """Power-of-two density bucket of the streamed operand.

    ``0`` is (near-)dense, each step down halves the density; clamped at
    :data:`MIN_BAND`.  Banding on *density* (not absolute nnz) lets a
    factor trained at one size generalize across sizes of the same
    sparsity regime — the same reasoning as the serve layer's
    :func:`~repro.serve.fingerprint.density_band`, but size-invariant.
    """
    if density <= 0.0:
        return MIN_BAND
    if density >= 1.0:
        return 0
    return max(MIN_BAND, int(math.floor(math.log2(density))))


def analytical_base_acf(acf_a: Format) -> Format:
    """The closed-form ACF a correction factor is regressed against."""
    return acf_a if acf_a in MATRIX_ACF_STREAMED else ANALYTICAL_BASE_ACF


def _config_digest(config: AcceleratorConfig) -> str:
    # Lazy: repro.serve.fingerprint pulls the serve package in.
    from repro.serve.fingerprint import config_digest

    return config_digest(config)


# --------------------------------------------------------------------- table


@dataclass(frozen=True)
class ErrorBound:
    """Residual error of a calibrated prediction, relative to simulation.

    ``p50_rel`` / ``p95_rel`` are percentiles of ``|sim - factor *
    analytical| / sim`` over the training samples of the cell that
    produced the winning candidate — i.e. how far the corrected compute
    cycles may sit from a real simulation of this (kernel, ACF, density
    band), not a bound on the uncalibrated analytical model.
    """

    p50_rel: float
    p95_rel: float

    def __post_init__(self) -> None:
        if self.p50_rel < 0.0 or self.p95_rel < 0.0:
            raise CalibrationError("error bounds must be non-negative")

    def to_wire(self) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`)."""
        return {"p50_rel": self.p50_rel, "p95_rel": self.p95_rel}

    @classmethod
    def from_wire(cls, data: Mapping) -> "ErrorBound":
        """Rebuild a bound from its :meth:`to_wire` form."""
        return cls(
            p50_rel=float(data["p50_rel"]), p95_rel=float(data["p95_rel"])
        )


@dataclass(frozen=True)
class CellStats:
    """One calibration cell: correction factors plus residual bounds."""

    #: Geometric-mean simulated/analytical compute-cycle ratio.
    factor: float
    #: Geometric-mean simulated/analytical compute-energy ratio.
    energy_factor: float
    #: Percentiles of the per-sample relative residual (see ErrorBound).
    p50_rel_err: float
    p95_rel_err: float
    #: Training samples aggregated into this cell.
    samples: int

    def __post_init__(self) -> None:
        if not (self.factor > 0.0 and math.isfinite(self.factor)):
            raise CalibrationError(
                f"correction factor must be strictly positive, got "
                f"{self.factor!r}"
            )
        if not (self.energy_factor > 0.0 and math.isfinite(self.energy_factor)):
            raise CalibrationError(
                f"energy factor must be strictly positive, got "
                f"{self.energy_factor!r}"
            )
        if self.p50_rel_err < 0.0 or self.p95_rel_err < 0.0:
            raise CalibrationError("residual errors must be non-negative")
        if self.samples < 1:
            raise CalibrationError("a cell needs at least one sample")

    @property
    def bound(self) -> ErrorBound:
        """The cell's residuals as a decision-attachable bound."""
        return ErrorBound(p50_rel=self.p50_rel_err, p95_rel=self.p95_rel_err)

    def corrected_cycles(self, analytical_cycles: int) -> int:
        """Calibrated compute cycles (monotone in the analytical count)."""
        return max(1, math.ceil(analytical_cycles * self.factor))

    def corrected_energy(self, analytical_energy_j: float) -> float:
        """Calibrated compute energy."""
        return analytical_energy_j * self.energy_factor


#: (kernel value, streamed ACF value, stationary ACF value, density band).
CellKey = tuple[str, str, str, int]


@dataclass(frozen=True)
class CalibrationTable:
    """Correction factors for one accelerator config, by calibration cell.

    Frozen and picklable: a :class:`~repro.sage.predictor.Sage` carries
    its table across serve-shard forks, and decisions corrected by it are
    deterministic functions of (workload, table).
    """

    config_digest: str
    grid_name: str
    cells: Mapping[CellKey, CellStats] = field(default_factory=dict)
    grid_version: int = GRID_VERSION
    wire_schema: int = WIRE_SCHEMA_VERSION

    # -------------------------------------------------------------- lookup
    def lookup(
        self, kernel: Kernel | str, acf: Sequence[Format], density: float
    ) -> CellStats | None:
        """The cell for (kernel, ACF pair) nearest *density*'s band.

        Exact-band hits win; otherwise the nearest *trained* band of the
        same (kernel, ACF pair) answers — ties break toward the denser
        band, whose factors are better conditioned.  ``None`` when the
        pair was never trained at any band (the caller must then keep the
        uncalibrated analytical numbers rather than guess).
        """
        kernel_v = kernel.value if isinstance(kernel, Kernel) else str(kernel)
        acf_a, acf_b = acf[0].value, acf[1].value
        band = calibration_band(density)
        exact = self.cells.get((kernel_v, acf_a, acf_b, band))
        if exact is not None:
            return exact
        trained = [
            key
            for key in self.cells
            if key[0] == kernel_v and key[1] == acf_a and key[2] == acf_b
        ]
        if not trained:
            return None
        nearest = min(trained, key=lambda key: (abs(key[3] - band), -key[3]))
        return self.cells[nearest]

    def apply(
        self,
        cost: CostBreakdown,
        kernel: Kernel | str,
        density: float,
    ) -> tuple[CostBreakdown, CellStats | None]:
        """Correct one candidate's compute stage; DRAM/conversion pass through.

        Returns the corrected breakdown plus the cell that produced it
        (``None`` = untrained pair, breakdown returned unchanged).
        """
        cell = self.lookup(kernel, cost.acf, density)
        if cell is None:
            return cost, None
        return (
            dataclasses.replace(
                cost,
                compute_cycles=cell.corrected_cycles(cost.compute_cycles),
                compute_energy_j=cell.corrected_energy(cost.compute_energy_j),
            ),
            cell,
        )

    # ---------------------------------------------------------- (de)serialize
    def to_dict(self) -> dict:
        """JSON-safe form (inverse of :meth:`from_dict`), sorted stably."""
        return {
            "config_digest": self.config_digest,
            "grid_name": self.grid_name,
            "grid_version": self.grid_version,
            "wire_schema": self.wire_schema,
            "cells": [
                {
                    "kernel": key[0],
                    "acf_a": key[1],
                    "acf_b": key[2],
                    "band": key[3],
                    "factor": stats.factor,
                    "energy_factor": stats.energy_factor,
                    "p50_rel_err": stats.p50_rel_err,
                    "p95_rel_err": stats.p95_rel_err,
                    "samples": stats.samples,
                }
                for key, stats in sorted(self.cells.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CalibrationTable":
        """Rebuild (and validate) a table from its :meth:`to_dict` form."""
        try:
            cells: dict[CellKey, CellStats] = {}
            for row in data["cells"]:
                key: CellKey = (
                    str(row["kernel"]),
                    str(row["acf_a"]),
                    str(row["acf_b"]),
                    int(row["band"]),
                )
                if key in cells:
                    raise CalibrationError(
                        f"duplicate calibration cell {key}"
                    )
                cells[key] = CellStats(
                    factor=float(row["factor"]),
                    energy_factor=float(row["energy_factor"]),
                    p50_rel_err=float(row["p50_rel_err"]),
                    p95_rel_err=float(row["p95_rel_err"]),
                    samples=int(row["samples"]),
                )
            return cls(
                config_digest=str(data["config_digest"]),
                grid_name=str(data["grid_name"]),
                cells=cells,
                grid_version=int(data["grid_version"]),
                wire_schema=int(data["wire_schema"]),
            )
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(
                f"malformed calibration table: {exc}"
            ) from exc

    def summary(self) -> str:
        """Human-readable digest of the table for ``repro calibrate``."""
        lines = [
            f"calibration table ({len(self.cells)} cells, grid "
            f"{self.grid_name!r} v{self.grid_version}, config "
            f"{self.config_digest}, wire schema {self.wire_schema})"
        ]
        for key, stats in sorted(self.cells.items()):
            kernel, acf_a, acf_b, band = key
            lines.append(
                f"  {kernel:7s} ACF=({acf_a},{acf_b}) band {band:>3d}: "
                f"cycles x{stats.factor:7.3f} energy "
                f"x{stats.energy_factor:7.3f} "
                f"rel-err p50 {stats.p50_rel_err:.1%} / "
                f"p95 {stats.p95_rel_err:.1%} ({stats.samples} samples)"
            )
        return "\n".join(lines)


# ------------------------------------------------------------ training grid


@dataclass(frozen=True)
class CalibrationGrid:
    """A named training grid: sizes x densities x kernels."""

    name: str
    sizes: tuple[tuple[int, int, int], ...]
    densities: tuple[float, ...]
    kernels: tuple[Kernel, ...] = (Kernel.SPMM, Kernel.SPGEMM)

    def workloads(self) -> tuple[MatrixWorkload, ...]:
        """The grid's training workloads, in deterministic order.

        Operand B follows the suite convention: dense for SpMM,
        density-matched to A for SpGEMM.
        """
        out: list[MatrixWorkload] = []
        for kernel in self.kernels:
            for m, k, n in self.sizes:
                for density in self.densities:
                    nnz_a = max(1, min(m * k, round(density * m * k)))
                    nnz_b = (
                        k * n
                        if kernel is Kernel.SPMM
                        else max(1, min(k * n, round(density * k * n)))
                    )
                    out.append(
                        MatrixWorkload(
                            name=(
                                f"calib-{kernel.value}-{m}x{k}x{n}"
                                f"-d{density:g}"
                            ),
                            kernel=kernel,
                            m=m,
                            k=k,
                            n=n,
                            nnz_a=nnz_a,
                            nnz_b=nnz_b,
                        )
                    )
        return tuple(out)


#: Named grid presets.  All three sample one density per octave band
#: (``0.75 * 2**-i``) so every band a query can land in has a trained
#: cell — coarser ladders leave bands to nearest-neighbour fallback,
#: which measurably degrades top-1 agreement with the cycle tier.
#: ``tiny`` (sub-second — unit tests), ``smoke`` (CI + benchmarks: two
#: sizes per band so residual bounds are non-trivial, spans the Table
#: III density range), ``full`` (adds a third, larger size per band).
GRIDS: dict[str, CalibrationGrid] = {
    "tiny": CalibrationGrid(
        name="tiny",
        sizes=((96, 96, 48),),
        densities=tuple(0.75 * 2**-i for i in range(0, 15, 2)),
    ),
    "smoke": CalibrationGrid(
        name="smoke",
        sizes=((96, 96, 48), (160, 128, 64)),
        densities=tuple(0.75 * 2**-i for i in range(15)),
    ),
    "full": CalibrationGrid(
        name="full",
        sizes=((96, 96, 48), (160, 128, 64), (256, 192, 128)),
        densities=tuple(0.75 * 2**-i for i in range(18)),
    ),
}


def _workload_seed(workload: MatrixWorkload) -> int:
    """Deterministic operand seed from the workload's identity."""
    digest = hashlib.blake2s(workload.name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (1 << 31)


def _acf_pairs() -> tuple[tuple[Format, Format], ...]:
    """Every (streamed, stationary) ACF pair a decision can carry.

    The analytical space plus every registry-only streamable format (the
    cycle tier's extra candidates, e.g. ELL) — trained here so the
    calibrated tier ranks the same candidate set as the cycle tier.
    """
    streamed = list(MATRIX_ACF_STREAMED)
    for fmt in streamable_formats():
        if fmt not in streamed:
            streamed.append(fmt)
    return tuple(
        (acf_a, acf_b)
        for acf_a in streamed
        for acf_b in MATRIX_ACF_STATIONARY
    )


def _measure_workload(
    workload: MatrixWorkload, config: AcceleratorConfig
) -> list[dict]:
    """Analytical-vs-simulated compute samples for one training workload."""
    seed = _workload_seed(workload)
    a_dense = random_sparse_matrix(
        workload.m, workload.k, workload.nnz_a, seed
    )
    b_dense = random_sparse_matrix(
        workload.k, workload.n, workload.nnz_b, seed + 1
    )
    encoded_a: dict[Format, object] = {}
    encoded_b: dict[Format, object] = {}
    jobs, metas = [], []
    for acf_a, acf_b in _acf_pairs():
        try:
            run = analytical_gemm_stats(
                workload.m,
                workload.k,
                workload.n,
                workload.nnz_a,
                workload.nnz_b,
                analytical_base_acf(acf_a),
                acf_b,
                config,
            )
        except SimulationError:  # pragma: no cover - base ACFs are modelled
            continue
        if acf_a not in encoded_a:
            encoded_a[acf_a] = matrix_class(acf_a).from_dense(a_dense)
        if acf_b not in encoded_b:
            cls = CscMatrix if acf_b is Format.CSC else DenseMatrix
            encoded_b[acf_b] = cls.from_dense(b_dense)
        jobs.append(
            (encoded_a[acf_a], acf_a, encoded_b[acf_b], acf_b)
        )
        metas.append(
            {
                "acf_a": acf_a.value,
                "acf_b": acf_b.value,
                "analytical_cycles": run.cycles.total_cycles,
                "analytical_energy_j": run.energy.total_j,
            }
        )
    results = WeightStationarySimulator(config).simulate_many(
        jobs, processes=1
    )
    samples = []
    for meta, (_out, run) in zip(metas, results):
        samples.append(
            {
                **meta,
                "sim_cycles": run.cycles.total_cycles,
                "sim_energy_j": run.energy.total_j,
            }
        )
    return samples


# ------------------------------------------------------------- aggregation


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def _aggregate(
    measured: Sequence[tuple[MatrixWorkload, dict]],
    grid: CalibrationGrid,
    config: AcceleratorConfig,
) -> CalibrationTable:
    """Fold per-workload samples into per-cell factors + residuals."""
    groups: dict[CellKey, list[tuple[float, float, float, float]]] = {}
    for workload, record in measured:
        band = calibration_band(workload.density_a)
        for sample in record["samples"]:
            key: CellKey = (
                workload.kernel.value,
                sample["acf_a"],
                sample["acf_b"],
                band,
            )
            groups.setdefault(key, []).append(
                (
                    float(sample["analytical_cycles"]),
                    float(sample["sim_cycles"]),
                    float(sample["analytical_energy_j"]),
                    float(sample["sim_energy_j"]),
                )
            )
    cells: dict[CellKey, CellStats] = {}
    for key in sorted(groups):
        rows = sorted(groups[key])
        factor = math.exp(
            sum(math.log(sim / ana) for ana, sim, _, _ in rows) / len(rows)
        )
        energy_factor = math.exp(
            sum(math.log(sim / ana) for _, _, ana, sim in rows) / len(rows)
        )
        residuals = sorted(
            abs(sim - factor * ana) / sim for ana, sim, _, _ in rows
        )
        cells[key] = CellStats(
            factor=factor,
            energy_factor=energy_factor,
            p50_rel_err=_percentile(residuals, 0.50),
            p95_rel_err=_percentile(residuals, 0.95),
            samples=len(rows),
        )
    return CalibrationTable(
        config_digest=_config_digest(config),
        grid_name=grid.name,
        cells=cells,
    )


# ------------------------------------------------------------- build / load


@dataclass(frozen=True)
class _CellIdentity:
    """The artifact-store experiment identity of the calibration grid."""

    name: str = CELL_EXPERIMENT
    version: int = GRID_VERSION


@dataclass(frozen=True)
class CalibrationBuild:
    """Result of one :func:`build_table` run (the CLI's JSON record)."""

    table: CalibrationTable
    grid: str
    workloads: int
    executed: int
    cached: int
    wall_s: float
    table_path: Path

    def record(self) -> dict:
        """JSON-safe summary (``repro calibrate --json``)."""
        worst = max(
            (stats.p95_rel_err for stats in self.table.cells.values()),
            default=0.0,
        )
        return {
            "ok": True,
            "grid": self.grid,
            "workloads": self.workloads,
            "executed": self.executed,
            "cached": self.cached,
            "table_cells": len(self.table.cells),
            "config_digest": self.table.config_digest,
            "worst_p95_rel_err": worst,
            "wall_s": self.wall_s,
            "table_path": str(self.table_path),
        }


def _table_key(config: AcceleratorConfig) -> str:
    """Store key of the aggregated table for one accelerator config."""
    return f"{_config_digest(config)}-g{GRID_VERSION}-w{WIRE_SCHEMA_VERSION}"


def build_table(
    grid: CalibrationGrid,
    *,
    store: "ArtifactStore | None" = None,
    config: AcceleratorConfig | None = None,
    resume: bool = False,
    force: bool = False,
) -> CalibrationBuild:
    """Measure (or resume) a training grid and persist its table.

    ``resume=True`` answers grid cells already in the store without
    re-simulating (asserting zero re-execution is the CI smoke check);
    ``force=True`` invalidates them first.  The aggregated table always
    re-derives from the (cached or fresh) cell records and overwrites
    the stored table — a refresh is just a re-run.
    """
    from repro.xp.artifacts import ArtifactStore

    store = store if store is not None else ArtifactStore()
    cfg = config or AcceleratorConfig.paper_default()
    identity = _CellIdentity()
    if force:
        store.invalidate(CELL_EXPERIMENT)
    t0 = time.perf_counter()
    measured: list[tuple[MatrixWorkload, dict]] = []
    executed = cached = 0
    for workload in grid.workloads():
        params = {
            "workload": workload.to_dict(),
            "grid": grid.name,
            "config": _config_digest(cfg),
            "seed": _workload_seed(workload),
        }
        key = store.cell_key(identity, params)
        record = store.load(CELL_EXPERIMENT, key) if resume else None
        if record is None:
            t_cell = time.perf_counter()
            samples = _measure_workload(workload, cfg)
            record = {
                "params": params,
                "samples": samples,
                "elapsed_s": time.perf_counter() - t_cell,
            }
            store.store(CELL_EXPERIMENT, key, record)
            executed += 1
        else:
            cached += 1
        measured.append((workload, record))
    table = _aggregate(measured, grid, cfg)
    path = store.store(TABLE_EXPERIMENT, _table_key(cfg), table.to_dict())
    return CalibrationBuild(
        table=table,
        grid=grid.name,
        workloads=len(measured),
        executed=executed,
        cached=cached,
        wall_s=time.perf_counter() - t0,
        table_path=path,
    )


def load_table(
    store: "ArtifactStore", config: AcceleratorConfig | None = None
) -> CalibrationTable | None:
    """The stored table for *config*, or ``None`` when absent or stale.

    Stale means any key ingredient moved: the accelerator-config digest,
    the wire schema, or :data:`GRID_VERSION` — a mismatched table is a
    miss (rebuild with ``repro calibrate``), never silently applied.
    """
    cfg = config or AcceleratorConfig.paper_default()
    record = store.load(TABLE_EXPERIMENT, _table_key(cfg))
    if record is None:
        return None
    try:
        table = CalibrationTable.from_dict(record)
    except CalibrationError:
        return None
    if (
        table.config_digest != _config_digest(cfg)
        or table.grid_version != GRID_VERSION
        or table.wire_schema != WIRE_SCHEMA_VERSION
    ):
        return None
    return table


def load_default_table(
    config: AcceleratorConfig | None = None,
) -> CalibrationTable | None:
    """:func:`load_table` against the default on-disk artifact store."""
    from repro.xp.artifacts import ArtifactStore

    return load_table(ArtifactStore(), config)
