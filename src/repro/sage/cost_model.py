"""SAGE's cost model: DRAM traffic + format conversion + compute.

Sec. VI: "The cost model first predicts the DRAM energy consumption and
transfer cycles cost.  This is directly proportional to the compression
size of the MCF.  Second, to model the conversion cost, we evaluate the
building blocks necessary for each conversion scenario..."  The performance
(compute) model is :mod:`repro.accelerator.perf_model`.

MINT "is pipelined to start conversion while streaming in data from
memory" (Sec. V-B), so the ingest phase costs max(DRAM-in, conversion-in)
cycles and the write-back phase max(DRAM-out, output-compression); compute
follows.  Conversion *energy* is charged in full — it is tiny (Sec. VII-C
reports 0.023% of system energy).

The output is written back in the cheapest output MCF.  Every evaluated
accelerator is granted a native output encoder (EIE emits Dense(O),
ExTensor CSR(O), NVDLA ZVC(O) straight from their output buffers), so
output compression carges no conversion cost for any policy — otherwise
output-write energy would dominate every comparison on very sparse
outputs, which the paper's Fig. 12/13 ratios (EIE max 99%) rule out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf_model import (
    analytical_gemm_stats,
    analytical_mttkrp,
    analytical_spttm,
)
from repro.analysis.compactness import storage_bits
from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.hardware.dram import DramChannel
from repro.kernels.ops import expected_output_nnz
from repro.mint.cost import ConversionCost, shared_planner
from repro.sage.spaces import OUTPUT_MCF
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload

#: Signature of a conversion-cost provider: (src, dst, size, nnz, major_dim,
#: dtype_bits, tensor) -> ConversionCost.  ``None`` means conversions are
#: impossible (Flex Flex None-style accelerators).
ConversionProvider = Callable[
    [Format, Format, int, int, int, int, bool], ConversionCost
]


def mint_provider(
    src: Format,
    dst: Format,
    size: int,
    nnz: int,
    major_dim: int,
    dtype_bits: int,
    tensor: bool,
) -> ConversionCost:
    """The default provider: MINT attached to the accelerator.

    Routed through the process-wide memoized
    :class:`~repro.mint.cost.PathPlanner`, so the exhaustive combo search
    (which revisits every (src, dst) pair once per surrounding combination)
    prices each distinct conversion exactly once.
    """
    return shared_planner().estimate(
        src,
        dst,
        size=size,
        nnz=nnz,
        major_dim=major_dim,
        dtype_bits=dtype_bits,
        tensor=tensor,
    )


@dataclass(frozen=True)
class CostBreakdown:
    """Full cost decomposition of one (MCF, ACF) candidate."""

    mcf: tuple[Format, Format]
    acf: tuple[Format, Format]
    mcf_out: Format
    dram_in_cycles: int
    dram_out_cycles: int
    dram_energy_j: float
    conv_in_cycles: int
    conv_out_cycles: int
    conv_energy_j: float
    compute_cycles: int
    compute_energy_j: float
    clock_hz: float

    @property
    def conv_cycles(self) -> int:
        """Total converter-occupied cycles (may be hidden by DRAM)."""
        return self.conv_in_cycles + self.conv_out_cycles

    @property
    def ingest_cycles(self) -> int:
        """DRAM-in overlapped with operand conversion."""
        return max(self.dram_in_cycles, self.conv_in_cycles)

    @property
    def writeback_cycles(self) -> int:
        """DRAM-out overlapped with output compression."""
        return max(self.dram_out_cycles, self.conv_out_cycles)

    @property
    def total_cycles(self) -> int:
        """Pipelined-phase latency in cycles."""
        return self.ingest_cycles + self.compute_cycles + self.writeback_cycles

    @property
    def total_energy_j(self) -> float:
        """Total system energy."""
        return self.dram_energy_j + self.conv_energy_j + self.compute_energy_j

    @property
    def seconds(self) -> float:
        """Wall time at the accelerator clock."""
        return self.total_cycles / self.clock_hz

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds (the SAGE objective)."""
        return self.total_energy_j * self.seconds

    def to_wire(self) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`).

        Formats travel as their :class:`Format` enum values so any JSON
        client can read them without this package's pickle machinery.
        """
        return {
            "mcf": [self.mcf[0].value, self.mcf[1].value],
            "acf": [self.acf[0].value, self.acf[1].value],
            "mcf_out": self.mcf_out.value,
            "dram_in_cycles": self.dram_in_cycles,
            "dram_out_cycles": self.dram_out_cycles,
            "dram_energy_j": self.dram_energy_j,
            "conv_in_cycles": self.conv_in_cycles,
            "conv_out_cycles": self.conv_out_cycles,
            "conv_energy_j": self.conv_energy_j,
            "compute_cycles": self.compute_cycles,
            "compute_energy_j": self.compute_energy_j,
            "clock_hz": self.clock_hz,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CostBreakdown":
        """Rebuild a breakdown from its :meth:`to_wire` form."""
        return cls(
            mcf=(Format(data["mcf"][0]), Format(data["mcf"][1])),
            acf=(Format(data["acf"][0]), Format(data["acf"][1])),
            mcf_out=Format(data["mcf_out"]),
            dram_in_cycles=int(data["dram_in_cycles"]),
            dram_out_cycles=int(data["dram_out_cycles"]),
            dram_energy_j=float(data["dram_energy_j"]),
            conv_in_cycles=int(data["conv_in_cycles"]),
            conv_out_cycles=int(data["conv_out_cycles"]),
            conv_energy_j=float(data["conv_energy_j"]),
            compute_cycles=int(data["compute_cycles"]),
            compute_energy_j=float(data["compute_energy_j"]),
            clock_hz=float(data["clock_hz"]),
        )


def _output_plan(
    m: int,
    n: int,
    out_nnz: float,
    dtype_bits: int,
    allowed: tuple[Format, ...] = OUTPUT_MCF,
) -> tuple[Format, float]:
    """Pick the most compact output MCF: (format, store bits)."""
    best: tuple[Format, float] | None = None
    for fmt in allowed:
        bits = storage_bits(fmt, (m, n), int(round(out_nnz)), dtype_bits)
        if best is None or bits < best[1]:
            best = (fmt, bits)
    assert best is not None
    return best


@dataclass(frozen=True)
class MatrixIoPlan:
    """Everything about a matrix candidate except its compute stage.

    DRAM traffic and conversion cost depend only on (workload, MCF, ACF) —
    not on how the compute stage is modelled — so both fidelity tiers
    share this pricing: the analytical tier completes it with
    :func:`~repro.accelerator.perf_model.analytical_gemm_stats`, the cycle
    tier with a :class:`~repro.accelerator.report.RunReport` from the
    simulator (:meth:`complete`).
    """

    mcf: tuple[Format, Format]
    acf: tuple[Format, Format]
    mcf_out: Format
    dram_in_cycles: int
    dram_out_cycles: int
    dram_energy_j: float
    conv: ConversionCost
    clock_hz: float

    def complete(
        self, compute_cycles: int, compute_energy_j: float
    ) -> CostBreakdown:
        """Attach a compute stage, closing the breakdown."""
        return CostBreakdown(
            mcf=self.mcf,
            acf=self.acf,
            mcf_out=self.mcf_out,
            dram_in_cycles=self.dram_in_cycles,
            dram_out_cycles=self.dram_out_cycles,
            dram_energy_j=self.dram_energy_j,
            conv_in_cycles=self.conv.cycles,
            conv_out_cycles=0,
            conv_energy_j=self.conv.energy_j,
            compute_cycles=compute_cycles,
            compute_energy_j=compute_energy_j,
            clock_hz=self.clock_hz,
        )


def price_matrix_io(
    workload: MatrixWorkload,
    mcf: tuple[Format, Format],
    acf: tuple[Format, Format],
    *,
    config: AcceleratorConfig | None = None,
    dram: DramChannel | None = None,
    provider: ConversionProvider | None = mint_provider,
) -> MatrixIoPlan | None:
    """DRAM + conversion pricing of one matrix candidate (no compute).

    ``None`` when the candidate needs a conversion no provider offers.
    """
    cfg = config or AcceleratorConfig.paper_default()
    dram = dram or DramChannel(clock_hz=cfg.clock_hz)
    wl = workload
    b = wl.dtype_bits

    # --- DRAM in: both operands at their MCF footprint -----------------------
    bits_a = storage_bits(mcf[0], (wl.m, wl.k), wl.nnz_a, b)
    bits_b = storage_bits(mcf[1], (wl.k, wl.n), wl.nnz_b, b)
    dram_in_cycles = dram.transfer_cycles(int(bits_a + bits_b))
    dram_in_energy = dram.transfer_energy(int(bits_a + bits_b))

    # --- conversions ----------------------------------------------------------
    conv_in = ConversionCost.zero()
    for operand, (src, dst) in enumerate(zip(mcf, acf)):
        if src is dst:
            continue
        if provider is None:
            return None
        if operand == 0:
            size, nnz, major = wl.m * wl.k, wl.nnz_a, wl.m
        else:
            size, nnz, major = wl.k * wl.n, wl.nnz_b, wl.k
        conv_in = conv_in + provider(src, dst, size, nnz, major, b, False)

    # --- DRAM out --------------------------------------------------------------
    out_nnz = expected_output_nnz(wl.m, wl.n, wl.k, wl.nnz_a, wl.nnz_b)
    mcf_out, out_bits = _output_plan(wl.m, wl.n, out_nnz, b)

    return MatrixIoPlan(
        mcf=mcf,
        acf=acf,
        mcf_out=mcf_out,
        dram_in_cycles=dram_in_cycles,
        dram_out_cycles=dram.transfer_cycles(int(out_bits)),
        dram_energy_j=dram_in_energy + dram.transfer_energy(int(out_bits)),
        conv=conv_in,
        clock_hz=cfg.clock_hz,
    )


def evaluate_matrix_combo(
    workload: MatrixWorkload,
    mcf: tuple[Format, Format],
    acf: tuple[Format, Format],
    *,
    config: AcceleratorConfig | None = None,
    dram: DramChannel | None = None,
    provider: ConversionProvider | None = mint_provider,
    flexible_noc: bool = True,
) -> CostBreakdown | None:
    """Price one candidate; ``None`` when it needs an unavailable converter.

    ``flexible_noc=False`` models designs whose fabric cannot skip
    zero-valued operands (TPU, NVDLA): dense ACFs then stream and multiply
    every element.
    """
    cfg = config or AcceleratorConfig.paper_default()
    io = price_matrix_io(
        workload, mcf, acf, config=cfg, dram=dram, provider=provider
    )
    if io is None:
        return None
    wl = workload
    run = analytical_gemm_stats(
        wl.m, wl.k, wl.n, wl.nnz_a, wl.nnz_b, acf[0], acf[1], cfg,
        flexible_noc=flexible_noc,
    )
    return io.complete(run.cycles.total_cycles, run.energy.total_j)


def evaluate_tensor_combo(
    workload: TensorWorkload,
    mcf: tuple[Format, Format],
    acf: tuple[Format, Format],
    *,
    config: AcceleratorConfig | None = None,
    dram: DramChannel | None = None,
    provider: ConversionProvider | None = mint_provider,
) -> CostBreakdown | None:
    """Price one tensor-kernel candidate (SpTTM or MTTKRP)."""
    cfg = config or AcceleratorConfig.paper_default()
    dram = dram or DramChannel(clock_hz=cfg.clock_hz)
    wl = workload
    b = wl.dtype_bits
    x, y, z = wl.shape
    rank = wl.rank

    # Factor operands are dense K x rank matrices (one for SpTTM, two for
    # MTTKRP), per Sec. VII-A.
    n_factors = 2 if wl.kernel is Kernel.MTTKRP else 1
    factor_dims = [(z, rank)] if n_factors == 1 else [(y, rank), (z, rank)]

    bits_t = storage_bits(mcf[0], wl.shape, wl.nnz, b)
    bits_f = sum(
        storage_bits(mcf[1], dims, dims[0] * dims[1], b) for dims in factor_dims
    )
    dram_in_cycles = dram.transfer_cycles(int(bits_t + bits_f))
    dram_in_energy = dram.transfer_energy(int(bits_t + bits_f))

    conv = ConversionCost.zero()
    if mcf[0] is not acf[0]:
        if provider is None:
            return None
        conv = conv + provider(mcf[0], acf[0], wl.size, wl.nnz, x, b, True)
    if mcf[1] is not acf[1]:
        if provider is None:
            return None
        for dims in factor_dims:
            conv = conv + provider(
                mcf[1], acf[1], dims[0] * dims[1], dims[0] * dims[1], dims[0], b,
                False,
            )

    if wl.kernel is Kernel.SPTTM:
        run = analytical_spttm(wl.shape, wl.nnz, rank, acf[0], cfg)
        out_elems = x * y * rank  # semi-dense fiber-major output
        out_nnz = x * y * (1.0 - (1.0 - wl.density) ** z) * rank
    elif wl.kernel is Kernel.MTTKRP:
        run = analytical_mttkrp(wl.shape, wl.nnz, rank, acf[0], cfg)
        out_elems = x * rank
        out_nnz = x * (1.0 - (1.0 - wl.density) ** (y * z)) * rank
    else:
        raise PredictionError(f"{wl.kernel} is not a tensor kernel")

    # CSC-encoding a dense stationary factor doubles its buffer footprint;
    # charge the extra load traffic (the search should learn to avoid it).
    extra_cycles = 0
    if acf[1] is Format.CSC:
        extra_entries = sum(d[0] * d[1] for d in factor_dims)
        extra_cycles = extra_entries // cfg.bus_slots

    out_bits = min(
        float(out_elems) * b,  # dense
        out_nnz * (b + 32),  # COO-ish compressed bound
    )
    return CostBreakdown(
        mcf=mcf,
        acf=acf,
        mcf_out=Format.DENSE if out_bits == out_elems * b else Format.COO,
        dram_in_cycles=dram_in_cycles,
        dram_out_cycles=dram.transfer_cycles(int(out_bits)),
        dram_energy_j=dram_in_energy + dram.transfer_energy(int(out_bits)),
        conv_in_cycles=conv.cycles,
        conv_out_cycles=0,
        conv_energy_j=conv.energy_j,
        compute_cycles=run.cycles.total_cycles + extra_cycles,
        compute_energy_j=run.energy.total_j,
        clock_hz=cfg.clock_hz,
    )
