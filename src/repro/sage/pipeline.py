"""Multi-stage pipeline planning: chained kernels with carried formats.

The paper motivates datacenter accelerators running *suites* of kernels
(Sec. I) and notes the output-side format concern explicitly (Sec. III-C:
accelerators "may require compression before storing back to memory", and
DL backprop transposes weights between layers).  This module extends SAGE
from single kernels to a chain: the tensor a stage writes to DRAM is the
streamed operand the next stage reads, so

* stage i's *output MCF* becomes stage i+1's *input MCF* (no re-encoding in
  DRAM — the whole point of choosing the output format wisely), and
* SAGE plans the chain greedily left-to-right, constraining each stage's
  streamed-operand search space to its predecessor's output format.

A greedy plan is optimal here because the carried state between stages is
exactly one format and the per-stage cost model already folds the
conversion cost of *consuming* that format into the stage it burdens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.sage.predictor import Sage, SageDecision
from repro.workloads.spec import MatrixWorkload


@dataclass(frozen=True)
class PipelineStage:
    """One planned stage: the workload and SAGE's constrained decision."""

    workload: MatrixWorkload
    decision: SageDecision
    inherited_mcf: Format | None  # streamed-operand format carried in

    @property
    def carried_out(self) -> Format:
        """The output MCF this stage hands to its successor."""
        return self.decision.best.mcf_out


@dataclass(frozen=True)
class PipelinePlan:
    """A fully planned chain."""

    stages: tuple[PipelineStage, ...]

    @property
    def total_cycles(self) -> int:
        """Sum of per-stage latencies (stages execute back to back)."""
        return sum(s.decision.best.total_cycles for s in self.stages)

    @property
    def total_energy_j(self) -> float:
        """Sum of per-stage energies."""
        return sum(s.decision.best.total_energy_j for s in self.stages)

    @property
    def edp(self) -> float:
        """Chain EDP in joule-seconds."""
        seconds = sum(s.decision.best.seconds for s in self.stages)
        return self.total_energy_j * seconds

    def summary(self) -> str:
        """One line per stage: inherited format -> chosen combo -> output."""
        lines = ["Pipeline plan:"]
        for i, s in enumerate(self.stages):
            inherited = s.inherited_mcf.value if s.inherited_mcf else "free"
            b = s.decision.best
            lines.append(
                f"  stage {i} ({s.workload.name}): in[{inherited}] "
                f"MCF=({b.mcf[0].value},{b.mcf[1].value}) "
                f"ACF=({b.acf[0].value},{b.acf[1].value}) "
                f"out[{b.mcf_out.value}] EDP={b.edp:.3e}"
            )
        lines.append(
            f"  total: {self.total_cycles:,} cycles, "
            f"{self.total_energy_j:.3e} J, EDP {self.edp:.3e}"
        )
        return "\n".join(lines)


def plan_chain(
    workloads: Sequence[MatrixWorkload],
    sage: Sage | None = None,
    *,
    first_input_mcf: Format | None = None,
) -> PipelinePlan:
    """Plan a chain of matrix kernels with carried inter-stage formats.

    Parameters
    ----------
    workloads:
        Stage i+1's streamed operand is assumed to be stage i's output
        (shapes are the caller's responsibility — e.g. im2col re-layout
        between conv layers preserves the stored format).
    first_input_mcf:
        Optional pre-committed format of the very first input (e.g. the
        dataset is stored in CSR on disk).
    """
    if not workloads:
        raise PredictionError("cannot plan an empty pipeline")
    sage = sage or Sage()
    stages: list[PipelineStage] = []
    carried: Format | None = first_input_mcf
    for wl in workloads:
        decision = sage.predict_matrix(
            wl, mcf_a_space=(carried,) if carried is not None else None
        )
        stages.append(
            PipelineStage(workload=wl, decision=decision, inherited_mcf=carried)
        )
        carried = decision.best.mcf_out
    return PipelinePlan(stages=tuple(stages))
