"""The SAGE predictor: search the MCF/ACF space for minimum EDP.

"SAGE predicts which MCF and ACF combination results in the lowest
energy-delay product (EDP).  The inputs to SAGE are workload size,
datatype, density region, MINT format conversion cost, and accelerator
hardware parameters.  The outputs are the ideal MCF and ACF combinations."
(Sec. VI)

Three **fidelity tiers** are exposed through ``fidelity=``:

* ``"analytical"`` (default) — the paper's closed-form cost model over the
  full MCF/ACF cross-product; fast enough for exhaustive search.
* ``"calibrated"`` — the analytical candidates, compute stage corrected by
  measured per-(kernel, ACF, density-band) factors from a
  :class:`~repro.sage.calibrate.CalibrationTable` (built once against the
  cycle simulator with ``repro calibrate``).  No simulation at decision
  time: analytical latency, near-cycle ranking, and the winning cell's
  residual bounds attached as :attr:`SageDecision.error_bound`.  Costs are
  at full workload scale (``sim_scale`` stays 1.0).  Registry-only
  streamed ACFs (e.g. ELL) join via their trained factors over the
  :data:`~repro.sage.calibrate.ANALYTICAL_BASE_ACF` closed-form base, so
  the candidate set matches the cycle tier's.
* ``"cycle"`` — the analytical top-k is validated (or re-ranked) by the
  cycle-level simulator (Sec. IV's operational ground truth): concrete
  operands with the workload's exact statistics are materialized, encoded
  per candidate, and batch-simulated via
  :meth:`~repro.accelerator.simulator.WeightStationarySimulator.
  simulate_many`.  Any extra streamable ACF registered in the
  streaming-protocol registry but absent from the analytical search space
  (e.g. ELL) joins the candidate set here — the cycle tier is how newly
  registered protocols enter SAGE decisions before anyone writes a
  closed-form model for them.  Very large workloads are simulated through
  a density-preserving proxy capped at :data:`SIM_CAP_ELEMENTS` elements
  per operand, so the tier stays interactive; all candidates are priced at
  the same scale, keeping the ranking meaningful, and the scaling is
  declared on the decision (:attr:`SageDecision.sim_scale` travels on the
  wire), so absolute cycle/energy numbers are never mistaken for
  full-scale measurements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf_model import analytical_gemm_stats
from repro.accelerator.protocols import streamable_formats
from repro.accelerator.simulator import WeightStationarySimulator
from repro.api.options import FIDELITIES, PredictOptions, resolve_options
from repro.errors import ConversionError, PredictionError, SimulationError
from repro.formats.csc import CscMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format, matrix_class
from repro.hardware.dram import DramChannel
from repro.mint.cost import shared_planner
from repro.obs import registry, span
from repro.sage.calibrate import (
    CalibrationTable,
    ErrorBound,
    analytical_base_acf,
    load_default_table,
)
from repro.sage.cost_model import (
    ConversionProvider,
    CostBreakdown,
    evaluate_matrix_combo,
    evaluate_tensor_combo,
    mint_provider,
    price_matrix_io,
)
from repro.sage.spaces import MATRIX_ACF_STREAMED, matrix_combos, tensor_combos
from repro.util.pool import fork_map
from repro.workloads.spec import MatrixWorkload, TensorWorkload
from repro.workloads.synthetic import random_sparse_matrix

#: Largest operand (in logical elements) the cycle tier simulates directly;
#: bigger workloads are validated through a density-preserving proxy.
SIM_CAP_ELEMENTS = 1 << 18

#: Analytical candidates the cycle tier re-simulates.
CYCLE_TOP_K = 4

#: Optional warm operand cache for the cycle tier (see
#: :func:`set_proxy_operand_cache`).  ``None`` means "materialize fresh".
_PROXY_OPERAND_CACHE = None

_CANDIDATES = registry().counter(
    "repro_sage_candidates_total",
    "MCF/ACF candidates priced by the cost model, by kind and feasibility",
)
_PREDICTIONS = registry().counter(
    "repro_sage_predictions_total", "SAGE decisions produced, by fidelity"
)


def set_proxy_operand_cache(cache) -> None:
    """Install (or clear, with ``None``) a proxy-operand cache.

    The cycle fidelity tier materializes deterministic proxy operands
    per ``(m, k, nnz, seed)``.  Long-lived multi-process hosts — the
    serve shards — install a
    :class:`repro.util.shm.OperandCacheNamespace` here so every shard
    attaches to the one warm shared-memory copy instead of
    re-materializing the tensor per request.  Anything with
    ``get_or_build(key, builder) -> ndarray`` qualifies.
    """
    global _PROXY_OPERAND_CACHE
    _PROXY_OPERAND_CACHE = cache


def _proxy_dense(m: int, k: int, nnz: int, seed: int):
    """A (possibly cached) deterministic proxy operand."""
    if _PROXY_OPERAND_CACHE is None:
        return random_sparse_matrix(m, k, nnz, seed)
    return _PROXY_OPERAND_CACHE.get_or_build(
        ("proxy", m, k, nnz, seed),
        lambda: random_sparse_matrix(m, k, nnz, seed),
    )


@dataclass(frozen=True)
class SageDecision:
    """SAGE's output: the chosen combination plus the full ranking."""

    workload_name: str
    best: CostBreakdown
    ranking: tuple[CostBreakdown, ...]
    fidelity: str = "analytical"
    #: Fraction of the workload's (m*k*n) volume the cycle tier actually
    #: simulated: 1.0 = exact scale; < 1.0 = a density-preserving proxy
    #: stood in, so absolute cycles/energy/EDP are at proxy scale (the
    #: ranking is still comparable — every candidate shares the scale).
    sim_scale: float = 1.0
    #: Calibrated tier only: the winning candidate's residual bounds
    #: (p50/p95 relative error vs the cycle simulator on the training
    #: cell that corrected it).  ``None`` on other tiers, or when the
    #: winner's (kernel, ACF, band) was never trained.
    error_bound: ErrorBound | None = None

    @property
    def mcf(self) -> tuple[Format, Format]:
        """Chosen memory compression formats (per operand)."""
        return self.best.mcf

    @property
    def acf(self) -> tuple[Format, Format]:
        """Chosen algorithm compression formats (per operand)."""
        return self.best.acf

    def to_wire(self, top: int | None = None) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`).

        ``top`` truncates the shipped ranking (the serve layer defaults to
        a small prefix so cache-hit responses stay compact); ``None`` ships
        the full ranking, making the round trip lossless.
        """
        ranking = self.ranking if top is None else self.ranking[:top]
        wire = {
            "workload_name": self.workload_name,
            "fidelity": self.fidelity,
            "sim_scale": self.sim_scale,
            "best": self.best.to_wire(),
            "ranking": [cand.to_wire() for cand in ranking],
        }
        if self.error_bound is not None:
            # Omitted when unset so analytical/cycle decisions keep the
            # exact pre-calibration wire shape (schema stays version 2).
            wire["error_bound"] = self.error_bound.to_wire()
        return wire

    @classmethod
    def from_wire(cls, data: dict) -> "SageDecision":
        """Rebuild a decision from its :meth:`to_wire` form."""
        return cls(
            workload_name=str(data["workload_name"]),
            best=CostBreakdown.from_wire(data["best"]),
            ranking=tuple(
                CostBreakdown.from_wire(cand) for cand in data["ranking"]
            ),
            fidelity=str(data.get("fidelity", "analytical")),
            sim_scale=float(data.get("sim_scale", 1.0)),
            error_bound=(
                None
                if data.get("error_bound") is None
                else ErrorBound.from_wire(data["error_bound"])
            ),
        )

    def summary(self, top: int = 5) -> str:
        """Human-readable ranking of the best candidates."""
        if self.fidelity == "analytical":
            tier = ""
        elif self.sim_scale < 1.0:
            tier = f" [{self.fidelity}, proxy at {self.sim_scale:.1e}x volume]"
        elif self.error_bound is not None:
            tier = (
                f" [{self.fidelity}, rel err p50 "
                f"{self.error_bound.p50_rel:.1%} / p95 "
                f"{self.error_bound.p95_rel:.1%}]"
            )
        else:
            tier = f" [{self.fidelity}]"
        lines = [f"SAGE decision for {self.workload_name}{tier}:"]
        for i, cand in enumerate(self.ranking[:top]):
            marker = "*" if i == 0 else " "
            lines.append(
                f" {marker} MCF=({cand.mcf[0]},{cand.mcf[1]}) "
                f"ACF=({cand.acf[0]},{cand.acf[1]}) "
                f"EDP={cand.edp:.3e} J*s "
                f"(dram {cand.dram_in_cycles + cand.dram_out_cycles} cyc, "
                f"conv {cand.conv_cycles} cyc, compute {cand.compute_cycles} cyc)"
            )
        return "\n".join(lines)


def truncate_ranking(
    decision: SageDecision, top_k: int | None
) -> SageDecision:
    """Keep the ranking prefix ``top_k`` (``best`` is always retained)."""
    if top_k is None or len(decision.ranking) <= top_k:
        return decision
    return dataclasses.replace(decision, ranking=decision.ranking[:top_k])


class Sage:
    """The format predictor, bound to one accelerator + DRAM configuration.

    Every entry point accepts the same consolidated option set, either as
    one typed :class:`~repro.api.options.PredictOptions` object
    (``options=``) or as the equivalent keyword arguments (which override
    the object's fields).  Most callers should prefer the
    :class:`~repro.api.session.Session` facade, which fronts this class
    and the remote serving backend with one surface; ``Sage`` remains the
    stable in-process primitive underneath.
    """

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        dram: DramChannel | None = None,
        provider: ConversionProvider | None = mint_provider,
        calibration: CalibrationTable | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig.paper_default()
        self.dram = dram or DramChannel(clock_hz=self.config.clock_hz)
        self.provider = provider
        #: Calibrated-tier correction table.  ``None`` defers to the
        #: default artifact store on first calibrated prediction (see
        #: :meth:`ensure_calibration`); pass one explicitly for scratch
        #: stores or embedded servers.  Plain attribute, so it pickles
        #: into serve shards / predict_many workers with the predictor.
        self.calibration = calibration

    def ensure_calibration(self) -> CalibrationTable:
        """The calibration table for this config, loading it if needed.

        Raises a :class:`~repro.errors.PredictionError` naming the
        rebuild command when no (non-stale) table exists — the calibrated
        tier never silently answers with uncorrected numbers.
        """
        if self.calibration is None:
            table = load_default_table(self.config)
            if table is None:
                raise PredictionError(
                    "no calibration table for this accelerator config "
                    "(stale or never built) — build one with "
                    "'repro calibrate', or pass Sage(calibration=...)"
                )
            self.calibration = table
        return self.calibration

    def for_options(self, options: PredictOptions) -> "Sage":
        """The predictor matching *options*' hardware overrides.

        Requests that carry ``options.config`` / ``options.dram_gbps``
        (the ``repro.tune`` evaluation path) are answered by a derived
        ``Sage`` bound to that hardware; everything else — search spaces,
        the conversion provider, proxy caches (process-global) — is
        shared.  Requests without overrides get ``self`` back, so the
        resident predictor's identity (and anything keyed on it) is
        untouched on the normal path.
        """
        if not options.overrides_hardware:
            return self
        config = options.config or self.config
        if options.dram_gbps is not None:
            dram = DramChannel(
                bandwidth_bytes_per_s=options.dram_gbps * 1e9,
                clock_hz=config.clock_hz,
                energy=self.dram.energy,
            )
        else:
            dram = DramChannel(
                bandwidth_bytes_per_s=self.dram.bandwidth_bytes_per_s,
                clock_hz=config.clock_hz,
                energy=self.dram.energy,
            )
        return Sage(config=config, dram=dram, provider=self.provider)

    @staticmethod
    def _strip_hardware(options: PredictOptions) -> PredictOptions:
        """Drop the override fields once a derived predictor owns them."""
        return dataclasses.replace(options, config=None, dram_gbps=None)

    def predict_matrix(
        self,
        workload: MatrixWorkload,
        *,
        options: PredictOptions | None = None,
        fixed_mcf: tuple[Format, Format] | None = None,
        mcf_a_space: tuple[Format, ...] | None = None,
        mcf_b_space: tuple[Format, ...] | None = None,
        fidelity: str | None = None,
    ) -> SageDecision:
        """Search the matrix MCF/ACF space for *workload*.

        ``fixed_mcf`` restricts the search to ACFs (and the conversion plan)
        when the programmer has already committed a storage format;
        ``mcf_a_space`` / ``mcf_b_space`` restrict single operands (used by
        the pipeline planner, where a stage inherits its predecessor's
        output format).  ``fidelity="cycle"`` re-ranks the analytical top-k
        through the cycle simulator (see the module docstring).  The same
        knobs (plus ``top_k`` ranking truncation) can arrive bundled as
        one ``options`` object; explicit keywords override its fields.
        """
        opts = resolve_options(
            options,
            fixed_mcf=fixed_mcf,
            mcf_a_space=mcf_a_space,
            mcf_b_space=mcf_b_space,
            fidelity=fidelity,
        )
        if opts.overrides_hardware:
            return self.for_options(opts).predict_matrix(
                workload, options=self._strip_hardware(opts)
            )
        candidates: list[CostBreakdown] = []
        enumerated = 0
        with span("sage.enumerate", workload=workload.name):
            for mcf, acf in matrix_combos(**opts.search_kwargs()):
                enumerated += 1
                cost = evaluate_matrix_combo(
                    workload,
                    mcf,
                    acf,
                    config=self.config,
                    dram=self.dram,
                    provider=self.provider,
                )
                if cost is not None:
                    candidates.append(cost)
        # Aggregated (not per-candidate) incs: the enumerate loop is the
        # predict hot path and counter cost must not scale with it.
        _CANDIDATES.inc(len(candidates), kind="matrix", feasible="yes")
        _CANDIDATES.inc(enumerated - len(candidates), kind="matrix",
                        feasible="no")
        decision = self._decide(workload.name, candidates)
        if opts.fidelity == "cycle":
            with span("sage.rerank", workload=workload.name):
                decision = self._cycle_rerank(workload, decision)
        elif opts.fidelity == "calibrated":
            with span("sage.calibrate", workload=workload.name):
                decision = self._calibrated_rerank(workload, decision)
        elif opts.fidelity not in (None, "analytical"):
            # A tier registered in FIDELITIES but not dispatched above
            # must fail loudly, not silently answer analytically.
            raise PredictionError(
                f"fidelity {opts.fidelity!r} is registered but not "
                f"implemented by this predictor"
            )
        _PREDICTIONS.inc(fidelity=decision.fidelity)
        return truncate_ranking(decision, opts.top_k)

    def predict_tensor(
        self,
        workload: TensorWorkload,
        *,
        options: PredictOptions | None = None,
        fixed_mcf: tuple[Format, Format] | None = None,
        fidelity: str | None = None,
    ) -> SageDecision:
        """Search the 3-D tensor MCF/ACF space for *workload*.

        Options the tensor search cannot honor are rejected with a
        :class:`~repro.errors.PredictionError` (never silently ignored):
        per-operand MCF spaces have no tensor equivalent, and cycle
        fidelity needs the matrix simulator.
        """
        opts = resolve_options(options, fixed_mcf=fixed_mcf, fidelity=fidelity)
        if opts.overrides_hardware:
            return self.for_options(opts).predict_tensor(
                workload, options=self._strip_hardware(opts)
            )
        unsupported = [
            name
            for name in ("mcf_a_space", "mcf_b_space")
            if getattr(opts, name) is not None
        ]
        if unsupported:
            raise PredictionError(
                f"{', '.join(unsupported)} not supported for 3-D tensor "
                f"workloads (per-operand MCF spaces are a matrix-search "
                f"restriction; use fixed_mcf to pin both tensor operands)"
            )
        if opts.fidelity in ("cycle", "calibrated"):
            raise PredictionError(
                f"{opts.fidelity} fidelity requires the matrix simulator; "
                f"3-D tensor kernels are analytical-only (matricized "
                f"streaming specs)"
            )
        candidates: list[CostBreakdown] = []
        enumerated = 0
        with span("sage.enumerate", workload=workload.name):
            for mcf, acf in tensor_combos(fixed_mcf=opts.fixed_mcf):
                enumerated += 1
                cost = evaluate_tensor_combo(
                    workload,
                    mcf,
                    acf,
                    config=self.config,
                    dram=self.dram,
                    provider=self.provider,
                )
                if cost is not None:
                    candidates.append(cost)
        _CANDIDATES.inc(len(candidates), kind="tensor", feasible="yes")
        _CANDIDATES.inc(enumerated - len(candidates), kind="tensor",
                        feasible="no")
        decision = self._decide(workload.name, candidates)
        _PREDICTIONS.inc(fidelity=decision.fidelity)
        return truncate_ranking(decision, opts.top_k)

    def predict(
        self,
        workload: MatrixWorkload | TensorWorkload,
        *,
        options: PredictOptions | None = None,
        fixed_mcf: tuple[Format, Format] | None = None,
        mcf_a_space: tuple[Format, ...] | None = None,
        mcf_b_space: tuple[Format, ...] | None = None,
        fidelity: str | None = None,
    ) -> SageDecision:
        """Dispatch on workload arity (matrix vs 3-D tensor).

        Accepts the full option set of :meth:`predict_matrix`; tensor
        workloads reject matrix-only restrictions with a clear
        :class:`~repro.errors.PredictionError` instead of dropping them.
        """
        opts = resolve_options(
            options,
            fixed_mcf=fixed_mcf,
            mcf_a_space=mcf_a_space,
            mcf_b_space=mcf_b_space,
            fidelity=fidelity,
        )
        if isinstance(workload, TensorWorkload):
            return self.predict_tensor(workload, options=opts)
        return self.predict_matrix(workload, options=opts)

    def predict_many(
        self,
        workloads: Sequence[MatrixWorkload | TensorWorkload],
        *,
        options: PredictOptions | None = None,
        processes: int | None = None,
        fidelity: str | None = None,
        transport: str = "auto",
    ) -> list[SageDecision]:
        """Predict a whole workload suite, fanned across a process pool.

        Decisions are returned in input order.  The fan-out is the shared
        :func:`~repro.util.pool.fork_map` machinery (sequential degradation
        on pool-less platforms, unpicklable inputs, daemonic callers); each
        worker is seeded with a snapshot of the parent's conversion-route
        cache (:meth:`~repro.mint.cost.PathPlanner.export_routes`), so
        route planning already amortized in this process is not redone per
        worker.  The full option set (search restrictions, ``top_k``)
        applies to every workload in the batch; ``processes`` bounds the
        pool width, and ``transport`` picks the worker wire format
        (``"auto"`` / ``"shm"`` / ``"pickle"`` — see
        :func:`~repro.util.pool.fork_map`).
        """
        opts = resolve_options(options, processes=processes, fidelity=fidelity)
        return fork_map(
            _predict_one,
            [(self, wl, opts) for wl in workloads],
            processes=opts.processes,
            initializer=_seed_worker_planner,
            initargs=(shared_planner().export_routes(),),
            transport=transport,
        )

    # ------------------------------------------------------ cycle fidelity --
    def _cycle_rerank(
        self,
        workload: MatrixWorkload,
        analytical: SageDecision,
        *,
        top: int = CYCLE_TOP_K,
        seed: int = 0,
    ) -> SageDecision:
        """Re-rank the analytical top-k with the cycle-level simulator.

        Operands with the workload's exact statistics are materialized
        (seeded, hence deterministic), encoded once per distinct ACF, and
        batch-simulated.  Extra streamable ACFs outside the analytical
        space join paired with the analytical winner's stationary ACF and
        MCFs.  All candidates share DRAM/conversion pricing from
        :func:`~repro.sage.cost_model.price_matrix_io` at the simulated
        scale, so EDPs are comparable within the ranking.
        """
        sim_wl = _proxy_workload(workload, SIM_CAP_ELEMENTS)
        combos: list[tuple[tuple[Format, Format], tuple[Format, Format]]] = []
        for cand in analytical.ranking[:top]:
            if (cand.mcf, cand.acf) not in combos:
                combos.append((cand.mcf, cand.acf))
        best = analytical.best
        for fmt in streamable_formats():
            if fmt in MATRIX_ACF_STREAMED:
                continue  # already searched analytically
            extra = (best.mcf, (fmt, best.acf[1]))
            if extra not in combos:
                combos.append(extra)

        a_dense = _proxy_dense(sim_wl.m, sim_wl.k, sim_wl.nnz_a, seed)
        b_dense = _proxy_dense(sim_wl.k, sim_wl.n, sim_wl.nnz_b, seed + 1)
        encoded_a: dict[Format, object] = {}
        encoded_b: dict[Format, object] = {}
        jobs, plans = [], []
        for mcf, acf in combos:
            try:
                io = price_matrix_io(
                    sim_wl, mcf, acf,
                    config=self.config, dram=self.dram, provider=self.provider,
                )
            except ConversionError:
                continue  # no MINT route to this ACF from this MCF
            if io is None:
                continue
            if acf[0] not in encoded_a:
                encoded_a[acf[0]] = matrix_class(acf[0]).from_dense(a_dense)
            if acf[1] not in encoded_b:
                cls = CscMatrix if acf[1] is Format.CSC else DenseMatrix
                encoded_b[acf[1]] = cls.from_dense(b_dense)
            jobs.append((encoded_a[acf[0]], acf[0], encoded_b[acf[1]], acf[1]))
            plans.append(io)
        if not jobs:
            raise PredictionError(
                f"no cycle-simulatable candidate for {workload.name}"
            )
        sim = WeightStationarySimulator(self.config)
        results = sim.simulate_many(jobs)
        measured = [
            io.complete(run.cycles.total_cycles, run.energy.total_j)
            for io, (_out, run) in zip(plans, results)
        ]
        ranking = tuple(sorted(measured, key=lambda c: c.edp))
        return SageDecision(
            workload_name=workload.name,
            best=ranking[0],
            ranking=ranking,
            fidelity="cycle",
            sim_scale=(
                (sim_wl.m * sim_wl.k * sim_wl.n)
                / (workload.m * workload.k * workload.n)
            ),
        )

    # -------------------------------------------------- calibrated fidelity --
    def _calibrated_rerank(
        self,
        workload: MatrixWorkload,
        analytical: SageDecision,
        *,
        top: int = CYCLE_TOP_K,
    ) -> SageDecision:
        """Re-rank the cycle tier's candidate menu through the calibration
        table.

        The menu mirrors :meth:`_cycle_rerank` exactly — the analytical
        top-``top`` plus registry-only streamed ACFs paired with the
        winner's stationary side — so the tier approximates what the
        simulator *would* rank, at dict-lookup cost.  Each candidate's
        compute stage is rescaled by its (kernel, ACF, density-band)
        correction factor; untrained analytical pairs keep their
        uncalibrated numbers (factor 1), while registry extras only join
        when a factor was actually trained (the table never guesses a
        format it has no closed-form model for).  All costs stay at full
        workload scale.
        """
        table = self.ensure_calibration()
        density = workload.density_a
        # (corrected breakdown, producing cell-or-None), same menu as cycle.
        corrected = []
        seen_combo: set[tuple[tuple[Format, Format], tuple[Format, Format]]]
        seen_combo = set()
        for cand in analytical.ranking[:top]:
            if (cand.mcf, cand.acf) in seen_combo:
                continue
            seen_combo.add((cand.mcf, cand.acf))
            corrected.append(table.apply(cand, workload.kernel, density))
        best = analytical.best
        seen_acf = {cand.acf for cand in analytical.ranking[:top]}
        for fmt in streamable_formats():
            if fmt in MATRIX_ACF_STREAMED:
                continue  # already searched analytically
            acf = (fmt, best.acf[1])
            if acf in seen_acf:
                continue
            cell = table.lookup(workload.kernel, acf, density)
            if cell is None:
                continue  # never trained: stay out rather than guess
            try:
                io = price_matrix_io(
                    workload, best.mcf, acf,
                    config=self.config, dram=self.dram,
                    provider=self.provider,
                )
            except ConversionError:
                continue  # no MINT route to this ACF from this MCF
            if io is None:
                continue
            try:
                run = analytical_gemm_stats(
                    workload.m, workload.k, workload.n,
                    workload.nnz_a, workload.nnz_b,
                    analytical_base_acf(fmt), acf[1], self.config,
                )
            except SimulationError:  # pragma: no cover - base is modelled
                continue
            base_cost = io.complete(
                run.cycles.total_cycles, run.energy.total_j
            )
            corrected.append(
                (
                    dataclasses.replace(
                        base_cost,
                        compute_cycles=cell.corrected_cycles(
                            base_cost.compute_cycles
                        ),
                        compute_energy_j=cell.corrected_energy(
                            base_cost.compute_energy_j
                        ),
                    ),
                    cell,
                )
            )
        ranked = sorted(corrected, key=lambda pair: pair[0].edp)
        winner_cell = ranked[0][1]
        return SageDecision(
            workload_name=workload.name,
            best=ranked[0][0],
            ranking=tuple(cost for cost, _cell in ranked),
            fidelity="calibrated",
            sim_scale=1.0,
            error_bound=None if winner_cell is None else winner_cell.bound,
        )

    @staticmethod
    def _decide(name: str, candidates: list[CostBreakdown]) -> SageDecision:
        if not candidates:
            raise PredictionError(f"no feasible MCF/ACF candidate for {name}")
        ranking = tuple(sorted(candidates, key=lambda c: c.edp))
        return SageDecision(workload_name=name, best=ranking[0], ranking=ranking)


def _proxy_workload(wl: MatrixWorkload, cap_elements: int) -> MatrixWorkload:
    """A density-preserving stand-in small enough to simulate.

    Workloads whose operands already fit the cap pass through unchanged
    (the common case for interactive use and tests); larger ones are
    scaled down uniformly, keeping per-operand density and B's
    dense/sparse character, so the simulated ACF ranking reflects the
    original's streaming behaviour.
    """
    biggest = max(wl.m * wl.k, wl.k * wl.n)
    if biggest <= cap_elements:
        return wl
    f = (cap_elements / biggest) ** 0.5

    def scale(d: int) -> int:
        return max(1, int(round(d * f)))

    m, k, n = scale(wl.m), scale(wl.k), scale(wl.n)
    nnz_a = min(m * k, max(1, int(round(wl.density_a * m * k))))
    nnz_b = (
        k * n
        if wl.b_is_dense
        else min(k * n, max(1, int(round(wl.density_b * k * n))))
    )
    return MatrixWorkload(
        name=wl.name,
        kernel=wl.kernel,
        m=m, k=k, n=n,
        nnz_a=nnz_a,
        nnz_b=nnz_b,
        dtype_bits=wl.dtype_bits,
    )


def _seed_worker_planner(routes: dict) -> None:
    """Pool initializer: adopt the parent's route-cache snapshot."""
    shared_planner().seed_routes(routes)


def _predict_one(
    job: tuple[Sage, MatrixWorkload | TensorWorkload, PredictOptions]
) -> SageDecision:
    """Pool task: one workload through the (pickled) predictor."""
    sage, workload, options = job
    return sage.predict(workload, options=options)
