"""The SAGE predictor: search the MCF/ACF space for minimum EDP.

"SAGE predicts which MCF and ACF combination results in the lowest
energy-delay product (EDP).  The inputs to SAGE are workload size,
datatype, density region, MINT format conversion cost, and accelerator
hardware parameters.  The outputs are the ideal MCF and ACF combinations."
(Sec. VI)
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro.accelerator.config import AcceleratorConfig
from repro.errors import PredictionError
from repro.formats.registry import Format
from repro.hardware.dram import DramChannel
from repro.mint.cost import shared_planner
from repro.sage.cost_model import (
    ConversionProvider,
    CostBreakdown,
    evaluate_matrix_combo,
    evaluate_tensor_combo,
    mint_provider,
)
from repro.sage.spaces import matrix_combos, tensor_combos
from repro.workloads.spec import MatrixWorkload, TensorWorkload


@dataclass(frozen=True)
class SageDecision:
    """SAGE's output: the chosen combination plus the full ranking."""

    workload_name: str
    best: CostBreakdown
    ranking: tuple[CostBreakdown, ...]

    @property
    def mcf(self) -> tuple[Format, Format]:
        """Chosen memory compression formats (per operand)."""
        return self.best.mcf

    @property
    def acf(self) -> tuple[Format, Format]:
        """Chosen algorithm compression formats (per operand)."""
        return self.best.acf

    def to_wire(self, top: int | None = None) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`).

        ``top`` truncates the shipped ranking (the serve layer defaults to
        a small prefix so cache-hit responses stay compact); ``None`` ships
        the full ranking, making the round trip lossless.
        """
        ranking = self.ranking if top is None else self.ranking[:top]
        return {
            "workload_name": self.workload_name,
            "best": self.best.to_wire(),
            "ranking": [cand.to_wire() for cand in ranking],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "SageDecision":
        """Rebuild a decision from its :meth:`to_wire` form."""
        return cls(
            workload_name=str(data["workload_name"]),
            best=CostBreakdown.from_wire(data["best"]),
            ranking=tuple(
                CostBreakdown.from_wire(cand) for cand in data["ranking"]
            ),
        )

    def summary(self, top: int = 5) -> str:
        """Human-readable ranking of the best candidates."""
        lines = [f"SAGE decision for {self.workload_name}:"]
        for i, cand in enumerate(self.ranking[:top]):
            marker = "*" if i == 0 else " "
            lines.append(
                f" {marker} MCF=({cand.mcf[0]},{cand.mcf[1]}) "
                f"ACF=({cand.acf[0]},{cand.acf[1]}) "
                f"EDP={cand.edp:.3e} J*s "
                f"(dram {cand.dram_in_cycles + cand.dram_out_cycles} cyc, "
                f"conv {cand.conv_cycles} cyc, compute {cand.compute_cycles} cyc)"
            )
        return "\n".join(lines)


class Sage:
    """The format predictor, bound to one accelerator + DRAM configuration."""

    def __init__(
        self,
        config: AcceleratorConfig | None = None,
        dram: DramChannel | None = None,
        provider: ConversionProvider | None = mint_provider,
    ) -> None:
        self.config = config or AcceleratorConfig.paper_default()
        self.dram = dram or DramChannel(clock_hz=self.config.clock_hz)
        self.provider = provider

    def predict_matrix(
        self,
        workload: MatrixWorkload,
        *,
        fixed_mcf: tuple[Format, Format] | None = None,
        mcf_a_space: tuple[Format, ...] | None = None,
        mcf_b_space: tuple[Format, ...] | None = None,
    ) -> SageDecision:
        """Search the matrix MCF/ACF space for *workload*.

        ``fixed_mcf`` restricts the search to ACFs (and the conversion plan)
        when the programmer has already committed a storage format;
        ``mcf_a_space`` / ``mcf_b_space`` restrict single operands (used by
        the pipeline planner, where a stage inherits its predecessor's
        output format).
        """
        combo_kwargs: dict = {"fixed_mcf": fixed_mcf}
        if mcf_a_space is not None:
            combo_kwargs["mcf_a"] = mcf_a_space
        if mcf_b_space is not None:
            combo_kwargs["mcf_b"] = mcf_b_space
        candidates: list[CostBreakdown] = []
        for mcf, acf in matrix_combos(**combo_kwargs):
            cost = evaluate_matrix_combo(
                workload,
                mcf,
                acf,
                config=self.config,
                dram=self.dram,
                provider=self.provider,
            )
            if cost is not None:
                candidates.append(cost)
        return self._decide(workload.name, candidates)

    def predict_tensor(
        self,
        workload: TensorWorkload,
        *,
        fixed_mcf: tuple[Format, Format] | None = None,
    ) -> SageDecision:
        """Search the 3-D tensor MCF/ACF space for *workload*."""
        candidates: list[CostBreakdown] = []
        for mcf, acf in tensor_combos(fixed_mcf=fixed_mcf):
            cost = evaluate_tensor_combo(
                workload,
                mcf,
                acf,
                config=self.config,
                dram=self.dram,
                provider=self.provider,
            )
            if cost is not None:
                candidates.append(cost)
        return self._decide(workload.name, candidates)

    def predict(
        self, workload: MatrixWorkload | TensorWorkload
    ) -> SageDecision:
        """Dispatch on workload arity (matrix vs 3-D tensor)."""
        if isinstance(workload, TensorWorkload):
            return self.predict_tensor(workload)
        return self.predict_matrix(workload)

    def predict_many(
        self,
        workloads: Sequence[MatrixWorkload | TensorWorkload],
        *,
        processes: int | None = None,
    ) -> list[SageDecision]:
        """Predict a whole workload suite, fanned across a process pool.

        Decisions are returned in input order.  Each worker is seeded with
        a snapshot of the parent's conversion-route cache
        (:meth:`~repro.mint.cost.PathPlanner.export_routes`), so route
        planning already amortized in this process is not redone per
        worker.  ``processes=1`` (or a suite of one) runs sequentially;
        if the platform cannot spawn a pool — or this predictor cannot be
        shipped to one (e.g. a non-picklable custom provider) — the suite
        degrades to sequential prediction rather than failing.
        """
        workloads = list(workloads)
        if processes is None:
            processes = min(len(workloads), multiprocessing.cpu_count())
        if len(workloads) <= 1 or processes <= 1:
            return [self.predict(wl) for wl in workloads]
        # Pre-flight everything the pool will pickle (the predictor and
        # each workload): inputs that cannot ship to a worker (lambda
        # providers etc.) degrade to sequential here, so exceptions
        # escaping the pool below are genuine worker bugs and propagate.
        try:
            pickle.dumps((self, workloads))
        except (pickle.PicklingError, AttributeError, TypeError):
            return [self.predict(wl) for wl in workloads]
        routes = shared_planner().export_routes()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        try:
            with ProcessPoolExecutor(
                max_workers=processes,
                mp_context=ctx,
                initializer=_seed_worker_planner,
                initargs=(routes,),
            ) as pool:
                return list(
                    pool.map(_predict_one, ((self, wl) for wl in workloads))
                )
        except (OSError, PermissionError, BrokenProcessPool):
            # Platforms that cannot spawn (or keep) a pool at all.
            return [self.predict(wl) for wl in workloads]

    @staticmethod
    def _decide(name: str, candidates: list[CostBreakdown]) -> SageDecision:
        if not candidates:
            raise PredictionError(f"no feasible MCF/ACF candidate for {name}")
        ranking = tuple(sorted(candidates, key=lambda c: c.edp))
        return SageDecision(workload_name=name, best=ranking[0], ranking=ranking)


def _seed_worker_planner(routes: dict) -> None:
    """Pool initializer: adopt the parent's route-cache snapshot."""
    shared_planner().seed_routes(routes)


def _predict_one(
    job: tuple[Sage, MatrixWorkload | TensorWorkload]
) -> SageDecision:
    """Pool task: one workload through the (pickled) predictor."""
    sage, workload = job
    return sage.predict(workload)
