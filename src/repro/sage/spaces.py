"""SAGE's search spaces (paper Sec. VII-A).

"For MCF, we consider six format choices for each operand: Dense, RLC, ZVC,
COO, CSR, and CSC.  For ACF, we consider four format choices for each
operand: Dense, COO, CSR, and CSC."

On the weight-stationary template the streamed operand can execute any of
the four ACFs while the stationary operand's buffer layout supports Dense
or CSC (Fig. 6's two buffer organizations) — which is also the only set
Table III's ACFf column ever uses.  For 3-D tensors the streamed ACFs are
Dense, COO and CSF (the Table III ACFt values).
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.formats.registry import Format

#: MCF candidates per matrix operand.
MATRIX_MCF: tuple[Format, ...] = (
    Format.DENSE,
    Format.RLC,
    Format.ZVC,
    Format.COO,
    Format.CSR,
    Format.CSC,
)

#: ACF candidates for the streamed matrix operand (A).
MATRIX_ACF_STREAMED: tuple[Format, ...] = (
    Format.DENSE,
    Format.COO,
    Format.CSR,
    Format.CSC,
)

#: ACF candidates for the stationary matrix operand (B).
MATRIX_ACF_STATIONARY: tuple[Format, ...] = (Format.DENSE, Format.CSC)

#: MCF candidates for the 3-D tensor operand.
TENSOR_MCF: tuple[Format, ...] = (
    Format.DENSE,
    Format.RLC,
    Format.ZVC,
    Format.COO,
    Format.CSF,
)

#: ACF candidates for the streamed 3-D tensor operand.
TENSOR_ACF: tuple[Format, ...] = (Format.DENSE, Format.COO, Format.CSF)

#: Output MCF candidates (the accelerator drains dense; compression before
#: store is a Dense -> MCF_O conversion, Sec. III-C).
OUTPUT_MCF: tuple[Format, ...] = (
    Format.DENSE,
    Format.COO,
    Format.CSR,
    Format.ZVC,
    Format.RLC,
)


def matrix_combos(
    *,
    fixed_mcf: tuple[Format, Format] | None = None,
    mcf_a: tuple[Format, ...] = MATRIX_MCF,
    mcf_b: tuple[Format, ...] = MATRIX_MCF,
    acf_a: tuple[Format, ...] = MATRIX_ACF_STREAMED,
    acf_b: tuple[Format, ...] = MATRIX_ACF_STATIONARY,
) -> Iterator[tuple[tuple[Format, Format], tuple[Format, Format]]]:
    """Enumerate ((mcf_a, mcf_b), (acf_a, acf_b)) candidates.

    ``fixed_mcf`` implements the Sec. VI scenario where "the MCF is already
    predetermined by the programmer": SAGE then only searches ACFs.
    """
    if fixed_mcf is not None:
        mcf_a, mcf_b = (fixed_mcf[0],), (fixed_mcf[1],)
    for combo in product(mcf_a, mcf_b, acf_a, acf_b):
        yield (combo[0], combo[1]), (combo[2], combo[3])


def tensor_combos(
    *,
    fixed_mcf: tuple[Format, Format] | None = None,
    mcf_t: tuple[Format, ...] = TENSOR_MCF,
    mcf_f: tuple[Format, ...] = MATRIX_MCF,
    acf_t: tuple[Format, ...] = TENSOR_ACF,
    acf_f: tuple[Format, ...] = MATRIX_ACF_STATIONARY,
) -> Iterator[tuple[tuple[Format, Format], tuple[Format, Format]]]:
    """Enumerate tensor-kernel candidates ((mcf_t, mcf_f), (acf_t, acf_f))."""
    if fixed_mcf is not None:
        mcf_t, mcf_f = (fixed_mcf[0],), (fixed_mcf[1],)
    for combo in product(mcf_t, mcf_f, acf_t, acf_f):
        yield (combo[0], combo[1]), (combo[2], combo[3])
