"""SAGE: Sparsity formAt Generation Engine (paper Sec. VI).

Given a workload's summary statistics, the accelerator configuration and
MINT's conversion costs, SAGE enumerates MCF/ACF combinations, prices each
with a cost model (DRAM traffic + conversion) plus the performance model
(compute cycles on the WS accelerator), and returns the combination with
the lowest energy-delay product.

Three fidelity tiers answer that search: ``analytical`` (the closed-form
models), ``calibrated`` (analytical candidates corrected by a measured
factor table — :mod:`repro.sage.calibrate`), and ``cycle`` (top-k
re-ranked on the cycle-level simulator).
"""

from repro.sage.calibrate import (
    CalibrationGrid,
    CalibrationTable,
    CellStats,
    ErrorBound,
    GRIDS,
    build_table,
    load_table,
)
from repro.sage.cost_model import CostBreakdown, evaluate_matrix_combo, evaluate_tensor_combo
from repro.sage.pipeline import PipelinePlan, PipelineStage, plan_chain
from repro.sage.predictor import Sage, SageDecision
from repro.sage.spaces import (
    MATRIX_ACF_STATIONARY,
    MATRIX_ACF_STREAMED,
    MATRIX_MCF,
    OUTPUT_MCF,
    TENSOR_ACF,
    TENSOR_MCF,
    matrix_combos,
    tensor_combos,
)

__all__ = [
    "CalibrationGrid",
    "CalibrationTable",
    "CellStats",
    "CostBreakdown",
    "ErrorBound",
    "GRIDS",
    "Sage",
    "SageDecision",
    "build_table",
    "load_table",
    "PipelinePlan",
    "PipelineStage",
    "plan_chain",
    "evaluate_matrix_combo",
    "evaluate_tensor_combo",
    "MATRIX_MCF",
    "MATRIX_ACF_STREAMED",
    "MATRIX_ACF_STATIONARY",
    "TENSOR_MCF",
    "TENSOR_ACF",
    "OUTPUT_MCF",
    "matrix_combos",
    "tensor_combos",
]
