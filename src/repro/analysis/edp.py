"""Energy-delay-product aggregation for the Fig. 12/13/14 result tables."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.util.stats import geomean


def normalized_edp(
    edps: Mapping[str, float], reference: str
) -> dict[str, float]:
    """Each system's EDP divided by *reference*'s (Fig. 13's y-axis)."""
    if reference not in edps:
        raise KeyError(f"reference system {reference!r} missing from table")
    ref = edps[reference]
    if ref <= 0:
        raise ValueError("reference EDP must be positive")
    return {name: edp / ref for name, edp in edps.items()}


def reduction_percent(baseline_edp: float, ours_edp: float) -> float:
    """EDP 'reduction' as the paper quotes it (can exceed 100%).

    Fig. 13 reports e.g. a "369% reduction", which is the relative excess
    of the baseline over this work: ``(baseline - ours) / ours * 100``.
    """
    if ours_edp <= 0:
        raise ValueError("ours_edp must be positive")
    return (baseline_edp - ours_edp) / ours_edp * 100.0


def geomean_reduction(
    per_workload: Sequence[Mapping[str, float]], baseline: str, ours: str
) -> float:
    """Geomean across workloads of the baseline/ours EDP ratio, as percent."""
    ratios = []
    for table in per_workload:
        if table[ours] <= 0:
            raise ValueError("ours EDP must be positive")
        ratios.append(table[baseline] / table[ours])
    return (geomean(ratios) - 1.0) * 100.0


def edp_table(
    per_workload: Mapping[str, Mapping[str, float]], ours: str
) -> dict[str, dict[str, float]]:
    """Summary of geomean and max reductions per baseline (Fig. 13 captions)."""
    systems = {
        name
        for table in per_workload.values()
        for name in table
        if name != ours
    }
    out: dict[str, dict[str, float]] = {}
    for system in sorted(systems):
        ratios = [
            table[system] / table[ours]
            for table in per_workload.values()
            if system in table
        ]
        out[system] = {
            "geomean_reduction_pct": (geomean(ratios) - 1.0) * 100.0,
            "max_reduction_pct": (max(ratios) - 1.0) * 100.0,
        }
    return out
