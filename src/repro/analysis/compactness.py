"""Closed-form storage (compactness) model and the Fig. 4 sweeps.

Computes the data/metadata bit footprint of a tensor in any format from
summary statistics alone, using the same Sec. III-A accounting as the
format classes ("the number of metadata bits required is the log of the
maximum possible value").  Exact for position-list formats
(Dense/COO/CSR/CSC/ZVC); expectation-under-uniform-placement for run- and
block-structured formats (RLC/BSR/DIA/CSF/HiCOO), matching the paper's
uniform-random modelling assumption.

The test suite cross-checks these formulas against the concrete
``storage()`` of materialized random instances.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import FormatError
from repro.formats._runlength import entry_count_expected
from repro.formats.registry import Format
from repro.formats.rlc import DEFAULT_RUN_BITS
from repro.hardware.dram import DramChannel
from repro.util.bits import bits_for_count, bits_for_index, ceil_div


def _expected_occupied(groups: float, group_size: float, density: float) -> float:
    """E[#groups with >= 1 nonzero] under uniform placement."""
    if groups <= 0 or group_size <= 0:
        return 0.0
    return groups * (1.0 - (1.0 - density) ** group_size)


def storage_bits(
    fmt: Format,
    dims: Sequence[int],
    nnz: int,
    dtype_bits: int = 32,
    *,
    run_bits: int = DEFAULT_RUN_BITS,
    block: int = 2,
) -> float:
    """Total storage bits of a tensor in *fmt* from summary statistics.

    ``dims`` has length 2 (matrix) or 3 (tensor).  ``block`` is the
    per-dimension block edge for BSR/HiCOO.
    """
    dims = [int(d) for d in dims]
    size = int(np.prod(dims))
    if not 0 <= nnz <= size:
        raise FormatError(f"nnz {nnz} out of range for dims {dims}")
    density = nnz / size if size else 0.0
    b = dtype_bits

    if fmt is Format.DENSE:
        return float(size * b)
    if fmt is Format.COO:
        coord = sum(bits_for_index(d) for d in dims)
        return float(nnz) * (b + coord)
    if fmt is Format.RLC:
        entries = entry_count_expected(size, nnz, run_bits)
        return entries * (b + run_bits)
    if fmt is Format.ZVC:
        return float(nnz) * b + size

    if len(dims) == 2:
        m, k = dims
        if fmt is Format.CSR:
            return float(nnz) * (b + bits_for_index(k)) + (m + 1) * bits_for_count(
                nnz
            )
        if fmt is Format.CSC:
            return float(nnz) * (b + bits_for_index(m)) + (k + 1) * bits_for_count(
                nnz
            )
        if fmt is Format.BSR:
            grid_r, grid_c = ceil_div(m, block), ceil_div(k, block)
            nblocks = _expected_occupied(grid_r * grid_c, block * block, density)
            return (
                nblocks * (block * block * b + bits_for_index(max(1, grid_c)))
                + (grid_r + 1) * bits_for_count(max(1, int(nblocks)))
            )
        if fmt is Format.ELL:
            # Width = expected maximum row nonzero count under uniform
            # placement: mean + Gumbel-style sqrt(2 p(1-p) K ln M) tail.
            p_row = density
            mean = p_row * k
            spread = np.sqrt(max(0.0, 2.0 * p_row * (1 - p_row) * k * np.log(max(m, 2))))
            width = min(k, mean + spread) if nnz else 0.0
            return m * width * (b + bits_for_index(k))
        if fmt is Format.DIA:
            total_diags = m + k - 1
            mean_diag_len = size / total_diags
            ndiags = _expected_occupied(total_diags, mean_diag_len, density)
            return ndiags * (min(m, k) * b + bits_for_index(total_diags))
        raise FormatError(f"{fmt} is not a matrix format")

    x, y, z = dims
    if fmt is Format.CSF:
        roots = _expected_occupied(x, y * z, density)
        fibers = _expected_occupied(x * y, z, density)
        return (
            roots * bits_for_index(x)
            + (roots + 1) * bits_for_count(max(1, int(fibers)))
            + fibers * bits_for_index(y)
            + (fibers + 1) * bits_for_count(max(1, nnz))
            + float(nnz) * (bits_for_index(z) + b)
        )
    if fmt is Format.HICOO:
        grid = [ceil_div(d, block) for d in dims]
        nblocks = _expected_occupied(
            float(np.prod(grid)), block ** 3, density
        )
        block_coord = sum(bits_for_index(max(1, g)) for g in grid)
        offset_bits = 3 * bits_for_index(block)
        return (
            (nblocks + 1) * bits_for_count(max(1, nnz))
            + nblocks * block_coord
            + float(nnz) * (offset_bits + b)
        )
    raise FormatError(f"{fmt} is not a 3-D tensor format")


def transfer_energy_sweep(
    dims: Sequence[int],
    densities: Iterable[float],
    formats: Sequence[Format],
    dtype_bits: int = 32,
    *,
    normalize_to: Format | None = Format.CSR,
    dram: DramChannel | None = None,
    run_bits: int = DEFAULT_RUN_BITS,
) -> Mapping[Format, np.ndarray]:
    """DRAM transfer energy of each format across densities (Fig. 4).

    Returns energy per format, normalized to ``normalize_to`` at each
    density when given (the paper normalizes to CSR).
    """
    dram = dram or DramChannel()
    densities = np.asarray(list(densities), dtype=np.float64)
    size = int(np.prod([int(d) for d in dims]))
    out: dict[Format, np.ndarray] = {}
    for fmt in formats:
        energies = np.empty(len(densities))
        for i, d in enumerate(densities):
            nnz = min(size, max(0, int(round(d * size))))
            bits = storage_bits(fmt, dims, nnz, dtype_bits, run_bits=run_bits)
            energies[i] = dram.transfer_energy(int(bits))
        out[fmt] = energies
    if normalize_to is not None:
        ref = out[normalize_to].copy()
        ref[ref == 0.0] = 1.0
        out = {fmt: e / ref for fmt, e in out.items()}
    return out


def crossover_density(
    fmt_low: Format,
    fmt_high: Format,
    dims: Sequence[int],
    dtype_bits: int = 32,
    *,
    lo: float = 1e-10,
    hi: float = 1.0,
    iters: int = 80,
) -> float:
    """Density where *fmt_low* stops being more compact than *fmt_high*.

    Bisects on density assuming the footprint ratio is monotone (true for
    the Fig. 4 crossover pairs: COO/CSR, CSR/ZVC, ZVC-or-RLC/Dense).
    Returns the crossover density; callers should check the bracket holds.
    """
    size = int(np.prod([int(d) for d in dims]))

    def diff(d: float) -> float:
        nnz = min(size, max(1, int(round(d * size))))
        return storage_bits(fmt_low, dims, nnz, dtype_bits) - storage_bits(
            fmt_high, dims, nnz, dtype_bits
        )

    f_lo, f_hi = diff(lo), diff(hi)
    if f_lo * f_hi > 0:
        raise ValueError(
            f"no {fmt_low}/{fmt_high} crossover in [{lo}, {hi}] for dims {dims}"
        )
    for _ in range(iters):
        mid = np.sqrt(lo * hi)  # bisect in log space
        if diff(mid) * f_lo <= 0:
            hi = mid
        else:
            lo = mid
    return float(np.sqrt(lo * hi))
