"""Evaluation analytics: compactness sweeps, EDP aggregation, table rendering."""

from repro.analysis.compactness import (
    crossover_density,
    storage_bits,
    transfer_energy_sweep,
)
from repro.analysis.edp import edp_table, normalized_edp, reduction_percent
from repro.analysis.tables import render_table

__all__ = [
    "storage_bits",
    "transfer_energy_sweep",
    "crossover_density",
    "normalized_edp",
    "reduction_percent",
    "edp_table",
    "render_table",
]
