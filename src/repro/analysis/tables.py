"""Plain-text table rendering for the benchmark harnesses.

The benches print paper-style rows next to measured rows; this keeps the
formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_sci(value: float, digits: int = 3) -> str:
    """Scientific notation with a fixed significand width."""
    return f"{value:.{digits}e}"


def fmt_pct(value: float, digits: int = 1) -> str:
    """Percentage with a trailing %."""
    return f"{value:.{digits}f}%"
