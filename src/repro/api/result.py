"""The unified end-to-end result of :meth:`Session.run`.

One object carries everything the paper's Fig. 1b flow produces: the SAGE
decision, MINT's per-operand conversion reports, and the cycle-level
simulator's run report, plus the simulated output itself — replacing the
predict/convert/simulate glue every example used to hand-roll.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.report import RunReport
from repro.mint.engine import ConversionReport
from repro.sage.predictor import SageDecision
from repro.workloads.spec import MatrixWorkload

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Decision + conversion reports + cycle/energy report, in one object.

    Attributes
    ----------
    workload:
        The workload as requested.
    sim_workload:
        The workload actually executed: equal to ``workload`` at exact
        scale, or a density-preserving proxy when the operands exceed
        the run options' simulation cap.
    decision:
        SAGE's choice (identical to what :meth:`Session.predict` returns
        for the same workload and options).
    conversion_a, conversion_b:
        MINT's MCF→ACF cost reports per operand (zero-cycle identity
        reports when SAGE picked matching formats).
    report:
        The simulator's cycle/energy report for the chosen ACFs.
    output:
        The simulated ``A @ B`` (at ``sim_workload`` scale).
    sim_scale:
        Fraction of the workload's ``m*k*n`` volume that was simulated;
        ``1.0`` means exact scale.
    verified:
        ``True`` when the output was checked against numpy, ``None`` when
        verification was disabled.

    Example
    -------
    >>> from repro import Session, MatrixWorkload, Kernel
    >>> wl = MatrixWorkload("doc", Kernel.SPMM, m=96, k=96, n=48,
    ...                     nnz_a=500, nnz_b=96 * 48)
    >>> result = Session().run(wl)
    >>> result.sim_scale == 1.0 and result.verified
    True
    >>> result.conversion_cycles == (result.conversion_a.cycles
    ...                              + result.conversion_b.cycles)
    True
    >>> "measured EDP" in result.summary()
    True
    """

    workload: MatrixWorkload
    sim_workload: MatrixWorkload
    decision: SageDecision
    conversion_a: ConversionReport
    conversion_b: ConversionReport
    report: RunReport
    output: np.ndarray
    sim_scale: float = 1.0
    verified: bool | None = None

    @property
    def conversions(self) -> tuple[ConversionReport, ConversionReport]:
        """Both operands' conversion reports, A first."""
        return (self.conversion_a, self.conversion_b)

    @property
    def conversion_cycles(self) -> int:
        """Total MINT cycles across both operands."""
        return self.conversion_a.cycles + self.conversion_b.cycles

    @property
    def cycles(self) -> int:
        """Simulator total cycles (at ``sim_workload`` scale)."""
        return self.report.cycles.total_cycles

    @property
    def energy_j(self) -> float:
        """Simulator on-chip energy (at ``sim_workload`` scale)."""
        return self.report.energy.total_j

    @property
    def edp(self) -> float:
        """Measured compute EDP (at ``sim_workload`` scale)."""
        return self.report.edp

    def summary(self) -> str:
        """Human-readable end-to-end report."""
        best = self.decision.best
        scale = (
            ""
            if self.sim_scale >= 1.0
            else f" [proxy at {self.sim_scale:.1e}x volume]"
        )
        c = self.report.cycles
        lines = [
            f"Run of {self.workload.name}{scale}:",
            f"  SAGE [{self.decision.fidelity}]: "
            f"MCF=({best.mcf[0]},{best.mcf[1]}) "
            f"ACF=({best.acf[0]},{best.acf[1]}) "
            f"predicted EDP={best.edp:.3e} J*s",
            f"  MINT: A {self.conversion_a.source}->{self.conversion_a.target} "
            f"in {self.conversion_a.cycles} cycles via "
            f"{self.conversion_a.path or ('identity',)}",
            f"  MINT: B {self.conversion_b.source}->{self.conversion_b.target} "
            f"in {self.conversion_b.cycles} cycles via "
            f"{self.conversion_b.path or ('identity',)}",
            f"  simulator: load={c.load_cycles} stream={c.stream_cycles} "
            f"drain={c.drain_cycles} compute={c.compute_cycles} "
            f"-> total={c.total_cycles} "
            f"(utilization {c.utilization:.1%})",
            f"  on-chip energy {self.energy_j:.3e} J, measured EDP "
            f"{self.edp:.3e} J*s",
        ]
        if self.verified is not None:
            lines.append(
                "  output verified against numpy"
                if self.verified
                else "  output NOT verified"
            )
        return "\n".join(lines)
