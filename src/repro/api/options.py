"""Typed request options for the :class:`~repro.api.session.Session` facade.

One option object replaces the four differently-shaped ``Sage.predict*``
keyword sets: :class:`PredictOptions` consolidates every search knob the
predictor understands (fidelity tier, search-space restrictions, ranking
truncation, local fan-out width), and :class:`RunOptions` adds the
convert+simulate knobs of the end-to-end :meth:`Session.run` pipeline.

Both are frozen dataclasses with JSON-safe ``to_wire``/``from_wire`` forms.
The wire form is **versioned** (:data:`WIRE_SCHEMA_VERSION`) and shared
with :mod:`repro.serve`: a serve request that carries ``options`` must
declare ``schema_version >= 2``; requests without a ``schema_version`` are
treated as the PR-2-era legacy schema (version 1, plain workload dicts)
and keep working unchanged.

This module sits below both ``repro.sage`` and ``repro.serve`` in the
import graph (it only needs the format registry and the error hierarchy),
so the predictor, the server and the client all share one schema
definition instead of three ad-hoc dict shapes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.accelerator.config import AcceleratorConfig
from repro.errors import PredictionError
from repro.formats.registry import Format

__all__ = [
    "FIDELITIES",
    "ensure_fidelity",
    "PredictOptions",
    "RunOptions",
    "SUPPORTED_WIRE_SCHEMAS",
    "WIRE_SCHEMA_VERSION",
    "resolve_options",
]

#: Recognized prediction fidelity tiers (see ``repro.sage.predictor``):
#: the full ladder is analytical (closed-form search), calibrated
#: (analytical candidates corrected by measured per-cell factors, see
#: ``repro.sage.calibrate``), and cycle (simulator re-ranking).
FIDELITIES = ("analytical", "calibrated", "cycle")


def ensure_fidelity(fidelity: str | None) -> str | None:
    """Validate a fidelity string against the registered tiers.

    Every entry point that accepts a fidelity funnels through this (the
    ``PredictOptions`` constructor and :func:`resolve_options`), so an
    unknown tier fails at option-resolution time with an error naming
    the ladder — never deep inside the predictor or, worse, silently
    answered at the wrong tier.
    """
    if fidelity is not None and fidelity not in FIDELITIES:
        raise PredictionError(
            f"unknown fidelity {fidelity!r} (registered tiers: "
            f"{', '.join(FIDELITIES)})"
        )
    return fidelity

#: The wire schema this build writes.  Version 1 is the PR-2 legacy shape
#: (a bare workload dict, no ``schema_version`` / ``options`` keys).
WIRE_SCHEMA_VERSION = 2

#: Schema versions the serve layer still answers.
SUPPORTED_WIRE_SCHEMAS = (1, 2)

#: Simulation engines Session.run accepts (the cycle simulator's two
#: report-identical implementations).
RUN_ENGINES = ("vectorized", "reference")


def _as_format(value: Any, *, name: str) -> Format:
    if isinstance(value, Format):
        return value
    try:
        return Format(value)
    except ValueError:
        raise PredictionError(
            f"{name}: unknown format {value!r} (choose from "
            f"{', '.join(f.value for f in Format)})"
        ) from None


def _format_pair(value: Any, *, name: str) -> tuple[Format, Format]:
    pair = tuple(_as_format(v, name=name) for v in value)
    if len(pair) != 2:
        raise PredictionError(f"{name} must name exactly two formats")
    return pair  # type: ignore[return-value]


def _format_space(value: Any, *, name: str) -> tuple[Format, ...]:
    space = tuple(_as_format(v, name=name) for v in value)
    if not space:
        raise PredictionError(f"{name} must not be empty")
    return space


@dataclass(frozen=True)
class PredictOptions:
    """Every knob of one SAGE prediction, in one typed object.

    Attributes
    ----------
    fidelity:
        ``"analytical"`` (closed-form search), ``"calibrated"`` (the
        analytical candidates corrected by measured per-(kernel, ACF,
        density-band) factors — analytical latency, near-cycle ranking;
        needs a table built by ``repro calibrate``), ``"cycle"``
        (analytical top-k re-ranked on the cycle-level simulator), or
        ``None`` — the backend's default tier: analytical in-process,
        the server's configured ``ServeConfig.fidelity`` remotely.
        Naming a tier explicitly against a server running a different
        one bypasses the server's (tier-consistent) decision cache.
    fixed_mcf:
        Restrict the search to ACFs: the programmer has already committed
        both storage formats (Sec. VI's predetermined-MCF scenario).
    mcf_a_space, mcf_b_space:
        Restrict one operand's MCF candidates (used by the pipeline
        planner, where a stage inherits its predecessor's output format).
        Matrix workloads only.
    top_k:
        Ranking prefix kept on the returned decision (``None`` = full
        ranking).  ``best`` is always retained.
    processes:
        Local batch fan-out width for one-call-many-workloads predictions
        (ignored by remote backends: the server owns its own pool).
    config:
        Evaluate against this :class:`~repro.accelerator.config.\
AcceleratorConfig` instead of the backend's resident one (accepts the
        ``to_dict`` form too).  The ``repro.tune`` autotuner rides this to
        make every (workload, hardware) pair a servable query; like the
        search restrictions it bypasses decision caches, whose fingerprints
        assume the resident config.
    dram_gbps:
        Override the DRAM channel bandwidth (GB/s) alongside ``config``;
        ``None`` keeps the backend's channel.

    Example
    -------
    >>> from repro import Format, PredictOptions
    >>> opts = PredictOptions(fixed_mcf=("CSR", "Dense"), top_k=4)
    >>> opts.fixed_mcf == (Format.CSR, Format.DENSE)  # coerced to Format
    True
    >>> opts.restricts_search  # restricted searches bypass decision caches
    True
    >>> PredictOptions.from_wire(opts.to_wire()) == opts
    True
    """

    fidelity: str | None = None
    fixed_mcf: tuple[Format, Format] | None = None
    mcf_a_space: tuple[Format, ...] | None = None
    mcf_b_space: tuple[Format, ...] | None = None
    top_k: int | None = None
    processes: int | None = None
    config: AcceleratorConfig | None = None
    dram_gbps: float | None = None

    def __post_init__(self) -> None:
        ensure_fidelity(self.fidelity)
        if self.fixed_mcf is not None:
            object.__setattr__(
                self, "fixed_mcf", _format_pair(self.fixed_mcf, name="fixed_mcf")
            )
        for name in ("mcf_a_space", "mcf_b_space"):
            space = getattr(self, name)
            if space is not None:
                object.__setattr__(self, name, _format_space(space, name=name))
        if self.top_k is not None and self.top_k < 1:
            raise PredictionError("top_k must be a positive ranking length")
        if self.processes is not None and self.processes < 1:
            raise PredictionError("processes must be positive")
        if self.config is not None and not isinstance(self.config, AcceleratorConfig):
            object.__setattr__(
                self, "config", AcceleratorConfig.from_dict(self.config)
            )
        if self.dram_gbps is not None:
            object.__setattr__(self, "dram_gbps", float(self.dram_gbps))
            if self.dram_gbps <= 0:
                raise PredictionError("dram_gbps must be positive")

    @property
    def restricts_search(self) -> bool:
        """True when any search-space restriction is active.

        Restricted decisions are workload-dependent in a way fingerprints
        do not capture, so caches (local and serve-side) must not answer
        them with unrestricted entries — both backends bypass their
        decision caches when this is set.
        """
        return (
            self.fixed_mcf is not None
            or self.mcf_a_space is not None
            or self.mcf_b_space is not None
        )

    @property
    def overrides_hardware(self) -> bool:
        """True when the request names its own accelerator/DRAM config.

        Decision caches fingerprint against the backend's resident config,
        so hardware-override traffic must bypass them exactly like
        restricted searches do; the predictor answers it on a derived
        :class:`~repro.sage.predictor.Sage` instead.
        """
        return self.config is not None or self.dram_gbps is not None

    def search_kwargs(self) -> dict[str, Any]:
        """The restriction kwargs in ``matrix_combos`` vocabulary."""
        kwargs: dict[str, Any] = {"fixed_mcf": self.fixed_mcf}
        if self.mcf_a_space is not None:
            kwargs["mcf_a"] = self.mcf_a_space
        if self.mcf_b_space is not None:
            kwargs["mcf_b"] = self.mcf_b_space
        return kwargs

    @property
    def local_fidelity(self) -> str:
        """The tier this resolves to in-process (``None`` → analytical)."""
        return self.fidelity or "analytical"

    def to_wire(self) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`).

        The hardware-override keys are omitted when unset so requests
        without them keep the exact PR-7 wire shape.
        """
        wire: dict[str, Any] = {
            "fidelity": self.fidelity,
            "fixed_mcf": (
                None
                if self.fixed_mcf is None
                else [f.value for f in self.fixed_mcf]
            ),
            "mcf_a_space": (
                None
                if self.mcf_a_space is None
                else [f.value for f in self.mcf_a_space]
            ),
            "mcf_b_space": (
                None
                if self.mcf_b_space is None
                else [f.value for f in self.mcf_b_space]
            ),
            "top_k": self.top_k,
            "processes": self.processes,
        }
        if self.config is not None:
            wire["config"] = self.config.to_dict()
        if self.dram_gbps is not None:
            wire["dram_gbps"] = self.dram_gbps
        return wire

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "PredictOptions":
        """Rebuild options from their :meth:`to_wire` form.

        Unknown keys are rejected so schema typos fail loudly instead of
        silently running an unrestricted search (the exact failure mode
        this object exists to eliminate).
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PredictionError(
                f"unknown PredictOptions field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        fidelity = data.get("fidelity")
        return cls(
            fidelity=None if fidelity is None else str(fidelity),
            fixed_mcf=data.get("fixed_mcf"),
            mcf_a_space=data.get("mcf_a_space"),
            mcf_b_space=data.get("mcf_b_space"),
            top_k=(None if data.get("top_k") is None else int(data["top_k"])),
            processes=(
                None if data.get("processes") is None else int(data["processes"])
            ),
            config=data.get("config"),
            dram_gbps=(
                None if data.get("dram_gbps") is None else float(data["dram_gbps"])
            ),
        )


def resolve_options(
    options: PredictOptions | None = None, **overrides: Any
) -> PredictOptions:
    """Merge an option object with per-call keyword overrides.

    ``None``-valued overrides mean "keep the option object's value", so the
    legacy keyword style (``fidelity="cycle"``, ``fixed_mcf=...``) and the
    new typed style compose instead of conflicting.
    """
    if "fidelity" in overrides:
        # Fail here, at resolution time, naming the registered tiers —
        # not deep inside the predictor (dataclasses.replace would also
        # catch it via __post_init__, but only when updates are non-None).
        ensure_fidelity(overrides["fidelity"])
    base = options if options is not None else PredictOptions()
    updates = {k: v for k, v in overrides.items() if v is not None}
    return dataclasses.replace(base, **updates) if updates else base


@dataclass(frozen=True)
class RunOptions:
    """Knobs of the end-to-end predict→convert→simulate pipeline.

    Attributes
    ----------
    predict:
        The SAGE stage's :class:`PredictOptions`.
    seed:
        RNG seed for materializing operands from workload statistics
        (ignored when the caller supplies concrete operands).
    engine:
        Cycle-simulator implementation: ``"vectorized"`` (default) or the
        seed per-beat ``"reference"`` engine.
    verify:
        Check the simulator's output against a numpy matmul of the
        materialized operands (raises ``SimulationError`` on mismatch).
    max_sim_elements:
        Largest operand (logical elements) simulated at exact scale;
        bigger workloads execute through a density-preserving proxy and
        the scale travels on the result (``None`` = the sage cycle tier's
        cap).

    Example
    -------
    >>> from repro import PredictOptions, RunOptions
    >>> opts = RunOptions(predict=PredictOptions(top_k=3), seed=7,
    ...                   engine="reference")
    >>> RunOptions.from_wire(opts.to_wire()) == opts
    True
    >>> RunOptions(engine="imaginary")
    Traceback (most recent call last):
        ...
    repro.errors.PredictionError: unknown run engine 'imaginary' (choose from vectorized, reference)
    """

    predict: PredictOptions = field(default_factory=PredictOptions)
    seed: int = 0
    engine: str = "vectorized"
    verify: bool = True
    max_sim_elements: int | None = None

    def __post_init__(self) -> None:
        if self.engine not in RUN_ENGINES:
            raise PredictionError(
                f"unknown run engine {self.engine!r} (choose from "
                f"{', '.join(RUN_ENGINES)})"
            )
        if self.max_sim_elements is not None and self.max_sim_elements < 1:
            raise PredictionError("max_sim_elements must be positive")

    def to_wire(self) -> dict:
        """JSON-safe wire form (inverse of :meth:`from_wire`)."""
        return {
            "predict": self.predict.to_wire(),
            "seed": self.seed,
            "engine": self.engine,
            "verify": self.verify,
            "max_sim_elements": self.max_sim_elements,
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "RunOptions":
        """Rebuild run options from their :meth:`to_wire` form."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PredictionError(
                f"unknown RunOptions field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(
            predict=PredictOptions.from_wire(data.get("predict", {})),
            seed=int(data.get("seed", 0)),
            engine=str(data.get("engine", "vectorized")),
            verify=bool(data.get("verify", True)),
            max_sim_elements=(
                None
                if data.get("max_sim_elements") is None
                else int(data["max_sim_elements"])
            ),
        )
