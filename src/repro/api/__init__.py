"""``repro.api`` — the redesigned top-level call surface.

One :class:`Session` facade fronts the whole paper flow behind pluggable
backends::

    from repro.api import Session, PredictOptions

    with Session() as s:                                # in-process
        decision = s.predict(workload)
        decisions = s.predict(suite, fidelity="cycle")  # batch-first
        result = s.run(workload)                        # predict→convert→
                                                        # simulate

    with Session("tcp://127.0.0.1:7342") as s:          # same code, served
        decision = s.predict(workload)

Layout:

* :mod:`repro.api.options` — typed, versioned request options
  (:class:`PredictOptions`, :class:`RunOptions`) with ``to_wire`` /
  ``from_wire``; the schema the serve layer speaks.
* :mod:`repro.api.backends` — the :class:`Backend` protocol plus
  :class:`LocalBackend` / :class:`RemoteBackend`.
* :mod:`repro.api.session` — the :class:`Session` facade and its
  end-to-end :meth:`Session.run`.
* :mod:`repro.api.result` — the unified :class:`RunResult`.

Heavy members load lazily (PEP 562): ``repro.sage`` imports the options
module from here, so eagerly importing the session layer (which imports
``repro.sage`` back) would cycle.
"""

from repro.api.options import (
    FIDELITIES,
    PredictOptions,
    RunOptions,
    SUPPORTED_WIRE_SCHEMAS,
    WIRE_SCHEMA_VERSION,
    resolve_options,
)

__all__ = [
    "Backend",
    "FIDELITIES",
    "LocalBackend",
    "PredictOptions",
    "RemoteBackend",
    "RunOptions",
    "RunResult",
    "SUPPORTED_WIRE_SCHEMAS",
    "Session",
    "WIRE_SCHEMA_VERSION",
    "resolve_options",
]

_LAZY = {
    "Backend": "repro.api.backends",
    "LocalBackend": "repro.api.backends",
    "RemoteBackend": "repro.api.backends",
    "RunResult": "repro.api.result",
    "Session": "repro.api.session",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
