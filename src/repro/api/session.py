"""The one front door: ``Session`` — predict, convert, execute, anywhere.

The paper's value proposition is a single coherent flow — pick formats
(SAGE, Sec. VI), convert (MINT, Sec. V), execute (the multi-ACF
accelerator, Sec. IV).  ``Session`` is that flow as one object::

    from repro import Session, PredictOptions

    with Session() as session:                      # in-process
        decision = session.predict(workload)
        decisions = session.predict(suite)          # batch-first: list in,
                                                    # list out, pooled
        result = session.run(workload)              # the whole Fig. 1b
                                                    # pipeline

    with Session("tcp://127.0.0.1:7342") as session:  # same code, served
        decision = session.predict(workload)

Backends are pluggable (:class:`~repro.api.backends.Backend`): the string
``"local"`` builds an in-process :class:`LocalBackend`, a ``tcp://host:port``
URL connects a :class:`RemoteBackend` to a running
:class:`~repro.serve.server.SageServer`, and any object satisfying the
protocol slots straight in.  Decisions are wire-identical across backends
for the same workload and options.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.simulator import WeightStationarySimulator
from repro.api.backends import Backend, LocalBackend, RemoteBackend, Workload
from repro.api.options import PredictOptions, RunOptions, resolve_options
from repro.api.result import RunResult
from repro.errors import ConfigError, PredictionError, SimulationError
from repro.formats.registry import matrix_class
from repro.mint.engine import MintEngine
from repro.obs import span
from repro.sage.predictor import SIM_CAP_ELEMENTS, Sage, SageDecision, _proxy_workload
from repro.workloads.spec import (
    MatrixWorkload,
    TensorWorkload,
    workload_from_dict,
)
from repro.workloads.synthetic import random_sparse_matrix

__all__ = ["Session"]


def _parse_workload(workload) -> Workload:
    if isinstance(workload, (MatrixWorkload, TensorWorkload)):
        return workload
    if isinstance(workload, Mapping):
        return workload_from_dict(workload)
    raise TypeError(
        f"expected a MatrixWorkload, TensorWorkload or wire dict, "
        f"got {type(workload).__name__}"
    )


class Session:
    """One facade over predict → convert → simulate, local or remote.

    Parameters
    ----------
    backend:
        ``"local"`` (default), a ``"tcp://host:port"`` URL of a running
        :class:`~repro.serve.server.SageServer`, or any object satisfying
        the :class:`~repro.api.backends.Backend` protocol.
    config:
        Accelerator configuration for the local predictor and for the
        execute stage of :meth:`run`.  With a remote backend the server
        owns the prediction config; this one drives the local simulator
        (keep them consistent for meaningful :meth:`run` reports).
    options:
        Session-wide default :class:`PredictOptions`; per-call options
        override.
    timeout, cache_size, near_hit, planner_snapshot:
        Backend tuning, forwarded to :class:`RemoteBackend` (``timeout``)
        or :class:`LocalBackend` (the rest).

    Example
    -------
    >>> from repro import Session, MatrixWorkload, Kernel
    >>> wl = MatrixWorkload("doc", Kernel.SPMM, m=256, k=256, n=128,
    ...                     nnz_a=3_000, nnz_b=256 * 128)
    >>> with Session() as session:
    ...     decision = session.predict(wl)
    >>> decision.best.mcf[0].value in {"CSR", "COO", "RLC", "ZVC"}
    True
    """

    def __init__(
        self,
        backend: str | Backend = "local",
        *,
        config: AcceleratorConfig | None = None,
        options: PredictOptions | None = None,
        timeout: float = 150.0,
        cache_size: int = 1024,
        near_hit: bool = False,
        planner_snapshot: dict | None = None,
    ) -> None:
        self.config = config or AcceleratorConfig.paper_default()
        self.options = options or PredictOptions()
        if isinstance(backend, str):
            if backend == "local":
                self._backend: Backend = LocalBackend(
                    Sage(config=config),
                    cache_size=cache_size,
                    near_hit=near_hit,
                    planner_snapshot=planner_snapshot,
                )
            elif backend.startswith("tcp://"):
                host, _, port = backend[len("tcp://"):].partition(":")
                if not host or not port.isdigit():
                    raise ConfigError(
                        f"malformed backend URL {backend!r} "
                        f"(expected tcp://host:port)"
                    )
                self._backend = RemoteBackend(host, int(port), timeout=timeout)
            else:
                raise ConfigError(
                    f"unknown backend {backend!r} (expected 'local', a "
                    f"'tcp://host:port' URL, or a Backend object)"
                )
        else:
            self._backend = backend

    @property
    def backend(self) -> Backend:
        """The live backend (for its stats/cache introspection hooks)."""
        return self._backend

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(backend={self._backend.describe()!r})"

    # -------------------------------------------------------------- predict
    def predict(
        self,
        workload_or_workloads,
        options: PredictOptions | None = None,
        **overrides,
    ) -> SageDecision | list[SageDecision]:
        """One decision, or a batch — routed uniformly.

        A single workload (object or wire dict) returns one
        :class:`SageDecision`; a sequence returns a list in input order,
        fanned out via the local process pool or coalesced into one
        server round trip depending on the backend.  ``overrides`` are
        :class:`PredictOptions` fields (``fidelity="cycle"``,
        ``fixed_mcf=...``, ...) applied on top of *options*.

        Example
        -------
        >>> from repro import Format, Session, MatrixWorkload, Kernel
        >>> wl = MatrixWorkload("doc", Kernel.SPMM, m=256, k=256, n=128,
        ...                     nnz_a=3_000, nnz_b=256 * 128)
        >>> with Session() as session:
        ...     one = session.predict(wl)
        ...     many = session.predict([wl, wl])
        ...     pinned = session.predict(
        ...         wl, fixed_mcf=(Format.CSR, Format.DENSE))
        >>> [d.to_wire() for d in many] == [one.to_wire()] * 2
        True
        >>> pinned.best.mcf == (Format.CSR, Format.DENSE)
        True
        """
        opts = resolve_options(options or self.options, **overrides)
        if isinstance(workload_or_workloads, (Mapping, MatrixWorkload,
                                              TensorWorkload)):
            wl = _parse_workload(workload_or_workloads)
            with span("api.predict", workload=wl.name, batch=1):
                return self._backend.predict_one(wl, opts)
        if isinstance(workload_or_workloads, Sequence):
            workloads = [_parse_workload(wl) for wl in workload_or_workloads]
            with span("api.predict", batch=len(workloads)):
                return self._backend.predict_batch(workloads, opts)
        raise TypeError(
            f"expected a workload or a sequence of workloads, got "
            f"{type(workload_or_workloads).__name__}"
        )

    # ------------------------------------------------------------------ run
    def run(
        self,
        workload,
        options: RunOptions | None = None,
        *,
        a: np.ndarray | None = None,
        b: np.ndarray | None = None,
    ) -> RunResult:
        """The end-to-end Fig. 1b pipeline on one matrix workload.

        SAGE decision (via this session's backend) → operands encoded in
        the chosen MCFs → MINT conversion along the planned route to the
        chosen ACFs → cycle-level simulation → one :class:`RunResult`.

        Operands are materialized from the workload statistics
        (deterministic in ``options.seed``) unless concrete dense arrays
        *a* and *b* are supplied; workloads larger than the simulation cap
        execute through a density-preserving proxy whose scale is recorded
        on the result.

        Example
        -------
        >>> from repro import Session, MatrixWorkload, Kernel
        >>> wl = MatrixWorkload("doc", Kernel.SPMM, m=96, k=96, n=48,
        ...                     nnz_a=500, nnz_b=96 * 48)
        >>> with Session() as session:
        ...     result = session.run(wl)
        >>> result.verified and result.cycles > 0
        True
        """
        opts = options or RunOptions()
        wl = _parse_workload(workload)
        if isinstance(wl, TensorWorkload):
            raise PredictionError(
                "Session.run executes matrix workloads only (the cycle "
                "simulator does not stream 3-D tensors); use "
                "Session.predict for tensor decisions"
            )
        with span("api.run", workload=wl.name):
            return self._run(wl, opts, a, b)

    def _run(self, wl, opts, a, b) -> RunResult:
        with span("api.predict", workload=wl.name, batch=1):
            decision = self._backend.predict_one(wl, opts.predict)

        if a is not None or b is not None:
            if a is None or b is None:
                raise SimulationError(
                    "supply both operands or neither (a and b)"
                )
            if a.shape != (wl.m, wl.k) or b.shape != (wl.k, wl.n):
                raise SimulationError(
                    f"operand shapes {a.shape} @ {b.shape} disagree with "
                    f"the workload ({wl.m}x{wl.k} @ {wl.k}x{wl.n})"
                )
            sim_wl = wl
            a_dense, b_dense = np.asarray(a, float), np.asarray(b, float)
        else:
            cap = opts.max_sim_elements or SIM_CAP_ELEMENTS
            sim_wl = _proxy_workload(wl, cap)
            a_dense = random_sparse_matrix(
                sim_wl.m, sim_wl.k, sim_wl.nnz_a, opts.seed
            )
            b_dense = random_sparse_matrix(
                sim_wl.k, sim_wl.n, sim_wl.nnz_b, opts.seed + 1
            )

        engine = MintEngine(clock_hz=self.config.clock_hz)
        a_mem = matrix_class(decision.mcf[0]).from_dense(a_dense)
        a_acf, conv_a = engine.convert(a_mem, decision.acf[0])
        b_mem = matrix_class(decision.mcf[1]).from_dense(b_dense)
        b_acf, conv_b = engine.convert(b_mem, decision.acf[1])

        sim = WeightStationarySimulator(self.config)
        out, report = sim.run_gemm(
            a_acf, decision.acf[0], b_acf, decision.acf[1], engine=opts.engine
        )
        verified: bool | None = None
        if opts.verify:
            if not np.allclose(out, a_dense @ b_dense):
                raise SimulationError(
                    f"simulated output of {wl.name} disagrees with numpy "
                    f"(ACF=({decision.acf[0]},{decision.acf[1]}))"
                )
            verified = True
        return RunResult(
            workload=wl,
            sim_workload=sim_wl,
            decision=decision,
            conversion_a=conv_a,
            conversion_b=conv_b,
            report=report,
            output=out,
            sim_scale=(
                (sim_wl.m * sim_wl.k * sim_wl.n) / (wl.m * wl.k * wl.n)
            ),
            verified=verified,
        )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the backend (remote connections, pools)."""
        self._backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
