"""Pluggable prediction backends behind the :class:`Session` facade.

The same calling code runs in-process or against a running
:class:`~repro.serve.server.SageServer`, the way DaCe's SDFG program object
fronts many execution targets:

* :class:`LocalBackend` wraps an in-process
  :class:`~repro.sage.predictor.Sage`, a fingerprint-keyed
  :class:`~repro.serve.cache.DecisionCache` per fidelity tier, and an
  optional :class:`~repro.mint.cost.PathPlanner` snapshot seed.  Batches
  fan out across :func:`~repro.util.pool.fork_map`.
* :class:`RemoteBackend` wraps a
  :class:`~repro.serve.client.ServeClient`; options travel in the
  versioned wire schema (:data:`~repro.api.options.WIRE_SCHEMA_VERSION`)
  and batches coalesce into one ``predict_many`` round trip, riding the
  server's own batcher.

Both return the same :class:`~repro.sage.predictor.SageDecision` objects,
wire-identical for identical workloads and options.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, Sequence, runtime_checkable

from repro.api.options import FIDELITIES, PredictOptions
from repro.mint.cost import shared_planner
from repro.sage.predictor import Sage, SageDecision, truncate_ranking
from repro.serve.cache import DecisionCache
from repro.serve.client import ServeClient
from repro.serve.fingerprint import fingerprint_of
from repro.workloads.spec import MatrixWorkload, TensorWorkload

__all__ = ["Backend", "LocalBackend", "RemoteBackend"]

Workload = MatrixWorkload | TensorWorkload


@runtime_checkable
class Backend(Protocol):
    """What a Session needs from an execution target."""

    def predict_one(
        self, workload: Workload, options: PredictOptions
    ) -> SageDecision:
        """One decision for one workload."""
        ...

    def predict_batch(
        self, workloads: Sequence[Workload], options: PredictOptions
    ) -> list[SageDecision]:
        """Decisions for a suite, in input order."""
        ...

    def describe(self) -> str:
        """Short human-readable identity (shown in Session repr)."""
        ...

    def close(self) -> None:
        """Release held resources (connections, pools)."""
        ...


def _relabel(decision: SageDecision, name: str) -> SageDecision:
    """Cache keys exclude the workload name; label hits for the caller."""
    if decision.workload_name == name:
        return decision
    return dataclasses.replace(decision, workload_name=name)


class LocalBackend:
    """In-process predictions with a warm decision cache.

    ``near_hit`` defaults off (unlike the serve layer) so local sessions
    stay exact by default; turn it on to trade exactness for throughput
    the same way a near-hit server does.  ``planner_snapshot`` seeds the
    process-wide conversion planner (e.g. from another process's
    :meth:`~repro.mint.cost.PathPlanner.export_snapshot`), so a fresh
    session starts with routes already amortized elsewhere.
    """

    def __init__(
        self,
        sage: Sage | None = None,
        *,
        cache_size: int = 1024,
        near_hit: bool = False,
        planner_snapshot: dict | None = None,
    ) -> None:
        self.sage = sage or Sage()
        if planner_snapshot is not None:
            shared_planner().seed_snapshot(planner_snapshot)
        # One cache per registered tier: a calibrated decision must never
        # alias (nor be served from) an analytical entry for the same
        # workload fingerprint.
        self._caches = {
            fidelity: DecisionCache(cache_size, near_hit=near_hit)
            for fidelity in FIDELITIES
        }

    # ------------------------------------------------------------- Backend
    def predict_one(
        self, workload: Workload, options: PredictOptions
    ) -> SageDecision:
        if options.restricts_search or options.overrides_hardware:
            # Restricted searches are workload-specific beyond what the
            # fingerprint captures, and hardware overrides answer for a
            # different accelerator than the fingerprint names: compute,
            # never cache (mirrors the server's bypass path so local and
            # remote stay wire-identical).
            return self.sage.predict(workload, options=options)
        cache = self._caches[options.local_fidelity]
        fp = fingerprint_of(workload, self.sage.config)
        decision = cache.get(fp)
        if decision is None:
            full = dataclasses.replace(options, top_k=None)
            decision = self.sage.predict(workload, options=full)
            cache.put(fp, decision)
        return truncate_ranking(
            _relabel(decision, workload.name), options.top_k
        )

    def predict_batch(
        self, workloads: Sequence[Workload], options: PredictOptions
    ) -> list[SageDecision]:
        if options.restricts_search or options.overrides_hardware:
            return self.sage.predict_many(list(workloads), options=options)
        cache = self._caches[options.local_fidelity]
        decisions: list[SageDecision | None] = []
        misses: list[int] = []
        for index, workload in enumerate(workloads):
            cached = cache.get(fingerprint_of(workload, self.sage.config))
            decisions.append(cached)
            if cached is None:
                misses.append(index)
        if misses:
            full = dataclasses.replace(options, top_k=None)
            computed = self.sage.predict_many(
                [workloads[i] for i in misses], options=full
            )
            for index, decision in zip(misses, computed):
                cache.put(
                    fingerprint_of(workloads[index], self.sage.config), decision
                )
                decisions[index] = decision
        return [
            truncate_ranking(_relabel(d, wl.name), options.top_k)
            for d, wl in zip(decisions, workloads)  # type: ignore[arg-type]
        ]

    def describe(self) -> str:
        return "local"

    def close(self) -> None:
        """Nothing held; present for Backend symmetry."""

    def cache_stats(self) -> dict:
        """Per-fidelity decision-cache counters."""
        return {
            fidelity: cache.stats().to_dict()
            for fidelity, cache in self._caches.items()
        }


class RemoteBackend:
    """Predictions answered by a running :class:`SageServer`.

    Every request ships the versioned schema with explicit options and an
    explicit ranking length (``top_k`` or the full ranking), so a remote
    decision is wire-identical to what a :class:`LocalBackend` computes
    for the same workload and options.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 150.0
    ) -> None:
        self.host, self.port = host, port
        self.client = ServeClient(host, port, timeout=timeout)

    @staticmethod
    def _top(options: PredictOptions) -> int:
        # None means "full ranking" in PredictOptions; the serve protocol
        # spells that 0 (its own None means "server default prefix").
        return 0 if options.top_k is None else options.top_k

    # ------------------------------------------------------------- Backend
    def predict_one(
        self, workload: Workload, options: PredictOptions
    ) -> SageDecision:
        return self.client.predict(
            workload, top=self._top(options), options=options
        )

    def predict_batch(
        self, workloads: Sequence[Workload], options: PredictOptions
    ) -> list[SageDecision]:
        return self.client.predict_many(
            list(workloads), top=self._top(options), options=options
        )

    def describe(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def close(self) -> None:
        self.client.close()

    def stats(self) -> dict:
        """The remote server's stats RPC."""
        return self.client.stats()
