"""Per-event energy model.

Defaults follow the scaling relationships of Horowitz, "Computing's energy
problem (and what we can do about it)", ISSCC 2014 — the same source the paper
cites for its claim that *"a data transfer from DRAM can cost 6400x more
energy than an add operation"* (Sec. I).  We anchor the model on that ratio:

* 32-bit integer add               : 0.1 pJ
* 32-bit DRAM word transfer        : 640 pJ  (= 6400 x add, i.e. 20 pJ/bit)
* 32-bit fp multiply-accumulate    : 4.6 pJ  (3.7 pJ mul + 0.9 pJ add)
* on-chip SRAM / register / wire events scaled accordingly

Absolute joules are not expected to match the authors' testbed; the
*relationships* (DRAM >> SRAM >> compute) that drive every conclusion in the
paper are preserved.  All fields are overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyModel:
    """Energy (joules) charged per hardware event.

    Attributes
    ----------
    dram_bit:
        DRAM transfer energy per bit (read or write).
    sram_global_bit:
        Global shared scratchpad access per bit.
    sram_pe_bit:
        PE-local buffer access per bit.
    reg_bit:
        Pipeline/output register access per bit.
    noc_bit:
        One bus/NoC hop per bit (broadcast counted once per source word).
    mac_fp32:
        One 32-bit floating multiply-accumulate.
    add_int32:
        One 32-bit integer add (metadata arithmetic, prefix sums).
    mult_int32:
        One 32-bit integer multiply.
    div_int32:
        One 32-bit integer divide (MINT position calculations).
    mod_int32:
        One 32-bit integer modulo.
    compare:
        One metadata comparator evaluation.
    """

    dram_bit: float = 20.0e-12
    sram_global_bit: float = 0.625e-12
    sram_pe_bit: float = 0.156e-12
    reg_bit: float = 0.03e-12
    noc_bit: float = 0.30e-12
    mac_fp32: float = 4.6e-12
    add_int32: float = 0.1e-12
    mult_int32: float = 3.1e-12
    div_int32: float = 8.0e-12
    mod_int32: float = 6.0e-12
    compare: float = 0.05e-12

    def dram_bits(self, bits: float) -> float:
        """Energy to move *bits* across the DRAM interface."""
        return bits * self.dram_bit

    def sram_global_bits(self, bits: float) -> float:
        """Energy for *bits* of global scratchpad traffic."""
        return bits * self.sram_global_bit

    def sram_pe_bits(self, bits: float) -> float:
        """Energy for *bits* of PE-local buffer traffic."""
        return bits * self.sram_pe_bit

    def noc_bits(self, bits: float) -> float:
        """Energy for *bits* broadcast over the distribution bus."""
        return bits * self.noc_bit

    def macs(self, count: float) -> float:
        """Energy for *count* fp32 multiply-accumulates."""
        return count * self.mac_fp32

    def dram_to_add_ratio(self) -> float:
        """The headline Horowitz ratio: 32-bit DRAM word vs one int add."""
        return (self.dram_bit * 32.0) / self.add_int32


DEFAULT_ENERGY = EnergyModel()
"""Module-level default instance shared by models that take no override."""
