"""Area and power model at a 28 nm-class node.

The paper implements MINT's building blocks in RTL and reports post
place-and-route aggregates (Sec. VII-B).  We replace synthesis with a
parametric component model whose default constants are **calibrated so the
composed aggregates land on the published numbers**:

* MINT_b / MINT_m / MINT_mr ~= 0.95 / 0.41 / 0.23 mm^2,
* divide+mod units ~= 74% of MINT_m area and ~= 65% of its power,
* MINT_m ~= 0.5% area / 0.4% power of a 16384-PE accelerator,
* extended PE ~= +10% area over a base PE with a 128 B buffer (Fig. 7b),
* prefix-sum overlays: serial chain +2% area / +3% power on a 16x16 int32
  array; highly-parallel 32-input +20% area / +27% power.

The calibration targets are aggregates, so individual block constants are
*model parameters*, not measurements; they are chosen to be mutually
consistent and of plausible magnitude for 28 nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PrefixSumDesign(Enum):
    """The three prefix-sum implementations of Fig. 9."""

    SERIAL_CHAIN = "serial_chain"
    WORK_EFFICIENT = "work_efficient"
    HIGHLY_PARALLEL = "highly_parallel"


@dataclass(frozen=True)
class AreaModel:
    """Component areas (mm^2) and powers (mW @ 1 GHz) for MINT + accelerator.

    ``*_area`` fields are per-instance areas; ``*_power`` per-instance powers.
    """

    # --- MINT building blocks ------------------------------------------------
    divider_area: float = 0.0220
    divider_power: float = 5.0
    mod_area: float = 0.0159
    mod_power: float = 3.125
    multiplier_area: float = 0.0030
    multiplier_power: float = 1.5
    prefix_sum_area: float = 0.0160  # 32-input pipelined scan unit
    prefix_sum_power: float = 4.0
    sorter_area: float = 0.0200  # pipelined sorting network
    sorter_power: float = 6.0
    cluster_counter_area: float = 0.0080
    cluster_counter_power: float = 2.5
    comparator_bank_area: float = 0.0060
    comparator_bank_power: float = 2.0
    mem_controller_area: float = 0.0328  # address generators + FIFOs + crossbar
    mem_controller_power: float = 8.0
    block_flags_area: float = 0.0020
    block_flags_power: float = 0.5
    # Muxes / controller / datapaths added when MINT_mr borrows accelerator
    # compute units (Sec. V-A: "Reusing the dividers in the activation units
    # require a mux, controller, and dedicated data paths").
    reuse_glue_area: float = 0.0340
    reuse_glue_power: float = 6.0

    # --- PE microarchitecture (Fig. 7) ---------------------------------------
    pe_mac_lane_area: float = 0.00208  # fp32 multiplier + adder, one lane
    pe_buffer_area_per_byte: float = 4.7e-6
    pe_control_area: float = 0.00220  # registers + state machine
    pe_comparator_area: float = 0.00012  # one metadata comparator
    pe_encoder_area: float = 0.00030  # one-hot-to-binary encoder
    pe_addr_gen_area: float = 0.00040  # valid-data address generator
    pe_flag_area: float = 0.00020  # bus data/metadata flag handling

    # --- whole-accelerator nominals (Sec. VII-B comparison point) ------------
    accelerator_area: float = 82.0  # 16384 MACs, int16/int32 & bfp16/fp32
    accelerator_power: float = 25_000.0  # mW nominal

    # ------------------------------------------------------------------ PEs --
    def pe_base_area(self, buffer_bytes: int = 128, lanes: int = 8) -> float:
        """Area of a base (non-extended) PE."""
        return (
            lanes * self.pe_mac_lane_area
            + buffer_bytes * self.pe_buffer_area_per_byte
            + self.pe_control_area
        )

    def pe_extension_area(self, lanes: int = 8) -> float:
        """Area added by the multi-ACF extensions of Sec. IV."""
        return (
            lanes * self.pe_comparator_area
            + self.pe_encoder_area
            + self.pe_addr_gen_area
            + self.pe_flag_area
        )

    def pe_extended_area(self, buffer_bytes: int = 128, lanes: int = 8) -> float:
        """Area of an extended PE (base + flexible-ACF support)."""
        return self.pe_base_area(buffer_bytes, lanes) + self.pe_extension_area(lanes)

    def pe_overhead_fraction(self, buffer_bytes: int = 128, lanes: int = 8) -> float:
        """Fractional area overhead of the extension (Fig. 7b reports ~10%)."""
        return self.pe_extension_area(lanes) / self.pe_base_area(buffer_bytes, lanes)


@dataclass(frozen=True)
class PEAreaBreakdown:
    """Itemized PE area report for rendering Fig. 7b-style tables."""

    mac_lanes: float
    buffer: float
    control: float
    comparators: float
    encoder: float
    addr_gen: float
    flags: float

    @property
    def base(self) -> float:
        """Base-PE subtotal."""
        return self.mac_lanes + self.buffer + self.control

    @property
    def extension(self) -> float:
        """Extension subtotal."""
        return self.comparators + self.encoder + self.addr_gen + self.flags

    @property
    def total(self) -> float:
        """Extended-PE total."""
        return self.base + self.extension


def pe_breakdown(
    model: AreaModel, buffer_bytes: int = 128, lanes: int = 8
) -> PEAreaBreakdown:
    """Compute the itemized PE area breakdown under *model*."""
    return PEAreaBreakdown(
        mac_lanes=lanes * model.pe_mac_lane_area,
        buffer=buffer_bytes * model.pe_buffer_area_per_byte,
        control=model.pe_control_area,
        comparators=lanes * model.pe_comparator_area,
        encoder=model.pe_encoder_area,
        addr_gen=model.pe_addr_gen_area,
        flags=model.pe_flag_area,
    )


@dataclass(frozen=True)
class PrefixSumOverlay:
    """Cost of overlaying a prefix-sum capability on an existing PE array.

    Sec. V-A/VII-B publish two synthesis points; the work-efficient design's
    overhead is not published and is interpolated.  Fractions are relative to
    the host PE array's area/power.
    """

    design: PrefixSumDesign
    area_fraction: float
    power_fraction: float


_OVERLAYS = {
    PrefixSumDesign.SERIAL_CHAIN: (0.02, 0.03),
    PrefixSumDesign.WORK_EFFICIENT: (0.08, 0.11),  # interpolated (not published)
    PrefixSumDesign.HIGHLY_PARALLEL: (0.20, 0.27),
}


def prefix_sum_overlay(design: PrefixSumDesign) -> PrefixSumOverlay:
    """Look up the overlay cost of a prefix-sum design (Fig. 9 / Sec. VII-B)."""
    area, power = _OVERLAYS[design]
    return PrefixSumOverlay(design=design, area_fraction=area, power_fraction=power)


DEFAULT_AREA = AreaModel()
"""Module-level default instance."""
