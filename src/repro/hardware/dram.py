"""DRAM channel model: transfer cycles and energy for a compressed tensor.

SAGE's cost model (Sec. VI) charges each MCF its *compressed size* worth of
DRAM traffic: "The cost model first predicts the DRAM energy consumption and
transfer cycles cost.  This is directly proportional to the compression size
of the MCF."  This module is that proportionality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel
from repro.util.bits import ceil_div


@dataclass(frozen=True)
class DramChannel:
    """A DRAM interface clocked against the accelerator core clock.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Sustained bandwidth.  Default 64 GB/s = 512 bits/cycle at 1 GHz,
        matched to the accelerator's 512-bit input bus (Sec. VII-A) so the
        memory system and the distribution fabric are rate-balanced; the
        paper does not publish a DRAM bandwidth.
    clock_hz:
        Accelerator core clock used to express transfers in cycles.  The
        paper's MINT synthesis targets 1 GHz (Sec. VII-B).
    energy:
        Per-event energy model supplying the per-bit DRAM energy.
    """

    bandwidth_bytes_per_s: float = 64.0e9
    clock_hz: float = 1.0e9
    energy: EnergyModel = DEFAULT_ENERGY

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.clock_hz <= 0:
            raise ConfigError("clock frequency must be positive")

    @property
    def bits_per_cycle(self) -> float:
        """Bits deliverable per accelerator clock cycle."""
        return self.bandwidth_bytes_per_s * 8.0 / self.clock_hz

    def transfer_cycles(self, bits: int) -> int:
        """Cycles to move *bits* (rounded up to whole cycles)."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if bits == 0:
            return 0
        return ceil_div(bits, int(self.bits_per_cycle))

    def transfer_seconds(self, bits: int) -> float:
        """Wall time to move *bits*."""
        return self.transfer_cycles(bits) / self.clock_hz

    def transfer_energy(self, bits: int) -> float:
        """Joules to move *bits*."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return self.energy.dram_bits(bits)
