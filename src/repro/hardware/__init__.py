"""Hardware cost substrate: energy, DRAM, and area/power models.

These modules replace the paper's physical measurement apparatus (28 nm RTL
synthesis, DRAM datasheets) with parametric analytical models whose default
constants are calibrated to the aggregate numbers the paper publishes.  Every
constant is a dataclass field, so experiments can re-run under different
technology assumptions.
"""

from repro.hardware.area import AreaModel, PEAreaBreakdown, PrefixSumOverlay
from repro.hardware.dram import DramChannel
from repro.hardware.energy import EnergyModel

__all__ = [
    "AreaModel",
    "DramChannel",
    "EnergyModel",
    "PEAreaBreakdown",
    "PrefixSumOverlay",
]
