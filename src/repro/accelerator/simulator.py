"""Cycle-level functional simulator of the weight-stationary accelerator.

Executes ``O = A @ B`` (GEMM / SpMM / SpGEMM / SpMV are all this, per
Fig. 2) under any supported ACF pair, producing both the numerical output
and a :class:`~repro.accelerator.report.RunReport`.

The simulator is the operational ground truth: it packs real bus beats
(:mod:`repro.accelerator.stream`), performs per-PE metadata matching
(:mod:`repro.accelerator.pe`) and walks the (k-tile x round) schedule
(:mod:`repro.accelerator.scheduler`).  The test suite pins it to the Fig. 6
walkthrough (8 / 3 / 4 cycles to stream A) and cross-checks it against the
closed-form analytical model on randomized cases.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pe import PE
from repro.accelerator.report import CycleReport, EnergyReport, RunReport
from repro.accelerator.scheduler import build_schedule
from repro.accelerator.stream import stream_beats
from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.csc import CscMatrix
from repro.formats.registry import Format
from repro.util.bits import ceil_div

#: Streaming ACFs accepted for the streamed operand A.
STREAMED_ACFS = (Format.DENSE, Format.COO, Format.CSR, Format.CSC)
#: Stationary ACFs accepted for the pinned operand B.
STATIONARY_ACFS = (Format.DENSE, Format.CSC)


class WeightStationarySimulator:
    """Cycle-level simulator for one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config or AcceleratorConfig.paper_default()

    # ------------------------------------------------------------------ run
    def run_gemm(
        self,
        a: MatrixFormat,
        acf_a: Format,
        b: MatrixFormat,
        acf_b: Format,
    ) -> tuple[np.ndarray, RunReport]:
        """Execute ``O = A @ B`` and return (output, report).

        ``a`` must be encoded in ``acf_a`` (its class must match) and ``b``
        is re-encoded to the stationary layout internally if needed.
        """
        if acf_a not in STREAMED_ACFS:
            raise SimulationError(f"{acf_a} is not a streamable ACF")
        if acf_b not in STATIONARY_ACFS:
            raise SimulationError(f"{acf_b} is not a stationary ACF")
        if a.format is not acf_a:
            raise SimulationError(
                f"streamed operand is encoded as {a.format}, ACF says {acf_a}"
            )
        if a.ncols != b.nrows:
            raise SimulationError(
                f"inner dimensions disagree: {a.shape} @ {b.shape}"
            )
        cfg = self.config
        m, n = a.nrows, b.ncols
        b_dense = b.to_dense() if acf_b is Format.DENSE else None
        b_csc = (
            b
            if (acf_b is Format.CSC and isinstance(b, CscMatrix))
            else (CscMatrix.from_dense(b.to_dense()) if acf_b is Format.CSC else None)
        )
        sched_operand: MatrixFormat = b_csc if acf_b is Format.CSC else b  # type: ignore[assignment]
        schedule = build_schedule(
            sched_operand, acf_b, cfg.pe_buffer_entries, cfg.num_pes
        )

        out = np.zeros((m, n), dtype=np.float64)
        load_cycles = stream_cycles = 0
        issued = matched = compares = spills = 0
        entries_loaded_total = 0
        beat_cycles_total = 0

        for k_lo, k_hi in schedule.k_tiles:
            # Beats are identical across rounds of the same tile; enumerate
            # once and replay per round.
            tile_beats = list(stream_beats(a, acf_a, cfg.bus_slots, (k_lo, k_hi)))
            tile_beat_cycles = sum(bt.cycles for bt in tile_beats)
            for col_lo, col_hi in schedule.rounds:
                pes: list[PE] = []
                entries_loaded = 0
                for j in range(col_lo, col_hi):
                    pe = PE(j)
                    if acf_b is Format.DENSE:
                        assert b_dense is not None
                        pe.load_dense(b_dense[k_lo:k_hi, j], k_lo)
                    else:
                        assert b_csc is not None
                        rows, vals = b_csc.col_slice(j)
                        sel = (rows >= k_lo) & (rows < k_hi)
                        pe.load_csc(rows[sel], vals[sel])
                    entries_loaded += pe.footprint_entries
                    pes.append(pe)
                load_cycles += ceil_div(entries_loaded, cfg.bus_slots) if (
                    entries_loaded
                ) else 0
                entries_loaded_total += entries_loaded

                for beat in tile_beats:
                    for i, k, v in beat.entries:
                        for pe in pes:
                            pe.process(i, k, v)
                stream_cycles += tile_beat_cycles
                beat_cycles_total += tile_beat_cycles

                for pe in pes:
                    pe.flush()
                    for i, contribution in pe.contributions:
                        out[i, pe.col_index] += contribution
                    issued += pe.issued_macs
                    matched += pe.matched_macs
                    compares += pe.compares
                    spills += pe.spills

        drain_cycles = ceil_div(spills, cfg.bus_slots) if spills else 0
        compute_cycles = (
            ceil_div(issued, cfg.total_macs) if issued else 0
        )
        cycles = CycleReport(
            load_cycles=load_cycles,
            stream_cycles=stream_cycles,
            drain_cycles=drain_cycles,
            compute_cycles=compute_cycles,
            rounds=schedule.num_rounds,
            k_tiles=schedule.num_tiles,
            issued_macs=issued,
            matched_macs=matched,
            output_spills=spills,
        )
        energy = self._energy(
            beat_cycles_total, entries_loaded_total, issued, compares, spills
        )
        return out, RunReport(cycles=cycles, energy=energy)

    # ----------------------------------------------------------- accounting
    def _energy(
        self,
        beat_cycles: int,
        entries_loaded: int,
        issued_macs: int,
        compares: int,
        spills: int,
    ) -> EnergyReport:
        from repro.accelerator.accounting import energy_report

        return energy_report(
            self.config,
            beat_cycles=beat_cycles,
            entries_loaded=entries_loaded,
            issued_macs=issued_macs,
            compares=compares,
            spills=spills,
        )

    # ---------------------------------------------------- convenience APIs --
    def stream_cycles_only(self, a: MatrixFormat, acf_a: Format) -> int:
        """Cycles to broadcast operand A once, untiled (the Fig. 6 number)."""
        return sum(
            bt.cycles for bt in stream_beats(a, acf_a, self.config.bus_slots)
        )
