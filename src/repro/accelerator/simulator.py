"""Cycle-level functional simulator of the weight-stationary accelerator.

Executes ``O = A @ B`` (GEMM / SpMM / SpGEMM / SpMV are all this, per
Fig. 2) under any registered ACF pair, producing both the numerical output
and a :class:`~repro.accelerator.report.RunReport`.

The simulator is the operational ground truth: it packs real bus beats
(:mod:`repro.accelerator.stream`), matches streamed elements against the
stationary buffers and walks the (k-tile x round) schedule
(:mod:`repro.accelerator.scheduler`).  Which ACFs can stream or sit
stationary is decided by the protocol registries of
:mod:`repro.accelerator.protocols` — adding a format there is enough for
it to run here.

Two engines share the registries:

* ``engine="vectorized"`` (default) — consumes array-resident
  :class:`~repro.accelerator.stream.BeatPlan` objects and computes every
  per-PE statistic with numpy segment ops; no per-entry Python loops.
* ``engine="reference"`` — the seed per-beat path: materialized
  :class:`Beat` objects driving one :class:`~repro.accelerator.pe.PE`
  object per column.  Kept as the differential-testing ground truth and
  the baseline ``benchmarks/bench_simulate_many.py`` measures against.

Both engines produce identical cycle/energy reports (pinned by the test
suite, along with the Fig. 6 walkthrough's 8 / 3 / 4 streaming cycles and
the closed-form analytical cross-check).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.pe import PE
from repro.accelerator.protocols import (
    StationaryLayout,
    StreamProtocol,
    stationary_layout_for,
    stream_protocol_for,
    streamable_formats,
)
from repro.accelerator.report import CycleReport, EnergyReport, RunReport
from repro.accelerator.scheduler import (
    Schedule,
    compute_rounds,
    prepare_stationary,
)
from repro.accelerator.stream import build_beat_plan
from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.registry import Format
from repro.obs import registry, span
from repro.util.bits import ceil_div
from repro.util.pool import fork_map

_GEMMS = registry().counter(
    "repro_accel_gemms_total", "Simulated GEMMs, by engine"
)
_PHASE_CYCLES = registry().counter(
    "repro_accel_phase_cycles_total",
    "Modeled accelerator cycles, by phase (load/stream/compute/drain)",
)

#: One simulate_many job: (streamed operand, its ACF, stationary operand,
#: its ACF) — exactly the run_gemm signature.
SimJob = tuple[MatrixFormat, Format, MatrixFormat, Format]


class WeightStationarySimulator:
    """Cycle-level simulator for one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig | None = None) -> None:
        self.config = config or AcceleratorConfig.paper_default()

    # ------------------------------------------------------------------ run
    def run_gemm(
        self,
        a: MatrixFormat,
        acf_a: Format,
        b: MatrixFormat,
        acf_b: Format,
        *,
        engine: str = "vectorized",
    ) -> tuple[np.ndarray, RunReport]:
        """Execute ``O = A @ B`` and return (output, report).

        ``a`` must be encoded in ``acf_a`` (its class must match) and ``b``
        is re-encoded to the stationary layout internally if needed.
        """
        proto = stream_protocol_for(acf_a)
        if not proto.streamable:
            raise SimulationError(
                f"{acf_a} is not a streamable ACF "
                f"(streamable: {', '.join(f.value for f in streamable_formats())})"
            )
        layout = stationary_layout_for(acf_b)
        if a.format is not acf_a:
            raise SimulationError(
                f"streamed operand is encoded as {a.format}, ACF says {acf_a}"
            )
        if a.ncols != b.nrows:
            raise SimulationError(
                f"inner dimensions disagree: {a.shape} @ {b.shape}"
            )
        if self.config.pe_buffer_entries < 1:  # pragma: no cover - config guard
            raise SimulationError("PE buffer must hold at least one entry")
        with span(
            "accel.gemm",
            engine=engine,
            streamed=str(acf_a),
            stationary=str(acf_b),
        ):
            # Layout preparation + K-tiling memoize on operand identity:
            # under the zero-copy plane a stationary operand shared by the
            # batch is prepared once per process, not once per job (see
            # scheduler).
            with span("accel.prepare"):
                stationary, k_tiles = prepare_stationary(
                    b, acf_b, self.config.pe_buffer_entries
                )
                schedule = Schedule(
                    k_tiles=k_tiles,
                    rounds=compute_rounds(b.ncols, self.config.num_pes),
                )
            if engine == "vectorized":
                out, report = self._run_vectorized(
                    a, proto, layout, stationary, schedule
                )
            elif engine == "reference":
                out, report = self._run_reference(
                    a, proto, layout, stationary, schedule
                )
            else:
                raise SimulationError(f"unknown engine {engine!r}")
        _GEMMS.inc(engine=engine)
        cycles = report.cycles
        for phase, amount in (
            ("load", cycles.load_cycles),
            ("stream", cycles.stream_cycles),
            ("compute", cycles.compute_cycles),
            ("drain", cycles.drain_cycles),
        ):
            if amount:
                _PHASE_CYCLES.inc(amount, phase=phase)
        return out, report

    # ------------------------------------------------- vectorized engine --
    def _run_vectorized(
        self, a, proto: StreamProtocol, layout: StationaryLayout,
        stationary, schedule,
    ) -> tuple[np.ndarray, RunReport]:
        cfg = self.config
        w = cfg.bus_slots
        m, n = a.nrows, stationary.values.shape[1]
        bd, smask = stationary.values, stationary.stored
        out = np.zeros((m, n), dtype=np.float64)
        load_cycles = stream_cycles = 0
        issued = matched = compares = spills = 0
        entries_loaded_total = 0

        for k_lo, k_hi in schedule.k_tiles:
            kt = k_hi - k_lo
            plan = build_beat_plan(a, proto.format, w, (k_lo, k_hi))
            tile_cycles = plan.total_cycles
            valid = plan.k >= 0  # padding slots never reach the datapath
            i_e = plan.i[valid]
            k_e = plan.k[valid] - k_lo
            v_e = plan.v[valid]
            num = len(v_e)
            if num:
                # Per-k processed / nonzero streamed-entry histograms and the
                # scatter views of the streamed tile.
                c_all = np.bincount(k_e, minlength=kt)
                c_nz = np.bincount(
                    k_e[v_e != 0.0], minlength=kt
                )
                s_vals = np.zeros((m, kt), dtype=np.float64)
                s_vals[i_e, k_e] = v_e
                p_mask = np.zeros((m, kt), dtype=bool)
                p_mask[i_e, k_e] = True
                runs_all = 1 + int(np.count_nonzero(i_e[1:] != i_e[:-1]))
            else:
                c_all = c_nz = np.zeros(kt, dtype=np.int64)
                s_vals = p_mask = None
                runs_all = 0

            for col_lo, col_hi in schedule.rounds:
                ncols = col_hi - col_lo
                sm_t = smask[k_lo:k_hi, col_lo:col_hi]
                loaded = layout.entry_cost * int(sm_t.sum())
                if loaded:
                    load_cycles += ceil_div(loaded, w)
                entries_loaded_total += loaded
                stream_cycles += tile_cycles
                if not num:
                    continue
                bd_t = bd[k_lo:k_hi, col_lo:col_hi]
                out[:, col_lo:col_hi] += s_vals @ bd_t
                if layout.matcher == "direct":
                    # Indexable buffers answer every streamed element.
                    issued += num * ncols
                    matched += int(np.dot(c_nz, (bd_t != 0.0).sum(axis=1)))
                    spills += runs_all * ncols
                else:
                    # Metadata (CAM) matching against the stored pattern.
                    stored_per_k = sm_t.sum(axis=1)
                    issued += int(np.dot(c_all, stored_per_k))
                    matched += int(np.dot(c_nz, stored_per_k))
                    compares += num * int(sm_t.sum())
                    if proto.row_grouped:
                        # Row-grouped streams open one Oreg run per
                        # (row with >= 1 metadata match, PE).
                        spills += int(np.count_nonzero(p_mask @ sm_t))
                    else:
                        spills += _interleaved_runs(i_e, k_e, sm_t)

        drain_cycles = ceil_div(spills, w) if spills else 0
        compute_cycles = ceil_div(issued, cfg.total_macs) if issued else 0
        cycles = CycleReport(
            load_cycles=load_cycles,
            stream_cycles=stream_cycles,
            drain_cycles=drain_cycles,
            compute_cycles=compute_cycles,
            rounds=schedule.num_rounds,
            k_tiles=schedule.num_tiles,
            issued_macs=issued,
            matched_macs=matched,
            output_spills=spills,
        )
        energy = self._energy(
            stream_cycles, entries_loaded_total, issued, compares, spills
        )
        return out, RunReport(cycles=cycles, energy=energy)

    # -------------------------------------------------- reference engine --
    def _run_reference(
        self, a, proto: StreamProtocol, layout: StationaryLayout,
        stationary, schedule,
    ) -> tuple[np.ndarray, RunReport]:
        """The seed per-beat path: Beat objects into per-column PE models."""
        cfg = self.config
        if layout.format not in (Format.DENSE, Format.CSC):
            raise SimulationError(
                f"the reference engine models Dense/CSC PE buffers only, "
                f"not {layout.format}"
            )
        m, n = a.nrows, stationary.values.shape[1]
        out = np.zeros((m, n), dtype=np.float64)
        load_cycles = stream_cycles = 0
        issued = matched = compares = spills = 0
        entries_loaded_total = 0
        beat_cycles_total = 0

        for k_lo, k_hi in schedule.k_tiles:
            # Beats are identical across rounds of the same tile; enumerate
            # once and replay per round.
            plan = build_beat_plan(a, proto.format, cfg.bus_slots, (k_lo, k_hi))
            tile_beats = list(plan.iter_beats())
            tile_beat_cycles = sum(bt.cycles for bt in tile_beats)
            for col_lo, col_hi in schedule.rounds:
                pes: list[PE] = []
                entries_loaded = 0
                for j in range(col_lo, col_hi):
                    pe = PE(j)
                    if layout.format is Format.DENSE:
                        pe.load_dense(stationary.values[k_lo:k_hi, j], k_lo)
                    else:
                        rows = np.flatnonzero(stationary.stored[k_lo:k_hi, j])
                        pe.load_csc(
                            rows + k_lo, stationary.values[rows + k_lo, j]
                        )
                    entries_loaded += pe.footprint_entries
                    pes.append(pe)
                load_cycles += ceil_div(entries_loaded, cfg.bus_slots) if (
                    entries_loaded
                ) else 0
                entries_loaded_total += entries_loaded

                for beat in tile_beats:
                    for i, k, v in beat.entries:
                        for pe in pes:
                            pe.process(i, k, v)
                stream_cycles += tile_beat_cycles
                beat_cycles_total += tile_beat_cycles

                for pe in pes:
                    pe.flush()
                    for i, contribution in pe.contributions:
                        out[i, pe.col_index] += contribution
                    issued += pe.issued_macs
                    matched += pe.matched_macs
                    compares += pe.compares
                    spills += pe.spills

        drain_cycles = ceil_div(spills, cfg.bus_slots) if spills else 0
        compute_cycles = ceil_div(issued, cfg.total_macs) if issued else 0
        cycles = CycleReport(
            load_cycles=load_cycles,
            stream_cycles=stream_cycles,
            drain_cycles=drain_cycles,
            compute_cycles=compute_cycles,
            rounds=schedule.num_rounds,
            k_tiles=schedule.num_tiles,
            issued_macs=issued,
            matched_macs=matched,
            output_spills=spills,
        )
        energy = self._energy(
            beat_cycles_total, entries_loaded_total, issued, compares, spills
        )
        return out, RunReport(cycles=cycles, energy=energy)

    # ------------------------------------------------------------- batch --
    def simulate_many(
        self,
        jobs: Sequence[SimJob],
        *,
        processes: int | None = None,
        engine: str = "vectorized",
        transport: str = "auto",
    ) -> list[tuple[np.ndarray, RunReport]]:
        """Run a batch of GEMMs, fanned across a process pool.

        Results are returned in input order.  Mirrors
        :meth:`~repro.sage.predictor.Sage.predict_many`: the batch rides the
        shared :func:`~repro.util.pool.fork_map` machinery, so platforms
        (or callers, e.g. daemonic serve shards) that cannot spawn workers
        degrade to sequential simulation rather than failing.

        ``transport`` selects the worker wire format (``"auto"`` /
        ``"shm"`` / ``"pickle"``).  Under the default zero-copy operand
        plane, large operand buffers cross the process boundary once per
        distinct array — a stationary operand shared by every job in the
        batch (the weight-stationary sweep shape) is transported once,
        not once per job.
        """
        return fork_map(
            _simulate_one,
            [(self, job, engine) for job in jobs],
            processes=processes,
            transport=transport,
        )

    # ----------------------------------------------------------- accounting
    def _energy(
        self,
        beat_cycles: int,
        entries_loaded: int,
        issued_macs: int,
        compares: int,
        spills: int,
    ) -> EnergyReport:
        from repro.accelerator.accounting import energy_report

        return energy_report(
            self.config,
            beat_cycles=beat_cycles,
            entries_loaded=entries_loaded,
            issued_macs=issued_macs,
            compares=compares,
            spills=spills,
        )

    # ---------------------------------------------------- convenience APIs --
    def stream_cycles_only(self, a: MatrixFormat, acf_a: Format) -> int:
        """Cycles to broadcast operand A once, untiled (the Fig. 6 number)."""
        return build_beat_plan(a, acf_a, self.config.bus_slots).total_cycles


def _interleaved_runs(
    i_e: np.ndarray, k_e: np.ndarray, sm_t: np.ndarray, chunk_cells: int = 1 << 22
) -> int:
    """Oreg spill runs for streams that interleave output rows (e.g. CSC).

    For each PE column, the matched subsequence is the streamed entries
    whose reduction index is stored in that column's buffer; a spill run
    starts at the first match and at every match whose row differs from
    the previous match.  Computed column-chunked to bound the (entries x
    columns) working set.
    """
    num = len(i_e)
    if not num:
        return 0
    ncols = sm_t.shape[1]
    step = max(1, chunk_cells // num)
    total = 0
    arange = np.arange(num, dtype=np.int64)[:, None]
    for lo in range(0, ncols, step):
        mask = sm_t[k_e, lo : lo + step]  # (entries, cols) matched pattern
        pos = np.where(mask, arange, -1)
        last = np.maximum.accumulate(pos, axis=0)
        prev = np.empty_like(last)
        prev[0] = -1
        prev[1:] = last[:-1]
        same = mask & (prev >= 0) & (i_e[prev] == i_e[:, None])
        total += int(mask.sum()) - int(same.sum())
    return total


def _simulate_one(
    job: tuple["WeightStationarySimulator", SimJob, str]
) -> tuple[np.ndarray, RunReport]:
    """Pool task: one GEMM through the (pickled) simulator."""
    sim, (a, acf_a, b, acf_b), engine = job
    return sim.run_gemm(a, acf_a, b, acf_b, engine=engine)


def __getattr__(name: str):
    # Back-compat for the seed module constants: derive from the registries.
    if name == "STREAMED_ACFS":
        return streamable_formats()
    if name == "STATIONARY_ACFS":
        from repro.accelerator.protocols import stationary_formats

        return stationary_formats()
    raise AttributeError(name)
