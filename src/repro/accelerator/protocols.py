"""Pluggable streaming-protocol and stationary-layout registries.

The accelerator used to hard-code its format dispatch: ``_MATRIX_SPECS`` /
``_TENSOR_SPECS`` dicts for streaming slot costs, ``STREAMED_ACFS`` /
``STATIONARY_ACFS`` tuples in the simulator, and per-format ``if`` ladders
for entry extraction and stationary footprints.  This module replaces all
of that with two registries, mirroring the conversion-graph registry of
:mod:`repro.mint.graph`:

* :class:`StreamProtocol` — how one ACF travels on the distribution bus:
  its :class:`~repro.accelerator.stream.StreamSpec` slot costs, whether
  entries arrive grouped by output row (the spill model depends on it),
  and a **vectorized entry-extraction kernel** producing the parallel
  ``(i, k, v, group_sizes)`` arrays the beat packer consumes.  Protocols
  self-register through :func:`register_stream_protocol`; tensor ACFs that
  only the analytical model streams register spec-only (no extractor).
* :class:`StationaryLayout` — how one ACF occupies the PE buffers: entries
  consumed per stored element, direct-index vs metadata matching, and a
  ``prepare`` hook materializing the array-resident view
  (:class:`StationaryOperand`) the vectorized engine and scheduler share.

Adding a streamable format is one decorated function next to the others —
the simulator, scheduler, perf model, SAGE's cycle-fidelity tier and the
CLI pick it up automatically.  Unsupported lookups raise
:class:`~repro.errors.SimulationError` naming the registered formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.accelerator.stream import PAD_K, StreamSpec
from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.ell import PAD_COL, EllMatrix
from repro.formats.registry import Format

__all__ = [
    "StationaryLayout",
    "StationaryOperand",
    "StreamProtocol",
    "register_stationary_layout",
    "register_stream_protocol",
    "stationary_formats",
    "stationary_layout_for",
    "stream_protocol_for",
    "streamable_formats",
]

#: Extraction kernel: ``fn(a, k_lo, k_hi) -> (i, k, v, group_sizes)`` where
#: the entry arrays are concatenated group-major in stream order and
#: ``group_sizes`` counts entries per group (empty groups allowed).
ExtractFn = Callable[
    [MatrixFormat, int, int],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(frozen=True)
class StreamProtocol:
    """One ACF's bus-streaming contract."""

    format: Format
    spec: StreamSpec
    tensor: bool = False
    extract: ExtractFn | None = None  # None: spec-only (analytical model)
    operand_cls: type | None = None  # required encoding class, if any
    row_grouped: bool = True  # entries arrive grouped by output row

    @property
    def streamable(self) -> bool:
        """Can the cycle simulator stream real payloads in this ACF?"""
        return self.extract is not None

    def extract_entries(
        self, a: MatrixFormat, k_lo: int, k_hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the registered extraction kernel, validating the operand."""
        if self.extract is None:
            raise SimulationError(
                f"{self.format} registers streaming slot costs only; the "
                f"cycle simulator cannot stream it (streamable: "
                f"{_names(streamable_formats(tensor=self.tensor))})"
            )
        if self.operand_cls is not None and not isinstance(a, self.operand_cls):
            raise SimulationError(
                f"{self.format} streaming requires a "
                f"{self.operand_cls.__name__} operand, got {type(a).__name__}"
            )
        return self.extract(a, int(k_lo), int(k_hi))


class _ProtocolRegistry:
    """Format -> protocol map with helpful unsupported-lookup errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._table: dict[Format, StreamProtocol] = {}

    def register(self, proto: StreamProtocol) -> StreamProtocol:
        self._table[proto.format] = proto
        return proto

    def get(self, fmt: Format) -> StreamProtocol:
        try:
            return self._table[fmt]
        except KeyError:
            raise SimulationError(
                f"{fmt} is not a registered {self.kind} streaming ACF "
                f"(registered: {_names(self._table)})"
            ) from None

    def formats(self) -> tuple[Format, ...]:
        return tuple(self._table)

    def __iter__(self) -> Iterator[StreamProtocol]:
        return iter(self._table.values())

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, fmt: Format) -> bool:
        return fmt in self._table


def _names(fmts) -> str:
    return ", ".join(f.value for f in fmts) or "none"


#: The process-wide registries the decorators populate.
MATRIX_STREAM_PROTOCOLS = _ProtocolRegistry("matrix")
TENSOR_STREAM_PROTOCOLS = _ProtocolRegistry("tensor")


def stream_protocol_for(fmt: Format, *, tensor: bool = False) -> StreamProtocol:
    """The registered protocol for an ACF (matrix by default)."""
    reg = TENSOR_STREAM_PROTOCOLS if tensor else MATRIX_STREAM_PROTOCOLS
    return reg.get(fmt)


def streamable_formats(*, tensor: bool = False) -> tuple[Format, ...]:
    """ACFs the cycle simulator can stream (extraction kernel registered)."""
    reg = TENSOR_STREAM_PROTOCOLS if tensor else MATRIX_STREAM_PROTOCOLS
    return tuple(p.format for p in reg if p.streamable)


def register_stream_protocol(
    fmt: Format,
    *,
    spec: StreamSpec,
    tensor: bool = False,
    operand_cls: type | None = None,
    row_grouped: bool = True,
) -> Callable[[ExtractFn], ExtractFn]:
    """Decorator: self-register an extraction kernel as a stream protocol."""

    def deco(fn: ExtractFn) -> ExtractFn:
        reg = TENSOR_STREAM_PROTOCOLS if tensor else MATRIX_STREAM_PROTOCOLS
        reg.register(
            StreamProtocol(
                format=fmt,
                spec=spec,
                tensor=tensor,
                extract=fn,
                operand_cls=operand_cls,
                row_grouped=row_grouped,
            )
        )
        return fn

    return deco


# --------------------------------------------------------------------------
# matrix streaming protocols (streamed operand A of the WS dataflow)
# --------------------------------------------------------------------------


@register_stream_protocol(
    Format.DENSE, spec=StreamSpec(entry_slots=1, shared_slots=1, grouped=True)
)
def _extract_dense(a: MatrixFormat, lo: int, hi: int):
    """Every (row, k) position streams, zeros included (Fig. 6a)."""
    dense = a.values if isinstance(a, DenseMatrix) else a.to_dense()
    m = dense.shape[0]
    width = hi - lo
    i = np.repeat(np.arange(m, dtype=np.int64), width)
    k = np.tile(np.arange(lo, hi, dtype=np.int64), m)
    v = dense[:, lo:hi].astype(np.float64).ravel()
    return i, k, v, np.full(m, width, dtype=np.int64)


@register_stream_protocol(
    Format.CSR,
    spec=StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
    operand_cls=CsrMatrix,
)
def _extract_csr(a: CsrMatrix, lo: int, hi: int):
    """Stored entries grouped per row, row-major (Fig. 6b)."""
    rows = np.repeat(np.arange(a.nrows, dtype=np.int64), a.row_lengths())
    sel = (a.col_ids >= lo) & (a.col_ids < hi)
    i = rows[sel]
    sizes = np.bincount(i, minlength=a.nrows).astype(np.int64)
    return i, a.col_ids[sel], a.values[sel], sizes


@register_stream_protocol(
    Format.CSC,
    spec=StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
    operand_cls=CscMatrix,
    row_grouped=False,  # column-major: output rows interleave
)
def _extract_csc(a: CscMatrix, lo: int, hi: int):
    """Stored entries grouped per column (the shared header is the k id)."""
    plo, phi = int(a.col_ptr[lo]), int(a.col_ptr[hi])
    sizes = a.col_lengths()[lo:hi].astype(np.int64)
    k = np.repeat(np.arange(lo, hi, dtype=np.int64), sizes)
    return a.row_ids[plo:phi], k, a.values[plo:phi], sizes


@register_stream_protocol(
    Format.COO,
    spec=StreamSpec(entry_slots=3, shared_slots=0, grouped=False),
    operand_cls=CooMatrix,
)
def _extract_coo(a: CooMatrix, lo: int, hi: int):
    """Row-major sorted coordinates, one ungrouped run (Fig. 6c)."""
    order = np.lexsort((a.col_ids, a.row_ids))
    i, k, v = a.row_ids[order], a.col_ids[order], a.values[order]
    sel = (k >= lo) & (k < hi)
    i, k, v = i[sel], k[sel], v[sel]
    return i, k, v, np.asarray([len(v)], dtype=np.int64)


@register_stream_protocol(
    Format.ELL,
    spec=StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
    operand_cls=EllMatrix,
)
def _extract_ell(a: EllMatrix, lo: int, hi: int):
    """Fixed-width rows: every row streams the tile's max row occupancy.

    ELL's hardware appeal is that every row has the same shape, so the
    streamer sends ``width`` (value, col id) slot pairs per row — padding
    slots included, carried as ``(0, PAD_K)`` and discarded by the PEs.
    Under a K-tile restriction the streamer re-packs to the tile-local
    width (the fixed-shape invariant holds per tile).
    """
    m = a.shape[0]
    real = (a.col_ids != PAD_COL) & (a.col_ids >= lo) & (a.col_ids < hi)
    counts = real.sum(axis=1).astype(np.int64)
    width = int(counts.max()) if m else 0
    if width == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0), np.zeros(m, dtype=np.int64)
    # Stable in-row compaction: real entries first, original order kept.
    order = np.argsort(~real, axis=1, kind="stable")[:, :width]
    k = np.take_along_axis(a.col_ids, order, axis=1)
    v = np.take_along_axis(a.values, order, axis=1)
    pad = np.arange(width, dtype=np.int64)[None, :] >= counts[:, None]
    k = np.where(pad, PAD_K, k)
    v = np.where(pad, 0.0, v)
    i = np.repeat(np.arange(m, dtype=np.int64), width)
    return i, k.ravel(), v.ravel(), np.full(m, width, dtype=np.int64)


# Matricized 3-D tensor ACFs: slot costs for the analytical model; the
# cycle simulator does not stream 3-D payloads (yet), so no extractors.
TENSOR_STREAM_PROTOCOLS.register(
    StreamProtocol(
        Format.DENSE,
        StreamSpec(entry_slots=1, shared_slots=1, grouped=True),
        tensor=True,
    )
)
TENSOR_STREAM_PROTOCOLS.register(
    StreamProtocol(
        Format.COO,
        StreamSpec(entry_slots=4, shared_slots=0, grouped=False),
        tensor=True,
    )
)
TENSOR_STREAM_PROTOCOLS.register(
    StreamProtocol(
        Format.CSF,
        StreamSpec(entry_slots=2, shared_slots=2, grouped=True),
        tensor=True,
    )
)


# --------------------------------------------------------------------------
# stationary layouts (pinned operand B of the WS dataflow)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StationaryOperand:
    """Array-resident view of one stationary operand.

    ``values`` materializes the stored payload densely ((K, N), zeros where
    nothing is stored); ``stored`` marks buffer-resident positions — for a
    Dense layout that is every position ("to maintain correct buffer
    indexing"), for CSC only the stored nonzeros.
    """

    values: np.ndarray  # (K, N) float64
    stored: np.ndarray  # (K, N) bool


@dataclass(frozen=True)
class StationaryLayout:
    """One ACF's PE-buffer contract."""

    format: Format
    entry_cost: int  # buffer entries per stored element
    matcher: str  # "direct" (indexable buffer) | "metadata" (CAM compare)
    prepare: Callable[[MatrixFormat], StationaryOperand]

    def entries_loaded(self, op: StationaryOperand) -> int:
        """Buffer entries written to pin the whole operand once."""
        return self.entry_cost * int(op.stored.sum())


class _LayoutRegistry:
    def __init__(self) -> None:
        self._table: dict[Format, StationaryLayout] = {}

    def register(self, layout: StationaryLayout) -> StationaryLayout:
        self._table[layout.format] = layout
        return layout

    def get(self, fmt: Format) -> StationaryLayout:
        try:
            return self._table[fmt]
        except KeyError:
            raise SimulationError(
                f"{fmt} is not a registered stationary ACF "
                f"(registered: {_names(self._table)})"
            ) from None

    def formats(self) -> tuple[Format, ...]:
        return tuple(self._table)

    def __contains__(self, fmt: Format) -> bool:
        return fmt in self._table


STATIONARY_LAYOUTS = _LayoutRegistry()


def stationary_layout_for(fmt: Format) -> StationaryLayout:
    """The registered PE-buffer layout for a stationary ACF."""
    return STATIONARY_LAYOUTS.get(fmt)


def stationary_formats() -> tuple[Format, ...]:
    """ACFs with a registered stationary buffer layout."""
    return STATIONARY_LAYOUTS.formats()


def register_stationary_layout(
    fmt: Format, *, entry_cost: int, matcher: str
) -> Callable:
    """Decorator: self-register a ``prepare`` hook as a stationary layout."""

    def deco(fn: Callable[[MatrixFormat], StationaryOperand]):
        STATIONARY_LAYOUTS.register(
            StationaryLayout(
                format=fmt, entry_cost=entry_cost, matcher=matcher, prepare=fn
            )
        )
        return fn

    return deco


@register_stationary_layout(Format.DENSE, entry_cost=1, matcher="direct")
def _prepare_dense(b: MatrixFormat) -> StationaryOperand:
    """Dense columns store every value; the buffer answers every index."""
    values = b.to_dense()
    return StationaryOperand(
        values=values, stored=np.ones(values.shape, dtype=bool)
    )


@register_stationary_layout(Format.CSC, entry_cost=2, matcher="metadata")
def _prepare_csc(b: MatrixFormat) -> StationaryOperand:
    """CSC columns store (value, row id) pairs; matching is by metadata."""
    csc = b if isinstance(b, CscMatrix) else CscMatrix.from_dense(b.to_dense())
    values = np.zeros(csc.shape, dtype=np.float64)
    stored = np.zeros(csc.shape, dtype=bool)
    cols = np.repeat(
        np.arange(csc.shape[1], dtype=np.int64), csc.col_lengths()
    )
    values[csc.row_ids, cols] = csc.values
    stored[csc.row_ids, cols] = True
    return StationaryOperand(values=values, stored=stored)
