"""Processing-element model with the Sec. IV flexible-ACF extensions.

Each PE holds one stationary column (Dense: all K values, zeros included;
CSC: value + row-id metadata pairs in the flexibly partitioned buffer),
matches incoming streamed elements against it — by direct index for Dense,
by metadata comparison for CSC — and accumulates one output register (Oreg)
that spills to the global output buffer whenever the output row (Rreg)
changes, exactly as in the Fig. 6 walkthrough.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.formats.registry import Format


class PE:
    """One processing element of the weight-stationary array."""

    def __init__(self, col_index: int) -> None:
        self.col_index = col_index
        self.stationary_format: Format | None = None
        self._dense_values: np.ndarray | None = None
        self._k_lo = 0
        self._csc_lookup: dict[int, float] | None = None
        self._meta_entries = 0
        # Output state registers (Rreg / Oreg of Fig. 6).
        self._current_row: int | None = None
        self._acc = 0.0
        # Statistics.
        self.issued_macs = 0
        self.matched_macs = 0
        self.compares = 0
        self.spills = 0
        self.contributions: list[tuple[int, float]] = []

    # ------------------------------------------------------------- loading --
    def load_dense(self, values: np.ndarray, k_lo: int) -> None:
        """Pin a dense column slice: buffer holds every value, zeros too."""
        self.stationary_format = Format.DENSE
        self._dense_values = np.asarray(values, dtype=np.float64)
        self._k_lo = k_lo
        self._csc_lookup = None
        self._meta_entries = 0

    def load_csc(self, row_ids: np.ndarray, values: np.ndarray) -> None:
        """Pin a CSC column slice: nonzeros plus row-id metadata."""
        self.stationary_format = Format.CSC
        self._csc_lookup = {
            int(r): float(v) for r, v in zip(row_ids, values)
        }
        self._meta_entries = len(self._csc_lookup)
        self._dense_values = None

    @property
    def footprint_entries(self) -> int:
        """Buffer entries consumed by the current stationary slice."""
        if self.stationary_format is Format.DENSE:
            assert self._dense_values is not None
            return len(self._dense_values)
        if self.stationary_format is Format.CSC:
            return 2 * self._meta_entries
        return 0

    # ------------------------------------------------------------ matching --
    def process(self, i: int, k: int, value: float) -> None:
        """Consume one streamed element (output row i, reduction index k).

        ``k < 0`` marks a padding slot of a fixed-width ACF (e.g. ELL): it
        occupied a bus slot but carries no element, so the PE discards it
        without issuing a MAC, comparing metadata or touching Rreg/Oreg.
        """
        if k < 0:
            return
        if self.stationary_format is Format.DENSE:
            assert self._dense_values is not None
            stationary = float(self._dense_values[k - self._k_lo])
            # Dense buffers answer every index: a MAC is always issued, even
            # on zero operands — that is the utilization loss of dense ACFs.
            self._accumulate(i, value * stationary)
            self.issued_macs += 1
            if value != 0.0 and stationary != 0.0:
                self.matched_macs += 1
        elif self.stationary_format is Format.CSC:
            assert self._csc_lookup is not None
            # The metadata comparators check the incoming k against every
            # stored row id in parallel (CAM-style).
            self.compares += self._meta_entries
            stationary = self._csc_lookup.get(int(k))
            if stationary is not None:
                self._accumulate(i, value * stationary)
                self.issued_macs += 1
                if value != 0.0:
                    self.matched_macs += 1
        else:
            raise SimulationError("PE has no stationary operand loaded")

    def _accumulate(self, i: int, product: float) -> None:
        if self._current_row is None:
            self._current_row = i
            self._acc = product
        elif i == self._current_row:
            self._acc += product
        else:
            self._spill()
            self._current_row = i
            self._acc = product

    def _spill(self) -> None:
        assert self._current_row is not None
        self.contributions.append((self._current_row, self._acc))
        self.spills += 1

    def flush(self) -> None:
        """End-of-round: write back the open output register, if any."""
        if self._current_row is not None:
            self._spill()
        self._current_row = None
        self._acc = 0.0
