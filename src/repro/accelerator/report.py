"""Result dataclasses shared by the simulator and the analytical model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CycleReport:
    """Cycle accounting for one kernel execution.

    The I/O pipeline (load stationary -> stream -> drain) and the MAC
    pipeline overlap; the run is bound by whichever is longer, mirroring the
    walkthrough where data streaming latency is the reported cost.
    """

    load_cycles: int
    stream_cycles: int
    drain_cycles: int
    compute_cycles: int
    rounds: int
    k_tiles: int
    issued_macs: int
    matched_macs: int
    output_spills: int

    @property
    def io_cycles(self) -> int:
        """Cycles on the data-movement path."""
        return self.load_cycles + self.stream_cycles + self.drain_cycles

    @property
    def total_cycles(self) -> int:
        """Overall latency: max of the overlapped I/O and compute pipelines."""
        return max(self.io_cycles, self.compute_cycles)

    @property
    def utilization(self) -> float:
        """Matched (useful) MACs / issued MACs (1.0 when nothing issued)."""
        return self.matched_macs / self.issued_macs if self.issued_macs else 1.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting (joules) for one kernel execution on the array."""

    noc_j: float
    load_j: float
    buffer_j: float
    compare_j: float
    mac_j: float
    output_j: float

    @property
    def total_j(self) -> float:
        """Sum of all on-chip components (DRAM is accounted by SAGE)."""
        return (
            self.noc_j
            + self.load_j
            + self.buffer_j
            + self.compare_j
            + self.mac_j
            + self.output_j
        )

    def __add__(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            self.noc_j + other.noc_j,
            self.load_j + other.load_j,
            self.buffer_j + other.buffer_j,
            self.compare_j + other.compare_j,
            self.mac_j + other.mac_j,
            self.output_j + other.output_j,
        )


@dataclass(frozen=True)
class RunReport:
    """Combined cycle + energy result of a kernel execution."""

    cycles: CycleReport
    energy: EnergyReport

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-cycles (the paper's Fig. 12 metric)."""
        return self.energy.total_j * self.cycles.total_cycles
