"""Weight-stationary sparse-accelerator model (paper Sec. IV).

Two coordinated implementations:

* :mod:`repro.accelerator.simulator` — a cycle-level functional simulator
  that actually packs bus beats, performs metadata matching in each PE and
  accumulates outputs.  It reproduces the Fig. 6 walkthrough cycle-exactly
  and its output equals ``A @ B``.
* :mod:`repro.accelerator.perf_model` — the closed-form analytical model
  SAGE uses (Sec. VI), exact when given concrete operands and
  expectation-based when given only summary statistics.

Both share the beat-packing rules of :mod:`repro.accelerator.stream` and the
tiling rules of :mod:`repro.accelerator.scheduler`, and are cross-checked in
the test suite.
"""

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf_model import (
    analytical_gemm,
    analytical_gemm_stats,
    analytical_mttkrp,
    analytical_spttm,
)
from repro.accelerator.protocols import (
    StationaryLayout,
    StreamProtocol,
    register_stationary_layout,
    register_stream_protocol,
    stationary_formats,
    stationary_layout_for,
    stream_protocol_for,
    streamable_formats,
)
from repro.accelerator.report import CycleReport, EnergyReport, RunReport
from repro.accelerator.simulator import WeightStationarySimulator
from repro.accelerator.stream import (
    BeatPlan,
    StreamSpec,
    build_beat_plan,
    stream_beats,
    stream_spec_for,
)

__all__ = [
    "AcceleratorConfig",
    "BeatPlan",
    "CycleReport",
    "EnergyReport",
    "RunReport",
    "StationaryLayout",
    "StreamProtocol",
    "StreamSpec",
    "build_beat_plan",
    "register_stationary_layout",
    "register_stream_protocol",
    "stationary_formats",
    "stationary_layout_for",
    "stream_beats",
    "stream_protocol_for",
    "stream_spec_for",
    "streamable_formats",
    "WeightStationarySimulator",
    "analytical_gemm",
    "analytical_gemm_stats",
    "analytical_spttm",
    "analytical_mttkrp",
]
