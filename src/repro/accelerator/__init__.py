"""Weight-stationary sparse-accelerator model (paper Sec. IV).

Two coordinated implementations:

* :mod:`repro.accelerator.simulator` — a cycle-level functional simulator
  that actually packs bus beats, performs metadata matching in each PE and
  accumulates outputs.  It reproduces the Fig. 6 walkthrough cycle-exactly
  and its output equals ``A @ B``.
* :mod:`repro.accelerator.perf_model` — the closed-form analytical model
  SAGE uses (Sec. VI), exact when given concrete operands and
  expectation-based when given only summary statistics.

Both share the beat-packing rules of :mod:`repro.accelerator.stream` and the
tiling rules of :mod:`repro.accelerator.scheduler`, and are cross-checked in
the test suite.
"""

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.perf_model import (
    analytical_gemm,
    analytical_gemm_stats,
    analytical_mttkrp,
    analytical_spttm,
)
from repro.accelerator.report import CycleReport, EnergyReport, RunReport
from repro.accelerator.simulator import WeightStationarySimulator
from repro.accelerator.stream import StreamSpec, stream_beats, stream_spec_for

__all__ = [
    "AcceleratorConfig",
    "CycleReport",
    "EnergyReport",
    "RunReport",
    "StreamSpec",
    "stream_beats",
    "stream_spec_for",
    "WeightStationarySimulator",
    "analytical_gemm",
    "analytical_gemm_stats",
    "analytical_spttm",
    "analytical_mttkrp",
]
