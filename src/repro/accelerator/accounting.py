"""Shared energy accounting for the simulator and the analytical model.

Both paths reduce a run to the same five event totals; charging them through
one function guarantees the cross-check in the test suite compares cycle
models, not bookkeeping differences.
"""

from __future__ import annotations

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.report import EnergyReport
from repro.hardware.energy import DEFAULT_ENERGY, EnergyModel


def energy_report(
    config: AcceleratorConfig,
    *,
    beat_cycles: int,
    entries_loaded: int,
    issued_macs: int,
    compares: int,
    spills: int,
    energy: EnergyModel = DEFAULT_ENERGY,
) -> EnergyReport:
    """Charge the five on-chip event totals of one kernel execution.

    Parameters mirror what both execution models count: bus-occupied cycles,
    stationary buffer entries written, MACs issued, metadata comparator
    evaluations, and output-register spills (read-modify-write against the
    global output buffer).
    """
    bits = config.dtype_bits
    return EnergyReport(
        noc_j=energy.noc_bits(beat_cycles * config.bus_bits),
        load_j=entries_loaded
        * bits
        * (energy.sram_global_bit + energy.noc_bit + energy.sram_pe_bit),
        buffer_j=issued_macs * bits * energy.sram_pe_bit,
        compare_j=compares * energy.compare,
        mac_j=energy.macs(issued_macs),
        output_j=spills * bits * (energy.reg_bit + 2.0 * energy.sram_global_bit),
    )
