"""Beat-level textual traces of the streaming bus — Fig. 6 as text.

Renders, cycle by cycle, the slots the distribution bus carries under a
given ACF: shared group headers (row/column ids, colored red in the paper's
figure), per-entry metadata, data values and idle slots.  Useful for
debugging streaming models and for teaching the walkthrough; the Fig. 6
operands render to exactly the 8 / 3 / 4 beats of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.stream import stream_beats, stream_spec_for
from repro.formats.base import MatrixFormat
from repro.formats.registry import Format


@dataclass(frozen=True)
class TraceBeat:
    """One rendered bus cycle."""

    index: int
    slots: tuple[str, ...]
    idle_slots: int
    cycles: int

    def render(self) -> str:
        """Single-line rendering: ``cycle 0 | r0 | v1.0 k0 | ...``."""
        pad = ["--"] * self.idle_slots
        body = " | ".join(list(self.slots) + pad)
        extra = f" (x{self.cycles} cycles)" if self.cycles > 1 else ""
        return f"cycle {self.index:>3} | {body}{extra}"


def trace_stream(
    a: MatrixFormat,
    acf: Format,
    bus_slots: int,
    k_range: tuple[int, int] | None = None,
    max_beats: int | None = None,
) -> list[TraceBeat]:
    """Produce the slot-level trace of streaming operand *a* under *acf*."""
    spec = stream_spec_for(acf)
    beats: list[TraceBeat] = []
    for index, beat in enumerate(stream_beats(a, acf, bus_slots, k_range)):
        if max_beats is not None and index >= max_beats:
            break
        slots: list[str] = []
        used = 0
        seen_groups: set[int] = set()
        for i, k, v in beat.entries:
            group = k if acf is Format.CSC else i
            if spec.shared_slots and group not in seen_groups:
                seen_groups.add(group)
                header = f"c{group}" if acf is Format.CSC else f"r{group}"
                slots.append(header)
                used += spec.shared_slots
            if k < 0:  # padding slot of a fixed-width ACF (e.g. ELL)
                slots.extend(["pad"] * spec.entry_slots)
                used += spec.entry_slots
            elif acf is Format.DENSE:
                slots.append(f"v{v:g}")
                used += 1
            elif acf in (Format.CSR, Format.ELL):
                slots.extend([f"v{v:g}", f"k{k}"])
                used += 2
            elif acf is Format.CSC:
                slots.extend([f"v{v:g}", f"i{i}"])
                used += 2
            else:  # COO
                slots.extend([f"v{v:g}", f"k{k}", f"i{i}"])
                used += 3
        idle = max(0, bus_slots - used) if beat.cycles == 1 else 0
        beats.append(
            TraceBeat(index=index, slots=tuple(slots), idle_slots=idle,
                      cycles=beat.cycles)
        )
    return beats


def render_stream_trace(
    a: MatrixFormat,
    acf: Format,
    bus_slots: int,
    k_range: tuple[int, int] | None = None,
    max_beats: int | None = 64,
) -> str:
    """Multi-line trace; header names the ACF and the bus width."""
    beats = trace_stream(a, acf, bus_slots, k_range, max_beats)
    total = sum(b.cycles for b in beats)
    lines = [
        f"{acf.value}(A) stream over a {bus_slots}-slot bus "
        f"({total} cycles{'+' if max_beats and len(beats) == max_beats else ''}):"
    ]
    lines.extend(b.render() for b in beats)
    return "\n".join(lines)
