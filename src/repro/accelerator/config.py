"""Accelerator configuration (paper Sec. VII-A).

The evaluation gives *all* accelerators the same fabric: "16384 total MAC
units (similar to Google TPU), 512B of buffer storage per PE, 512-bit input
bus per cycle, and 32-bit datatype."  With the paper's 8-wide vector PEs
(Fig. 7) that is 2048 PEs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigError


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of the weight-stationary accelerator template.

    Attributes
    ----------
    num_pes:
        Processing elements; each holds one stationary column at a time.
    vector_lanes:
        MAC lanes per PE (the paper's PEs have "a vector size of eight
        32-bit compute units").
    pe_buffer_bytes:
        Per-PE scratchpad, flexibly partitioned between stationary data and
        metadata (the Sec. IV extension).
    bus_bits:
        Distribution bus width per cycle; metadata and data elements consume
        identical slots (Sec. IV-B walkthrough assumption).
    dtype_bits:
        Element width for both data and metadata slots.
    clock_hz:
        Core clock (1 GHz, matching the MINT synthesis target).
    """

    num_pes: int = 2048
    vector_lanes: int = 8
    pe_buffer_bytes: int = 512
    bus_bits: int = 512
    dtype_bits: int = 32
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        for name in ("num_pes", "vector_lanes", "pe_buffer_bytes", "bus_bits"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.dtype_bits not in (8, 16, 32, 64):
            raise ConfigError(f"dtype_bits must be 8/16/32/64, got {self.dtype_bits}")
        if self.bus_bits < self.dtype_bits:
            raise ConfigError("bus must carry at least one element per cycle")
        if self.clock_hz <= 0:
            raise ConfigError("clock_hz must be positive")

    # ---------------------------------------------------------------- derived
    @property
    def bus_slots(self) -> int:
        """Bus elements per cycle (the walkthrough's W, e.g. 5 in Fig. 6)."""
        return self.bus_bits // self.dtype_bits

    @property
    def pe_buffer_entries(self) -> int:
        """Per-PE buffer capacity in (data-or-metadata) elements."""
        return self.pe_buffer_bytes * 8 // self.dtype_bits

    @property
    def total_macs(self) -> int:
        """Total MAC lanes across the array."""
        return self.num_pes * self.vector_lanes

    # ---------------------------------------------------------------- wire --
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe field dict (inverse of :meth:`from_dict`).

        Used to persist tuned configs in the artifact store and to ship
        hardware overrides over the serve wire schema; the round-trip is
        digest-stable (``config_digest(from_dict(to_dict(c))) ==
        config_digest(c)``) because integer fields stay integers.
        """
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AcceleratorConfig":
        """Rebuild a config from its :meth:`to_dict` form.

        Unknown keys are rejected so schema typos fail loudly, and numeric
        types are normalized (counts to ``int``, clock to ``float``) so a
        JSON round-trip cannot perturb the config digest.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown AcceleratorConfig field(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs: dict[str, Any] = {}
        for name in known & set(data):
            value = data[name]
            kwargs[name] = float(value) if name == "clock_hz" else int(value)
        return cls(**kwargs)

    # ------------------------------------------------------------- presets --
    @classmethod
    def paper_default(cls) -> "AcceleratorConfig":
        """Sec. VII-A system: 16384 MACs, 512 B/PE, 512-bit bus, 32-bit."""
        return cls()

    @classmethod
    def walkthrough(cls) -> "AcceleratorConfig":
        """Fig. 6 setup: 4 PEs, 5-element bus, 8-entry weight buffers."""
        return cls(
            num_pes=4,
            vector_lanes=8,
            pe_buffer_bytes=8 * 4,  # 8 x 32-bit entries
            bus_bits=5 * 32,  # 5 elements per cycle
            dtype_bits=32,
        )
