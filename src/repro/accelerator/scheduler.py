"""Mapping a GEMM onto the PE array: column rounds and reduction tiling.

The weight-stationary dataflow pins one column of the stationary operand B
(K x N) per PE.  Two mapping dimensions arise:

* **rounds** — with N columns and P PEs, ``ceil(N / P)`` batches of columns,
  each requiring the streamed operand A to be re-broadcast;
* **K-tiles** — when one column's stationary footprint (values + metadata)
  exceeds the PE buffer, the reduction dimension is split into uniform
  tiles, and A is streamed once per tile (restricted to that tile's
  k-range).

Footprints follow Fig. 6, but are no longer hard-coded per format: each
registered :class:`~repro.accelerator.protocols.StationaryLayout` declares
its buffer entries per stored element over its stored pattern — a Dense
column stores every position (zeros included, "to maintain correct buffer
indexing", 1 entry each), a CSC column stores ``2 * nnz`` entries (value +
row-id metadata, the flexible buffer partition of Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.protocols import (
    StationaryOperand,
    stationary_layout_for,
)
from repro.errors import SchedulingError
from repro.formats.base import MatrixFormat
from repro.formats.registry import Format
from repro.util.bits import ceil_div

#: Buffer entries consumed per stationary nonzero in CSC (value + row id).
CSC_ENTRY_COST = 2


@dataclass(frozen=True)
class Schedule:
    """The (k-tile x round) execution grid for one GEMM."""

    k_tiles: tuple[tuple[int, int], ...]
    rounds: tuple[tuple[int, int], ...]  # [col_lo, col_hi) per round

    @property
    def num_tiles(self) -> int:
        """Reduction-dimension tile count."""
        return len(self.k_tiles)

    @property
    def num_rounds(self) -> int:
        """Column-batch count."""
        return len(self.rounds)


def _uniform_tiles(k: int, num_tiles: int) -> tuple[tuple[int, int], ...]:
    """Split [0, k) into *num_tiles* near-equal contiguous ranges."""
    bounds = np.linspace(0, k, num_tiles + 1, dtype=np.int64)
    return tuple((int(bounds[t]), int(bounds[t + 1])) for t in range(num_tiles))


def _tile_footprints(
    csum: np.ndarray, entry_cost: int, tiles: tuple[tuple[int, int], ...]
) -> np.ndarray:
    """Max per-column buffer footprint within each tile, vectorized.

    ``csum`` is the running per-column count of stored positions — the
    (K, N) stored-position mask's ``cumsum(axis=0)``, computed once by the
    caller since it does not depend on the tiling; the footprint of a
    (tile, column) cell is ``entry_cost`` per stored position.  Returns an
    array of shape (num_tiles,) with the worst-column footprint.
    """
    cum = np.zeros((len(tiles) + 1, csum.shape[1]), dtype=np.int64)
    for t, (lo, hi) in enumerate(tiles):
        cum[t + 1] = csum[hi - 1] if hi > lo else (csum[lo - 1] if lo else 0)
    counts = np.diff(cum, axis=0)
    return entry_cost * counts.max(axis=1)


def compute_k_tiles(
    b: MatrixFormat | StationaryOperand,
    acf_b: Format,
    capacity_entries: int,
) -> tuple[tuple[int, int], ...]:
    """Minimal uniform K-tiling so every (column, tile) footprint fits.

    Accepts either the stationary operand object or an already-prepared
    :class:`~repro.accelerator.protocols.StationaryOperand` view.
    """
    layout = stationary_layout_for(acf_b)
    op = b if isinstance(b, StationaryOperand) else layout.prepare(b)
    k = op.stored.shape[0]
    per_col = op.stored.sum(axis=0)
    max_footprint = (
        layout.entry_cost * int(per_col.max()) if per_col.size else 0
    )
    if max_footprint == 0:
        return _uniform_tiles(k, 1)
    csum = op.stored.cumsum(axis=0, dtype=np.int64)
    num = max(1, ceil_div(max_footprint, capacity_entries))
    while num <= k:
        tiles = _uniform_tiles(k, num)
        if _tile_footprints(csum, layout.entry_cost, tiles).max() <= (
            capacity_entries
        ):
            return tiles
        num += 1
    raise SchedulingError(
        f"PE buffer of {capacity_entries} entries cannot hold even a "
        f"single-k {acf_b} column slice"
    )


def compute_rounds(n_cols: int, num_pes: int) -> tuple[tuple[int, int], ...]:
    """Column batches of at most *num_pes* columns."""
    return tuple(
        (lo, min(lo + num_pes, n_cols)) for lo in range(0, max(n_cols, 1), num_pes)
    )


def build_schedule(
    b: MatrixFormat, acf_b: Format, capacity_entries: int, num_pes: int
) -> Schedule:
    """Full (tiles x rounds) schedule for stationary operand *b*."""
    if capacity_entries < 1:
        raise SchedulingError("PE buffer must hold at least one entry")
    return Schedule(
        k_tiles=compute_k_tiles(b, acf_b, capacity_entries),
        rounds=compute_rounds(b.ncols, num_pes),
    )


def stationary_entries_loaded(
    b: MatrixFormat, acf_b: Format, tiles: tuple[tuple[int, int], ...]
) -> int:
    """Total buffer entries written while loading B across all tiles/rounds.

    Every column is loaded exactly once per tile that intersects it, so the
    total is independent of the round structure (and of the tiling: each
    stored position belongs to exactly one tile).
    """
    layout = stationary_layout_for(acf_b)
    return layout.entries_loaded(layout.prepare(b))
