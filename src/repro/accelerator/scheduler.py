"""Mapping a GEMM onto the PE array: column rounds and reduction tiling.

The weight-stationary dataflow pins one column of the stationary operand B
(K x N) per PE.  Two mapping dimensions arise:

* **rounds** — with N columns and P PEs, ``ceil(N / P)`` batches of columns,
  each requiring the streamed operand A to be re-broadcast;
* **K-tiles** — when one column's stationary footprint (values + metadata)
  exceeds the PE buffer, the reduction dimension is split into uniform
  tiles, and A is streamed once per tile (restricted to that tile's
  k-range).

Footprints follow Fig. 6, but are no longer hard-coded per format: each
registered :class:`~repro.accelerator.protocols.StationaryLayout` declares
its buffer entries per stored element over its stored pattern — a Dense
column stores every position (zeros included, "to maintain correct buffer
indexing", 1 entry each), a CSC column stores ``2 * nnz`` entries (value +
row-id metadata, the flexible buffer partition of Sec. IV).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.accelerator.protocols import (
    StationaryOperand,
    stationary_layout_for,
)
from repro.errors import SchedulingError
from repro.formats.base import MatrixFormat
from repro.formats.registry import Format
from repro.util.bits import ceil_div

#: Buffer entries consumed per stationary nonzero in CSC (value + row id).
CSC_ENTRY_COST = 2


@dataclass(frozen=True)
class Schedule:
    """The (k-tile x round) execution grid for one GEMM."""

    k_tiles: tuple[tuple[int, int], ...]
    rounds: tuple[tuple[int, int], ...]  # [col_lo, col_hi) per round

    @property
    def num_tiles(self) -> int:
        """Reduction-dimension tile count."""
        return len(self.k_tiles)

    @property
    def num_rounds(self) -> int:
        """Column-batch count."""
        return len(self.rounds)


def _uniform_tiles(k: int, num_tiles: int) -> tuple[tuple[int, int], ...]:
    """Split [0, k) into *num_tiles* near-equal contiguous ranges."""
    bounds = np.linspace(0, k, num_tiles + 1, dtype=np.int64)
    return tuple((int(bounds[t]), int(bounds[t + 1])) for t in range(num_tiles))


def _tile_footprints(
    csum: np.ndarray, entry_cost: int, tiles: tuple[tuple[int, int], ...]
) -> np.ndarray:
    """Max per-column buffer footprint within each tile, vectorized.

    ``csum`` is the running per-column count of stored positions — the
    (K, N) stored-position mask's ``cumsum(axis=0)``, computed once by the
    caller since it does not depend on the tiling; the footprint of a
    (tile, column) cell is ``entry_cost`` per stored position.  Returns an
    array of shape (num_tiles,) with the worst-column footprint.
    """
    cum = np.zeros((len(tiles) + 1, csum.shape[1]), dtype=np.int64)
    for t, (lo, hi) in enumerate(tiles):
        cum[t + 1] = csum[hi - 1] if hi > lo else (csum[lo - 1] if lo else 0)
    counts = np.diff(cum, axis=0)
    return entry_cost * counts.max(axis=1)


def compute_k_tiles(
    b: MatrixFormat | StationaryOperand,
    acf_b: Format,
    capacity_entries: int,
) -> tuple[tuple[int, int], ...]:
    """Minimal uniform K-tiling so every (column, tile) footprint fits.

    Accepts either the stationary operand object or an already-prepared
    :class:`~repro.accelerator.protocols.StationaryOperand` view.
    """
    layout = stationary_layout_for(acf_b)
    op = b if isinstance(b, StationaryOperand) else layout.prepare(b)
    k = op.stored.shape[0]
    per_col = op.stored.sum(axis=0)
    max_footprint = (
        layout.entry_cost * int(per_col.max()) if per_col.size else 0
    )
    if max_footprint == 0:
        return _uniform_tiles(k, 1)
    csum = op.stored.cumsum(axis=0, dtype=np.int64)
    num = max(1, ceil_div(max_footprint, capacity_entries))
    while num <= k:
        tiles = _uniform_tiles(k, num)
        if _tile_footprints(csum, layout.entry_cost, tiles).max() <= (
            capacity_entries
        ):
            return tiles
        num += 1
    raise SchedulingError(
        f"PE buffer of {capacity_entries} entries cannot hold even a "
        f"single-k {acf_b} column slice"
    )


#: Identity-keyed memo of (prepared stationary operand, K-tiling).
#:
#: Preparing a stationary operand and searching for its minimal K-tiling
#: are the dominant per-job cost for large operands (three O(K*N) cumsum /
#: reduction passes over the stored-position mask), yet both are pure
#: functions of the operand's buffers and the PE capacity.  Under the
#: zero-copy operand plane every job of a batch receives the *same*
#: read-only segment view of a shared stationary operand, so the work can
#: run once per process instead of once per job.  Pickled transports
#: materialize fresh buffers per job and always miss.
#:
#: Eligibility is deliberately narrow: every ndarray attribute of the
#: operand must be non-writeable.  A writeable buffer can be mutated
#: between calls, which would make a cached preparation stale — such
#: operands are re-prepared every time, exactly as before the memo.
#: Entries hold weak references to the keyed buffers and evict themselves
#: when the buffers are garbage collected, so ``id()`` reuse can never
#: resurrect a dead key; a small FIFO cap bounds resident copies.
_STATIONARY_MEMO: OrderedDict[tuple, tuple] = OrderedDict()
_STATIONARY_MEMO_MAX = 4


def _memo_key(
    b: MatrixFormat, acf_b: Format, capacity_entries: int
) -> tuple[tuple | None, tuple[np.ndarray, ...]]:
    """(key, backing arrays) for *b*, or (None, ()) when ineligible."""
    arrays = tuple(
        v for v in vars(b).values() if isinstance(v, np.ndarray)
    )
    if not arrays or any(arr.flags.writeable for arr in arrays):
        return None, ()
    layout = stationary_layout_for(acf_b)
    key = (
        acf_b,
        id(layout),
        capacity_entries,
        tuple(id(arr) for arr in arrays),
    )
    return key, arrays


def prepare_stationary(
    b: MatrixFormat | StationaryOperand,
    acf_b: Format,
    capacity_entries: int,
) -> tuple[StationaryOperand, tuple[tuple[int, int], ...]]:
    """Layout-prepare *b* and compute its K-tiling, memoized by identity.

    Returns ``(stationary, k_tiles)``.  Results are bit-identical to the
    uncached path — a hit merely returns the previously computed objects
    (frozen read-only before caching, so no engine can mutate shared
    state).  See :data:`_STATIONARY_MEMO` for the eligibility rules.
    """
    if isinstance(b, StationaryOperand):
        return b, compute_k_tiles(b, acf_b, capacity_entries)
    key, arrays = _memo_key(b, acf_b, capacity_entries)
    if key is not None:
        hit = _STATIONARY_MEMO.get(key)
        if hit is not None:
            _STATIONARY_MEMO.move_to_end(key)
            return hit[0], hit[1]
    stationary = stationary_layout_for(acf_b).prepare(b)
    tiles = compute_k_tiles(stationary, acf_b, capacity_entries)
    if key is not None:
        stationary.values.flags.writeable = False
        stationary.stored.flags.writeable = False
        refs = tuple(
            weakref.ref(
                arr, lambda _r, key=key: _STATIONARY_MEMO.pop(key, None)
            )
            for arr in arrays
        )
        _STATIONARY_MEMO[key] = (stationary, tiles, refs)
        while len(_STATIONARY_MEMO) > _STATIONARY_MEMO_MAX:
            _STATIONARY_MEMO.popitem(last=False)
    return stationary, tiles


def compute_rounds(n_cols: int, num_pes: int) -> tuple[tuple[int, int], ...]:
    """Column batches of at most *num_pes* columns."""
    return tuple(
        (lo, min(lo + num_pes, n_cols)) for lo in range(0, max(n_cols, 1), num_pes)
    )


def build_schedule(
    b: MatrixFormat, acf_b: Format, capacity_entries: int, num_pes: int
) -> Schedule:
    """Full (tiles x rounds) schedule for stationary operand *b*."""
    if capacity_entries < 1:
        raise SchedulingError("PE buffer must hold at least one entry")
    return Schedule(
        k_tiles=compute_k_tiles(b, acf_b, capacity_entries),
        rounds=compute_rounds(b.ncols, num_pes),
    )


def stationary_entries_loaded(
    b: MatrixFormat, acf_b: Format, tiles: tuple[tuple[int, int], ...]
) -> int:
    """Total buffer entries written while loading B across all tiles/rounds.

    Every column is loaded exactly once per tile that intersects it, so the
    total is independent of the round structure (and of the tiling: each
    stored position belongs to exactly one tile).
    """
    layout = stationary_layout_for(acf_b)
    return layout.entries_loaded(layout.prepare(b))
