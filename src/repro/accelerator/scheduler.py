"""Mapping a GEMM onto the PE array: column rounds and reduction tiling.

The weight-stationary dataflow pins one column of the stationary operand B
(K x N) per PE.  Two mapping dimensions arise:

* **rounds** — with N columns and P PEs, ``ceil(N / P)`` batches of columns,
  each requiring the streamed operand A to be re-broadcast;
* **K-tiles** — when one column's stationary footprint (values + metadata)
  exceeds the PE buffer, the reduction dimension is split into uniform
  tiles, and A is streamed once per tile (restricted to that tile's
  k-range).

Footprints follow Fig. 6: a Dense column occupies ``k_hi - k_lo`` buffer
entries (zeros included, "to maintain correct buffer indexing"); a CSC
column occupies ``2 * nnz`` entries (value + row-id metadata, the flexible
buffer partition of Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError, SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.csc import CscMatrix
from repro.formats.registry import Format
from repro.util.bits import ceil_div

#: Buffer entries consumed per stationary nonzero in CSC (value + row id).
CSC_ENTRY_COST = 2


@dataclass(frozen=True)
class Schedule:
    """The (k-tile x round) execution grid for one GEMM."""

    k_tiles: tuple[tuple[int, int], ...]
    rounds: tuple[tuple[int, int], ...]  # [col_lo, col_hi) per round

    @property
    def num_tiles(self) -> int:
        """Reduction-dimension tile count."""
        return len(self.k_tiles)

    @property
    def num_rounds(self) -> int:
        """Column-batch count."""
        return len(self.rounds)


def _uniform_tiles(k: int, num_tiles: int) -> tuple[tuple[int, int], ...]:
    """Split [0, k) into *num_tiles* near-equal contiguous ranges."""
    bounds = np.linspace(0, k, num_tiles + 1, dtype=np.int64)
    return tuple((int(bounds[t]), int(bounds[t + 1])) for t in range(num_tiles))


def _csc_tile_footprints(
    b: CscMatrix, tiles: tuple[tuple[int, int], ...]
) -> np.ndarray:
    """Max per-column CSC footprint within each tile, vectorized.

    Returns an array of shape (num_tiles,) with the worst-column footprint.
    """
    # 2-D histogram of nonzeros over (tile, column).
    edges = np.asarray([lo for lo, _ in tiles] + [tiles[-1][1]], dtype=np.int64)
    tile_of_entry = np.searchsorted(edges, b.row_ids, side="right") - 1
    cols = np.repeat(np.arange(b.ncols), b.col_lengths())
    counts = np.zeros((len(tiles), b.ncols), dtype=np.int64)
    np.add.at(counts, (tile_of_entry, cols), 1)
    return CSC_ENTRY_COST * counts.max(axis=1)


def compute_k_tiles(
    b: MatrixFormat, acf_b: Format, capacity_entries: int
) -> tuple[tuple[int, int], ...]:
    """Minimal uniform K-tiling so every (column, tile) footprint fits."""
    k = b.nrows
    if acf_b is Format.DENSE:
        num = ceil_div(k, capacity_entries)
        return _uniform_tiles(k, max(1, num))
    if acf_b is Format.CSC:
        if not isinstance(b, CscMatrix):
            raise SimulationError("CSC stationary operand must be a CscMatrix")
        max_footprint = (
            CSC_ENTRY_COST * int(b.col_lengths().max()) if b.stored else 0
        )
        num = max(1, ceil_div(max(1, max_footprint), capacity_entries))
        while num <= k:
            tiles = _uniform_tiles(k, num)
            if max_footprint == 0 or _csc_tile_footprints(b, tiles).max() <= (
                capacity_entries
            ):
                return tiles
            num += 1
        raise SchedulingError(
            f"PE buffer of {capacity_entries} entries cannot hold even a "
            f"single-k CSC column slice"
        )
    raise SimulationError(f"{acf_b} is not a supported stationary ACF")


def compute_rounds(n_cols: int, num_pes: int) -> tuple[tuple[int, int], ...]:
    """Column batches of at most *num_pes* columns."""
    return tuple(
        (lo, min(lo + num_pes, n_cols)) for lo in range(0, max(n_cols, 1), num_pes)
    )


def build_schedule(
    b: MatrixFormat, acf_b: Format, capacity_entries: int, num_pes: int
) -> Schedule:
    """Full (tiles x rounds) schedule for stationary operand *b*."""
    if capacity_entries < 1:
        raise SchedulingError("PE buffer must hold at least one entry")
    return Schedule(
        k_tiles=compute_k_tiles(b, acf_b, capacity_entries),
        rounds=compute_rounds(b.ncols, num_pes),
    )


def stationary_entries_loaded(
    b: MatrixFormat, acf_b: Format, tiles: tuple[tuple[int, int], ...]
) -> int:
    """Total buffer entries written while loading B across all tiles/rounds.

    Every column is loaded exactly once per tile that intersects it, so the
    total is independent of the round structure.
    """
    if acf_b is Format.DENSE:
        return b.ncols * b.nrows  # zeros stored too
    if acf_b is Format.CSC:
        if not isinstance(b, CscMatrix):
            raise SimulationError("CSC stationary operand must be a CscMatrix")
        return CSC_ENTRY_COST * b.stored
    raise SimulationError(f"{acf_b} is not a supported stationary ACF")
