"""Closed-form analytical performance model (SAGE's perf model, Sec. VI).

Two entry points per kernel family:

* ``analytical_gemm`` — *exact* mode: given the concrete operands, computes
  the identical cycle/energy totals the cycle simulator produces, but in
  closed form from nonzero histograms and boolean pattern products.  The
  test suite asserts equality with :class:`WeightStationarySimulator` over
  randomized cases for every row-grouped streamed ACF.
* ``analytical_gemm_stats`` — *statistics* mode: given only (M, K, N,
  nnz_A, nnz_B), uses the paper's uniform-random-placement assumption
  ("we assume a uniform random distribution of the dense values") to
  produce expected-value estimates.  This is what SAGE evaluates for the
  large Table III workloads.

3-D tensor kernels (SpTTM / MTTKRP) are handled by matricizing the tensor
and re-using the same streaming/tiling machinery with tensor stream specs.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.accounting import energy_report
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.protocols import stationary_layout_for
from repro.accelerator.report import CycleReport, RunReport
from repro.accelerator.scheduler import (
    CSC_ENTRY_COST,
    build_schedule,
)
from repro.accelerator.stream import (
    stream_cycle_count,
    stream_cycles_estimate,
    stream_spec_for,
)
from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.csc import CscMatrix
from repro.formats.registry import Format
from repro.util.bits import ceil_div

# --------------------------------------------------------------------------
# exact mode
# --------------------------------------------------------------------------


def _streamed_pattern(a: MatrixFormat) -> np.ndarray:
    """Boolean nonzero pattern of the streamed operand."""
    return a.to_dense() != 0.0


def _group_sizes_for_tile(
    pattern: np.ndarray, acf_a: Format, k_lo: int, k_hi: int, m: int
) -> np.ndarray:
    """Per-group streamed entry counts within one reduction tile."""
    tile = pattern[:, k_lo:k_hi]
    if acf_a is Format.DENSE:
        return np.full(m, k_hi - k_lo, dtype=np.int64)
    if acf_a in (Format.CSR, Format.COO):
        counts = tile.sum(axis=1).astype(np.int64)
        if acf_a is Format.COO:
            return np.asarray([int(counts.sum())], dtype=np.int64)
        return counts
    if acf_a is Format.CSC:
        return tile.sum(axis=0).astype(np.int64)
    raise SimulationError(
        f"{acf_a} has no exact analytical streaming model "
        f"(modelled: Dense, CSR, COO, CSC)"
    )


def _csc_stream_spill_runs(pa_tile: np.ndarray, pb_col: np.ndarray | None) -> int:
    """Row-run count of the column-major matched sequence (CSC streaming).

    ``pb_col`` restricts the matched reduction indices (CSC stationary); pass
    ``None`` for a dense stationary buffer (everything matches).
    """
    m, kt = pa_tile.shape
    seq: list[int] = []
    for k in range(kt):
        if pb_col is not None and not pb_col[k]:
            continue
        rows = np.flatnonzero(pa_tile[:, k])
        seq.extend(int(r) for r in rows)
    if not seq:
        return 0
    arr = np.asarray(seq)
    return 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))


def analytical_gemm(
    a: MatrixFormat,
    acf_a: Format,
    b: MatrixFormat,
    acf_b: Format,
    config: AcceleratorConfig | None = None,
) -> RunReport:
    """Exact closed-form model of ``O = A @ B`` on the WS accelerator."""
    cfg = config or AcceleratorConfig.paper_default()
    if a.ncols != b.nrows:
        raise SimulationError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    stationary_layout_for(acf_b)  # raises naming the registered layouts
    m, k, n = a.nrows, a.ncols, b.ncols
    spec = stream_spec_for(acf_a)
    pa = _streamed_pattern(a)
    pb = b.to_dense() != 0.0

    sched_operand: MatrixFormat = (
        b
        if (acf_b is Format.DENSE or isinstance(b, CscMatrix))
        else CscMatrix.from_dense(b.to_dense())
    )
    schedule = build_schedule(
        sched_operand, acf_b, cfg.pe_buffer_entries, cfg.num_pes
    )
    w = cfg.bus_slots
    rounds = schedule.rounds

    load_cycles = stream_cycles = 0
    issued = matched = compares = spills = 0
    entries_loaded_total = 0

    for k_lo, k_hi in schedule.k_tiles:
        pa_tile = pa[:, k_lo:k_hi]
        pb_tile = pb[k_lo:k_hi, :]
        a_col_counts = pa_tile.sum(axis=0).astype(np.int64)  # nnz per k
        b_row_counts = pb_tile.sum(axis=1).astype(np.int64)  # nnz per k
        nnz_a_tile = int(a_col_counts.sum())
        nnz_b_tile = int(pb_tile.sum())

        sizes = _group_sizes_for_tile(pa, acf_a, k_lo, k_hi, m)
        tile_stream = stream_cycle_count(sizes, spec, w)
        stream_cycles += tile_stream * len(rounds)

        streamed_entries = (
            m * (k_hi - k_lo) if acf_a is Format.DENSE else nnz_a_tile
        )
        # Per-k streamed-element counts (dense ACFs stream zeros too).
        streamed_per_k = (
            np.full(k_hi - k_lo, m, dtype=np.int64)
            if acf_a is Format.DENSE
            else a_col_counts
        )
        matched += int(np.dot(a_col_counts, b_row_counts))

        if acf_b is Format.DENSE:
            issued += streamed_entries * n
            # Spills: every streamed group that reaches a PE opens runs.
            if acf_a is Format.DENSE:
                spills += m * n
            elif acf_a in (Format.CSR, Format.COO):
                nonempty_rows = int((pa_tile.any(axis=1)).sum())
                spills += nonempty_rows * n
            else:  # CSC streaming: column-major row runs, same for every PE
                spills += _csc_stream_spill_runs(pa_tile, None) * n
        else:  # CSC stationary
            issued += int(np.dot(streamed_per_k, b_row_counts))
            compares += streamed_entries * nnz_b_tile
            if acf_a is Format.DENSE:
                nonempty_cols = int((pb_tile.any(axis=0)).sum())
                spills += m * nonempty_cols
            elif acf_a in (Format.CSR, Format.COO):
                # Rows with >= 1 match per PE: boolean pattern product.
                product = pa_tile @ pb_tile  # int matmul of booleans
                spills += int(np.count_nonzero(product))
            else:  # CSC streaming against CSC stationary: per-PE sequences
                for j in range(n):
                    spills += _csc_stream_spill_runs(pa_tile, pb_tile[:, j])

        # Loading: one ceil() per (tile, round), as the simulator charges.
        for col_lo, col_hi in rounds:
            if acf_b is Format.DENSE:
                entries = (col_hi - col_lo) * (k_hi - k_lo)
            else:
                entries = CSC_ENTRY_COST * int(
                    pb_tile[:, col_lo:col_hi].sum()
                )
            if entries:
                load_cycles += ceil_div(entries, w)
            entries_loaded_total += entries

    drain_cycles = ceil_div(spills, w) if spills else 0
    compute_cycles = ceil_div(issued, cfg.total_macs) if issued else 0
    cycles = CycleReport(
        load_cycles=load_cycles,
        stream_cycles=stream_cycles,
        drain_cycles=drain_cycles,
        compute_cycles=compute_cycles,
        rounds=schedule.num_rounds,
        k_tiles=schedule.num_tiles,
        issued_macs=issued,
        matched_macs=matched,
        output_spills=spills,
    )
    energy = energy_report(
        cfg,
        beat_cycles=stream_cycles,
        entries_loaded=entries_loaded_total,
        issued_macs=issued,
        compares=compares,
        spills=spills,
    )
    return RunReport(cycles=cycles, energy=energy)


# --------------------------------------------------------------------------
# statistics mode
# --------------------------------------------------------------------------


#: Occupancy-sideband compression of the flexible NoC: one bit per logical
#: position, packed 32 positions per bus slot.
_SIDEBAND_PACK = 32


def analytical_gemm_stats(
    m: int,
    k: int,
    n: int,
    nnz_a: int,
    nnz_b: int,
    acf_a: Format,
    acf_b: Format,
    config: AcceleratorConfig | None = None,
    *,
    flexible_noc: bool = True,
) -> RunReport:
    """Expected-value model from summary statistics (uniform placement).

    ``flexible_noc=True`` applies the Sec. VI assumption — "a flexible NoC
    to deliver non-zeros from the streaming tensor [5], [19]" — to Dense
    streamed ACFs: zeros are skipped at the source and position information
    travels as a 1-bit-per-position occupancy sideband (packed
    ``_SIDEBAND_PACK`` per slot).  This is what places the Dense/CSR ACF
    crossover near ~1.5% density, matching Table III's decisions (Dense ACF
    down to nd3k's 4.1%, CSR from cavity14's 1.1%).  The cycle-exact
    walkthrough mode (Fig. 6 and :func:`analytical_gemm`) streams zeros
    literally, as the microarchitecture walkthrough does.
    """
    cfg = config or AcceleratorConfig.paper_default()
    stationary_layout_for(acf_b)  # raises naming the registered layouts
    spec = stream_spec_for(acf_a)
    w = cfg.bus_slots
    cap = cfg.pe_buffer_entries
    d_a = nnz_a / (m * k) if m * k else 0.0
    d_b = nnz_b / (k * n) if k * n else 0.0

    # --- tiling & rounds ----------------------------------------------------
    if acf_b is Format.DENSE:
        k_tiles = max(1, ceil_div(k, cap))
        stationary_entries = float(k) * n
    else:
        mean_col = nnz_b / n if n else 0.0
        k_tiles = max(1, ceil_div(int(np.ceil(CSC_ENTRY_COST * mean_col)), cap))
        stationary_entries = float(CSC_ENTRY_COST) * nnz_b
    rounds = max(1, ceil_div(n, cfg.num_pes))
    k_tile = k / k_tiles

    # --- streaming ----------------------------------------------------------
    dense_streams_zeros = acf_a is Format.DENSE and not flexible_noc
    nnz_tile = nnz_a / k_tiles
    if acf_a is Format.DENSE and flexible_noc:
        # Nonzeros plus the packed occupancy sideband, row-grouped; the
        # sideband exists for every row, so every row is a nonempty group.
        per_tile = stream_cycles_estimate(
            nnz_tile + m * k_tile / _SIDEBAND_PACK, float(m), spec, w
        )
        streamed_entries = float(nnz_a)
    elif dense_streams_zeros:
        per_tile = stream_cycles_estimate(m * k_tile, float(m), spec, w)
        streamed_entries = float(m) * k
    elif acf_a is Format.CSR:
        nonempty_rows = m * (1.0 - (1.0 - d_a) ** k_tile)
        per_tile = stream_cycles_estimate(nnz_tile, nonempty_rows, spec, w)
        streamed_entries = float(nnz_a)
    elif acf_a is Format.COO:
        per_tile = stream_cycles_estimate(nnz_tile, 1.0, spec, w)
        streamed_entries = float(nnz_a)
    elif acf_a is Format.CSC:
        nonempty_cols = k_tile * (1.0 - (1.0 - d_a) ** m)
        per_tile = stream_cycles_estimate(nnz_tile, nonempty_cols, spec, w)
        streamed_entries = float(nnz_a)
    else:
        raise SimulationError(
            f"{acf_a} has no statistical streaming model "
            f"(modelled: Dense, CSR, COO, CSC)"
        )
    stream_cycles = float(per_tile) * k_tiles * rounds

    # --- MACs, compares, spills ----------------------------------------------
    useful = nnz_a * nnz_b / k if k else 0.0
    if acf_b is Format.DENSE:
        issued = streamed_entries * n
        compares = 0.0
        if dense_streams_zeros:
            spills = float(m) * n * k_tiles
        elif acf_a in (Format.DENSE, Format.CSR, Format.COO):
            nonempty_rows = m * (1.0 - (1.0 - d_a) ** k_tile)
            spills = nonempty_rows * n * k_tiles
        else:
            spills = streamed_entries * n  # CSC streaming thrashes Oreg
    else:
        if dense_streams_zeros:
            issued = float(m) * nnz_b
            nonempty_cols = n * (1.0 - (1.0 - d_b) ** k_tile)
            spills = float(m) * nonempty_cols * k_tiles
        else:
            issued = useful
            p_hit = 1.0 - (1.0 - d_a * d_b) ** k_tile
            spills = float(m) * n * p_hit * k_tiles
            if acf_a is Format.CSC:
                spills = max(spills, useful)  # run-per-match pessimism
        compares = streamed_entries * nnz_b

    # --- loading -------------------------------------------------------------
    load_cycles = stationary_entries / w + k_tiles * rounds * 0.5

    drain_cycles = spills / w
    compute_cycles = issued / cfg.total_macs
    cycles = CycleReport(
        load_cycles=int(np.ceil(load_cycles)),
        stream_cycles=int(np.ceil(stream_cycles)),
        drain_cycles=int(np.ceil(drain_cycles)),
        compute_cycles=int(np.ceil(compute_cycles)),
        rounds=rounds,
        k_tiles=k_tiles,
        issued_macs=int(np.ceil(issued)),
        matched_macs=int(np.ceil(useful)),
        output_spills=int(np.ceil(spills)),
    )
    energy = energy_report(
        cfg,
        beat_cycles=cycles.stream_cycles,
        entries_loaded=int(np.ceil(stationary_entries)),
        issued_macs=cycles.issued_macs,
        compares=int(np.ceil(compares)),
        spills=cycles.output_spills,
    )
    return RunReport(cycles=cycles, energy=energy)


# --------------------------------------------------------------------------
# 3-D tensor kernels (matricized)
# --------------------------------------------------------------------------


def analytical_spttm(
    shape: tuple[int, int, int],
    nnz: int,
    rank: int,
    acf_t: Format,
    config: AcceleratorConfig | None = None,
) -> RunReport:
    """SpTTM ``Y[i,j,r] = sum_k X[i,j,k] U[k,r]`` with a dense factor.

    The tensor is streamed matricized ((I*J) x K); each PE pins one dense
    factor column (rank-parallel mapping), so stationary footprint is K.
    Output rows are the (i, j) fibers.
    """
    return _tensor_kernel(shape, nnz, rank, acf_t, config, macs_per_nnz=1,
                          gather_b=False)


def analytical_mttkrp(
    shape: tuple[int, int, int],
    nnz: int,
    rank: int,
    acf_t: Format,
    config: AcceleratorConfig | None = None,
) -> RunReport:
    """MTTKRP ``M[i,r] = sum_{j,k} X[i,j,k] B[j,r] C[k,r]``.

    Rank-parallel: PE r pins C[:, r] (footprint K, like SpTTM); the B[j, r]
    coefficients are broadcast per fiber over the bus (a row of B serves
    every PE), charged as gather traffic.  Every nonzero issues two MACs
    (multiply by C, then by B).  Output rows are the roots (i).
    """
    return _tensor_kernel(shape, nnz, rank, acf_t, config, macs_per_nnz=2,
                          gather_b=True)


def _tensor_kernel(
    shape: tuple[int, int, int],
    nnz: int,
    rank: int,
    acf_t: Format,
    config: AcceleratorConfig | None,
    *,
    macs_per_nnz: int,
    gather_b: bool,
) -> RunReport:
    cfg = config or AcceleratorConfig.paper_default()
    i_dim, j_dim, k_dim = (int(s) for s in shape)
    size = i_dim * j_dim * k_dim
    density = nnz / size if size else 0.0
    spec = stream_spec_for(acf_t, tensor=True)
    w = cfg.bus_slots
    cap = cfg.pe_buffer_entries

    k_tiles = max(1, ceil_div(k_dim, cap))
    k_tile = k_dim / k_tiles
    rounds = max(1, ceil_div(rank, cfg.num_pes))

    n_fibers = i_dim * j_dim * (1.0 - (1.0 - density) ** k_dim)
    # Fibers occupied within one k-tile (what CSF streaming groups by).
    fibers_per_tile = i_dim * j_dim * (1.0 - (1.0 - density) ** k_tile)
    if acf_t is Format.DENSE:
        # Flexible NoC (Sec. VI): nonzeros + packed occupancy sideband.
        per_stream = stream_cycles_estimate(
            (nnz + size / _SIDEBAND_PACK) / k_tiles,
            float(i_dim * j_dim),
            spec,
            w,
        )
        streamed_entries = float(nnz)
    elif acf_t is Format.COO:
        per_stream = stream_cycles_estimate(nnz / k_tiles, 1.0, spec, w)
        streamed_entries = float(nnz)
    elif acf_t is Format.CSF:
        per_stream = stream_cycles_estimate(
            nnz / k_tiles, fibers_per_tile, spec, w
        )
        streamed_entries = float(nnz)
    else:
        raise SimulationError(
            f"{acf_t} has no tensor streaming model "
            f"(modelled: Dense, COO, CSF)"
        )
    stream_cycles = float(per_stream) * k_tiles * rounds

    issued = float(macs_per_nnz) * nnz * rank
    useful = float(macs_per_nnz) * nnz * rank
    spills = (
        i_dim * (1.0 - (1.0 - density) ** (j_dim * k_dim))
        if gather_b
        else n_fibers
    ) * rank * k_tiles
    stationary_entries = float(k_dim) * min(rank, cfg.num_pes) * rounds
    if gather_b:
        # One B row (rank wide) broadcast per occupied fiber per tile.
        stationary_entries += fibers_per_tile * k_tiles * min(
            rank, cfg.num_pes
        ) * rounds

    cycles = CycleReport(
        load_cycles=int(np.ceil(stationary_entries / w)),
        stream_cycles=int(np.ceil(stream_cycles)),
        drain_cycles=int(np.ceil(spills / w)),
        compute_cycles=int(np.ceil(issued / cfg.total_macs)),
        rounds=rounds,
        k_tiles=k_tiles,
        issued_macs=int(np.ceil(issued)),
        matched_macs=int(np.ceil(useful)),
        output_spills=int(np.ceil(spills)),
    )
    energy = energy_report(
        cfg,
        beat_cycles=cycles.stream_cycles,
        entries_loaded=int(np.ceil(stationary_entries)),
        issued_macs=cycles.issued_macs,
        compares=0,
        spills=cycles.output_spills,
    )
    return RunReport(cycles=cycles, energy=energy)
