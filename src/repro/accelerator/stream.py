"""Bus beat packing per Algorithm Compression Format.

Sec. IV-B's walkthrough fixes the streaming rules this module implements.
The bus carries ``W`` element slots per cycle (metadata and data slots are
interchangeable, selected by the Sec. IV flag extension).  Each ACF defines
the slot cost of one streamed entry and of a per-group shared header:

* **Dense** — 1 slot per value (zeros included, Fig. 6a) + 1 shared row id
  per row per beat;
* **CSR**   — 2 slots per (value, col id) + 1 shared row id per row per
  beat; Fig. 6b: "if the row id is not common among both data, it must be
  broken up" — i.e. a beat may carry several rows only if every row's
  header fits, which at W=5 it cannot;
* **CSC**   — CSR mirrored column-wise;
* **COO**   — 3 slots per (value, col id, row id), no shared header;
* **CSF**   — (matricized 3-D tensors) 2 shared fiber coordinates + 2 slots
  per (value, leaf id);
* **COO3**  — 4 slots per (value, x, y, z).

Packing is greedy and order-preserving: entries fill the current beat as
long as their slots (plus their group's header, if the group is not yet
present in the beat) fit; otherwise a new beat starts.  A group spanning
several beats pays its header in each.  On the Fig. 6 operands (W=5) this
yields exactly 8 / 3 / 4 cycles for Dense / CSR / COO, which the test
suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.coo import CooMatrix
from repro.formats.csc import CscMatrix
from repro.formats.csr import CsrMatrix
from repro.formats.dense import DenseMatrix
from repro.formats.registry import Format
from repro.util.bits import ceil_div


@dataclass(frozen=True)
class StreamSpec:
    """Slot cost of one streamed entry and of its per-group shared header."""

    entry_slots: int
    shared_slots: int
    grouped: bool

    def entries_per_beat(self, bus_slots: int) -> int:
        """Entries fitting an empty beat (0 = one entry spans many beats)."""
        return max(0, (bus_slots - self.shared_slots) // self.entry_slots)

    def span_cycles(self, bus_slots: int) -> int:
        """Beats one over-wide entry occupies."""
        return ceil_div(self.entry_slots + self.shared_slots, bus_slots)


#: Matrix streaming specs (streamed operand A of the WS dataflow).
_MATRIX_SPECS: dict[Format, StreamSpec] = {
    Format.DENSE: StreamSpec(entry_slots=1, shared_slots=1, grouped=True),
    Format.CSR: StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
    Format.CSC: StreamSpec(entry_slots=2, shared_slots=1, grouped=True),
    Format.COO: StreamSpec(entry_slots=3, shared_slots=0, grouped=False),
}

#: Matricized 3-D tensor streaming specs.
_TENSOR_SPECS: dict[Format, StreamSpec] = {
    Format.DENSE: StreamSpec(entry_slots=1, shared_slots=1, grouped=True),
    Format.COO: StreamSpec(entry_slots=4, shared_slots=0, grouped=False),
    Format.CSF: StreamSpec(entry_slots=2, shared_slots=2, grouped=True),
}


def stream_spec_for(fmt: Format, *, tensor: bool = False) -> StreamSpec:
    """Return the streaming spec for an ACF (matrix by default)."""
    table = _TENSOR_SPECS if tensor else _MATRIX_SPECS
    try:
        return table[fmt]
    except KeyError:
        raise SimulationError(
            f"{fmt} is not a supported streaming ACF "
            f"({'tensor' if tensor else 'matrix'})"
        ) from None


# --------------------------------------------------------------------------
# greedy packer (single source of truth for beat boundaries)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Span:
    """A contiguous run of one group's entries placed in one beat."""

    group_index: int
    lo: int
    hi: int


def _pack_spans(
    sizes: Sequence[int], spec: StreamSpec, bus_slots: int
) -> Iterator[tuple[list[_Span], int]]:
    """Greedily pack per-group entry counts into beats.

    Yields (spans, cycles) per beat; ``cycles`` exceeds 1 only in the
    degenerate case where a single entry plus header is wider than the bus.
    """
    es, ss = spec.entry_slots, spec.shared_slots
    if es + ss > bus_slots:
        span_cycles = spec.span_cycles(bus_slots)
        for gi, n in enumerate(sizes):
            for t in range(int(n)):
                yield [_Span(gi, t, t + 1)], span_cycles
        return
    current: list[_Span] = []
    free = bus_slots
    for gi, n in enumerate(sizes):
        placed = 0
        n = int(n)
        while placed < n:
            if free >= ss + es:
                take = min(n - placed, (free - ss) // es)
                current.append(_Span(gi, placed, placed + take))
                free -= ss + take * es
                placed += take
            if placed < n:
                yield current, 1
                current = []
                free = bus_slots
    if current:
        yield current, 1


def stream_cycle_count(
    group_sizes: Sequence[int] | np.ndarray,
    spec: StreamSpec,
    bus_slots: int,
) -> int:
    """Beat count for the given per-group entry counts.

    Runs the same greedy packer the simulator streams with, so the
    analytical exact mode and the simulator agree beat-for-beat.  For
    ungrouped specs (COO) pass a single total as ``[total]``.
    """
    sizes = np.asarray(group_sizes, dtype=np.int64)
    sizes = sizes[sizes > 0]
    return sum(cycles for _spans, cycles in _pack_spans(sizes, spec, bus_slots))


def stream_cycles_estimate(
    total_entries: float,
    nonempty_groups: float,
    spec: StreamSpec,
    bus_slots: int,
) -> float:
    """Closed-form expectation of the greedy packer's beat count.

    Slots consumed are ``entry_slots * entries`` plus one header per
    (group, beat) incidence: at least one per nonempty group, and at least
    one per beat when groups are long.  Hence the max of the two regimes:

    * long groups: every beat carries one header ->
      ``entries * entry_slots / (W - shared)``;
    * short groups: one header each ->
      ``(entries * entry_slots + groups * shared) / W``.
    """
    es, ss = spec.entry_slots, spec.shared_slots
    if es + ss > bus_slots:
        return total_entries * spec.span_cycles(bus_slots)
    slots = total_entries * es
    long_regime = slots / max(1, bus_slots - ss)
    short_regime = (slots + nonempty_groups * ss) / bus_slots
    return max(long_regime, short_regime)


# --------------------------------------------------------------------------
# payload streaming for the simulator
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Beat:
    """One bus cycle's worth of streamed entries.

    ``entries`` holds (i, k, value) triples: output-row coordinate,
    reduction coordinate and data value of each element on the bus.
    ``cycles`` > 1 models a single wide entry spanning several bus beats.
    """

    entries: tuple[tuple[int, int, float], ...]
    cycles: int = 1


def _matrix_groups(
    a: MatrixFormat, fmt: Format, k_range: tuple[int, int]
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per-group (i, k, value) arrays for the streamed operand, in order."""
    lo, hi = k_range
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if fmt is Format.DENSE:
        dense = a.values if isinstance(a, DenseMatrix) else a.to_dense()
        ks = np.arange(lo, hi, dtype=np.int64)
        for i in range(dense.shape[0]):
            groups.append(
                (np.full(hi - lo, i, dtype=np.int64), ks, dense[i, lo:hi])
            )
    elif fmt is Format.CSR:
        if not isinstance(a, CsrMatrix):
            raise SimulationError("CSR streaming requires a CsrMatrix operand")
        for i in range(a.nrows):
            cols, vals = a.row_slice(i)
            sel = (cols >= lo) & (cols < hi)
            if sel.any():
                count = int(sel.sum())
                groups.append(
                    (np.full(count, i, dtype=np.int64), cols[sel], vals[sel])
                )
    elif fmt is Format.CSC:
        if not isinstance(a, CscMatrix):
            raise SimulationError("CSC streaming requires a CscMatrix operand")
        for k in range(lo, hi):
            rows, vals = a.col_slice(k)
            if len(rows):
                groups.append(
                    (rows, np.full(len(rows), k, dtype=np.int64), vals)
                )
    elif fmt is Format.COO:
        if not isinstance(a, CooMatrix):
            raise SimulationError("COO streaming requires a CooMatrix operand")
        coo = a.sorted_row_major()
        sel = (coo.col_ids >= lo) & (coo.col_ids < hi)
        if sel.any():
            groups.append((coo.row_ids[sel], coo.col_ids[sel], coo.values[sel]))
    else:  # pragma: no cover - guarded by stream_spec_for
        raise SimulationError(f"unsupported streaming ACF {fmt}")
    return groups


def stream_beats(
    a: MatrixFormat,
    fmt: Format,
    bus_slots: int,
    k_range: tuple[int, int] | None = None,
) -> Iterator[Beat]:
    """Pack the streamed operand *a* (in ACF *fmt*) into bus beats.

    ``k_range`` restricts streaming to a reduction-dimension tile, as the
    scheduler requires when the stationary operand is K-tiled.
    """
    spec = stream_spec_for(fmt)
    if k_range is None:
        k_range = (0, a.ncols)
    groups = _matrix_groups(a, fmt, k_range)
    sizes = [len(g[2]) for g in groups]
    for spans, cycles in _pack_spans(sizes, spec, bus_slots):
        entries: list[tuple[int, int, float]] = []
        for span in spans:
            i_arr, k_arr, v_arr = groups[span.group_index]
            for t in range(span.lo, span.hi):
                entries.append((int(i_arr[t]), int(k_arr[t]), float(v_arr[t])))
        yield Beat(entries=tuple(entries), cycles=cycles)
