"""Bus beat packing per Algorithm Compression Format.

Sec. IV-B's walkthrough fixes the streaming rules this module implements.
The bus carries ``W`` element slots per cycle (metadata and data slots are
interchangeable, selected by the Sec. IV flag extension).  Each ACF defines
the slot cost of one streamed entry and of a per-group shared header:

* **Dense** — 1 slot per value (zeros included, Fig. 6a) + 1 shared row id
  per row per beat;
* **CSR**   — 2 slots per (value, col id) + 1 shared row id per row per
  beat; Fig. 6b: "if the row id is not common among both data, it must be
  broken up" — i.e. a beat may carry several rows only if every row's
  header fits, which at W=5 it cannot;
* **CSC**   — CSR mirrored column-wise;
* **COO**   — 3 slots per (value, col id, row id), no shared header;
* **ELL**   — 2 slots per (value, col id) like CSR, but every row streams
  its full fixed width, padding slots included (the ELL trade-off);
* **CSF**   — (matricized 3-D tensors) 2 shared fiber coordinates + 2 slots
  per (value, leaf id);
* **COO3**  — 4 slots per (value, x, y, z).

Which ACFs stream, with what slot costs and which entry extraction, is no
longer hard-coded here: it lives in the **streaming-protocol registry**
(:mod:`repro.accelerator.protocols`), mirroring the conversion-graph
registry of :mod:`repro.mint.graph`.  This module owns the format-agnostic
machinery: the :class:`StreamSpec` slot algebra, the **vectorized packer**
producing array-resident :class:`BeatPlan` objects (a single O(#groups)
integer scan for beat boundaries; all per-entry work is numpy prefix-sum /
segment ops — no per-entry Python loops), and the closed-form estimate.

Packing is greedy and order-preserving: entries fill the current beat as
long as their slots (plus their group's header, if the group is not yet
present in the beat) fit; otherwise a new beat starts.  A group spanning
several beats pays its header in each.  On the Fig. 6 operands (W=5) this
yields exactly 8 / 3 / 4 cycles for Dense / CSR / COO, which the test
suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.formats.base import MatrixFormat
from repro.formats.registry import Format
from repro.util.bits import ceil_div

#: Reduction-coordinate sentinel for padding slots (fixed-width ACFs such
#: as ELL stream them; PEs discard them without issuing a MAC).
PAD_K = -1


@dataclass(frozen=True)
class StreamSpec:
    """Slot cost of one streamed entry and of its per-group shared header."""

    entry_slots: int
    shared_slots: int
    grouped: bool

    def entries_per_beat(self, bus_slots: int) -> int:
        """Entries fitting an empty beat (0 = one entry spans many beats)."""
        return max(0, (bus_slots - self.shared_slots) // self.entry_slots)

    def span_cycles(self, bus_slots: int) -> int:
        """Beats one over-wide entry occupies."""
        return ceil_div(self.entry_slots + self.shared_slots, bus_slots)


def stream_spec_for(fmt: Format, *, tensor: bool = False) -> StreamSpec:
    """Return the streaming spec for an ACF (matrix by default).

    Delegates to the streaming-protocol registry; unsupported formats raise
    :class:`~repro.errors.SimulationError` naming the registered ACFs.
    """
    from repro.accelerator.protocols import stream_protocol_for

    return stream_protocol_for(fmt, tensor=tensor).spec


# --------------------------------------------------------------------------
# vectorized greedy packer (single source of truth for beat boundaries)
# --------------------------------------------------------------------------


def _pack_layout(
    sizes: Sequence[int], es: int, ss: int, bus_slots: int
) -> tuple[list[int], list[int], int, int]:
    """Greedy per-group packing layout: ``(first_beat, first_take, epb, beats)``.

    The only sequential state the greedy packer carries between groups is
    one integer (the open beat's free slots), so this scan is O(#groups)
    in plain Python ints; everything per-entry is done vectorized on top
    of the returned layout.  ``first_take`` is how many of a group's
    entries land in its first beat; all continuation beats carry ``epb``
    entries except the last.
    """
    epb = (bus_slots - ss) // es
    first_beat: list[int] = []
    first_take: list[int] = []
    beat = 0
    free = bus_slots
    any_entries = False
    for n in sizes:
        n = int(n)
        if free < ss + es:
            beat += 1
            free = bus_slots
        take = (free - ss) // es
        if take > n:
            take = n
        first_beat.append(beat)
        first_take.append(take)
        free -= ss + take * es
        rem = n - take
        if rem:
            more = -(-rem // epb)  # ceil
            last = rem - (more - 1) * epb
            beat += more
            free = bus_slots - ss - last * es
        any_entries = True
    return first_beat, first_take, epb, (beat + 1 if any_entries else 0)


def _entry_beats(
    sizes: np.ndarray, first_beat: np.ndarray, first_take: np.ndarray, epb: int
) -> np.ndarray:
    """Per-entry beat index from the per-group layout (pure segment ops)."""
    total = int(sizes.sum())
    group_start = np.zeros(len(sizes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=group_start[1:])
    t_in_group = np.arange(total, dtype=np.int64) - np.repeat(group_start, sizes)
    b0 = np.repeat(first_beat, sizes)
    over = t_in_group - np.repeat(first_take, sizes)
    return np.where(over < 0, b0, b0 + 1 + over // max(1, epb))


@dataclass(frozen=True)
class Beat:
    """One bus cycle's worth of streamed entries.

    ``entries`` holds (i, k, value) triples: output-row coordinate,
    reduction coordinate and data value of each element on the bus
    (``k == PAD_K`` marks a padding slot of a fixed-width ACF).
    ``cycles`` > 1 models a single wide entry spanning several bus beats.
    """

    entries: tuple[tuple[int, int, float], ...]
    cycles: int = 1


@dataclass(frozen=True)
class BeatPlan:
    """Array-resident beat packing of one streamed operand (or k-tile).

    The plan is what the vectorized simulator consumes: parallel entry
    arrays in stream order plus each entry's owning beat — no Python-object
    beats on the hot path.  ``k == PAD_K`` entries are padding slots: they
    occupy bus slots (and therefore cycles) but are discarded by the PEs.
    """

    i: np.ndarray  # int64 output-row coordinate per entry
    k: np.ndarray  # int64 reduction coordinate per entry (PAD_K = padding)
    v: np.ndarray  # float64 data value per entry
    entry_beat: np.ndarray  # int64 owning beat per entry (non-decreasing)
    beat_cycles: np.ndarray  # int64 bus cycles per beat
    spec: StreamSpec
    bus_slots: int

    @property
    def num_entries(self) -> int:
        """Streamed entries, padding slots included."""
        return len(self.v)

    @property
    def num_beats(self) -> int:
        """Packed beat count."""
        return len(self.beat_cycles)

    @property
    def total_cycles(self) -> int:
        """Bus cycles to stream the whole plan."""
        return int(self.beat_cycles.sum())

    def iter_beats(self) -> Iterator[Beat]:
        """Materialize :class:`Beat` objects (traces, tests, teaching)."""
        bounds = np.searchsorted(
            self.entry_beat, np.arange(self.num_beats + 1)
        )
        for b in range(self.num_beats):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            entries = tuple(
                (int(self.i[t]), int(self.k[t]), float(self.v[t]))
                for t in range(lo, hi)
            )
            yield Beat(entries=entries, cycles=int(self.beat_cycles[b]))


def pack_entries(
    i: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    group_sizes: np.ndarray,
    spec: StreamSpec,
    bus_slots: int,
) -> BeatPlan:
    """Pack entry arrays (concatenated group-major) into a :class:`BeatPlan`.

    ``group_sizes`` gives per-group entry counts in stream order; empty
    groups contribute no entries and no header.
    """
    i = np.asarray(i, dtype=np.int64)
    k = np.asarray(k, dtype=np.int64)
    v = np.asarray(v, dtype=np.float64)
    sizes = np.asarray(group_sizes, dtype=np.int64)
    sizes = sizes[sizes > 0]
    total = int(sizes.sum())
    if total != len(v):
        raise SimulationError(
            f"group sizes sum to {total} but {len(v)} entries were extracted"
        )
    es, ss = spec.entry_slots, spec.shared_slots
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return BeatPlan(i, k, v, empty, empty.copy(), spec, bus_slots)
    if es + ss > bus_slots:
        # Degenerate wide-entry case: every entry is its own multi-cycle beat.
        span = spec.span_cycles(bus_slots)
        return BeatPlan(
            i, k, v,
            entry_beat=np.arange(total, dtype=np.int64),
            beat_cycles=np.full(total, span, dtype=np.int64),
            spec=spec,
            bus_slots=bus_slots,
        )
    first_beat, first_take, epb, beats = _pack_layout(
        sizes.tolist(), es, ss, bus_slots
    )
    entry_beat = _entry_beats(
        sizes,
        np.asarray(first_beat, dtype=np.int64),
        np.asarray(first_take, dtype=np.int64),
        epb,
    )
    return BeatPlan(
        i, k, v,
        entry_beat=entry_beat,
        beat_cycles=np.ones(beats, dtype=np.int64),
        spec=spec,
        bus_slots=bus_slots,
    )


def stream_cycle_count(
    group_sizes: Sequence[int] | np.ndarray,
    spec: StreamSpec,
    bus_slots: int,
) -> int:
    """Beat count for the given per-group entry counts.

    Runs the same greedy layout the simulator streams with, so the
    analytical exact mode and the simulator agree beat-for-beat.  For
    ungrouped specs (COO) pass a single total as ``[total]``.
    """
    sizes = np.asarray(group_sizes, dtype=np.int64)
    sizes = sizes[sizes > 0]
    if not len(sizes):
        return 0
    es, ss = spec.entry_slots, spec.shared_slots
    if es + ss > bus_slots:
        return int(sizes.sum()) * spec.span_cycles(bus_slots)
    *_rest, beats = _pack_layout(sizes.tolist(), es, ss, bus_slots)
    return beats


def stream_cycles_estimate(
    total_entries: float,
    nonempty_groups: float,
    spec: StreamSpec,
    bus_slots: int,
) -> float:
    """Closed-form expectation of the greedy packer's beat count.

    Slots consumed are ``entry_slots * entries`` plus one header per
    (group, beat) incidence: at least one per nonempty group, and at least
    one per beat when groups are long.  Hence the max of the two regimes:

    * long groups: every beat carries one header ->
      ``entries * entry_slots / (W - shared)``;
    * short groups: one header each ->
      ``(entries * entry_slots + groups * shared) / W``.
    """
    es, ss = spec.entry_slots, spec.shared_slots
    if es + ss > bus_slots:
        return total_entries * spec.span_cycles(bus_slots)
    slots = total_entries * es
    long_regime = slots / max(1, bus_slots - ss)
    short_regime = (slots + nonempty_groups * ss) / bus_slots
    return max(long_regime, short_regime)


# --------------------------------------------------------------------------
# payload streaming for the simulator
# --------------------------------------------------------------------------


def build_beat_plan(
    a: MatrixFormat,
    fmt: Format,
    bus_slots: int,
    k_range: tuple[int, int] | None = None,
) -> BeatPlan:
    """Pack the streamed operand *a* (in ACF *fmt*) into a beat plan.

    ``k_range`` restricts streaming to a reduction-dimension tile, as the
    scheduler requires when the stationary operand is K-tiled.  The
    extraction itself is the registered protocol's vectorized kernel.
    """
    from repro.accelerator.protocols import stream_protocol_for

    proto = stream_protocol_for(fmt)
    if k_range is None:
        k_range = (0, a.ncols)
    i, k, v, sizes = proto.extract_entries(a, k_range[0], k_range[1])
    return pack_entries(i, k, v, sizes, proto.spec, bus_slots)


def stream_beats(
    a: MatrixFormat,
    fmt: Format,
    bus_slots: int,
    k_range: tuple[int, int] | None = None,
) -> Iterator[Beat]:
    """Beat-object view of :func:`build_beat_plan` (traces and tests)."""
    return build_beat_plan(a, fmt, bus_slots, k_range).iter_beats()
