"""The zero-copy operand plane: shared-memory tensor transport.

Every batch frontend (:func:`repro.util.pool.fork_map` and the layers on
top of it — ``simulate_many``, ``predict_many``, the xp grid runner)
ships jobs to worker processes by pickling them through a pipe.  For
production batch sizes the payload is dominated by operand tensors, and
pickling the same weight matrix into every worker turns the fan-out into
a serialization benchmark.  This module moves the tensors out of the
pipe: operand buffers are registered **once** into
:mod:`multiprocessing.shared_memory` segments and the job pickle carries
only compact :class:`OperandRef` descriptors that workers *attach* to —
a zero-copy, read-only view onto the parent's bytes.

Three pieces:

* :class:`OperandPlane` — the sender side.  :meth:`OperandPlane.export`
  pickles any job object with a custom pickler whose
  ``reducer_override`` intercepts large ``numpy`` arrays (``nbytes >=
  min_bytes``), copies each **distinct** array into one shared segment
  (identity-deduplicated, so a stationary operand shared by a whole
  batch is transported once no matter how many jobs reference it), and
  substitutes an :class:`OperandRef`.  The plane owns segment lifetime:
  :meth:`OperandPlane.close` unlinks everything, on success *and* error
  paths.
* :func:`loads` / :func:`invoke_exported` — the receiver side.  The
  payload is plain pickle; refs reconstruct through :func:`_attach_ref`,
  which attaches by segment name (memoized per process) and returns a
  read-only ndarray view.  Nothing is copied until someone writes —
  and writes are forbidden, which is exactly the discipline the
  simulator's operand contract already assumes.
* :class:`OperandCacheNamespace` — long-lived *named* segments for
  cooperating processes (the serve shard workers): ``get_or_build(key,
  builder)`` attaches to the segment another shard already
  materialized, or builds and publishes it.  The server that owns the
  namespace unlinks everything at shutdown.

Degradation is always available and bit-identical: callers that cannot
use shared memory (no ``/dev/shm``, unpicklable payloads, pool-less
platforms) fall back to the classic pickle transport or sequential
execution — see :func:`repro.util.pool.fork_map`.

Segment names all start with :data:`SEGMENT_PREFIX`, so a leak check is
one directory scan (``tools/check_shm_leaks.py``, wired into CI).
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
import struct
import time
from dataclasses import dataclass
from hashlib import blake2s
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.obs import registry as _obs_registry

try:  # stdlib since 3.8; guarded so exotic builds degrade, not crash
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no POSIX/Windows shm at all
    _shared_memory = None

_EXPORTED_SEGMENTS = _obs_registry().counter(
    "repro_shm_exported_segments_total",
    "Shared-memory segments created by operand planes",
)
_EXPORTED_BYTES = _obs_registry().counter(
    "repro_shm_exported_bytes_total",
    "Payload bytes copied into operand-plane segments",
)
_ATTACHED_SEGMENTS = _obs_registry().counter(
    "repro_shm_attached_segments_total",
    "Segment attaches performed by receivers (first attach per process)",
)
_ATTACHED_BYTES = _obs_registry().counter(
    "repro_shm_attached_bytes_total",
    "Payload bytes made visible through zero-copy attach views",
)

__all__ = [
    "DEFAULT_MIN_BYTES",
    "OperandCacheNamespace",
    "OperandPlane",
    "OperandRef",
    "SEGMENT_PREFIX",
    "active_operand_segments",
    "invoke_exported",
    "loads",
    "shm_available",
]

#: Every segment this module creates is named with this prefix, making
#: "are any repro segments still alive?" a single /dev/shm scan.
SEGMENT_PREFIX = "repro-op"

#: Arrays below this size ride the ordinary pickle (segment setup has a
#: fixed cost; small metadata arrays are cheaper inline).  Override via
#: the ``REPRO_SHM_MIN_BYTES`` environment variable or per-plane.
DEFAULT_MIN_BYTES = 64 * 1024

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _default_min_bytes() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_SHM_MIN_BYTES", "")))
    except ValueError:
        return DEFAULT_MIN_BYTES


def _untrack(segment) -> None:
    """Opt a segment out of the resource tracker's bookkeeping.

    Segment lifetime is owned explicitly (plane close / namespace
    unlink), never by the tracker.  Creators and attachers both register
    into one shared tracker set keyed by name (3.10–3.12 have no
    ``track=False``), so a worker's exit-time unregister would strip the
    creator's entry and the eventual ``unlink()`` would trip a KeyError
    inside the tracker process.  Untracking everyone on sight — paired
    with :func:`_unlink_quiet` re-registering just before unlink — keeps
    the tracker's ledger balanced and silent.
    """
    try:  # pragma: no cover - exercised indirectly on every attach
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 - best-effort, platform-dependent
        pass


def _unlink_quiet(segment) -> None:
    """Close + unlink a segment previously :func:`_untrack`-ed."""
    try:  # pragma: no cover - partner of _untrack, see its docstring
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001
        pass
    segment.close()
    segment.unlink()


@dataclass(frozen=True)
class OperandRef:
    """Compact descriptor of one shared-memory-resident array.

    This — not the tensor — is what worker submits carry: segment name,
    dtype string, and shape.  ``_attach_ref(ref)`` rebuilds the
    read-only view on the other side.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Payload size of the referenced array."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


#: Per-process memo of attached segments: name -> SharedMemory.  Entries
#: live as long as the process (pool workers die with their pool); the
#: mapping keeps the buffer alive for every view handed out.
_ATTACHED: dict[str, Any] = {}

#: Per-process memo of handed-out views: (segment, dtype, shape) ->
#: ndarray.  Returning the *same* view object for the same ref — across
#: separate payload loads, not just within one pickle — is a load-bearing
#: guarantee: identity-keyed derived-state caches downstream (e.g. the
#: scheduler's stationary preparation memo) only hit when repeated jobs
#: of a batch really do carry the same array object.
_VIEWS: dict[tuple[str, str, tuple[int, ...]], np.ndarray] = {}


def _attach_ref(ref: OperandRef) -> np.ndarray:
    """Reconstructor pickled into every :class:`OperandRef`: attach, view."""
    view_key = (ref.segment, ref.dtype, ref.shape)
    view = _VIEWS.get(view_key)
    if view is not None:
        return view
    segment = _ATTACHED.get(ref.segment)
    if segment is None:
        segment = _shared_memory.SharedMemory(name=ref.segment)
        _untrack(segment)
        _ATTACHED[ref.segment] = segment
        _ATTACHED_SEGMENTS.inc()
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    view.flags.writeable = False
    _VIEWS[view_key] = view
    _ATTACHED_BYTES.inc(ref.nbytes)
    return view


def shm_available() -> bool:
    """Whether this platform can create + attach shared-memory segments.

    Probed once per process (create a 1-byte segment, unlink it); the
    answer is cached.  ``REPRO_TRANSPORT=pickle`` short-circuits to
    ``False``, giving a global kill switch for the zero-copy path.
    """
    global _SHM_AVAILABLE
    if os.environ.get("REPRO_TRANSPORT") == "pickle":
        return False
    if _SHM_AVAILABLE is None:
        if _shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=1
                )
                probe.close()
                probe.unlink()
                _SHM_AVAILABLE = True
            except Exception:  # noqa: BLE001 - any failure means "no"
                _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: bool | None = None


def _segment_name() -> str:
    """A fresh collision-free segment name carrying the leak-check prefix."""
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"


def active_operand_segments() -> list[str]:
    """Names of live repro segments (``/dev/shm`` scan; [] where absent).

    The test suite and ``tools/check_shm_leaks.py`` use this to assert
    that every batch cleaned up after itself.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(
        p.name for p in root.iterdir() if p.name.startswith(SEGMENT_PREFIX)
    )


class _PlanePickler(pickle.Pickler):
    """Pickler that swaps large ndarrays for :class:`OperandRef`\\ s."""

    def __init__(self, buffer: io.BytesIO, plane: "OperandPlane") -> None:
        super().__init__(buffer, protocol=_PICKLE_PROTOCOL)
        self._plane = plane

    def reducer_override(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= self._plane.min_bytes
            and not obj.dtype.hasobject
        ):
            return (_attach_ref, (self._plane.put(obj),))
        return NotImplemented


class OperandPlane:
    """One batch's worth of shared operand segments (sender side).

    Use as a context manager (or call :meth:`close` in a ``finally``):
    the plane owns every segment it created and unlinking them is the
    contract that keeps ``/dev/shm`` leak-free on success, worker
    error, and interrupt alike.
    """

    def __init__(self, min_bytes: int | None = None) -> None:
        self.min_bytes = max(
            1, min_bytes if min_bytes is not None else _default_min_bytes()
        )
        #: id(array) -> (array, ref): the array reference keeps ids stable.
        self._exported: dict[int, tuple[np.ndarray, OperandRef]] = {}
        self._segments: list[Any] = []

    # ------------------------------------------------------------- exporting
    def put(self, array: np.ndarray) -> OperandRef:
        """Copy *array* into a segment (once per distinct array object)."""
        known = self._exported.get(id(array))
        if known is not None:
            return known[1]
        segment = _shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=array.nbytes
        )
        _untrack(segment)
        self._segments.append(segment)
        dtype = array.dtype
        staged = np.ndarray(array.shape, dtype=dtype, buffer=segment.buf)
        np.copyto(staged, array)
        ref = OperandRef(
            segment=segment.name, dtype=dtype.str, shape=tuple(array.shape)
        )
        self._exported[id(array)] = (array, ref)
        _EXPORTED_SEGMENTS.inc()
        _EXPORTED_BYTES.inc(array.nbytes)
        return ref

    def export(self, obj: Any) -> bytes:
        """Pickle *obj* with every large array lifted into the plane."""
        buffer = io.BytesIO()
        _PlanePickler(buffer, self).dump(obj)
        return buffer.getvalue()

    # ------------------------------------------------------------- lifecycle
    @property
    def segment_names(self) -> list[str]:
        """Names of the segments this plane currently owns."""
        return [segment.name for segment in self._segments]

    @property
    def exported_bytes(self) -> int:
        """Total payload bytes resident in this plane's segments."""
        return sum(segment.size for segment in self._segments)

    def close(self) -> None:
        """Unlink every owned segment (idempotent, never raises)."""
        segments, self._segments = self._segments, []
        self._exported.clear()
        for segment in segments:
            try:
                _unlink_quiet(segment)
            except Exception:  # noqa: BLE001 - already gone is fine
                pass

    def __enter__(self) -> "OperandPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - backstop only
        self.close()


def loads(payload: bytes) -> Any:
    """Inverse of :meth:`OperandPlane.export` (plain pickle + attach)."""
    return pickle.loads(payload)


def invoke_exported(payload: bytes) -> Any:
    """Pool task for the zero-copy transport: unpack ``(fn, item)``, call."""
    fn, item = loads(payload)
    return fn(item)


# ---------------------------------------------------------------------------
# cross-process warm operand cache (serve shards)
# ---------------------------------------------------------------------------

#: Named-segment layout: uint64 header length, pickled (dtype, shape)
#: header, raw array bytes.  The length word is written *last* so an
#: attacher racing the creator can tell "still being filled" from ready.
_HEADER_LEN = struct.Struct("<Q")


class OperandCacheNamespace:
    """Deterministically named shared segments keyed by content identity.

    Serve shard workers all materialize the *same* proxy operands for
    the cycle fidelity tier (the builder is seeded, hence deterministic
    per key).  This cache lets the first shard that needs an operand
    publish it under a key-derived segment name; every other shard —
    and the parent, for in-process compute — attaches instead of
    re-materializing.  The namespace owner (the server) calls
    :meth:`unlink_all` at shutdown.
    """

    def __init__(self, prefix: str) -> None:
        if not prefix.startswith(SEGMENT_PREFIX):
            raise ValueError(
                f"namespace prefix must start with {SEGMENT_PREFIX!r} "
                f"(leak checks scan for it), got {prefix!r}"
            )
        self.prefix = prefix
        self._local: dict[tuple, np.ndarray] = {}
        self._created: list[str] = []

    def _name_for(self, key: tuple) -> str:
        digest = blake2s(repr(key).encode(), digest_size=10).hexdigest()
        return f"{self.prefix}-{digest}"

    def get_or_build(
        self, key: tuple, builder: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The array for *key*: local memo, then attach, then build+publish.

        Returns a read-only view backed by the shared segment (or the
        builder's own array when shared memory is unavailable).  A
        concurrent creator is waited out briefly; on timeout the builder
        runs locally so correctness never depends on the race.
        """
        cached = self._local.get(key)
        if cached is not None:
            return cached
        if not shm_available():
            array = builder()
            self._local[key] = array
            return array
        name = self._name_for(key)
        array = self._attach(name)
        if array is None:
            array = self._publish(name, builder)
        self._local[key] = array
        return array

    def _attach(self, name: str, spins: int = 200) -> np.ndarray | None:
        segment = _ATTACHED.get(name)
        if segment is None:
            try:
                segment = _shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return None
            except OSError:  # pragma: no cover - degraded platform
                return None
            _untrack(segment)
        for _ in range(spins):  # creator may still be filling the segment
            (header_len,) = _HEADER_LEN.unpack_from(segment.buf, 0)
            if header_len:
                break
            time.sleep(0.005)
        else:  # pragma: no cover - stuck creator; build locally instead
            segment.close()
            return None
        offset = _HEADER_LEN.size
        dtype_str, shape = pickle.loads(
            bytes(segment.buf[offset : offset + header_len])
        )
        view = np.ndarray(
            shape,
            dtype=np.dtype(dtype_str),
            buffer=segment.buf,
            offset=offset + header_len,
        )
        view.flags.writeable = False
        _ATTACHED[name] = segment  # keep the mapping alive for the view
        return view

    def _publish(
        self, name: str, builder: Callable[[], np.ndarray]
    ) -> np.ndarray:
        array = np.ascontiguousarray(builder())
        header = pickle.dumps(
            (array.dtype.str, tuple(array.shape)), protocol=_PICKLE_PROTOCOL
        )
        size = _HEADER_LEN.size + len(header) + array.nbytes
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:  # lost the creation race: attach instead
            attached = self._attach(name)
            return attached if attached is not None else array
        except OSError:  # pragma: no cover - /dev/shm full etc.
            return array
        _untrack(segment)
        offset = _HEADER_LEN.size
        segment.buf[offset : offset + len(header)] = header
        staged = np.ndarray(
            array.shape,
            dtype=array.dtype,
            buffer=segment.buf,
            offset=offset + len(header),
        )
        np.copyto(staged, array)
        _HEADER_LEN.pack_into(segment.buf, 0, len(header))  # publish last
        self._created.append(name)
        _ATTACHED[name] = segment
        view = staged
        view.flags.writeable = False
        return view

    def unlink_all(self) -> int:
        """Unlink every namespace segment; returns how many were removed.

        Scans ``/dev/shm`` for the prefix (covering segments created by
        *other* processes in the namespace, e.g. shard workers) and
        falls back to this process's creation list elsewhere.
        """
        names = set(self._created)
        root = Path("/dev/shm")
        if root.is_dir():
            names.update(
                p.name for p in root.iterdir() if p.name.startswith(self.prefix)
            )
        removed = 0
        for name in sorted(names):
            segment = _ATTACHED.pop(name, None)
            try:
                if segment is None:
                    segment = _shared_memory.SharedMemory(name=name)
                    _untrack(segment)
                _unlink_quiet(segment)
                removed += 1
            except FileNotFoundError:
                continue
            except Exception:  # noqa: BLE001 - best effort
                continue
        self._created.clear()
        self._local.clear()
        return removed
