"""Argument validation helpers shared across the package."""

from __future__ import annotations

from typing import Any

import numpy as np


def check_dense_matrix(array: Any, name: str = "matrix") -> np.ndarray:
    """Coerce *array* to a 2-D float64 ndarray, raising on bad rank.

    Returns a C-contiguous view/copy so downstream row-major iteration is
    cache-friendly (see the HPC guide note on strides).
    """
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def check_dense_tensor(array: Any, name: str = "tensor") -> np.ndarray:
    """Coerce *array* to a 3-D float64 ndarray, raising on bad rank."""
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError(f"{name} must be 3-D, got shape {arr.shape}")
    return arr


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_probability(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
