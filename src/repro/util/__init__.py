"""Shared low-level utilities: bit accounting, validation, statistics."""

from repro.util.bits import (
    bits_for_count,
    bits_for_index,
    bits_to_bytes,
    ceil_div,
    ceil_log2,
)
from repro.util.stats import geomean, normalized, summarize
from repro.util.validation import (
    check_dense_matrix,
    check_dense_tensor,
    check_positive,
    check_probability,
)

__all__ = [
    "bits_for_count",
    "bits_for_index",
    "bits_to_bytes",
    "ceil_div",
    "ceil_log2",
    "geomean",
    "normalized",
    "summarize",
    "check_dense_matrix",
    "check_dense_tensor",
    "check_positive",
    "check_probability",
]
