"""Bit-width helpers used by the storage-compactness models.

The paper's compactness analysis (Sec. III-A) states: *"The number of metadata
bits required is the log of the maximum possible value."*  These helpers
centralize that accounting so every format class computes metadata widths the
same way.
"""

from __future__ import annotations

import math


def ceil_log2(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer.

    ``ceil_log2(1) == 0``: a single possible value needs no bits to encode.

    Parameters
    ----------
    value:
        Positive integer.

    Raises
    ------
    ValueError
        If ``value`` is not a positive integer.
    """
    if value < 1:
        raise ValueError(f"ceil_log2 requires a positive integer, got {value!r}")
    return int(math.ceil(math.log2(value))) if value > 1 else 0


def bits_for_index(dimension: int) -> int:
    """Bits needed to address one coordinate in a dimension of given size.

    A dimension of size ``d`` has valid indices ``0 .. d-1``, so the metadata
    width is ``ceil(log2(d))`` with a floor of 1 bit (an index field narrower
    than one bit cannot exist in hardware).
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    return max(1, ceil_log2(dimension))


def bits_for_count(max_count: int) -> int:
    """Bits needed to store a counter whose values span ``0 .. max_count``.

    Used for CSR/CSC pointer arrays whose entries range up to ``nnz``
    inclusive, hence ``max_count + 1`` representable values.
    """
    if max_count < 0:
        raise ValueError(f"max_count must be >= 0, got {max_count}")
    return max(1, ceil_log2(max_count + 1))


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; denominator must be positive."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def bits_to_bytes(bits: int) -> int:
    """Round a bit count up to whole bytes."""
    return ceil_div(bits, 8)
