"""Shared fork-pool fan-out with graceful sequential degradation.

Both batch frontends — :meth:`repro.sage.predictor.Sage.predict_many` and
:meth:`repro.accelerator.simulator.WeightStationarySimulator.simulate_many`
— need the same shape of machinery: fan a list of picklable jobs across a
fork-context process pool, preserve input order, optionally seed each
worker (snapshot initializers), and degrade to in-process execution on any
platform that cannot run a pool at all instead of failing.  This module is
that machinery, factored once.

Degradation triggers (all run the jobs sequentially in this process):

* a single job or ``processes <= 1`` — no pool worth spawning;
* unpicklable inputs (lambda providers, open handles) — caught by an
  explicit pre-flight so exceptions escaping the pool are genuine worker
  bugs and propagate;
* a daemonic caller (e.g. a serve shard worker) — daemons may not have
  children;
* platforms that cannot spawn (or keep) a pool: ``OSError`` /
  ``PermissionError`` / ``BrokenProcessPool``.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["fork_map"]

T = TypeVar("T")
R = TypeVar("R")


def fork_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    processes: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    consume: Callable[[R], None] | None = None,
) -> list[R]:
    """``[fn(item) for item in items]``, fanned across a fork pool.

    Results are returned in input order.  ``fn`` must be a module-level
    callable (the pool pickles it); ``initializer(*initargs)`` runs once
    per worker, e.g. to seed a process-global cache snapshot.

    ``consume(result)`` runs in the *calling* process as each result
    arrives (in input order, on every execution path) — callers that
    persist results incrementally survive interruption mid-batch instead
    of losing the whole barrier (the xp runner's artifact store relies on
    this).
    """

    def sequential() -> list[R]:
        results = []
        for item in items:
            result = fn(item)
            if consume is not None:
                consume(result)
            results.append(result)
        return results

    items = list(items)
    if processes is None:
        processes = min(len(items), multiprocessing.cpu_count())
    if len(items) <= 1 or processes <= 1:
        return sequential()
    if multiprocessing.current_process().daemon:
        # Daemonic processes (serve shards) may not have children.
        return sequential()
    try:
        pickle.dumps((fn, items, initargs))
    except (pickle.PicklingError, AttributeError, TypeError):
        return sequential()
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    try:
        with ProcessPoolExecutor(
            max_workers=processes,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            results = []
            for result in pool.map(fn, items):
                if consume is not None:
                    consume(result)
                results.append(result)
            return results
    except (OSError, PermissionError, BrokenProcessPool):
        # Platforms that cannot spawn (or keep) a pool at all.
        return sequential()
