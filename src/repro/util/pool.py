"""Shared fork-pool fan-out with graceful sequential degradation.

Every batch frontend — :meth:`repro.sage.predictor.Sage.predict_many`,
:meth:`repro.accelerator.simulator.WeightStationarySimulator.simulate_many`
and the xp grid runner — needs the same shape of machinery: fan a list of
picklable jobs across a fork-context process pool, preserve input order,
optionally seed each worker (snapshot initializers), and degrade to
in-process execution on any platform that cannot run a pool at all
instead of failing.  This module is that machinery, factored once.

Transports
----------
Two wire formats move jobs into workers:

* ``"shm"`` — the zero-copy operand plane (:mod:`repro.util.shm`): each
  job is pickled once in the parent with large ndarrays lifted into
  shared-memory segments, so workers attach to operand buffers instead
  of receiving copies.  A stationary operand shared across the whole
  batch crosses the process boundary exactly once.  Segments are
  guaranteed to be unlinked on success, worker error, and interrupt.
* ``"pickle"`` — the classic path: the pool pickles ``(fn, item)``
  through its pipe per submit.

``transport="auto"`` (the default) picks ``"shm"`` whenever shared
memory works on the platform, else ``"pickle"``; ``REPRO_TRANSPORT``
(``shm`` / ``pickle``) overrides from the environment.  Results are
bit-identical across transports and the sequential path (pinned by
``tests/util/test_pool.py``).

Degradation triggers (all run the jobs sequentially in this process):

* a single job or ``processes <= 1`` — no pool worth spawning;
* unpicklable inputs (lambda providers, open handles) — caught by a
  cheap pre-flight so exceptions escaping the pool are genuine worker
  bugs and propagate.  The pre-flight probes ``fn``, one sample item and
  ``initargs`` — it does **not** round-trip the full batch payload (the
  shm transport additionally validates every item while exporting and
  degrades, with cleanup, on the first unpicklable one);
* a daemonic caller (e.g. a serve shard worker) — daemons may not have
  children;
* platforms that cannot spawn (or keep) a pool: ``OSError`` /
  ``PermissionError`` / ``BrokenProcessPool``.

Observability
-------------
When the obs plane is on, pool workers are telemetry-transparent: each
task's result travels back inside an envelope that also carries the
worker's current metric-registry snapshot (cumulative, sequence-numbered)
and its span-event delta.  The parent keeps the *latest* snapshot per
worker pid and merges them once the map completes, so aggregated worker
metrics are exactly equal to what a sequential run would have recorded
(pinned by a parity test).  Worker registries are reset in the pool
initializer — a forked child inherits the parent's counts, which would
otherwise double on merge.  Trace IDs and the enabled flag propagate the
same way, so ``repro run --trace`` sees inside workers.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util import shm

__all__ = ["fork_map"]

T = TypeVar("T")
R = TypeVar("R")

_TRANSPORTS = ("auto", "shm", "pickle")

_MAPS = obs_metrics.registry().counter(
    "repro_pool_maps_total", "fork_map invocations by execution path"
)
_TASK_SECONDS = obs_metrics.registry().histogram(
    "repro_pool_task_seconds", "Per-task wall-seconds inside pool workers"
)

#: Per-worker monotonically increasing task sequence number.  Snapshots
#: are cumulative, so the parent only needs the highest-sequence one per
#: pid to reconstruct that worker's full contribution.
_TASK_SEQ = 0


def _obs_worker_init(
    enabled: bool,
    trace_id: str | None,
    tracing: bool,
    initializer: Callable | None,
    initargs: tuple,
) -> None:
    """Pool initializer: obs worker setup composed with the caller's.

    Resets the fork-inherited registry (its counts already live in the
    parent — merging them back would double-count), propagates the
    runtime enabled flag and trace ID, and installs a local recorder
    whose events ride result envelopes back when the parent is tracing.
    """
    obs_metrics.set_enabled(enabled)
    obs_metrics.reset_registry()
    obs_trace.set_trace_id(trace_id)
    obs_trace.resume_trace(obs_trace.TraceRecorder() if tracing else None)
    global _TASK_SEQ
    _TASK_SEQ = 0
    if initializer is not None:
        initializer(*initargs)


class _InstrumentedTask:
    """Worker-side wrapper: time the task, envelope its telemetry."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, item):
        global _TASK_SEQ
        t0 = time.perf_counter()
        result = self.fn(item)
        _TASK_SECONDS.observe(time.perf_counter() - t0)
        _TASK_SEQ += 1
        return (
            result,
            os.getpid(),
            _TASK_SEQ,
            obs_metrics.registry().snapshot(),
            obs_trace.drain_events(),
        )


def _resolve_transport(transport: str) -> str:
    """Collapse ``transport`` (+ env override) to ``"shm"`` or ``"pickle"``."""
    if transport == "auto":
        env = os.environ.get("REPRO_TRANSPORT", "")
        transport = env if env in ("shm", "pickle") else "shm"
    if transport == "shm" and not shm.shm_available():
        return "pickle"
    return transport


def fork_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    processes: int | None = None,
    initializer: Callable | None = None,
    initargs: tuple = (),
    consume: Callable[[R], None] | None = None,
    transport: str = "auto",
) -> list[R]:
    """``[fn(item) for item in items]``, fanned across a fork pool.

    Results are returned in input order.  ``fn`` must be a module-level
    callable (the pool pickles it); ``initializer(*initargs)`` runs once
    per worker, e.g. to seed a process-global cache snapshot.

    ``consume(result)`` runs in the *calling* process as each result
    arrives (in input order, on every execution path) — callers that
    persist results incrementally survive interruption mid-batch instead
    of losing the whole barrier (the xp runner's artifact store relies on
    this).

    ``transport`` selects the worker wire format (see the module
    docstring): ``"auto"``, ``"shm"``, or ``"pickle"``.
    """

    if transport not in _TRANSPORTS:
        raise ValueError(
            f"transport must be one of {_TRANSPORTS}, got {transport!r}"
        )

    items = list(items)

    def sequential() -> list[R]:
        _MAPS.inc(path="sequential")
        results = []
        with obs_trace.span("pool.fork_map", items=len(items), path="seq"):
            for item in items:
                result = fn(item)
                if consume is not None:
                    consume(result)
                results.append(result)
        return results

    if processes is None:
        processes = min(len(items), multiprocessing.cpu_count())
    if len(items) <= 1 or processes <= 1:
        return sequential()
    if multiprocessing.current_process().daemon:
        # Daemonic processes (serve shards) may not have children.
        return sequential()

    # Cheap pre-flight: fn, one sample item, initargs.  Anything that
    # escapes the pool after this passes is a genuine worker bug and must
    # propagate, not be misread as "degrade sequentially".
    try:
        pickle.dumps((fn, items[0], initargs))
    except (pickle.PicklingError, AttributeError, TypeError):
        return sequential()

    wire = _resolve_transport(transport)
    if wire == "shm":
        plane = shm.OperandPlane()
        try:
            payloads = [plane.export((fn, item)) for item in items]
        except (pickle.PicklingError, AttributeError, TypeError):
            # Some item beyond the sample was unpicklable: degrade, but
            # never leak the segments exported so far.
            plane.close()
            return sequential()
        except BaseException:
            plane.close()
            raise
        try:
            return _pool_map(
                shm.invoke_exported,
                payloads,
                processes=processes,
                initializer=initializer,
                initargs=initargs,
                consume=consume,
                sequential=sequential,
                n_items=len(items),
            )
        finally:
            # Reached only after the pool context has exited (workers
            # joined), so unlinking here is safe on success, worker
            # error, and interrupt alike.
            plane.close()
    return _pool_map(
        fn,
        items,
        processes=processes,
        initializer=initializer,
        initargs=initargs,
        consume=consume,
        sequential=sequential,
        n_items=len(items),
    )


def _pool_map(
    fn: Callable,
    items: list,
    *,
    processes: int,
    initializer: Callable | None,
    initargs: tuple,
    consume: Callable | None,
    sequential: Callable[[], list],
    n_items: int | None = None,
) -> list:
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    tracing = obs_trace.recording()
    try:
        with ProcessPoolExecutor(
            max_workers=processes,
            mp_context=ctx,
            initializer=_obs_worker_init,
            initargs=(
                obs_metrics.enabled(),
                obs_trace.current_trace_id(),
                tracing,
                initializer,
                initargs,
            ),
        ) as pool:
            # Chunked submission: one pipe round-trip per chunk, not per
            # item.  With compact payloads (the shm transport ships
            # OperandRef descriptors, not tensors) per-task latency is
            # what dominates, so ~4 chunks per worker amortizes it while
            # keeping the pool load-balanced.  Order is preserved.
            chunksize = max(1, len(items) // (processes * 4))
            results = []
            # Worker snapshots are cumulative: keep only the
            # highest-sequence one per worker pid, merge at the end.
            latest: dict[int, tuple[int, dict]] = {}
            span_events: list[dict] = []
            with obs_trace.span(
                "pool.fork_map",
                items=n_items if n_items is not None else len(items),
                processes=processes,
                path="pool",
            ):
                task = _InstrumentedTask(fn)
                for envelope in pool.map(task, items, chunksize=chunksize):
                    result, pid, seq, snapshot, events = envelope
                    prev = latest.get(pid)
                    if prev is None or seq > prev[0]:
                        latest[pid] = (seq, snapshot)
                    span_events.extend(events)
                    if consume is not None:
                        consume(result)
                    results.append(result)
            reg = obs_metrics.registry()
            for _, snapshot in latest.values():
                reg.merge_snapshot(snapshot)
            recorder = obs_trace._RECORDER
            if recorder is not None:
                recorder.extend(span_events)
            _MAPS.inc(path="pool")
            return results
    except (OSError, PermissionError, BrokenProcessPool):
        # Platforms that cannot spawn (or keep) a pool at all.
        return sequential()
