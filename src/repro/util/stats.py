"""Small statistics helpers used by the evaluation harnesses."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geomean EDP reductions (Fig. 13); this is the single
    place that computes them.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence is undefined")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def normalized(values: Sequence[float], reference: float) -> list[float]:
    """Normalize a sequence by a positive reference value."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return [v / reference for v in values]


def summarize(values: Mapping[str, float]) -> str:
    """Render a ``name: value`` mapping as an aligned multi-line string."""
    if not values:
        return "(empty)"
    width = max(len(k) for k in values)
    return "\n".join(f"{k.ljust(width)} : {v:.6g}" for k, v in values.items())
