"""Speculative band warming: turn the *next* cold request into a hit.

The serve tail is pure cold-miss: a workload whose density band has never
been decided pays the full MCF/ACF search (hundreds of ms) while warm
hits answer in microseconds.  Traffic is not adversarial, though — real
callers sweep densities and scale problem sizes, so a miss in band *b*
is a strong predictor of imminent traffic in bands *b ± 1* and at the
next problem size.  :class:`BandWarmer` exploits that: every miss (and
near-hit) enqueues the adjacent density bands and the predicted-next
sizes of that fingerprint onto a bounded background queue; one low-
priority thread computes them and publishes the decisions into the front
:class:`~repro.serve.cache.DecisionCache`, so the next cold request in
the band is answered from the near-hit tier instead of re-running the
search.

Design points:

* **bounded + drop-new** — the queue never grows past ``maxsize``;
  under overload, new speculation is dropped (counted) rather than
  delaying foreground work or ballooning memory;
* **deduplicated** — a band is enqueued at most once while pending, and
  bands the cache already covers are skipped before costing a search;
* **best-effort** — warm predictions that fail (a synthesized workload
  the predictor rejects) are counted and dropped, never raised;
* **single thread** — speculation shares the process with the serving
  hot path, so at most one background search runs at a time.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.obs import get_logger, registry, span
from repro.serve.cache import DecisionCache
from repro.serve.fingerprint import WorkloadFingerprint, fingerprint_of
from repro.workloads.spec import Kernel, MatrixWorkload, TensorWorkload

__all__ = ["BandWarmer", "warm_candidates"]

_LOG = get_logger("serve.warmer")

_WARM_EVENTS = registry().counter(
    "repro_serve_warm_events_total",
    "Speculative warm-queue events (queued/warmed/dropped/skipped/failed)",
)


def _clamped(value: int, lo: int, hi: int) -> int:
    return max(lo, min(hi, value))


def warm_candidates(
    fp: WorkloadFingerprint, bands: int = 1
) -> list[MatrixWorkload | TensorWorkload]:
    """Synthesize the speculative neighbours of one fingerprint.

    Two families, mirroring how real traffic drifts:

    * **adjacent density bands** — the sparse operand's nonzero count
      scaled by ``2**±d`` for ``d in 1..bands`` (one power of two is
      exactly one :func:`~repro.serve.fingerprint.density_band` step);
    * **predicted-next sizes** — every extent doubled at constant
      density (callers scale problems up far more often than down).

    Fingerprints are lossless for this purpose: they carry every field
    the cost model reads, so the synthesized workload's decision equals
    the decision any real workload in that band would get.
    """
    kernel = Kernel(fp.kernel)
    out: list[MatrixWorkload | TensorWorkload] = []
    if fp.kind == "tensor":
        x, y, z, rank = fp.dims
        (nnz,) = fp.nnz
        size = x * y * z
        for d in range(1, bands + 1):
            for factor in (2**d, 1 / 2**d):
                scaled = _clamped(int(nnz * factor), 1, size)
                out.append(TensorWorkload(
                    name=f"warm:{fp.kernel}:nnz{scaled}",
                    kernel=kernel, shape=(x, y, z), nnz=scaled, rank=rank,
                    dtype_bits=fp.dtype_bits,
                ))
        if bands >= 1:
            out.append(TensorWorkload(
                name=f"warm:{fp.kernel}:next-size",
                kernel=kernel, shape=(2 * x, 2 * y, 2 * z),
                nnz=_clamped(nnz * 8, 1, 8 * size), rank=2 * rank,
                dtype_bits=fp.dtype_bits,
            ))
        return out
    m, k, n = fp.dims
    nnz_a, nnz_b = fp.nnz
    for d in range(1, bands + 1):
        for factor in (2**d, 1 / 2**d):
            scaled = _clamped(int(nnz_a * factor), 1, m * k)
            out.append(MatrixWorkload(
                name=f"warm:{fp.kernel}:nnz{scaled}",
                kernel=kernel, m=m, k=k, n=n,
                nnz_a=scaled, nnz_b=nnz_b, dtype_bits=fp.dtype_bits,
            ))
    if bands >= 1:
        # Next problem size: extents doubled, density held, so the
        # dense-B invariant (nnz_b == k*n) survives the scaling.
        out.append(MatrixWorkload(
            name=f"warm:{fp.kernel}:next-size",
            kernel=kernel, m=2 * m, k=2 * k, n=2 * n,
            nnz_a=_clamped(4 * nnz_a, 1, 4 * m * k),
            nnz_b=_clamped(4 * nnz_b, 1, 4 * k * n),
            dtype_bits=fp.dtype_bits,
        ))
    return out


class BandWarmer:
    """Background warm queue feeding a :class:`DecisionCache`."""

    def __init__(
        self,
        predict: Callable[[MatrixWorkload | TensorWorkload], object],
        cache: DecisionCache,
        *,
        config=None,
        bands: int = 1,
        maxsize: int = 256,
    ) -> None:
        self._predict = predict
        self._cache = cache
        self._config = config
        self.bands = max(1, bands)
        self.maxsize = max(1, maxsize)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._pending: set[tuple] = set()  # band keys queued or in flight
        self._closed = False
        self._idle = threading.Event()
        self._idle.set()
        # Monotonic counters (guarded by self._lock).
        self._queued = 0
        self._warmed = 0
        self._dropped = 0
        self._skipped = 0
        self._failed = 0
        self._thread = threading.Thread(
            target=self._loop, name="serve-warmer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- intake
    def enqueue(self, fp: WorkloadFingerprint) -> int:
        """Queue the speculative neighbours of *fp*; returns how many."""
        accepted = 0
        for workload in warm_candidates(fp, self.bands):
            target = fingerprint_of(workload, self._config)
            band = target.band_key()
            if band == fp.band_key() or self._cache.has_band(band):
                with self._lock:
                    self._skipped += 1
                _WARM_EVENTS.inc(event="skipped")
                continue
            with self._lock:
                if self._closed or band in self._pending:
                    continue
                if len(self._queue) >= self.maxsize:
                    self._dropped += 1
                    _WARM_EVENTS.inc(event="dropped")
                    continue
                self._pending.add(band)
                self._queue.append((band, target, workload))
                self._queued += 1
                self._idle.clear()
                accepted += 1
                self._wakeup.notify()
        if accepted:
            _WARM_EVENTS.inc(accepted, event="queued")
        return accepted

    # -------------------------------------------------------------- worker
    def _loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._idle.set()
                    self._wakeup.wait()
                if self._closed:
                    self._idle.set()
                    return
                band, target, workload = self._queue.popleft()
            try:
                if not self._cache.has_band(band):  # raced a real request
                    with span("serve.warm_predict", workload=workload.name):
                        decision = self._predict(workload)
                    self._cache.put(target, decision)
                    with self._lock:
                        self._warmed += 1
                    _WARM_EVENTS.inc(event="warmed")
                else:
                    with self._lock:
                        self._skipped += 1
                    _WARM_EVENTS.inc(event="skipped")
            except Exception:  # noqa: BLE001 - speculation must not raise
                with self._lock:
                    self._failed += 1
                _WARM_EVENTS.inc(event="failed")
                _LOG.warning(
                    "speculative warm failed for %r", workload.name,
                    exc_info=True,
                )
            finally:
                with self._lock:
                    self._pending.discard(band)

    # ----------------------------------------------------------- lifecycle
    def drain(self, timeout_s: float = 30.0) -> bool:
        """Block until the queue is empty and the worker idle (tests)."""
        return self._idle.wait(timeout=timeout_s)

    def close(self) -> None:
        """Stop the worker; queued speculation is abandoned."""
        with self._lock:
            self._closed = True
            self._queue.clear()
            self._pending.clear()
            self._wakeup.notify_all()
        self._thread.join(timeout=5)

    def stats(self) -> dict:
        """JSON-safe counters for the server's ``stats`` RPC."""
        with self._lock:
            return {
                "bands": self.bands,
                "queued": self._queued,
                "warmed": self._warmed,
                "dropped": self._dropped,
                "skipped": self._skipped,
                "failed": self._failed,
                "depth": len(self._queue),
            }
